"""Engine monitoring: the paper's motivating scenario, end to end.

Fifteen sensors instrument an engine (as in the paper's first real
dataset).  D3 runs over a two-tier hierarchy; when the synthetic failure
window hits (the late-October event in the original data), readings
deviate sharply, leaf sensors flag them, leaders confirm them against
the cross-sensor distribution, and a region alarm trips once the outlier
rate in the window exceeds a threshold (the Section 9 "warn if the
number of outliers in a region exceeds T" query).

Run:  python examples/engine_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    D3Config,
    DistanceOutlierSpec,
    NetworkSimulator,
    build_d3_network,
    build_hierarchy,
)
from repro.apps import RegionOutlierAlarm
from repro.data import FAILURE_FRACTION, StreamSet, make_engine_streams

N_SENSORS = 15
N_TICKS = 6_000
WINDOW = 2_000
SPEC = DistanceOutlierSpec(radius=0.005, count_threshold=20)  # (100, 0.005) scaled


def main() -> None:
    streams = StreamSet.from_arrays(
        make_engine_streams(n_sensors=N_SENSORS, n=N_TICKS, seed=13))
    hierarchy = build_hierarchy(N_SENSORS, branching=4)
    config = D3Config(spec=SPEC, window_size=WINDOW,
                      sample_size=WINDOW // 20, sample_fraction=0.5,
                      warmup=WINDOW)
    network = build_d3_network(hierarchy, config, n_dims=1,
                               rng=np.random.default_rng(13))
    alarm = RegionOutlierAlarm(region_leaves=hierarchy.leaf_ids,
                               count_threshold=25, time_window=200)

    simulator = NetworkSimulator(hierarchy, network.nodes, streams)
    simulator.run()

    alarm_tick = None
    for detection in sorted(network.log.detections, key=lambda d: d.tick):
        if alarm.observe(detection) and alarm_tick is None:
            alarm_tick = detection.tick

    failure_start = int(0.81 * N_TICKS)
    failure_end = failure_start + int(FAILURE_FRACTION * N_TICKS)
    per_level = {level: len(network.log.at_level(level))
                 for level in range(1, hierarchy.n_levels + 1)}
    in_failure = sum(1 for d in network.log.at_level(1)
                     if failure_start <= d.tick <= failure_end + WINDOW // 4)

    print(f"sensors                  : {N_SENSORS}")
    print(f"hierarchy levels         : {[len(t) for t in hierarchy.levels]}")
    print(f"failure window (ticks)   : {failure_start}..{failure_end}")
    print(f"detections per level     : {per_level}")
    print(f"leaf detections in/near the failure window: "
          f"{in_failure}/{per_level[1]}")
    print(f"region alarm first tripped at tick        : {alarm_tick}")
    print(f"messages transmitted     : {simulator.counter.counts}")
    if alarm_tick is not None and alarm_tick >= failure_start:
        delay = alarm_tick - failure_start
        print(f"alarm delay after failure onset           : {delay} ticks")


if __name__ == "__main__":
    main()
