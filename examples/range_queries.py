"""Approximate spatio-temporal queries (paper Section 9).

Sensors on a unit field stream temperature-like readings with a regional
gradient and a mid-run warm front.  The query engine keeps per-sensor,
per-epoch density models and answers "what was the average reading in
region (X, Y) during [t1, t2]?" and range-count queries from the models
alone -- no raw history is retained beyond each epoch's bounded sample.

Run:  python examples/range_queries.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import Region, SpatioTemporalQueryEngine
from repro.network import build_hierarchy

N_SENSORS = 16
N_TICKS = 4_096
EPOCH = 256


def main() -> None:
    rng = np.random.default_rng(31)
    hierarchy = build_hierarchy(N_SENSORS, branching=4)
    positions = {leaf: hierarchy.positions[leaf]
                 for leaf in hierarchy.leaf_ids}

    # West side runs cool, east side warm; a warm front passes the whole
    # field in the second half of the run.
    def reading(sensor: int, tick: int) -> float:
        x, _ = positions[sensor]
        base = 0.35 + 0.2 * x
        front = 0.15 if tick >= N_TICKS // 2 else 0.0
        return float(np.clip(base + front + rng.normal(0, 0.02), 0, 1))

    engine = SpatioTemporalQueryEngine(
        positions, n_dims=1, epoch_length=EPOCH, n_epochs_retained=16,
        sample_size=64, rng=rng)
    truth: "dict[int, list[float]]" = {s: [] for s in positions}
    for tick in range(N_TICKS):
        for sensor in positions:
            value = reading(sensor, tick)
            truth[sensor].append(value)
            engine.observe(sensor, [value], tick)

    west = Region(0.0, 0.5, 0.0, 1.0)
    east = Region(0.5, 1.0, 0.0, 1.0)
    early = (0, N_TICKS // 2 - EPOCH - 1)
    late = (N_TICKS // 2, N_TICKS - EPOCH - 1)

    def exact_average(region: Region, t_low: int, t_high: int) -> float:
        values = [v for s, series in truth.items()
                  if region.contains(positions[s])
                  for v in series[t_low:t_high + 1]]
        return float(np.mean(values))

    print("AVG queries (estimated vs exact):")
    for label, region, span in [("west, before front", west, early),
                                ("east, before front", east, early),
                                ("west, after front", west, late),
                                ("east, after front", east, late)]:
        estimate = engine.average(region, *span)[0]
        exact = exact_average(region, *span)
        print(f"  {label:<20}: {estimate:.3f} vs {exact:.3f} "
              f"(err {abs(estimate - exact):.4f})")

    hot = engine.range_count(east, *late, value_low=[0.6], value_high=[1.0])
    hot_exact = sum(1 for s, series in truth.items()
                    if east.contains(positions[s])
                    for v in series[late[0]:late[1] + 1] if v >= 0.6)
    print(f"\nCOUNT(reading >= 0.6) in the east after the front: "
          f"{hot:.0f} estimated vs {hot_exact} exact")
    sel = engine.selectivity(east, *late, value_low=[0.6], value_high=[1.0])
    print(f"selectivity: {sel:.3f}")


if __name__ == "__main__":
    main()
