"""Quickstart: flag outliers in a sensor stream, online.

The one-class entry point is :class:`repro.OnlineOutlierDetector`: it
bundles the paper's per-sensor machinery -- a chain sample of the
sliding window, variance sketches for the bandwidth, and a kernel
density model answering neighbourhood-count queries -- behind a single
``process(value)`` call.  (The same loop spelled out with the individual
components is in ``examples/order_statistics.py`` and the README.)

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DistanceOutlierSpec, OnlineOutlierDetector

WINDOW = 2_000          # |W|: sliding-window length
SAMPLE = 100            # |R|: kernel sample slots (0.05 |W|)
SPEC = DistanceOutlierSpec(radius=0.01, count_threshold=9)


def main() -> None:
    rng = np.random.default_rng(7)

    # A sensor stream: a tight operating band with occasional spikes.
    n = 6_000
    stream = rng.normal(0.40, 0.03, n)
    spike_ticks = rng.choice(np.arange(WINDOW, n), size=12, replace=False)
    stream[spike_ticks] = rng.uniform(0.6, 0.95, size=12)

    detector = OnlineOutlierDetector(WINDOW, SAMPLE, SPEC, rng=rng)
    flagged: list[int] = []
    for tick, value in enumerate(stream):
        decision = detector.process(value)
        if decision is not None and decision.is_outlier:
            flagged.append(tick)

    spikes = set(int(t) for t in spike_ticks)
    hits = sorted(set(flagged) & spikes)
    print(f"stream length            : {n}")
    print(f"injected spikes (>= tick {WINDOW}): {len(spikes)}")
    print(f"flagged readings         : {len(flagged)}")
    print(f"spikes caught            : {len(hits)}/{len(spikes)}")
    print(f"false flags              : {len(set(flagged) - spikes)}")
    print()
    print(f"memory footprint         : {detector.memory_words()} 16-bit "
          f"words (the raw window would be {WINDOW})")


if __name__ == "__main__":
    main()
