"""Message-cost scaling (the Figure 11 experiment, runnable standalone).

Simulates the three schemes -- Centralized, MGDD, D3 -- over growing
networks and prints messages per second.  The paper's observation holds:
D3 needs roughly two orders of magnitude fewer messages than the
centralized approach, with MGDD in between (its global-model floods cost
more than D3's sample trickle but far less than shipping every reading).

Run:  python examples/message_cost_scaling.py [--big]
"""

from __future__ import annotations

import sys

from repro.eval.experiments import figure11


def main() -> None:
    big = "--big" in sys.argv
    leaf_counts = (16, 64, 256, 1024, 4096) if big else (16, 64, 256)
    result = figure11(leaf_counts=leaf_counts,
                      window_size=512, sample_ratio=0.1,
                      sample_fraction=0.25, measure_ticks=128, seed=0)
    print(result.format_table())
    print()
    last = result.rows[-1]
    print(f"At {last.n_nodes} nodes the centralized scheme sends "
          f"{last.centralized / last.d3:.0f}x more messages than D3 "
          f"(paper: ~two orders of magnitude).")


if __name__ == "__main__":
    main()
