"""Order statistics and moment monitoring from window summaries.

Section 9's closing applications: once a sensor keeps an online
approximation of its window distribution, it can answer order-statistic
queries (median, quantiles, IQR) and monitor the first moments (mean,
standard deviation, skew) without storing the window.  This example
runs three summaries side by side over a stream with a regime change:

* the window kernel model (this paper's approach),
* the windowed third-moment sketch (mean / std / skew online),
* a Greenwald-Khanna quantile summary (the related-work comparator,
  which never forgets -- watch its median lag after the shift).

Run:  python examples/order_statistics.py
"""

from __future__ import annotations

import numpy as np

from repro import ChainSample, KernelDensityEstimator, MultiDimVarianceSketch
from repro.apps import estimate_iqr, estimate_median, estimate_quantile
from repro.streams.moments import EHMomentsSketch
from repro.streams.quantiles import GKQuantileSummary

WINDOW, SAMPLE = 2_000, 150


def main() -> None:
    rng = np.random.default_rng(17)
    # Regime A: a clean band.  Regime B: hotter, with a heavy right tail.
    regime_a = rng.normal(0.35, 0.02, 6_000)
    regime_b = np.concatenate([rng.normal(0.6, 0.03, 5_700),
                               rng.uniform(0.7, 0.95, 300)])
    rng.shuffle(regime_b)
    stream = np.concatenate([regime_a, regime_b])

    sample = ChainSample(WINDOW, SAMPLE, rng=rng)
    sketch = MultiDimVarianceSketch(WINDOW, 1)
    moments = EHMomentsSketch(WINDOW)
    gk = GKQuantileSummary(0.01)

    checkpoints = (5_900, 8_000, 11_900)
    for tick, value in enumerate(stream):
        sample.offer([value])
        sketch.insert([value])
        moments.insert(float(value))
        gk.insert(float(value))
        if tick + 1 in checkpoints:
            window = stream[tick + 1 - WINDOW:tick + 1]
            model = KernelDensityEstimator(
                sample.values(), stddev=sketch.std(), window_size=WINDOW)
            print(f"--- tick {tick + 1} "
                  f"({'regime A' if tick < 6_000 else 'regime B'}) ---")
            print(f"  window median : model {estimate_median(model):.3f}  "
                  f"exact {np.median(window):.3f}  "
                  f"GK(all history) {gk.median():.3f}")
            print(f"  window p90    : model "
                  f"{estimate_quantile(model, 0.9):.3f}  "
                  f"exact {np.quantile(window, 0.9):.3f}")
            print(f"  window IQR    : model {estimate_iqr(model):.3f}  "
                  f"exact "
                  f"{np.quantile(window, 0.75) - np.quantile(window, 0.25):.3f}")
            from scipy import stats as scipy_stats
            print(f"  window skew   : sketch {moments.skewness():+.2f}  "
                  f"exact {scipy_stats.skew(window):+.2f}")
            print(f"  footprints    : sample {sample.memory_words()}w, "
                  f"moments {moments.memory_words()}w, "
                  f"GK {gk.memory_words()}w "
                  f"(window itself would be {WINDOW}w)")
    print("\nNote how the GK median (whole-history) lags the window after "
          "the regime change,\nwhile the window summaries track it -- the "
          "paper's case for sliding-window semantics.")


if __name__ == "__main__":
    main()
