"""Regenerate every table and figure of the paper's Section 10.

Runs the full experiment suite at a reduced-but-faithful scale (all the
paper's ratios preserved; see DESIGN.md section 3) and prints one block
per exhibit.  Use ``--paper-scale`` for the original parameters -- that
run takes hours rather than minutes.

Run:  python examples/reproduce_paper.py [--quick | --paper-scale]
"""

from __future__ import annotations

import sys
import time

from repro.eval.experiments import (
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    memory_experiment,
    selectivity_experiment,
)

PROFILES = {
    # (window, leaves, runs, fig11 leaf counts)
    "quick": dict(window=800, leaves=8, runs=1,
                  fig11_leaves=(16, 64)),
    "default": dict(window=1_500, leaves=16, runs=2,
                    fig11_leaves=(16, 64, 256, 1024)),
    "paper-scale": dict(window=10_000, leaves=32, runs=12,
                        fig11_leaves=(32, 128, 512, 2048, 6144)),
}


def main() -> None:
    profile = "default"
    if "--quick" in sys.argv:
        profile = "quick"
    if "--paper-scale" in sys.argv:
        profile = "paper-scale"
    p = PROFILES[profile]
    window, leaves, runs = p["window"], p["leaves"], p["runs"]
    print(f"profile: {profile} (|W|={window}, {leaves} leaves, "
          f"{runs} run(s) per configuration)\n")

    def stage(name, fn):
        start = time.time()
        result = fn()
        print(result.format_table())
        print(f"[{name} took {time.time() - start:.0f}s]\n")
        return result

    stage("figure 5", lambda: figure5())
    stage("figure 6", lambda: figure6())
    stage("figure 7", lambda: figure7(
        window_size=window, n_leaves=leaves, n_runs=runs))
    stage("figure 8", lambda: figure8(
        window_size=window, n_leaves=leaves, n_runs=runs))
    stage("figure 9", lambda: figure9(
        window_size=window, n_leaves=leaves, n_runs=runs))
    stage("figure 10", lambda: figure10(
        window_size=window, n_leaves=min(leaves, 15), n_runs=runs))
    stage("figure 11", lambda: figure11(leaf_counts=p["fig11_leaves"]))
    stage("memory (Sec 10.3)", lambda: memory_experiment())
    stage("selectivity (Sec 9)", lambda: selectivity_experiment())


if __name__ == "__main__":
    main()
