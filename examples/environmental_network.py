"""Environmental sensing: 2-d MGDD plus faulty-sensor detection.

Sensors across one region stream (pressure, dew-point) pairs, as in the
paper's Pacific-Northwest dataset.  Co-located sensors observe the same
weather plus their own measurement noise.  MGDD distributes a *global*
density model to every leaf so each sensor judges its readings against
the whole region's distribution; we inject a short anomalous excursion
at one sensor and watch it get flagged.  On top of per-node local
models, a leader then runs the Section 9 faulty-sensor check (pairwise
Jensen-Shannon divergence between children) against a sensor with a
drifted calibration offset.

Run:  python examples/environmental_network.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    KernelDensityEstimator,
    MDEFSpec,
    MGDDConfig,
    NetworkSimulator,
    build_hierarchy,
    build_mgdd_network,
)
from repro.apps import FaultySensorMonitor
from repro.data import StreamSet, make_environment_stream

N_SENSORS = 16
N_TICKS = 3_000
WINDOW = 1_200
ANOMALY_SENSOR, ANOMALY_TICKS = 2, range(2_400, 2_420)
OFFSET_SENSOR = 5


def main() -> None:
    rng = np.random.default_rng(21)

    # One regional weather signal; each sensor adds measurement noise.
    regional = make_environment_stream(N_TICKS, rng=rng)
    arrays = [np.clip(regional + rng.normal(0, 0.004, regional.shape), 0, 1)
              for _ in range(N_SENSORS)]
    # Sensor 5: drifted pressure calibration (the faulty-sensor target).
    arrays[OFFSET_SENSOR] = np.clip(
        arrays[OFFSET_SENSOR] + np.array([0.08, 0.0]), 0.0, 1.0)
    # Sensor 2: a short anomalous excursion away from the data band.
    for tick in ANOMALY_TICKS:
        arrays[ANOMALY_SENSOR][tick] += np.array([0.06, 0.06])
    streams = StreamSet.from_arrays(arrays)

    hierarchy = build_hierarchy(N_SENSORS, branching=4)
    # On 2-d "band" data (pressure and dew-point are correlated) the
    # cell populations inside any sampling neighbourhood vary a lot, so
    # sigma_MDEF sits near 0.4 even with exact counts and the paper's
    # k_sigma = 3 can never fire (MDEF <= 1).  k_sigma = 2 with the
    # min_mdef floor keeps the cutoff meaningful for this shape of data.
    config = MGDDConfig(
        spec=MDEFSpec(sampling_radius=0.08, counting_radius=0.01,
                      k_sigma=2.0, min_mdef=0.9),
        window_size=WINDOW, sample_size=WINDOW // 5,
        sample_fraction=0.5, warmup=WINDOW)
    network = build_mgdd_network(hierarchy, config, n_dims=2,
                                 rng=np.random.default_rng(22))
    simulator = NetworkSimulator(hierarchy, network.nodes, streams)
    simulator.run()

    anomaly_hits = sum(1 for d in network.log.detections
                       if d.origin == ANOMALY_SENSOR
                       and d.tick in ANOMALY_TICKS)
    from_offset = sum(1 for d in network.log.detections
                      if d.origin == OFFSET_SENSOR)
    elsewhere = len(network.log) - anomaly_hits - from_offset
    print(f"sensors                 : {N_SENSORS} (2-d readings)")
    print(f"MGDD detections (leaves): {len(network.log)}")
    print(f"  on the injected excursion : {anomaly_hits}/{len(ANOMALY_TICKS)}")
    print(f"  from the drifted sensor {OFFSET_SENSOR} : {from_offset} "
          "(its readings really are global outliers)")
    print(f"  elsewhere                 : {elsewhere}")
    print(f"model updates flooded   : {network.root.updates_sent}")
    print(f"message volume          : {simulator.counter.counts}")

    # Section 9 faulty-sensor check at the leader of sensors 4..7.
    leader = hierarchy.parent_of(OFFSET_SENSOR)
    children = hierarchy.children_of(leader)
    models = {}
    for child in children:
        state = network.nodes[child].state
        models[child] = KernelDensityEstimator(
            state.sample.values(), stddev=state.sketch.std(),
            window_size=WINDOW)
    monitor = FaultySensorMonitor(threshold=0.3, grid_size=32)
    divergences = monitor.divergences(models)
    print(f"\nper-child JS divergence from siblings (leader {leader}, "
          f"children {children}):")
    for child, value in sorted(divergences.items()):
        marker = "  <-- flagged" if value > monitor.threshold else ""
        print(f"  sensor {child}: {value:.3f}{marker}")
    flagged = [report.sensor for report in monitor.check(models)]
    print(f"\nfaulty sensors reported : {flagged} "
          f"(expected: [{OFFSET_SENSOR}])")


if __name__ == "__main__":
    main()
