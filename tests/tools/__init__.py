"""Tests for the repository's own tooling (repro-lint)."""
