"""Known-bad for RL010: non-portable fields inside shard-state."""

from __future__ import annotations

import threading

from shardpkg import obs


class _Inner:
    """Not itself marked -- the unsafety must be found transitively."""

    def __init__(self) -> None:
        self._lock = threading.Lock()


# repro-lint: shard-state
class BadState:
    def __init__(self, path: str) -> None:
        self._lock = threading.Lock()
        self._sink = open(path, "w")
        self._hook = lambda x: x
        self._tracer = obs.tracer()
        self._inner = _Inner()

    def snapshot_state(self) -> "dict[str, object]":
        return {"path": self._sink.name}

    @classmethod
    def restore_state(cls, state: "dict[str, object]") -> "BadState":
        return cls(str(state["path"]))
