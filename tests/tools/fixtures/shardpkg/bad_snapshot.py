"""Known-bad for RL013: shard-state without the snapshot protocol."""

from __future__ import annotations


# repro-lint: shard-state
class FrozenOut:
    """Implements neither side of the protocol: two findings."""

    def __init__(self, size: int) -> None:
        self._size = size


# repro-lint: shard-state
class HalfDone:
    """Snapshots out but cannot restore: one finding."""

    def __init__(self, size: int) -> None:
        self._size = size

    def snapshot_state(self) -> "dict[str, object]":
        return {"size": self._size}
