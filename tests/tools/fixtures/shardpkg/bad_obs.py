"""Known-bad for RL012: obs mutation on the instrumentation-off path."""

from __future__ import annotations

from shardpkg import obs


def process(value: float) -> float:
    obs.emit("sample.evict", value=value)
    return value * 2.0


def _helper(value: float) -> None:
    obs.metrics().counter("shard_values").inc(value)


def run(value: float) -> None:
    _helper(value)
