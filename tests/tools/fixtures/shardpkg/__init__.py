"""Known-bad / known-clean fixture package for the shard-safety passes.

Each module seeds exactly the violations its name says (asserted by
line number in ``tests/tools/test_shard_analysis.py``); ``clean.py``
must stay finding-free.  The ``fixtures`` directory is skipped when a
parent tree is scanned, so these deliberate violations never trip the
repository clean-tree gate.
"""
