"""Known-clean: every shard-safety pass must stay silent here."""

from __future__ import annotations

import numpy as np

from shardpkg import obs

WINDOW_SIZES = (8, 16, 32)


# repro-lint: shard-state
class CleanState:
    """Picklable per-shard state with a properly threaded rng."""

    def __init__(self, size: int, rng: np.random.Generator) -> None:
        self._size = size
        self._rng = rng
        self._values: "list[float]" = []

    def offer(self, value: float) -> None:
        self._values.append(value)
        if obs.ACTIVE:
            self._note(value)

    def _note(self, value: float) -> None:
        obs.emit("sample.evict", value=value)


def build_clean(seed: int) -> CleanState:
    rng = np.random.default_rng(seed)
    return CleanState(8, rng)
