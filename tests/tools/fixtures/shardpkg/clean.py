"""Known-clean: every shard-safety pass must stay silent here."""

from __future__ import annotations

import numpy as np

from shardpkg import obs

WINDOW_SIZES = (8, 16, 32)


# repro-lint: shard-state
class CleanState:
    """Picklable per-shard state with a properly threaded rng."""

    def __init__(self, size: int, rng: np.random.Generator) -> None:
        self._size = size
        self._rng = rng
        self._values: "list[float]" = []

    def offer(self, value: float) -> None:
        self._values.append(value)
        if obs.ACTIVE:
            self._note(value)

    def _note(self, value: float) -> None:
        obs.emit("sample.evict", value=value)

    def snapshot_state(self) -> "dict[str, object]":
        return {"size": self._size, "rng": self._rng,
                "values": list(self._values)}

    @classmethod
    def restore_state(cls, state: "dict[str, object]") -> "CleanState":
        restored = cls.__new__(cls)
        restored._size = state["size"]
        restored._rng = state["rng"]
        restored._values = list(state["values"])
        return restored


# repro-lint: shard-state
class CleanChild(CleanState):
    """Inherits the snapshot protocol -- RL013 must resolve the base."""


def build_clean(seed: int) -> CleanState:
    rng = np.random.default_rng(seed)
    return CleanState(8, rng)
