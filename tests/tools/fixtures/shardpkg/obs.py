"""Stand-in instrumentation module (mirrors the repro.obs surface).

Only the names the analyzer keys on matter; bodies are inert.  Modules
named ``obs`` are exempt from RL012 (they ARE the instrumentation), so
nothing here is ever flagged.
"""

from __future__ import annotations

from typing import Any

ACTIVE = False


def emit(kind: str, **fields: Any) -> None:
    del kind, fields


def tracer() -> Any:
    return None


def metrics() -> Any:
    return None


def enabled() -> bool:
    return ACTIVE
