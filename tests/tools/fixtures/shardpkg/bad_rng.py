"""Known-bad for RL011: an unseeded Generator threaded through a helper.

``np.random.Generator(np.random.PCG64())`` draws its seed from OS
entropy but is invisible to the per-call-site RL001; only the
interprocedural taint pass can connect it to the shard-state
constructor two hops away.
"""

from __future__ import annotations

import numpy as np


# repro-lint: shard-state
class RngState:
    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def snapshot_state(self) -> "dict[str, object]":
        return {"rng": self._rng}

    @classmethod
    def restore_state(cls, state: "dict[str, object]") -> "RngState":
        restored = cls.__new__(cls)
        restored._rng = state["rng"]
        return restored


def _build(rng: np.random.Generator) -> RngState:
    return RngState(rng)


def entry() -> RngState:
    rng = np.random.Generator(np.random.PCG64())
    return _build(rng)
