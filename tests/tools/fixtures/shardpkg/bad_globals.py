"""Known-bad for RL009: mutable module-level global state."""

from __future__ import annotations

REGISTRY = {"d3": 1}

_SEEN = set()

_next_id = 0


def take() -> int:
    global _next_id
    _next_id += 1
    return _next_id
