"""Deliberately unparsable: the engine must abort, not skip this file."""

def broken(:
    return 1
