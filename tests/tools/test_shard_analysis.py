"""Golden tests for the project-wide shard-safety passes (RL009-RL013).

The fixtures under ``tests/tools/fixtures/shardpkg`` form a tiny package
seeded with one known-bad file per interprocedural pass plus one file
that must stay silent.  The assertions here pin exact (rule, path, line)
triples so a regression in the index or any dataflow pass shows up as a
diff against the goldens rather than a silent pass.
"""

from __future__ import annotations

from pathlib import Path

from tools.repro_lint import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"
PKG_ROOT = "tests/tools/fixtures"


def _analyze():
    return analyze_paths(
        [FIXTURES / "shardpkg"], REPO_ROOT, package_roots=(PKG_ROOT,))


def _triples(result, rule=None):
    return sorted(
        (f.rule, Path(f.path).name, f.line)
        for f in result.findings
        if rule is None or f.rule == rule)


class TestGoldenFindings:
    def test_exact_finding_set(self):
        """Every seeded defect fires, nothing else does."""
        assert _triples(_analyze()) == [
            ("RL009", "bad_globals.py", 5),
            ("RL009", "bad_globals.py", 7),
            ("RL009", "bad_globals.py", 9),
            ("RL010", "bad_state.py", 20),
            ("RL010", "bad_state.py", 21),
            ("RL010", "bad_state.py", 22),
            ("RL010", "bad_state.py", 23),
            ("RL010", "bad_state.py", 24),
            ("RL011", "bad_rng.py", 30),
            ("RL012", "bad_obs.py", 9),
            ("RL012", "bad_obs.py", 14),
            ("RL013", "bad_snapshot.py", 7),
            ("RL013", "bad_snapshot.py", 7),
            ("RL013", "bad_snapshot.py", 15),
        ]

    def test_clean_module_is_silent(self):
        """Seeded rng, guarded obs and picklable fields produce nothing."""
        result = _analyze()
        assert not [f for f in result.findings if "clean.py" in f.path]

    def test_rl009_symbols_name_the_global(self):
        symbols = {f.symbol for f in _analyze().findings
                   if f.rule == "RL009"}
        assert symbols == {
            "shardpkg.bad_globals.REGISTRY",
            "shardpkg.bad_globals._SEEN",
            "shardpkg.bad_globals._next_id",
        }

    def test_rl010_reports_transitive_chain(self):
        """The unsafety inside the unmarked _Inner helper is attributed
        to the marked class through the field chain."""
        transitive = [f for f in _analyze().findings
                      if f.rule == "RL010" and f.line == 24]
        assert len(transitive) == 1
        assert "_inner" in transitive[0].message
        assert "_lock" in transitive[0].message

    def test_rl011_fires_at_constructor_site_not_rng_creation(self):
        """The taint travels two hops: entry() -> _build() -> RngState().
        The finding lands where the generator enters shard state."""
        (finding,) = [f for f in _analyze().findings if f.rule == "RL011"]
        assert Path(finding.path).name == "bad_rng.py"
        assert finding.line == 30

    def test_rl012_interprocedural_helper(self):
        """_helper is flagged because run() calls it unguarded, even
        though _helper itself never mentions the guard."""
        lines = {f.line for f in _analyze().findings if f.rule == "RL012"}
        assert lines == {9, 14}

    def test_rl013_names_each_missing_protocol_method(self):
        """A class with neither method gets one finding per method; a
        half-implemented class is flagged only for the missing half."""
        symbols = sorted(f.symbol for f in _analyze().findings
                         if f.rule == "RL013")
        assert symbols == [
            "shardpkg.bad_snapshot.FrozenOut.restore_state",
            "shardpkg.bad_snapshot.FrozenOut.snapshot_state",
            "shardpkg.bad_snapshot.HalfDone.restore_state",
        ]

    def test_rl013_inherited_protocol_is_accepted(self):
        """CleanChild defines nothing itself; the protocol inherited
        from CleanState must satisfy the rule."""
        result = _analyze()
        assert "shardpkg.clean.CleanChild" in {
            cls.qualname for cls in result.index.shard_state_classes()}
        assert not [f for f in result.findings
                    if f.rule == "RL013" and "clean.py" in f.path]


class TestLiveTreeContracts:
    """The shard-safety contracts the analyzer certifies on src/repro."""

    def _src(self):
        return analyze_paths(["src"], REPO_ROOT)

    def test_src_has_no_shard_state_violations(self):
        """RL010-RL013 must be fixed, never baselined: all shard-state
        classes are picklable, seed-threaded, obs-pure and snapshot-
        capable."""
        result = self._src()
        bad = [f for f in result.findings
               if f.rule in ("RL010", "RL011", "RL012", "RL013")]
        assert bad == [], "\n".join(f.render() for f in bad)

    def test_src_snapshot_registry_covers_every_marked_class(self):
        """Every marked class in src/repro is registered with the
        snapshot codec, so checkpoints can decode all detector state."""
        from repro.engine.snapshot import REGISTERED_CLASSES
        registered = {cls.__name__ for cls in REGISTERED_CLASSES}
        marked = {cls.name for cls in self._src().index.shard_state_classes()}
        assert marked <= registered

    def test_src_rl009_is_exactly_the_baseline(self):
        """The process-local singletons are enumerated, not open-ended."""
        result = self._src()
        symbols = sorted(f.symbol for f in result.findings
                         if f.rule == "RL009")
        assert symbols == [
            "repro._rng._root_sequence",
            "repro._sanitize.ACTIVE",
            "repro.core.backend._ACTIVE",
            "repro.core.backend._CACHE",
            "repro.obs.ACTIVE",
            "repro.obs._metrics",
            "repro.obs._profiler",
            "repro.obs._tracer",
        ]

    def test_index_sees_the_marked_classes(self):
        """Spot-check that the shard-state markers in src/repro register
        with the phase-1 index (guards against marker-comment drift)."""
        result = self._src()
        marked = {cls.qualname for cls in result.index.shard_state_classes()}
        assert {
            "repro.streams.sampling.ChainSample",
            "repro.streams.sampling.ReservoirSample",
            "repro.streams.window.SlidingWindow",
            "repro.core.estimator.KernelDensityEstimator",
            "repro.detectors.single.OnlineOutlierDetector",
        } <= marked
