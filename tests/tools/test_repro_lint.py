"""The repro-lint rules: each must trigger on its target pattern and
stay quiet when the pattern is suppressed or legitimately absent."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.repro_lint import (
    LintFatalError,
    analyze_paths,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    main,
)
from tools.sarif_validate import validate_json_report, validate_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "tools" / "repro_lint" / "baseline.json"
BROKEN_FIXTURE = Path(__file__).parent / "fixtures" / "broken"


def rules_of(findings):
    return [f.rule for f in findings]


def lint(source: str, path: str = "src/repro/example.py"):
    return lint_source(textwrap.dedent(source), path)


# ---------------------------------------------------------------------------
# RL001 -- unseeded randomness
# ---------------------------------------------------------------------------

class TestRL001:
    def test_flags_unseeded_default_rng(self):
        findings = lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert rules_of(findings) == ["RL001"]

    def test_flags_legacy_module_level_sampler(self):
        findings = lint("""
            import numpy as np
            x = np.random.normal(0.0, 1.0)
        """)
        assert rules_of(findings) == ["RL001"]

    def test_seeded_generator_is_fine(self):
        assert lint("""
            import numpy as np
            rng = np.random.default_rng(42)
        """) == []

    def test_allowlisted_module_is_exempt(self):
        findings = lint("""
            import numpy as np
            rng = np.random.default_rng()
        """, path="src/repro/_rng.py")
        assert findings == []

    def test_line_suppression(self):
        findings = lint("""
            import numpy as np
            rng = np.random.default_rng()  # repro-lint: disable=RL001
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# RL002 -- float equality on probabilities
# ---------------------------------------------------------------------------

class TestRL002:
    def test_flags_probability_equality(self):
        findings = lint("""
            def f(prob: float) -> bool:
                return prob == 1.0
        """, path="tests/example_test.py")
        assert rules_of(findings) == ["RL002"]

    def test_flags_density_inequality(self):
        findings = lint("""
            def f(density: float) -> bool:
                return density != 0.5
        """, path="tests/example_test.py")
        assert rules_of(findings) == ["RL002"]

    def test_pytest_approx_is_tolerant(self):
        assert lint("""
            import pytest
            def f(prob: float) -> None:
                assert prob == pytest.approx(1.0)
        """, path="tests/example_test.py") == []

    def test_isclose_is_tolerant(self):
        assert lint("""
            import numpy as np
            def f(prob: float, other: float) -> None:
                assert np.isclose(prob, other) == True  # noqa: E712
        """, path="tests/example_test.py") == []

    def test_string_comparison_not_flagged(self):
        assert lint("""
            def f(pdf_kind: str) -> bool:
                return pdf_kind == "epanechnikov"
        """, path="tests/example_test.py") == []

    def test_ordering_comparisons_not_flagged(self):
        assert lint("""
            def f(prob: float) -> bool:
                return prob > 0.5
        """, path="tests/example_test.py") == []

    def test_line_suppression(self):
        assert lint("""
            def f(prob: float) -> bool:
                return prob == 0.0  # repro-lint: disable=RL002
        """, path="tests/example_test.py") == []


# ---------------------------------------------------------------------------
# RL003 -- complete annotations on the public src/repro surface
# ---------------------------------------------------------------------------

class TestRL003:
    def test_flags_missing_parameter_annotation(self):
        findings = lint("""
            def estimate(values, grid_size: int = 16) -> float:
                return 0.0
        """)
        assert rules_of(findings) == ["RL003"]
        assert "values" in findings[0].message

    def test_flags_missing_return_annotation(self):
        findings = lint("""
            def estimate(values: list):
                return 0.0
        """)
        assert rules_of(findings) == ["RL003"]

    def test_fully_annotated_passes(self):
        assert lint("""
            def estimate(values: list, grid_size: int = 16) -> float:
                return 0.0
        """) == []

    def test_private_functions_exempt(self):
        assert lint("""
            def _helper(values):
                return 0.0
        """) == []

    def test_init_self_exempt_but_params_required(self):
        findings = lint("""
            class Model:
                def __init__(self, window) -> None:
                    self.window = window
        """)
        assert rules_of(findings) == ["RL003"]
        assert "window" in findings[0].message

    def test_only_applies_inside_src(self):
        assert lint("""
            def estimate(values):
                return 0.0
        """, path="tests/example_test.py") == []

    def test_file_level_suppression(self):
        assert lint("""
            # repro-lint: disable-file=RL003
            def estimate(values):
                return 0.0
        """) == []


# ---------------------------------------------------------------------------
# RL004 -- mutation hazards
# ---------------------------------------------------------------------------

class TestRL004:
    def test_flags_mutable_default_argument(self):
        findings = lint("""
            def collect(into=[]):
                return into
        """, path="tests/example_test.py")
        assert rules_of(findings) == ["RL004"]

    def test_flags_mutable_call_default(self):
        findings = lint("""
            def collect(into=dict()):
                return into
        """, path="tests/example_test.py")
        assert rules_of(findings) == ["RL004"]

    def test_flags_frozen_dataclass_mutation(self):
        findings = lint("""
            def tweak(spec):
                object.__setattr__(spec, "k_sigma", 5.0)
        """, path="tests/example_test.py")
        assert rules_of(findings) == ["RL004"]

    def test_post_init_setattr_is_the_sanctioned_idiom(self):
        assert lint("""
            class Spec:
                def __post_init__(self):
                    object.__setattr__(self, "alpha", 0.125)
        """, path="tests/example_test.py") == []

    def test_none_default_passes(self):
        assert lint("""
            def collect(into=None):
                return [] if into is None else into
        """, path="tests/example_test.py") == []

    def test_line_suppression(self):
        assert lint("""
            def tweak(spec):
                object.__setattr__(spec, "x", 1)  # repro-lint: disable=RL004
        """, path="tests/example_test.py") == []


# ---------------------------------------------------------------------------
# RL005 -- batched APIs must not loop over their scalar counterpart
# ---------------------------------------------------------------------------

class TestRL005:
    def test_flags_scalar_loop_in_batch_method(self):
        findings = lint("""
            class Sample:
                def offer(self, value: float) -> bool:
                    return True

                def offer_many(self, values: list) -> list:
                    out = []
                    for value in values:
                        out.append(self.offer(value))
                    return out
        """, path="tests/example_test.py")
        assert rules_of(findings) == ["RL005"]

    def test_flags_comprehension_over_scalar(self):
        findings = lint("""
            class Sample:
                def insert(self, value: float) -> None:
                    pass

                def insert_many(self, values: list) -> None:
                    _ = [self.insert(v) for v in values]
        """, path="tests/example_test.py")
        assert rules_of(findings) == ["RL005"]

    def test_vectorised_batch_passes(self):
        assert lint("""
            class Sample:
                def offer(self, value: float) -> bool:
                    return True

                def offer_many(self, values: list) -> list:
                    return [True] * len(values)
        """, path="tests/example_test.py") == []

    def test_scalar_call_outside_loop_passes(self):
        assert lint("""
            class Sample:
                def offer(self, value: float) -> bool:
                    return True

                def offer_many(self, values: list) -> bool:
                    return self.offer(values[0])
        """, path="tests/example_test.py") == []

    def test_line_suppression(self):
        assert lint("""
            class Sample:
                def offer(self, value: float) -> bool:
                    return True

                def offer_many(self, values: list) -> list:
                    return [self.offer(v) for v in values]  # repro-lint: disable=RL005
        """, path="tests/example_test.py") == []


# ---------------------------------------------------------------------------
# RL006 -- bare print() in library code
# ---------------------------------------------------------------------------

class TestRL006:
    def test_flags_bare_print_in_library_code(self):
        findings = lint("""
            def report(value: float) -> None:
                print(value)
        """)
        assert rules_of(findings) == ["RL006"]

    def test_cli_module_is_exempt(self):
        assert lint("""
            def report(value: float) -> None:
                print(value)
        """, path="src/repro/cli.py") == []

    def test_main_module_is_exempt(self):
        assert lint("""
            def report(value: float) -> None:
                print(value)
        """, path="src/repro/__main__.py") == []

    def test_tests_and_tools_are_out_of_scope(self):
        assert lint("""
            def report(value: float) -> None:
                print(value)
        """, path="tests/example_test.py") == []

    def test_method_named_print_passes(self):
        assert lint("""
            class Reporter:
                def emit(self) -> None:
                    self.print()

                def print(self) -> None:
                    pass
        """) == []

    def test_line_suppression(self):
        assert lint("""
            def report(value: float) -> None:
                print(value)  # repro-lint: disable=RL006
        """) == []


# ---------------------------------------------------------------------------
# RL007 -- trace event kinds must be declared in the schema
# ---------------------------------------------------------------------------

class TestRL007:
    def test_flags_undeclared_kind(self):
        findings = lint("""
            from repro import obs

            def f() -> None:
                obs.emit("sample.evictt", count=1)
        """)
        assert rules_of(findings) == ["RL007"]
        assert "sample.evictt" in findings[0].message

    def test_declared_kind_passes(self):
        assert lint("""
            from repro import obs

            def f() -> None:
                obs.emit("sample.evict", count=1)
        """) == []

    def test_tracer_receiver_also_checked(self):
        findings = lint("""
            def f(tracer) -> None:
                tracer.emit("not.a.kind")
        """, path="tests/example_test.py")
        assert rules_of(findings) == ["RL007"]

    def test_tracer_accessor_call_checked(self):
        findings = lint("""
            from repro import obs

            def f() -> None:
                obs.tracer().emit("not.a.kind")
        """, path="tests/example_test.py")
        assert rules_of(findings) == ["RL007"]

    def test_non_literal_kind_flagged_in_src(self):
        findings = lint("""
            from repro import obs

            def f(kind: str) -> None:
                obs.emit(kind, count=1)
        """)
        assert rules_of(findings) == ["RL007"]

    def test_non_literal_kind_allowed_in_tests(self):
        # Test helpers forwarding a variable kind are legitimate.
        assert lint("""
            from repro import obs

            def _emit(kind, **fields):
                return obs.tracer().emit(kind, **fields)
        """, path="tests/example_test.py") == []

    def test_forwarding_shim_is_exempt(self):
        assert lint("""
            def emit(event: str, **fields: object) -> None:
                _tracer.emit(event, **fields)
        """, path="src/repro/obs/__init__.py") == []

    def test_unrelated_emit_method_not_flagged(self):
        assert lint("""
            def f(beacon) -> None:
                beacon.emit("anything-goes")
        """, path="tests/example_test.py") == []

    def test_line_suppression(self):
        assert lint("""
            from repro import obs

            def f() -> None:
                obs.emit("experimental.kind")  # repro-lint: disable=RL007
        """) == []


# ---------------------------------------------------------------------------
# RL008 -- per-element loops over sample/centre arrays in hot paths
# ---------------------------------------------------------------------------

class TestRL008:
    def test_flags_direct_loop_over_sample(self):
        findings = lint("""
            def total(sample: "np.ndarray") -> float:
                acc = 0.0
                for value in sample:
                    acc += value
                return acc
        """, path="src/repro/core/example.py")
        assert rules_of(findings) == ["RL008"]

    def test_flags_range_len_loop(self):
        findings = lint("""
            def scan(centers: "np.ndarray") -> None:
                for i in range(len(centers)):
                    pass
        """, path="src/repro/streams/example.py")
        assert rules_of(findings) == ["RL008"]

    def test_flags_enumerate_and_shape_zero(self):
        findings = lint("""
            def walk(queries: "np.ndarray", values: "np.ndarray") -> None:
                for i, q in enumerate(queries):
                    pass
                for i in range(values.shape[0]):
                    pass
        """, path="src/repro/core/example.py")
        assert rules_of(findings) == ["RL008", "RL008"]

    def test_flags_comprehension_over_points(self):
        findings = lint("""
            def squares(points: "np.ndarray") -> "list[float]":
                return [p * p for p in points]
        """, path="src/repro/core/example.py")
        assert rules_of(findings) == ["RL008"]

    def test_dimension_loop_passes(self):
        # Iterating the (few) columns of an (n, d) array is not a
        # per-element loop: shape[1] walks dimensions, not readings.
        assert lint("""
            def per_dim(points: "np.ndarray") -> None:
                for j in range(points.shape[1]):
                    pass
        """, path="src/repro/streams/example.py") == []

    def test_unrelated_names_pass(self):
        assert lint("""
            class Sample:
                def drain(self) -> None:
                    for chain in self._chains:
                        for i in range(0, 10, 2):
                            pass
        """, path="src/repro/streams/example.py") == []

    def test_outside_hot_dirs_passes(self):
        assert lint("""
            def total(sample: "np.ndarray") -> float:
                acc = 0.0
                for value in sample:
                    acc += value
                return acc
        """, path="src/repro/eval/example.py") == []

    def test_line_suppression(self):
        assert lint("""
            def total(sample: "np.ndarray") -> float:
                acc = 0.0
                for value in sample:  # repro-lint: disable=RL008
                    acc += value
                return acc
        """, path="src/repro/core/example.py") == []


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------

class TestEngine:
    def test_syntax_error_reported_as_rl000(self):
        findings = lint_source("def broken(:\n", "src/repro/bad.py")
        assert rules_of(findings) == ["RL000"]

    def test_findings_render_path_line_col(self):
        findings = lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        rendered = findings[0].render()
        assert rendered.startswith("src/repro/example.py:")
        assert "RL001" in rendered

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005",
                        "RL006", "RL007", "RL008", "RL009", "RL010",
                        "RL011", "RL012"):
            assert rule_id in out
        assert "project" in out

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        assert main([str(clean), "--root", str(tmp_path)]) == 0
        assert main([str(dirty), "--root", str(tmp_path)]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_unparsable_file_is_fatal_not_skipped(self):
        """Satellite regression: a syntax error aborts the whole run
        (exit 2, file and line named) instead of silently dropping the
        file from analysis."""
        with pytest.raises(LintFatalError, match=r"bad_syntax\.py:3"):
            lint_paths([BROKEN_FIXTURE], REPO_ROOT)
        assert main([str(BROKEN_FIXTURE), "--root", str(REPO_ROOT)]) == 2

    def test_unreadable_path_does_not_crash_discovery(self, tmp_path):
        missing = tmp_path / "not_there"
        assert lint_paths([missing], tmp_path) == []


class TestSuppressionAccounting:
    def test_unused_line_suppression_reported(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # repro-lint: disable=RL001\n")
        result = analyze_paths([target], tmp_path)
        assert result.unused_suppressions == [("mod.py", 1, "RL001")]

    def test_used_suppression_not_reported(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=RL001\n")
        result = analyze_paths([target], tmp_path)
        assert result.findings == []
        assert result.unused_suppressions == []
        assert [f.rule for f in result.suppressed] == ["RL001"]

    def test_unused_file_level_suppression_reported(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("# repro-lint: disable-file=RL006\nx = 1\n")
        result = analyze_paths([target], tmp_path)
        assert result.unused_suppressions == [("mod.py", 1, "RL006")]

    def test_warn_flag_fails_the_run(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # repro-lint: disable=RL001\n")
        assert main([str(target), "--root", str(tmp_path)]) == 0
        assert main([str(target), "--root", str(tmp_path),
                     "--warn-unused-suppressions"]) == 1
        assert "unused suppression" in capsys.readouterr().err


class TestBaselineRatchet:
    DIRTY = "import numpy as np\nrng = np.random.default_rng()\n"

    def _baseline(self, tmp_path, entries):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": entries}))
        return path

    def test_baselined_finding_does_not_fail(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        baseline = self._baseline(tmp_path, [{
            "rule": "RL001", "path": "mod.py", "symbol": None,
            "justification": "known pre-existing finding"}])
        assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path),
                     "--baseline", str(baseline)]) == 0

    def test_new_finding_still_fails(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        baseline = self._baseline(tmp_path, [])
        assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path),
                     "--baseline", str(baseline)]) == 1

    def test_stale_entry_fails_the_ratchet(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        baseline = self._baseline(tmp_path, [{
            "rule": "RL001", "path": "mod.py", "symbol": None,
            "justification": "the finding this excused is gone"}])
        assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path),
                     "--baseline", str(baseline)]) == 1
        assert "stale" in capsys.readouterr().out

    def test_unjustified_entry_is_fatal(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        baseline = self._baseline(tmp_path, [{
            "rule": "RL001", "path": "mod.py", "symbol": None,
            "justification": ""}])
        assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path),
                     "--baseline", str(baseline)]) == 2

    def test_update_baseline_stamps_todo(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path),
                     "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        written = json.loads(baseline.read_text())
        assert written["entries"][0]["rule"] == "RL001"
        assert written["entries"][0]["justification"].startswith("TODO")
        # The TODO placeholder is rejected until a human justifies it.
        assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path),
                     "--baseline", str(baseline)]) == 2

    def test_update_preserves_existing_justifications(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        baseline = self._baseline(tmp_path, [{
            "rule": "RL001", "path": "mod.py", "symbol": None,
            "justification": "a human wrote this sentence"}])
        assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path),
                     "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        written = json.loads(baseline.read_text())
        assert written["entries"][0]["justification"] == \
            "a human wrote this sentence"


class TestMachineFormats:
    DIRTY = "import numpy as np\nrng = np.random.default_rng()\n"

    def test_json_report_validates(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        out = tmp_path / "report.json"
        assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path),
                     "--format", "json", "--output", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert validate_json_report(doc) == []
        assert doc["summary"]["new"] == 1
        assert doc["findings"][0]["rule"] == "RL001"

    def test_sarif_report_validates(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        out = tmp_path / "report.sarif"
        assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path),
                     "--format", "sarif", "--output", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert validate_sarif(doc) == []
        run = doc["runs"][0]
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= {
            "RL001", "RL009", "RL010", "RL011", "RL012"}
        assert run["results"][0]["ruleId"] == "RL001"
        assert run["results"][0]["baselineState"] == "new"

    def test_sarif_baselined_findings_are_notes(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"version": 1, "entries": [{
            "rule": "RL001", "path": "mod.py", "symbol": None,
            "justification": "accepted"}]}))
        out = tmp_path / "report.sarif"
        assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path),
                     "--format", "sarif", "--output", str(out),
                     "--baseline", str(baseline)]) == 0
        result = json.loads(out.read_text())["runs"][0]["results"][0]
        assert result["level"] == "note"
        assert result["baselineState"] == "unchanged"

    def test_validator_rejects_malformed_sarif(self):
        assert validate_sarif({"version": "9.9", "runs": []})
        assert validate_sarif([]) == ["$: document must be a JSON object"]


class TestLiveTree:
    def test_repository_is_lint_clean_modulo_baseline(self):
        """The enforced acceptance gate: src, tests and benchmarks carry
        no findings beyond the committed, justified baseline -- and the
        baseline itself carries no stale entries (the ratchet)."""
        result = analyze_paths(["src", "tests", "benchmarks"], REPO_ROOT)
        entries = load_baseline(BASELINE)
        match = apply_baseline(result.findings, entries)
        assert match.new == [], "\n".join(f.render() for f in match.new)
        assert match.stale == [], [e.key() for e in match.stale]

    def test_baseline_is_rl009_only_and_justified(self):
        """RL010-RL012 must be *fixed* in the tree, not baselined; only
        the by-design process-local RL009 singletons are accepted."""
        entries = load_baseline(BASELINE)
        assert entries, "baseline unexpectedly empty"
        assert {e.rule for e in entries} == {"RL009"}
        for entry in entries:
            assert len(entry.justification) > 40, entry.key()

    def test_no_stale_suppressions_in_tree(self):
        result = analyze_paths(["src", "tests", "benchmarks"], REPO_ROOT)
        assert result.unused_suppressions == []
