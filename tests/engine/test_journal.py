"""Input journal: durable appends, torn-tail recovery, clipped replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import SnapshotError
from repro.engine.journal import Journal


def batch(start: int, m: int) -> np.ndarray:
    return np.arange(start, start + m, dtype=float)[:, None, None]


class TestAppendAndRead:
    def test_records_round_trip_in_order(self, tmp_path):
        journal = Journal(tmp_path / "j.wal")
        journal.append(0, batch(0, 4))
        journal.append(4, batch(4, 2))
        records = journal.records()
        assert [(t, b.shape[0]) for t, b in records] == [(0, 4), (4, 2)]
        assert np.array_equal(records[1][1], batch(4, 2))
        assert journal.n_torn == 0

    def test_missing_file_reads_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.wal").records() == []

    def test_close_then_append_reopens(self, tmp_path):
        journal = Journal(tmp_path / "j.wal")
        journal.append(0, batch(0, 1))
        journal.close()
        journal.append(1, batch(1, 1))
        assert len(journal.records()) == 2


class TestTornTail:
    def test_truncated_tail_record_is_skipped(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = Journal(path)
        journal.append(0, batch(0, 3))
        journal.append(3, batch(3, 3))
        journal.close()
        data = path.read_bytes()
        # Tear the last record mid-payload: the crash the WAL tolerates.
        path.write_bytes(data[:-7])
        records = journal.records()
        assert [(t, b.shape[0]) for t, b in records] == [(0, 3)]
        assert journal.n_torn == 1

    def test_tail_shorter_than_frame_header_is_skipped(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = Journal(path)
        journal.append(0, batch(0, 2))
        journal.close()
        path.write_bytes(path.read_bytes() + b"\x00\x01\x02")
        assert len(journal.records()) == 1
        assert journal.n_torn == 1

    def test_interior_corruption_is_fatal(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = Journal(path)
        journal.append(0, batch(0, 3))
        journal.append(3, batch(3, 3))
        journal.close()
        data = bytearray(path.read_bytes())
        data[12] ^= 0xFF    # flip a byte inside the first payload
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="interior"):
            journal.records()

    def test_append_after_torn_tail_recovers_new_records(self, tmp_path):
        # A crashed writer leaves a torn tail; the recovered process
        # truncates via replay bookkeeping and keeps appending.  New
        # records after the tear are unreadable (the tear shifts the
        # frame boundary), which is why recovery rewrites the file:
        # truncate_before(0) drops nothing but re-frames what is valid.
        path = tmp_path / "j.wal"
        journal = Journal(path)
        journal.append(0, batch(0, 3))
        journal.close()
        path.write_bytes(path.read_bytes()[:-2])
        assert journal.records() == []
        assert journal.n_torn == 1
        assert journal.truncate_before(0) == 0


class TestReplayAndTruncate:
    def _journal(self, tmp_path) -> Journal:
        journal = Journal(tmp_path / "j.wal")
        journal.append(0, batch(0, 4))    # ticks 0..3
        journal.append(4, batch(4, 4))    # ticks 4..7
        journal.append(8, batch(8, 2))    # ticks 8..9
        return journal

    def test_replay_from_zero_returns_everything(self, tmp_path):
        replay = self._journal(tmp_path).replay_from(0)
        assert [(t, b.shape[0]) for t, b in replay] == \
            [(0, 4), (4, 4), (8, 2)]

    def test_replay_clips_straddling_record(self, tmp_path):
        replay = self._journal(tmp_path).replay_from(6)
        assert [(t, b.shape[0]) for t, b in replay] == [(6, 2), (8, 2)]
        assert replay[0][1][0, 0, 0] == 6.0

    def test_replay_from_record_boundary_is_exact(self, tmp_path):
        replay = self._journal(tmp_path).replay_from(4)
        assert [(t, b.shape[0]) for t, b in replay] == [(4, 4), (8, 2)]

    def test_replay_past_the_end_is_empty(self, tmp_path):
        assert self._journal(tmp_path).replay_from(10) == []

    def test_truncate_drops_only_wholly_covered_records(self, tmp_path):
        journal = self._journal(tmp_path)
        # Tick 6 straddles the second record: it must be kept whole.
        assert journal.truncate_before(6) == 2
        assert [(t, b.shape[0]) for t, b in journal.records()] == \
            [(4, 4), (8, 2)]
        # replay_from still clips the kept straddler at read time.
        replay = journal.replay_from(6)
        assert [(t, b.shape[0]) for t, b in replay] == [(6, 2), (8, 2)]

    def test_truncate_survives_reads_after_rewrite(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.truncate_before(4)
        journal.append(10, batch(10, 1))
        assert [(t, b.shape[0]) for t, b in journal.records()] == \
            [(4, 4), (8, 2), (10, 1)]
