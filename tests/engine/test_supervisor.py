"""Supervised engine: kill-and-restore equivalence, watchdog, exhaustion.

The acceptance criterion of the recovery subsystem: for any crash
schedule, the supervised run's detection matrix is ``np.array_equal``
to an uninterrupted run of an identically seeded engine -- crashes cost
recovery time, never detections.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError, RecoveryError
from repro.core.mdef import MDEFSpec
from repro.core.outliers import DistanceOutlierSpec
from repro.engine.core import DetectorEngine
from repro.engine.snapshot import encode_snapshot
from repro.engine.supervisor import SupervisedEngine
from repro.network.faults import EngineCrash, FaultPlan

SPECS = {
    "d3": DistanceOutlierSpec(radius=0.5, count_threshold=3),
    "mgdd": MDEFSpec(sampling_radius=1.0, counting_radius=0.25),
}


def make_engine(spec, seed: int = 7) -> DetectorEngine:
    return DetectorEngine(3, spec, window_size=40, sample_size=16,
                          warmup=10, model_refresh=8,
                          rng=np.random.default_rng(seed))


def workload(n_ticks: int, n_streams: int = 3,
             seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n_ticks, n_streams))
    data[::23] += 7.0
    return data


def run_batched(engine, data, batch_size: int = 32) -> np.ndarray:
    out = [engine.ingest(data[i:i + batch_size])
           for i in range(0, data.shape[0], batch_size)]
    return np.concatenate(out, axis=0)


class TestConstruction:
    def test_genesis_checkpoint_written(self, tmp_path):
        sup = SupervisedEngine(make_engine(SPECS["d3"]), tmp_path)
        assert sup.store.ticks() == [0]
        assert sup.tick == 0
        assert not sup.backpressure
        sup.close()

    def test_parameter_validation(self, tmp_path):
        engine = make_engine(SPECS["d3"])
        with pytest.raises(ParameterError):
            SupervisedEngine(engine, tmp_path, checkpoint_every=0)
        with pytest.raises(ParameterError):
            SupervisedEngine(engine, tmp_path, max_restarts=0)
        with pytest.raises(ParameterError):
            SupervisedEngine(engine, tmp_path, watchdog_timeout_s=0.0)


class TestKillAndRestore:
    @pytest.mark.parametrize("algorithm", sorted(SPECS))
    def test_detections_equal_uninterrupted_run(self, tmp_path, algorithm):
        spec = SPECS[algorithm]
        data = workload(200)
        expected = run_batched(make_engine(spec), data)
        plan = FaultPlan(engine_crashes=[
            EngineCrash(tick=5),      # replay from genesis
            EngineCrash(tick=64),     # crash exactly on a boundary
            EngineCrash(tick=65),     # back-to-back with the previous
            EngineCrash(tick=150),
        ])
        sup = SupervisedEngine(make_engine(spec), tmp_path,
                               checkpoint_every=32, fault_plan=plan)
        observed = run_batched(sup, data)
        assert np.array_equal(expected, observed)
        assert sup.restarts == 4
        assert [r["crash_tick"] for r in sup.recoveries] == [5, 64, 65, 150]
        assert all(r["replayed_ticks"] ==
                   r["crash_tick"] - r["checkpoint_tick"]
                   for r in sup.recoveries)
        sup.close()

    def test_post_recovery_state_is_bit_identical(self, tmp_path):
        spec = SPECS["d3"]
        data = workload(96)
        control = make_engine(spec)
        run_batched(control, data)
        plan = FaultPlan(engine_crashes=[EngineCrash(tick=50)])
        sup = SupervisedEngine(make_engine(spec), tmp_path,
                               checkpoint_every=16, fault_plan=plan)
        run_batched(sup, data)
        assert encode_snapshot(control) == encode_snapshot(sup.engine)
        sup.close()

    def test_crash_can_name_an_older_checkpoint(self, tmp_path):
        spec = SPECS["d3"]
        data = workload(80)
        expected = run_batched(make_engine(spec), data)
        plan = FaultPlan(engine_crashes=[
            EngineCrash(tick=70, checkpoint=16)])
        sup = SupervisedEngine(make_engine(spec), tmp_path,
                               checkpoint_every=16, retain=8,
                               fault_plan=plan)
        observed = run_batched(sup, data)
        assert np.array_equal(expected, observed)
        (recovery,) = sup.recoveries
        assert recovery["checkpoint_tick"] == 16
        assert recovery["replayed_ticks"] == 54
        sup.close()

    def test_corrupt_newest_falls_back_to_older_generation(self, tmp_path):
        spec = SPECS["d3"]
        data = workload(80)
        expected = run_batched(make_engine(spec), data)
        plan = FaultPlan(engine_crashes=[EngineCrash(tick=50)])
        sup = SupervisedEngine(make_engine(spec), tmp_path,
                               checkpoint_every=16, retain=8,
                               fault_plan=plan)
        # Stop exactly on the 48 boundary, corrupt that newest
        # checkpoint, then crash at 50 -- still inside its cadence
        # interval, so recovery must fall back to generation 32.
        first = run_batched(sup, data[:48])
        assert sup.store.latest_tick() == 48
        newest = sup.store._path_for(48)
        blob = bytearray(newest.read_bytes())
        blob[-1] ^= 0xFF
        newest.write_bytes(bytes(blob))
        second = run_batched(sup, data[48:])
        assert np.array_equal(expected,
                              np.concatenate([first, second], axis=0))
        (recovery,) = sup.recoveries
        assert recovery["checkpoint_tick"] == 32
        assert recovery["replayed_ticks"] == 18
        sup.close()

    def test_exhausted_restarts_raise_recovery_error(self, tmp_path):
        plan = FaultPlan(engine_crashes=[EngineCrash(tick=40)])
        sup = SupervisedEngine(make_engine(SPECS["d3"]), tmp_path,
                               checkpoint_every=16, max_restarts=2,
                               fault_plan=plan)
        data = workload(48)
        run_batched(sup, data[:32])
        for tick in sup.store.ticks():
            path = sup.store._path_for(tick)
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
        with pytest.raises(RecoveryError, match="could not restore"):
            run_batched(sup, data[32:])
        sup.close()

    def test_journal_is_pruned_to_oldest_retained(self, tmp_path):
        sup = SupervisedEngine(make_engine(SPECS["d3"]), tmp_path,
                               checkpoint_every=8, retain=2)
        run_batched(sup, workload(64), batch_size=8)
        # Checkpoints land every 8 ticks; retain=2 keeps 56 and 64.
        assert sup.store.ticks() == [56, 64]
        oldest = sup.store.oldest_tick()
        assert oldest == 56
        for start_tick, batch in sup.journal.records():
            assert start_tick + batch.shape[0] > oldest
        sup.close()


class TestWatchdog:
    def test_fresh_heartbeat_is_quiet(self, tmp_path):
        sup = SupervisedEngine(make_engine(SPECS["d3"]), tmp_path)
        assert sup.heartbeat_age() < 5.0
        assert not sup.watchdog()
        assert sup.restarts == 0
        sup.close()

    def test_stale_heartbeat_forces_restore(self, tmp_path):
        spec = SPECS["d3"]
        data = workload(96)
        expected = run_batched(make_engine(spec), data)
        sup = SupervisedEngine(make_engine(spec), tmp_path,
                               checkpoint_every=16,
                               watchdog_timeout_s=1e-9)
        first = run_batched(sup, data[:48])
        assert sup.watchdog()     # hung engine: kill and restore
        assert sup.restarts == 1
        assert sup.tick == 48     # replay reached the exact hang tick
        second = run_batched(sup, data[48:])
        assert np.array_equal(expected,
                              np.concatenate([first, second], axis=0))
        sup.close()
