"""Snapshot codec: framed round-trips, property-tested bit identity.

The codec's contract is stronger than "restores without error": for
every registered class, snapshotting mid-stream and continuing on the
restored copy must be *bit-identical* to never having snapshotted.
Bit identity is asserted through :func:`encode_snapshot` itself -- two
objects whose encoded snapshots are byte-equal hold identical state,
including RNG positions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import SnapshotError
from repro.core.mdef import MDEFSpec
from repro.core.outliers import DistanceOutlierSpec
from repro.detectors.single import OnlineOutlierDetector
from repro.engine.snapshot import (
    REGISTERED_CLASSES,
    SNAPSHOT_MAGIC,
    SNAPSHOT_SCHEMA_VERSION,
    decode_snapshot,
    encode_snapshot,
    registered_class,
)
from repro.streams.sampling import ChainSample
from repro.streams.variance import EHVarianceSketch
from repro.streams.window import SlidingWindow

SPECS = {
    "d3": DistanceOutlierSpec(radius=0.5, count_threshold=3),
    "mgdd": MDEFSpec(sampling_radius=1.0, counting_radius=0.25),
}


def snap_equal(a, b) -> bool:
    """Byte-level state equality through the codec itself."""
    return encode_snapshot(a) == encode_snapshot(b)


class TestFraming:
    def test_round_trip_restores_equal_state(self):
        window = SlidingWindow(8)
        for value in np.arange(5.0):
            window.append(value)
        restored = decode_snapshot(encode_snapshot(window))
        assert isinstance(restored, SlidingWindow)
        assert snap_equal(window, restored)

    def test_header_fields(self):
        blob = encode_snapshot(SlidingWindow(4))
        assert blob[:4] == SNAPSHOT_MAGIC
        assert int.from_bytes(blob[4:6], "big") == SNAPSHOT_SCHEMA_VERSION

    def test_truncated_header_rejected(self):
        with pytest.raises(SnapshotError, match="truncated"):
            decode_snapshot(b"RS")

    def test_bad_magic_rejected(self):
        blob = bytearray(encode_snapshot(SlidingWindow(4)))
        blob[:4] = b"XXXX"
        with pytest.raises(SnapshotError, match="magic"):
            decode_snapshot(bytes(blob))

    def test_unknown_schema_version_rejected(self):
        blob = bytearray(encode_snapshot(SlidingWindow(4)))
        blob[4:6] = (SNAPSHOT_SCHEMA_VERSION + 1).to_bytes(2, "big")
        with pytest.raises(SnapshotError, match="version"):
            decode_snapshot(bytes(blob))

    def test_truncated_payload_rejected(self):
        blob = encode_snapshot(SlidingWindow(4))
        with pytest.raises(SnapshotError, match="payload truncated"):
            decode_snapshot(blob[:-3])

    def test_corrupt_payload_rejected(self):
        blob = bytearray(encode_snapshot(SlidingWindow(4)))
        blob[-1] ^= 0xFF
        with pytest.raises(SnapshotError, match="checksum"):
            decode_snapshot(bytes(blob))

    def test_unregistered_class_refused_on_encode(self):
        class Rogue:
            def snapshot_state(self):
                return {}

        with pytest.raises(SnapshotError, match="unregistered"):
            encode_snapshot(Rogue())

    def test_unregistered_name_refused_on_decode(self):
        with pytest.raises(SnapshotError, match="not registered"):
            registered_class("Rogue")

    def test_registry_names_are_unique(self):
        names = [cls.__name__ for cls in REGISTERED_CLASSES]
        assert len(names) == len(set(names))


class TestChainSampleRoundTrip:
    @given(seed=st.integers(0, 2**32 - 1),
           n=st.integers(1, 120), split=st.floats(0.0, 1.0),
           window=st.integers(2, 40), sample=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_mid_stream_checkpoint_is_invisible(self, seed, n, split,
                                                window, sample):
        """snapshot/restore at any offer boundary leaves the sample --
        including its RNG position -- bit-identical to an uninterrupted
        run over the same values."""
        data_rng = np.random.default_rng(seed)
        values = data_rng.normal(size=(n, 1))
        k = int(round(split * n))
        control = ChainSample(window, sample,
                              rng=np.random.default_rng(seed + 1))
        control.offer_many(values)
        subject = ChainSample(window, sample,
                              rng=np.random.default_rng(seed + 1))
        subject.offer_many(values[:k])
        subject = decode_snapshot(encode_snapshot(subject))
        subject.offer_many(values[k:])
        assert snap_equal(control, subject)
        assert np.array_equal(control.values(), subject.values())


class TestEHSketchRoundTrip:
    @given(seed=st.integers(0, 2**32 - 1),
           n=st.integers(1, 200), split=st.floats(0.0, 1.0),
           window=st.integers(4, 64))
    @settings(max_examples=40, deadline=None)
    def test_mid_stream_checkpoint_is_invisible(self, seed, n, split,
                                                window):
        data_rng = np.random.default_rng(seed)
        values = data_rng.normal(size=n)
        k = int(round(split * n))
        control = EHVarianceSketch(window)
        control.insert_many(values)
        subject = EHVarianceSketch(window)
        subject.insert_many(values[:k])
        subject = decode_snapshot(encode_snapshot(subject))
        subject.insert_many(values[k:])
        assert snap_equal(control, subject)
        if n >= 1:
            assert control.variance() == subject.variance()


class TestDetectorRoundTrip:
    @pytest.mark.parametrize("algorithm", sorted(SPECS))
    @given(seed=st.integers(0, 2**32 - 1),
           n=st.integers(1, 90), split=st.floats(0.0, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_mid_process_many_checkpoint_is_invisible(self, algorithm,
                                                      seed, n, split):
        """The ISSUE's hardest boundary: a checkpoint splitting one
        ``process_many`` call in two must not change a single decision
        or one bit of detector state."""
        spec = SPECS[algorithm]
        data_rng = np.random.default_rng(seed)
        values = data_rng.normal(size=(n, 1))
        values[::17] += 6.0   # guarantee some outliers past warm-up
        k = int(round(split * n))

        def build():
            return OnlineOutlierDetector(
                30, 12, spec, warmup=8, model_refresh=8,
                rng=np.random.default_rng(seed + 1))

        control = build()
        expected = control.process_many(values)
        subject = build()
        first = subject.process_many(values[:k])
        subject = decode_snapshot(encode_snapshot(subject))
        second = subject.process_many(values[k:])
        assert snap_equal(control, subject)
        flags = [d is not None and d.is_outlier for d in first + second]
        assert flags == [d is not None and d.is_outlier for d in expected]
