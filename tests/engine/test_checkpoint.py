"""Checkpoint store: generational retention, atomicity, load errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError, SnapshotError
from repro.core.outliers import DistanceOutlierSpec
from repro.engine.checkpoint import CheckpointStore
from repro.engine.core import DetectorEngine
from repro.engine.snapshot import encode_snapshot

SPEC = DistanceOutlierSpec(radius=0.5, count_threshold=3)


def make_engine(seed: int = 0) -> DetectorEngine:
    return DetectorEngine(2, SPEC, window_size=30, sample_size=10,
                          rng=np.random.default_rng(seed))


def advance(engine: DetectorEngine, m: int, seed: int = 9) -> None:
    rng = np.random.default_rng(seed + engine.tick)
    engine.ingest(rng.normal(size=(m, engine.n_streams)))


class TestStoreBasics:
    def test_empty_store(self, tmp_path):
        store = CheckpointStore(tmp_path / "chk")
        assert store.ticks() == []
        assert store.latest_tick() is None
        assert store.oldest_tick() is None

    def test_invalid_retain_rejected(self, tmp_path):
        with pytest.raises(ParameterError):
            CheckpointStore(tmp_path, retain=0)

    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "chk")
        engine = make_engine()
        advance(engine, 17)
        path, n_bytes = store.save(engine)
        assert path.exists() and n_bytes == path.stat().st_size
        restored = store.load()
        assert restored.tick == 17
        assert encode_snapshot(restored) == encode_snapshot(engine)

    def test_retain_prunes_oldest(self, tmp_path):
        store = CheckpointStore(tmp_path / "chk", retain=2)
        engine = make_engine()
        for _ in range(4):
            store.save(engine)
            advance(engine, 5)
        assert store.ticks() == [10, 15]
        assert store.oldest_tick() == 10
        assert store.latest_tick() == 15

    def test_load_picks_newest_by_default(self, tmp_path):
        store = CheckpointStore(tmp_path / "chk")
        engine = make_engine()
        store.save(engine)
        advance(engine, 8)
        store.save(engine)
        assert store.load().tick == 8
        assert store.load(0).tick == 0

    def test_load_missing_tick_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "chk")
        store.save(make_engine())
        with pytest.raises(SnapshotError, match="no checkpoint at tick 99"):
            store.load(99)

    def test_load_empty_store_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="empty"):
            CheckpointStore(tmp_path / "chk").load()

    def test_corrupt_checkpoint_raises_snapshot_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "chk")
        engine = make_engine()
        path, _ = store.save(engine)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum"):
            store.load()

    def test_foreign_snapshot_rejected(self, tmp_path):
        from repro.streams.window import SlidingWindow
        store = CheckpointStore(tmp_path / "chk")
        (tmp_path / "chk").mkdir()
        (tmp_path / "chk" / "chk_000000000003.snap").write_bytes(
            encode_snapshot(SlidingWindow(4)))
        with pytest.raises(SnapshotError, match="not a DetectorEngine"):
            store.load(3)
