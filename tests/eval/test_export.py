"""CSV export of experiment results."""

from __future__ import annotations

import csv

import pytest

from repro._exceptions import ParameterError
from repro.eval.experiments import figure5, figure11, memory_experiment
from repro.eval.export import export_result, export_rows


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestExportRows:
    def test_roundtrip(self, tmp_path):
        path = export_rows(tmp_path / "out.csv", ["a", "b"],
                           [[1, 2], [3, 4]])
        rows = read_csv(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_width_mismatch_rejected(self, tmp_path):
        with pytest.raises(ParameterError):
            export_rows(tmp_path / "out.csv", ["a"], [[1, 2]])


class TestExportResult:
    def test_figure5(self, tmp_path):
        result = figure5(n_engine=5_000, n_environment=5_000, seed=0)
        rows = read_csv(export_result(result, tmp_path / "fig5.csv"))
        assert rows[0][0] == "dataset"
        assert len(rows) == 1 + 2 * 3   # header + paper/ours per dataset

    def test_figure11(self, tmp_path):
        result = figure11(leaf_counts=(4,), window_size=64,
                          measure_ticks=16, seed=0)
        rows = read_csv(export_result(result, tmp_path / "fig11.csv"))
        assert rows[0][:2] == ["n_leaves", "n_nodes"]
        assert len(rows) == 2

    def test_memory(self, tmp_path):
        result = memory_experiment(window_sizes=(1_000,), n_values=3_000)
        rows = read_csv(export_result(result, tmp_path / "mem.csv"))
        assert rows[0][0] == "window_size"
        assert len(rows) == 2

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(ParameterError, match="don't know"):
            export_result(object(), tmp_path / "x.csv")


class TestExportMoreTypes:
    def test_figure6(self, tmp_path):
        from repro.eval.experiments import figure6
        result = figure6(window_size=128, sample_size=16, shift_every=256,
                         n_shifts=1, eval_every=64, seed=0)
        rows = read_csv(export_result(result, tmp_path / "fig6.csv"))
        assert rows[0][0] == "tick"
        assert rows[0][-1].startswith("parent_f_")
        assert len(rows) == 1 + len(result.ticks)

    def test_accuracy_sweep(self, tmp_path):
        from repro.eval.experiments import figure8
        result = figure8(window_size=300, n_leaves=4, fractions=(0.5,),
                         n_runs=1, seed=1)
        rows = read_csv(export_result(result, tmp_path / "sweep.csv"))
        assert rows[0][0] == "algorithm"
        assert rows[1][0] == "mgdd"
