"""Bench-regression tracking: summaries, history append, relative gates."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro._exceptions import ParameterError
from repro.eval.regression import (RegressionTolerances, append_history,
                                   check_history, history_path, load_history,
                                   summarize_benchmark)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _throughput_doc(*, single=6.0, network=2.5, sha="abc123", seed=0):
    return {
        "benchmark": "ingest-throughput",
        "meta": {"git_sha": sha, "seed": seed},
        "single_node": {"speedup": single,
                        "batched_readings_per_sec": 80_000.0},
        "network": {"speedup": network,
                    "batched_readings_per_sec": 50_000.0},
    }


def _resilience_doc(*, faultfree=1.0, faulted=0.9, sha="abc123", seed=7):
    return {
        "benchmark": "resilience",
        "meta": {"git_sha": sha, "seed": seed},
        "cells": [
            {"loss_rate": 0.0, "crash_fraction": 0.0, "recall": faultfree,
             "message_overhead": 1.0},
            {"loss_rate": 0.2, "crash_fraction": 0.1, "recall": faulted,
             "message_overhead": 1.2},
        ],
    }


def _throughput_entry(single, network):
    return {"benchmark": "ingest-throughput",
            "single_node_speedup": single, "network_speedup": network}


def _latency_doc(*, p99=6, n_flags=150, sha="abc123", seed=7):
    return {
        "benchmark": "latency",
        "meta": {"git_sha": sha, "seed": seed},
        "cells": [
            {"algorithm": "d3", "loss_rate": 0.0, "staleness_horizon": 30,
             "n_flags": n_flags, "latency_p50": 0, "latency_p99": 0,
             "latency_max": 0, "words_per_detection": 8.0,
             "recall_level1": 0.7},
            {"algorithm": "d3", "loss_rate": 0.25, "staleness_horizon": 30,
             "n_flags": n_flags, "latency_p50": 0, "latency_p99": p99,
             "latency_max": p99 + 2, "words_per_detection": 12.0,
             "recall_level1": 0.7},
        ],
    }


class TestSummarize:
    def test_throughput_summary(self):
        summary = summarize_benchmark(_throughput_doc())
        assert summary["single_node_speedup"] == 6.0
        assert summary["network_speedup"] == 2.5
        assert summary["meta"]["git_sha"] == "abc123"

    def test_resilience_summary(self):
        summary = summarize_benchmark(_resilience_doc())
        assert summary["min_faultfree_recall"] == 1.0
        assert summary["min_faulted_recall"] == 0.9
        assert summary["max_message_overhead"] == 1.2

    def test_latency_summary(self):
        summary = summarize_benchmark(_latency_doc())
        assert summary["latency_p99_max"] == 6
        assert summary["total_flags"] == 300
        assert summary["mean_words_per_detection"] == 10.0
        assert summary["min_recall_level1"] == 0.7

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError):
            summarize_benchmark({"benchmark": "mystery"})

    def test_committed_bench_documents_summarise(self):
        # The real BENCH_*.json artifacts must stay summarisable -- the
        # CI gate feeds them straight in.
        for name in ("BENCH_throughput.json", "BENCH_resilience.json"):
            doc = json.loads((REPO_ROOT / name).read_text())
            summary = summarize_benchmark(doc)
            assert summary["benchmark"] == doc["benchmark"]


class TestTolerances:
    @pytest.mark.parametrize("kwargs", [
        {"throughput_drop": 0.0},
        {"throughput_drop": 1.0},
        {"recall_cliff_drop": -0.1},
        {"min_faulted_recall": 1.5},
        {"latency_rise": 0.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ParameterError):
            RegressionTolerances(**kwargs)


class TestHistoryFiles:
    def test_append_and_load_round_trip(self, tmp_path):
        path, summary = append_history(_throughput_doc(), tmp_path)
        assert path == history_path("ingest-throughput", tmp_path)
        entries = load_history(path)
        assert entries == [summary]

    def test_duplicate_sha_seed_skipped(self, tmp_path):
        append_history(_throughput_doc(), tmp_path)
        append_history(_throughput_doc(), tmp_path)   # CI retry
        assert len(load_history(history_path("ingest-throughput",
                                             tmp_path))) == 1

    def test_unknown_sha_never_deduped(self, tmp_path):
        append_history(_throughput_doc(sha="unknown"), tmp_path)
        append_history(_throughput_doc(sha="unknown"), tmp_path)
        assert len(load_history(history_path("ingest-throughput",
                                             tmp_path))) == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "throughput.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ParameterError):
            load_history(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []

    def test_unknown_kind_has_no_path(self):
        with pytest.raises(ParameterError):
            history_path("mystery")


class TestGate:
    def test_fewer_than_two_entries_pass(self):
        assert check_history([]) == []
        assert check_history([_throughput_entry(6.0, 2.5)]) == []

    def test_synthetic_25pct_drop_fails(self):
        # The acceptance criterion: a -25% throughput entry must fail the
        # default 20% gate.
        entries = [_throughput_entry(6.0, 2.5),
                   _throughput_entry(6.0 * 0.75, 2.5 * 0.75)]
        problems = check_history(entries)
        assert len(problems) == 2
        assert "single_node_speedup" in problems[0]

    def test_small_drop_passes(self):
        entries = [_throughput_entry(6.0, 2.5),
                   _throughput_entry(6.0 * 0.9, 2.5 * 0.9)]
        assert check_history(entries) == []

    def test_gate_uses_median_of_priors(self):
        # One freak slow prior must not drag the baseline down.
        entries = [_throughput_entry(6.0, 2.5),
                   _throughput_entry(1.0, 1.0),
                   _throughput_entry(6.2, 2.6),
                   _throughput_entry(5.9, 2.4)]
        assert check_history(entries) == []

    def test_recall_cliff_fails(self):
        entries = [summarize_benchmark(_resilience_doc()),
                   summarize_benchmark(_resilience_doc(faulted=0.05,
                                                       sha="def456"))]
        problems = check_history(entries)
        assert any("cliff" in p for p in problems)

    def test_faultfree_recall_drop_fails(self):
        entries = [summarize_benchmark(_resilience_doc()),
                   summarize_benchmark(_resilience_doc(faultfree=0.5,
                                                       sha="def456"))]
        problems = check_history(entries)
        assert any("min_faultfree_recall" in p for p in problems)

    def test_latency_rise_fails(self):
        entries = [summarize_benchmark(_latency_doc()),
                   summarize_benchmark(_latency_doc(p99=20, sha="def456"))]
        problems = check_history(entries)
        assert any("latency_p99_max" in p for p in problems)
        # A modest rise stays inside the loose default tolerance.
        entries[-1] = summarize_benchmark(_latency_doc(p99=9, sha="eee"))
        assert check_history(entries) == []

    def test_latency_zero_flags_fails(self):
        entries = [summarize_benchmark(_latency_doc()),
                   summarize_benchmark(_latency_doc(n_flags=0,
                                                    sha="def456"))]
        problems = check_history(entries)
        assert any("total_flags" in p for p in problems)

    def test_committed_history_passes(self):
        # The repository's own seeded history must gate green.
        for stem in ("throughput", "resilience", "latency"):
            path = REPO_ROOT / "benchmarks" / "history" / f"{stem}.jsonl"
            assert check_history(load_history(path)) == []


class TestCliTool:
    def test_gate_mode_end_to_end(self, tmp_path):
        import subprocess
        import sys
        doc_path = tmp_path / "BENCH_throughput.json"
        doc_path.write_text(json.dumps(_throughput_doc(sha="aaa")))
        base = [sys.executable, str(REPO_ROOT / "tools" / "bench_history.py")]
        history = ["--history-dir", str(tmp_path / "history")]
        first = subprocess.run(
            [*base, "gate", str(doc_path), *history],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert first.returncode == 0, first.stderr
        # A -25% follow-up must be rejected by the default tolerance.
        doc_path.write_text(json.dumps(
            _throughput_doc(single=4.5, network=1.875, sha="bbb")))
        second = subprocess.run(
            [*base, "gate", str(doc_path), *history],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert second.returncode == 1
        assert "REGRESSION" in second.stderr


def _fleet_doc(*, divergence=0, conservation=(), flags=40,
               cross_worker=6, rate=12_000.0, sha="abc123", seed=7):
    return {
        "benchmark": "fleet",
        "meta": {"git_sha": sha, "seed": seed},
        "cells": [
            {"n_workers": 2, "loss_rate": 0.0, "divergence": divergence,
             "conservation_failures": list(conservation),
             "n_flags": flags, "n_cross_worker": cross_worker,
             "readings_per_sec": rate},
            {"n_workers": 4, "loss_rate": 0.25, "divergence": 0,
             "conservation_failures": [], "n_flags": flags,
             "n_cross_worker": cross_worker,
             "readings_per_sec": rate * 1.5},
        ],
    }


class TestFleetKind:
    def test_summary_totals(self):
        summary = summarize_benchmark(_fleet_doc())
        assert summary["total_divergence"] == 0
        assert summary["total_conservation_failures"] == 0
        assert summary["total_flags"] == 80
        assert summary["total_cross_worker"] == 12
        assert summary["min_readings_per_sec"] == 12_000.0

    def test_history_path_registered(self, tmp_path):
        assert history_path("fleet", tmp_path).name == "fleet.jsonl"

    def test_divergence_and_conservation_gates_are_absolute(self):
        # Unlike throughput these gates ignore the prior median: any
        # non-zero value in the latest entry fails outright.
        entries = [summarize_benchmark(_fleet_doc()),
                   summarize_benchmark(_fleet_doc(
                       divergence=1, conservation=("leak",),
                       cross_worker=0, sha="def456"))]
        problems = check_history(entries)
        assert any("total_divergence" in p for p in problems)
        assert any("total_conservation_failures" in p for p in problems)
        assert any("total_cross_worker" in p for p in problems)

    def test_zero_flags_fails(self):
        entries = [summarize_benchmark(_fleet_doc()),
                   summarize_benchmark(_fleet_doc(flags=0,
                                                  sha="def456"))]
        problems = check_history(entries)
        assert any("total_flags" in p for p in problems)

    def test_throughput_gate_is_loose(self):
        entries = [summarize_benchmark(_fleet_doc()),
                   summarize_benchmark(_fleet_doc(rate=12_000.0 * 0.4,
                                                  sha="def456"))]
        # -60% passes the deliberately loose 75% fleet tolerance
        # (spawn-bound CI timing is noisy)...
        assert check_history(entries) == []
        entries[-1] = summarize_benchmark(_fleet_doc(rate=12_000.0 * 0.2,
                                                     sha="eee789"))
        # ...and -80% does not.
        problems = check_history(entries)
        assert any("min_readings_per_sec" in p for p in problems)

    def test_fleet_tolerance_validated(self):
        with pytest.raises(ParameterError):
            RegressionTolerances(fleet_throughput_drop=0.0)

    def test_committed_fleet_artifacts_gate_green(self):
        doc = json.loads((REPO_ROOT / "BENCH_fleet.json").read_text())
        assert summarize_benchmark(doc)["benchmark"] == "fleet"
        path = REPO_ROOT / "benchmarks" / "history" / "fleet.jsonl"
        assert check_history(load_history(path)) == []
