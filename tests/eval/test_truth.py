"""Incremental ground-truth machinery vs the offline brute-force detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.core.baselines import (
    brute_force_distance_outliers,
    brute_force_mdef_outliers,
)
from repro.core.mdef import MDEFSpec
from repro.core.outliers import DistanceOutlierSpec
from repro.data.synthetic import make_plateau_streams
from repro.eval.truth import (
    DistanceTruth,
    GlobalMDEFTruth,
    NodeWindow,
    WindowBank,
)
from repro.network.topology import build_hierarchy


class TestNodeWindow:
    def test_batch_insert_and_evict(self):
        window = NodeWindow(4, 1)
        out = window.insert(np.array([[1.0], [2.0], [3.0], [4.0]]))
        assert out.shape == (0, 1)
        evicted = window.insert(np.array([[5.0], [6.0]]))
        assert sorted(evicted[:, 0]) == [1.0, 2.0]
        assert sorted(window.values()[:, 0]) == [3.0, 4.0, 5.0, 6.0]

    def test_wrap_around_split_insert(self):
        window = NodeWindow(3, 1)
        window.insert(np.array([[1.0], [2.0]]))
        window.insert(np.array([[3.0], [4.0]]))
        assert sorted(window.values()[:, 0]) == [2.0, 3.0, 4.0]

    def test_batch_larger_than_capacity_rejected(self):
        with pytest.raises(ParameterError):
            NodeWindow(2, 1).insert(np.zeros((3, 1)))


class TestWindowBank:
    def test_union_mode_capacities(self):
        hierarchy = build_hierarchy(4, 2)
        bank = WindowBank(hierarchy, window_size=10, n_dims=1, mode="union")
        rng = np.random.default_rng(0)
        for _ in range(12):
            bank.insert_tick(rng.uniform(size=(4, 1)))
        assert bank.window_values(0).shape[0] == 10
        assert bank.window_values(hierarchy.root_id).shape[0] == 40

    def test_fixed_mode_capacities(self):
        hierarchy = build_hierarchy(4, 2)
        bank = WindowBank(hierarchy, window_size=10, n_dims=1, mode="fixed")
        rng = np.random.default_rng(0)
        for _ in range(12):
            bank.insert_tick(rng.uniform(size=(4, 1)))
        assert bank.window_values(hierarchy.root_id).shape[0] == 10

    def test_fixed_root_holds_most_recent_union_values(self):
        hierarchy = build_hierarchy(2, 2)
        bank = WindowBank(hierarchy, window_size=4, n_dims=1, mode="fixed")
        for t in range(5):
            bank.insert_tick(np.array([[float(t)], [float(t) + 0.5]]))
        assert sorted(bank.window_values(hierarchy.root_id)[:, 0]) \
            == [3.0, 3.5, 4.0, 4.5]

    def test_invalid_mode(self):
        with pytest.raises(ParameterError):
            WindowBank(build_hierarchy(2, 2), 4, 1, mode="elastic")

    def test_arrival_shape_checked(self):
        bank = WindowBank(build_hierarchy(2, 2), 4, 1)
        with pytest.raises(ParameterError):
            bank.insert_tick(np.zeros((3, 1)))

    def test_histogram_built_from_window(self, rng):
        hierarchy = build_hierarchy(2, 2)
        bank = WindowBank(hierarchy, 50, 1)
        for _ in range(60):
            bank.insert_tick(rng.uniform(size=(2, 1)))
        hist = bank.histogram(hierarchy.root_id, 8)
        assert hist.range_probability(-1, 2) == pytest.approx(1.0)


class TestDistanceTruth:
    def test_matches_brute_force_per_level(self, rng):
        hierarchy = build_hierarchy(4, 2)
        spec = DistanceOutlierSpec(radius=0.02, count_threshold=4)
        bank = WindowBank(hierarchy, window_size=60, n_dims=1, mode="fixed")
        truth = DistanceTruth(bank, hierarchy, spec)
        streams = [np.clip(rng.normal(0.4, 0.03, (100, 1)), 0, 1)
                   for _ in range(4)]
        streams[0][80] = 0.9   # one isolated arrival
        labels_at_80 = None
        for t in range(100):
            arrivals = np.stack([s[t] for s in streams])
            bank.insert_tick(arrivals)
            if t == 80:
                labels_at_80 = truth.labels_for_tick(arrivals)
        # Cross-check every level against the offline algorithm.
        arrivals = np.stack([s[80] for s in streams])
        for level_idx, tier in enumerate(hierarchy.levels):
            # Rebuild the level's windows as of tick 80 from raw streams.
            for node in tier:
                leaves = hierarchy.leaves_under(node)
                union = np.concatenate(
                    [streams[leaf][:81] for leaf in leaves])[-60:] \
                    if len(leaves) == 1 else None
            # The isolated arrival must be flagged at every level.
            assert labels_at_80[level_idx + 1][0]
        # Ordinary arrivals are not flagged at level 1.
        assert not labels_at_80[1][1:].any()

    def test_offline_equivalence_single_node(self, rng):
        """With one leaf the incremental labels equal BruteForce-D."""
        hierarchy = build_hierarchy(1, 2)
        spec = DistanceOutlierSpec(radius=0.02, count_threshold=5)
        bank = WindowBank(hierarchy, window_size=50, n_dims=1)
        truth = DistanceTruth(bank, hierarchy, spec)
        stream = np.concatenate([rng.normal(0.4, 0.02, 70),
                                 [0.9, 0.41, 0.95]]).reshape(-1, 1)
        flags = []
        for t in range(stream.shape[0]):
            arrivals = stream[t].reshape(1, 1)
            bank.insert_tick(arrivals)
            flags.append(bool(truth.labels_for_tick(arrivals)[1][0]))
        # Re-derive each label with the offline detector on the window.
        for t in (70, 71, 72):
            window = stream[max(0, t - 49):t + 1]
            offline = brute_force_distance_outliers(window, spec)
            assert flags[t] == offline[-1]


class TestGlobalMDEFTruth:
    def test_matches_brute_force_on_final_window(self):
        hierarchy = build_hierarchy(4, 2)
        spec = MDEFSpec(0.08, 0.01, min_mdef=0.8)
        window_size = 400
        bank = WindowBank(hierarchy, window_size, 1, mode="fixed")
        truth = GlobalMDEFTruth(bank, hierarchy, spec)
        streams = make_plateau_streams(4, 200, seed=1)
        streams[2][150] = [0.46]   # plant a gap arrival
        flagged = {}
        for t in range(200):
            arrivals = np.stack([s[t] for s in streams])
            truth.record_insert(arrivals)
            bank.insert_tick(arrivals)
            if t == 150:
                flagged = truth.labels_for_tick(arrivals)
        assert flagged[2]
        # Validate against the offline detector over the same window.
        union = np.concatenate(
            [np.stack([s[t] for s in streams]) for t in range(151)])[-window_size:]
        offline = brute_force_mdef_outliers(union, spec)
        assert offline[-2]   # the planted value sits near the window end

    def test_grid_consistent_with_recount(self, rng):
        hierarchy = build_hierarchy(2, 2)
        spec = MDEFSpec(0.08, 0.01)
        bank = WindowBank(hierarchy, 30, 1, mode="fixed")
        truth = GlobalMDEFTruth(bank, hierarchy, spec)
        for t in range(50):
            arrivals = rng.uniform(size=(2, 1))
            truth.record_insert(arrivals)
            bank.insert_tick(arrivals)
        window = bank.window_values(hierarchy.root_id)
        recount = np.zeros_like(truth._grid)
        idx = np.clip((window[:, 0] / spec.cell_width).astype(int),
                      0, recount.shape[0] - 1)
        np.add.at(recount, idx, 1)
        np.testing.assert_array_equal(truth._grid, recount)
