"""ASCII table rendering."""

from __future__ import annotations

from repro.eval.reporting import format_value, render_table


class TestFormatValue:
    def test_floats_three_decimals(self):
        assert format_value(0.98765) == "0.988"

    def test_ints_passthrough(self):
        assert format_value(42) == "42"

    def test_strings_passthrough(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["A", "Blong"], [[1, 2.0], [333, 4.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        header, rule, first, second = lines
        assert header.startswith("A")
        assert set(rule) <= {"-", " "}
        assert len(first) == len(second)

    def test_title(self):
        text = render_table(["X"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_wide_cells_expand_columns(self):
        text = render_table(["X"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in text
