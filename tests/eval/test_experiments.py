"""Figure-reproduction functions (tiny configurations for CI speed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import (
    figure5,
    figure6,
    figure7,
    figure8,
    figure11,
    memory_experiment,
)


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5(n_engine=20_000, n_environment=10_000, seed=0)

    def test_three_rows(self, result):
        assert [row.dataset for row in result.rows] == \
            ["Engine", "Pressure", "Dew-point"]

    def test_measured_close_to_published(self, result):
        engine = result.rows[0]
        # mean / median / std within loose tolerances.
        assert engine.measured[2] == pytest.approx(engine.published[2], abs=0.01)
        assert engine.measured[3] == pytest.approx(engine.published[3], abs=0.01)
        assert engine.measured[4] == pytest.approx(engine.published[4], abs=0.015)

    def test_table_renders(self, result):
        text = result.format_table()
        assert "Engine" in text and "Skew" in text


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return figure6(window_size=512, sample_size=64, shift_every=1_024,
                       n_shifts=2, eval_every=64, seed=3)

    def test_stable_distance_is_small(self, result):
        # Paper: max distance ~0.004 while the distribution is stable.
        assert result.max_stable_distance() < 0.05

    def test_shift_produces_spike(self, result):
        shift_idx = [i for i, t in enumerate(result.ticks)
                     if t >= result.shift_every][0]
        spike = max(result.leaf[shift_idx:shift_idx + 4])
        assert spike > 5 * result.max_stable_distance()

    def test_adaptation_latency_within_window_scale(self, result):
        latency = result.adaptation_latency(threshold=0.1)
        assert 0 < latency <= 2 * 512

    def test_parent_series_track_leaf(self, result):
        for f, series in result.parent.items():
            assert len(series) == len(result.leaf)
            assert min(series) < 0.05

    def test_table_renders(self, result):
        assert "Parent f=0.5" in result.format_table()


class TestAccuracySweeps:
    def test_figure7_structure(self):
        result = figure7(window_size=400, n_leaves=4,
                         sample_ratios=(0.05,), n_runs=1, seed=2,
                         compare_histogram=False)
        assert ("d3", 0.05) in result.entries
        assert ("mgdd", 0.05) in result.entries
        d3 = result.entries[("d3", 0.05)]
        assert set(d3.levels) == {1, 2}
        assert "Figure 7" in result.format_table()

    def test_figure8_sweeps_fraction(self):
        result = figure8(window_size=400, n_leaves=4,
                         fractions=(0.5, 1.0), n_runs=1, seed=2)
        assert set(result.entries) == {("mgdd", 0.5), ("mgdd", 1.0)}


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return figure11(leaf_counts=(8, 32), window_size=128,
                        measure_ticks=64, seed=0)

    def test_centralized_dominates(self, result):
        for row in result.rows:
            assert row.centralized > row.mgdd
            assert row.centralized > row.d3
            assert row.centralized / row.d3 > 10

    def test_rates_scale_with_network(self, result):
        small, large = result.rows
        assert large.centralized > small.centralized
        assert large.d3 > small.d3

    def test_centralized_rate_exact(self, result):
        # Every reading crosses every tree edge on its path to the root.
        small = result.rows[0]   # 8 leaves, branching 4 -> depth 2
        assert small.centralized == pytest.approx(8 * 2)

    def test_table_renders(self, result):
        assert "Centralized" in result.format_table()


class TestMemoryExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return memory_experiment(window_sizes=(4_000,), epsilons=(0.2,),
                                 n_values=10_000, seed=0)

    def test_below_bound(self, result):
        row = result.rows[0]
        assert row.measured_words < row.bound_words
        # The paper's band is 55-65% below; ours lands nearby.
        assert 0.3 < row.fraction_below_bound < 0.8

    def test_total_state_within_paper_budget(self, result):
        assert result.total_state_bytes < result.paper_budget_bytes

    def test_table_renders(self, result):
        assert "variance-sketch memory" in result.format_table()


class TestSelectivity:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.eval.experiments import selectivity_experiment
        return selectivity_experiment(window_size=1_500, sample_size=100,
                                      query_widths=(0.05,), n_queries=40,
                                      seed=3)

    def test_three_estimators_per_width(self, result):
        estimators = {row.estimator for row in result.rows}
        assert estimators == {"kernel (online)", "histogram (offline)",
                              "histogram (online GK)"}

    def test_errors_are_small_fractions(self, result):
        for row in result.rows:
            assert 0.0 <= row.mean_abs_error <= row.max_abs_error <= 1.0
            assert row.mean_abs_error < 0.1

    def test_table_renders(self, result):
        assert "selectivity" in result.format_table()
