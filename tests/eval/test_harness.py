"""End-to-end accuracy harness (small but real runs)."""

from __future__ import annotations

import pytest

from repro._exceptions import ParameterError
from repro.eval.harness import (
    ExperimentConfig,
    make_streams,
    run_accuracy_experiment,
    run_accuracy_run,
)

QUICK_D3 = ExperimentConfig(
    algorithm="d3", dataset="synthetic", n_leaves=8, window_size=500,
    measure_ticks=400, truth_stride=4, n_runs=2, seed=5,
    compare_histogram=True)

QUICK_MGDD = ExperimentConfig(
    algorithm="mgdd", dataset="plateau", n_leaves=8, window_size=500,
    measure_ticks=400, truth_stride=4, n_runs=2, seed=5)


class TestConfig:
    def test_derived_quantities(self):
        config = ExperimentConfig(window_size=2_000, sample_ratio=0.05)
        assert config.sample_size == 100
        assert config.warmup == 2_000
        assert config.n_ticks == 4_000
        assert config.distance_spec.count_threshold == 9   # 45 * 2000/10000

    def test_explicit_threshold_wins(self):
        config = ExperimentConfig(distance_threshold=33.0)
        assert config.distance_spec.count_threshold == 33.0

    def test_mdef_spec_carries_min_mdef(self):
        config = ExperimentConfig(mdef_min_mdef=0.7)
        assert config.mdef_spec.min_mdef == 0.7

    @pytest.mark.parametrize("kwargs", [
        {"algorithm": "both"},
        {"dataset": "weather"},
        {"dataset": "environment", "n_dims": 1},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            ExperimentConfig(**kwargs)


class TestStreams:
    @pytest.mark.parametrize("dataset,n_dims", [
        ("synthetic", 1), ("synthetic", 2), ("plateau", 1),
        ("engine", 1), ("environment", 2),
    ])
    def test_every_dataset_generates(self, dataset, n_dims):
        config = ExperimentConfig(dataset=dataset, n_dims=n_dims,
                                  n_leaves=3, window_size=100,
                                  measure_ticks=50)
        streams = make_streams(config, seed=1)
        assert streams.n_sensors == 3
        assert streams.length == config.n_ticks
        assert streams.n_dims == n_dims


class TestD3Run:
    @pytest.fixture(scope="class")
    def result(self):
        return run_accuracy_run(QUICK_D3, seed=5)

    def test_levels_present(self, result):
        assert set(result.levels) == {1, 2, 3}   # 8 leaves, branching 4

    def test_accuracy_sane(self, result):
        # Reduced scale is noisy; precision must still be clearly high
        # at the leaf level and nothing should be degenerate.
        assert result.precision(1) > 0.6
        assert result.recall(1) > 0.3
        assert result.n_true_outliers[1] > 0

    def test_histogram_comparison_present(self, result):
        assert result.levels[1].histogram is not None
        assert 0.0 <= result.precision(1, model="histogram") <= 1.0

    def test_missing_histogram_raises(self):
        config = ExperimentConfig(n_leaves=4, window_size=200,
                                  measure_ticks=50, compare_histogram=False)
        run = run_accuracy_run(config, seed=0)
        with pytest.raises(ParameterError):
            run.precision(1, model="histogram")


class TestMGDDRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_accuracy_run(QUICK_MGDD, seed=7)

    def test_only_level_one(self, result):
        assert set(result.levels) == {1}

    def test_detects_gap_outliers(self, result):
        assert result.n_true_outliers[1] > 0
        assert result.recall(1) > 0.3


class TestExperimentPooling:
    def test_pools_confusion_counts(self):
        merged = run_accuracy_experiment(QUICK_D3)
        singles = [run_accuracy_run(QUICK_D3, seed=QUICK_D3.seed),
                   run_accuracy_run(QUICK_D3, seed=QUICK_D3.seed + 1_000)]
        expected_tp = sum(r.levels[1].kernel.true_positives for r in singles)
        assert merged.levels[1].kernel.true_positives == expected_tp
        expected_truth = sum(r.n_true_outliers[1] for r in singles)
        assert merged.n_true_outliers[1] == expected_truth

    def test_on_run_callback(self):
        seen = []
        run_accuracy_experiment(
            QUICK_MGDD, on_run=lambda i, result: seen.append(i))
        assert seen == [0, 1]


class TestRunSpread:
    def test_pooled_result_reports_spread(self):
        merged = run_accuracy_experiment(QUICK_MGDD)
        assert len(merged.runs) == 2
        low, high = merged.run_spread(1, "recall")
        assert 0.0 <= low <= high <= 1.0

    def test_single_run_has_no_spread(self):
        run = run_accuracy_run(QUICK_MGDD, seed=1)
        with pytest.raises(ParameterError):
            run.run_spread(1)
