"""Precision/recall accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.eval.metrics import PrecisionRecall, precision_recall


class TestPrecisionRecall:
    def test_basic(self):
        pr = precision_recall(reported={1, 2, 3}, truth={2, 3, 4})
        assert pr.true_positives == 2
        assert pr.false_positives == 1
        assert pr.false_negatives == 1
        assert pr.precision == pytest.approx(2 / 3)
        assert pr.recall == pytest.approx(2 / 3)

    def test_perfect(self):
        pr = precision_recall({1, 2}, {1, 2})
        assert pr.precision == 1.0 and pr.recall == 1.0
        assert pr.f1 == 1.0

    def test_nothing_reported_nothing_true(self):
        pr = precision_recall(set(), set())
        assert pr.precision == 1.0
        assert pr.recall == 1.0
        assert pr.f1 == 1.0

    def test_nothing_reported_some_true(self):
        pr = precision_recall(set(), {1})
        assert pr.precision == 1.0   # no false claims
        assert pr.recall == 0.0
        assert pr.f1 == 0.0

    def test_everything_false(self):
        pr = precision_recall({9}, {1})
        assert pr.precision == 0.0
        assert pr.recall == 0.0

    def test_duplicates_collapsed(self):
        pr = precision_recall([1, 1, 2], [2, 2])
        assert pr.true_positives == 1
        assert pr.false_positives == 1

    def test_tuple_keys(self):
        pr = precision_recall({(5, 0)}, {(5, 0), (6, 1)})
        assert pr.true_positives == 1
        assert pr.n_true_outliers == 2


@given(st.sets(st.integers(min_value=0, max_value=50)),
       st.sets(st.integers(min_value=0, max_value=50)))
def test_confusion_counts_partition(reported, truth):
    pr = precision_recall(reported, truth)
    assert pr.true_positives + pr.false_positives == len(reported)
    assert pr.true_positives + pr.false_negatives == len(truth)
    assert 0.0 <= pr.precision <= 1.0
    assert 0.0 <= pr.recall <= 1.0
    assert 0.0 <= pr.f1 <= 1.0
