"""The multiprocess fleet pilot: sharding invariance plus telemetry.

Most tests drive ``run_fleet_cell(use_processes=False)`` -- the workers
are deterministic and fully isolated through the run directory and the
queue, so the sequential mode produces identical results without spawn
overhead.  One test runs real ``multiprocessing`` spawn workers so the
cross-process path stays covered in the tier-1 suite.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.eval.fleet import (
    MERGED_TRACE_NAME,
    check_fleet,
    fleet_workload,
    format_table,
    partition_streams,
    run_fleet_benchmark,
    run_fleet_cell,
    stream_seeds,
)
from repro.obs.distributed import load_spools, load_trace_meta, merge_spools
from repro.obs.lineage import reconstruct

#: Shared faulted-cell parameters: 3 workers, injected loss, one
#: mid-run engine crash per worker -- the worst case the pilot gates.
FAULTED = dict(algorithm="d3", n_workers=3, n_streams=6, n_ticks=160,
               window_size=60, sample_size=24, batch_size=32,
               checkpoint_every=48, loss_rate=0.3, crash_ticks=(80,),
               seed=7, trace=True, use_processes=False)


@pytest.fixture(scope="module")
def faulted(tmp_path_factory):
    """One faulted traced cell, its run dir kept for inspection."""
    run = tmp_path_factory.mktemp("fleet")
    cell = run_fleet_cell(run_dir=run, **FAULTED)
    return run, cell


class TestPartitioning:
    def test_slices_are_contiguous_and_cover(self):
        parts = partition_streams(10, 3)
        assert parts[0][0] == 0 and parts[-1][1] == 10
        for (_, hi), (lo, _) in zip(parts, parts[1:]):
            assert hi == lo
        assert sum(hi - lo for lo, hi in parts) == 10

    def test_rejects_bad_worker_counts(self):
        with pytest.raises(ParameterError):
            partition_streams(4, 0)
        with pytest.raises(ParameterError):
            partition_streams(4, 5)

    def test_stream_seeds_deterministic_and_sliceable(self):
        seeds = stream_seeds(7, 8)
        assert seeds == stream_seeds(7, 8)
        assert len(seeds) == 8
        # The partition-invariance hook: a worker's slice of the global
        # list equals the global list sliced.
        assert stream_seeds(7, 8)[2:5] == seeds[2:5]

    def test_fleet_workload_seeded_with_planted_spikes(self):
        data = fleet_workload(120, 4, seed=7)
        assert np.array_equal(data, fleet_workload(120, 4, seed=7))
        assert (np.abs(data) == 8.0).sum() >= 1


class TestFaultedCell:
    def test_detections_bit_identical_under_faults(self, faulted):
        _, cell = faulted
        assert cell["divergence"] == 0
        assert cell["n_flags"] > 0

    def test_every_crash_recovered(self, faulted):
        _, cell = faulted
        assert cell["n_crashes_scheduled"] == 3
        assert cell["n_recoveries"] == 3

    def test_global_conservation_holds(self, faulted):
        _, cell = faulted
        assert cell["conservation_failures"] == []
        assert cell["n_sent"] \
            == cell["n_delivered"] + cell["n_dropped"]
        assert cell["n_dropped"] > 0   # the loss injection actually bit
        assert cell["n_level1_flags"] == cell["n_delivered"]

    def test_merged_trace_schema_valid_and_untorn(self, faulted):
        run, cell = faulted
        assert cell["schema_problems"] == 0
        assert cell["torn_spools"] == 0
        assert (run / MERGED_TRACE_NAME).exists()

    def test_level1_lineage_complete_and_cross_worker(self, faulted):
        _, cell = faulted
        assert cell["n_level1_records"] > 0
        assert cell["n_level1_complete"] == cell["n_level1_records"]
        assert cell["n_cross_worker"] > 0

    def test_lineage_hops_span_two_worker_ids(self, faulted):
        # Satellite (d): reconstructing from the merged trace yields a
        # level-1 record whose hop provenance crosses a process
        # boundary -- send stamped by the worker, deliver by the
        # coordinator (worker 0).
        run, _ = faulted
        merged = merge_spools(load_spools(run))
        level1 = [r for r in reconstruct(merged.events) if r.level == 1]
        assert level1
        crossing = [r for r in level1
                    if len({hop.get("worker_id") for hop in r.hops
                            if hop.get("worker_id") is not None}) >= 2]
        assert crossing
        record = crossing[0]
        hop_events = {hop.get("event") for hop in record.hops}
        assert "message.send" in hop_events
        assert "message.deliver" in hop_events
        assert record.complete

    def test_run_dir_artifacts_on_disk(self, faulted):
        run, _ = faulted
        spools = sorted(p.name for p in run.glob("worker-*.spool.jsonl"))
        assert spools == [f"worker-{w:04d}.spool.jsonl"
                          for w in range(4)]   # coordinator + 3 workers
        assert len(list(run.glob("worker-*.metrics.json"))) == 4
        assert len(list(run.glob("worker-*.detections.npy"))) == 3
        _, meta = load_trace_meta(run)
        assert meta["worker_ids"] == [0, 1, 2, 3]
        assert meta["counter_totals"] is not None

    def test_check_fleet_passes_the_real_cell(self, faulted):
        _, cell = faulted
        assert check_fleet({"cells": [cell]}) == []


class TestCleanCell:
    def test_lossless_cell_delivers_everything(self):
        cell = run_fleet_cell(
            algorithm="d3", n_workers=2, n_streams=4, n_ticks=120,
            window_size=60, sample_size=24, batch_size=40,
            checkpoint_every=60, loss_rate=0.0, seed=7, trace=True,
            use_processes=False)
        assert cell["divergence"] == 0
        assert cell["n_dropped"] == 0
        assert cell["n_sent"] == cell["n_delivered"]
        assert cell["conservation_failures"] == []
        assert check_fleet({"cells": [cell]}) == []

    def test_untraced_cell_matches_traced_detections(self):
        kwargs = dict(algorithm="d3", n_workers=2, n_streams=4,
                      n_ticks=120, window_size=60, sample_size=24,
                      batch_size=40, checkpoint_every=60,
                      loss_rate=0.2, seed=11, use_processes=False)
        traced = run_fleet_cell(trace=True, **kwargs)
        untraced = run_fleet_cell(trace=False, **kwargs)
        # Tracing must never perturb behaviour: same flags, same
        # message books, no telemetry keys at all when off.
        for key in ("divergence", "n_flags", "n_sent", "n_delivered",
                    "n_dropped"):
            assert traced[key] == untraced[key], key
        assert "merged_events" not in untraced

    def test_rejects_bad_arguments(self):
        with pytest.raises(ParameterError, match="algorithm"):
            run_fleet_cell(algorithm="lof", use_processes=False)
        with pytest.raises(ParameterError, match="loss_rate"):
            run_fleet_cell(loss_rate=1.0, use_processes=False)
        with pytest.raises(ParameterError, match="crash_ticks"):
            run_fleet_cell(n_ticks=100, crash_ticks=(100,),
                           use_processes=False)


class TestMultiprocess:
    def test_spawned_workers_match_single_process(self, tmp_path):
        # The real thing: spawn-context worker processes, a
        # multiprocessing queue, and the coordinator in this process.
        cell = run_fleet_cell(
            algorithm="d3", n_workers=2, n_streams=4, n_ticks=120,
            window_size=60, sample_size=24, batch_size=40,
            checkpoint_every=60, loss_rate=0.25, crash_ticks=(60,),
            seed=7, trace=True, use_processes=True, run_dir=tmp_path)
        assert cell["divergence"] == 0
        assert cell["conservation_failures"] == []
        assert cell["n_recoveries"] == 2
        assert cell["n_cross_worker"] > 0
        assert check_fleet({"cells": [cell]}) == []


class TestBenchmarkDoc:
    def test_grid_document_shape(self, tmp_path):
        doc = run_fleet_benchmark(
            workers=(2,), loss_rates=(0.0,), n_streams=4, n_ticks=120,
            window_size=60, sample_size=24, batch_size=40,
            checkpoint_every=60, seed=7, use_processes=False,
            run_dir=tmp_path)
        assert doc["benchmark"] == "fleet"
        assert doc["grid"]["workers"] == [2]
        assert len(doc["cells"]) == 1
        assert "git_sha" in doc["meta"]
        assert (tmp_path / "cell-0" / MERGED_TRACE_NAME).exists()
        assert check_fleet(doc) == []

    def test_check_fleet_catches_tampering(self, faulted):
        _, cell = faulted
        doc = {"cells": [copy.deepcopy(cell)]}
        doc["cells"][0]["divergence"] = 5
        doc["cells"][0]["n_recoveries"] = 0
        doc["cells"][0]["n_cross_worker"] = 0
        doc["cells"][0]["conservation_failures"] = ["leak"]
        problems = check_fleet(doc)
        assert any("diverged" in p for p in problems)
        assert any("recover" in p for p in problems)
        assert any("worker ids" in p for p in problems)
        assert any("conservation" in p for p in problems)

    def test_format_table_lists_every_cell(self, faulted):
        _, cell = faulted
        table = format_table({"cells": [cell]})
        assert "xworker" in table.splitlines()[0]
        assert "workers=3 loss=0.3" in table
