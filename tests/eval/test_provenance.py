"""Provenance stamping: git sha resolution and graceful degradation."""

from __future__ import annotations

import subprocess

from repro.eval import provenance
from repro.eval.provenance import git_sha, run_metadata


class TestGitSha:
    def test_resolves_in_this_checkout(self):
        sha = git_sha()
        assert sha == "unknown" or (len(sha) == 40
                                    and all(c in "0123456789abcdef"
                                            for c in sha))

    def test_missing_git_binary_degrades(self, monkeypatch):
        def _no_git(*args, **kwargs):
            raise FileNotFoundError("git")

        monkeypatch.setattr(provenance.subprocess, "run", _no_git)
        assert git_sha() == "unknown"

    def test_git_failure_degrades(self, monkeypatch):
        def _failing(*args, **kwargs):
            return subprocess.CompletedProcess(args, 128, stdout="",
                                               stderr="not a git repo")

        monkeypatch.setattr(provenance.subprocess, "run", _failing)
        assert git_sha() == "unknown"

    def test_timeout_degrades(self, monkeypatch):
        def _hanging(*args, **kwargs):
            raise subprocess.TimeoutExpired(cmd="git", timeout=10)

        monkeypatch.setattr(provenance.subprocess, "run", _hanging)
        assert git_sha() == "unknown"


class TestRunMetadata:
    def test_shape(self):
        meta = run_metadata(seed=7)
        assert set(meta) >= {"git_sha", "python", "numpy", "platform",
                             "machine", "wall_clock_utc"}
        assert meta["seed"] == 7

    def test_seed_omitted_when_none(self):
        assert "seed" not in run_metadata()
