"""Atomic artifact writes: kill-mid-write leaves old-or-new, never torn."""

from __future__ import annotations

import json
import os

import pytest

from repro._artifacts import (
    atomic_append_text,
    atomic_write_bytes,
    atomic_write_text,
)


class TestAtomicWrite:
    def test_writes_and_returns_target(self, tmp_path):
        target = tmp_path / "BENCH_x.json"
        assert atomic_write_text(target, '{"a": 1}\n') == target
        assert target.read_text() == '{"a": 1}\n'

    def test_overwrites_whole_file(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(target, "old contents, rather long\n")
        atomic_write_text(target, "new\n")
        assert target.read_text() == "new\n"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "a.bin", b"payload")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.bin"]

    def test_kill_mid_write_preserves_old_artifact(self, tmp_path,
                                                   monkeypatch):
        # The crash the engine injects on purpose: the process dies while
        # the payload is being flushed.  The old artifact must survive
        # byte for byte and no temp file may be left behind.
        target = tmp_path / "BENCH_recovery.json"
        atomic_write_text(target, '{"generation": 1}\n')

        def dying_fsync(fd):
            raise KeyboardInterrupt("killed mid-write")

        monkeypatch.setattr(os, "fsync", dying_fsync)
        with pytest.raises(KeyboardInterrupt):
            atomic_write_text(target, '{"generation": 2}\n')
        monkeypatch.undo()
        assert target.read_text() == '{"generation": 1}\n'
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            [target.name]

    def test_kill_before_replace_leaves_no_partial_new_file(self, tmp_path,
                                                            monkeypatch):
        target = tmp_path / "fresh.json"

        def dying_replace(src, dst):
            raise KeyboardInterrupt("killed between fsync and rename")

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(KeyboardInterrupt):
            atomic_write_text(target, "never lands\n")
        monkeypatch.undo()
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []


class TestAtomicAppend:
    def test_append_creates_then_extends(self, tmp_path):
        ledger = tmp_path / "history.jsonl"
        atomic_append_text(ledger, json.dumps({"n": 1}) + "\n")
        atomic_append_text(ledger, json.dumps({"n": 2}) + "\n")
        lines = ledger.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [1, 2]

    def test_kill_mid_append_keeps_every_prior_line(self, tmp_path,
                                                    monkeypatch):
        ledger = tmp_path / "history.jsonl"
        atomic_append_text(ledger, '{"n": 1}\n')

        def dying_fsync(fd):
            raise KeyboardInterrupt("killed mid-append")

        monkeypatch.setattr(os, "fsync", dying_fsync)
        with pytest.raises(KeyboardInterrupt):
            atomic_append_text(ledger, '{"n": 2}\n')
        monkeypatch.undo()
        # All-or-nothing: the half-appended line is fully absent and
        # every prior line still parses.
        lines = ledger.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [{"n": 1}]
