"""Sliding window ring buffer."""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import ParameterError
from repro.streams.window import SlidingWindow


class TestBasics:
    def test_grows_until_capacity(self):
        window = SlidingWindow(3)
        for i in range(3):
            assert window.append([float(i)]) is None
            assert len(window) == i + 1
        assert window.is_full

    def test_eviction_returns_oldest(self):
        window = SlidingWindow(2)
        window.append([1.0])
        window.append([2.0])
        evicted = window.append([3.0])
        assert evicted.tolist() == [1.0]

    def test_values_oldest_first(self):
        window = SlidingWindow(3)
        for i in range(5):
            window.append([float(i)])
        assert window.values()[:, 0].tolist() == [2.0, 3.0, 4.0]

    def test_newest(self):
        window = SlidingWindow(4)
        window.append([7.0])
        window.append([8.0])
        assert window.newest().tolist() == [8.0]

    def test_newest_on_empty_rejected(self):
        with pytest.raises(ParameterError):
            SlidingWindow(2).newest()

    def test_clear(self):
        window = SlidingWindow(2)
        window.append([1.0])
        window.clear()
        assert len(window) == 0
        window.append([5.0])
        assert window.values()[:, 0].tolist() == [5.0]

    def test_multidimensional_values(self):
        window = SlidingWindow(2, n_dims=3)
        window.append([1.0, 2.0, 3.0])
        assert window.values().shape == (1, 3)

    def test_wrong_dimension_rejected(self):
        window = SlidingWindow(2, n_dims=2)
        with pytest.raises(ParameterError):
            window.append([1.0])

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_invalid_capacity(self, capacity):
        with pytest.raises(ParameterError):
            SlidingWindow(capacity)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=20),
       st.lists(st.floats(min_value=-100, max_value=100), max_size=100))
def test_matches_deque_reference(capacity, values):
    """The ring buffer behaves exactly like a bounded deque."""
    window = SlidingWindow(capacity)
    reference: deque = deque(maxlen=capacity)
    for value in values:
        window.append([value])
        reference.append(value)
        assert len(window) == len(reference)
        np.testing.assert_allclose(window.values()[:, 0], list(reference))
