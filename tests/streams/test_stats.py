"""Stream statistics (Figure 5 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.streams.stats import StreamSummary, summarize, summarize_columns


class TestSummarize:
    def test_known_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.stddev == pytest.approx(np.std([1, 2, 3, 4]))

    def test_symmetric_data_has_zero_skew(self, rng):
        summary = summarize(rng.normal(0.5, 0.1, 50_000))
        assert summary.skew == pytest.approx(0.0, abs=0.05)

    def test_left_tail_gives_negative_skew(self, rng):
        values = np.concatenate([rng.normal(0.5, 0.01, 5_000),
                                 rng.normal(0.1, 0.01, 100)])
        assert summarize(values).skew < -3

    def test_as_row_order(self):
        summary = summarize([0.0, 1.0])
        assert summary.as_row() == (summary.minimum, summary.maximum,
                                    summary.mean, summary.median,
                                    summary.stddev, summary.skew)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            summarize([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ParameterError):
            summarize([1.0, float("inf")])


class TestSummarizeColumns:
    def test_per_column(self, rng):
        data = np.stack([rng.uniform(0, 1, 100), rng.uniform(5, 6, 100)], axis=1)
        first, second = summarize_columns(data)
        assert first.maximum <= 1.0
        assert second.minimum >= 5.0

    def test_1d_input_is_single_column(self, rng):
        columns = summarize_columns(rng.uniform(size=10))
        assert len(columns) == 1
        assert isinstance(columns[0], StreamSummary)
