"""Greenwald-Khanna quantile summaries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import ParameterError
from repro.streams.quantiles import GKQuantileSummary


def rank_error(data: np.ndarray, estimate: float, q: float) -> float:
    return abs(np.searchsorted(np.sort(data), estimate) / len(data) - q)


class TestAccuracy:
    @pytest.mark.parametrize("epsilon", [0.01, 0.05])
    def test_rank_error_within_epsilon(self, rng, epsilon):
        data = rng.uniform(size=10_000)
        summary = GKQuantileSummary(epsilon)
        for value in data:
            summary.insert(float(value))
        for q in (0.05, 0.25, 0.5, 0.75, 0.95):
            assert rank_error(data, summary.query(q), q) <= epsilon + 1e-9

    def test_skewed_distribution(self, rng):
        data = rng.exponential(1.0, 8_000)
        summary = GKQuantileSummary(0.02)
        for value in data:
            summary.insert(float(value))
        assert rank_error(data, summary.median(), 0.5) <= 0.02

    def test_extreme_quantiles_exact_at_ends(self, rng):
        data = rng.uniform(size=2_000)
        summary = GKQuantileSummary(0.05)
        for value in data:
            summary.insert(float(value))
        assert summary.query(0.0) == pytest.approx(data.min())
        assert summary.query(1.0) == pytest.approx(data.max())

    def test_no_forgetting_after_shift(self, rng):
        """The GK summary covers the whole stream -- exactly why the
        paper's sliding-window models exist."""
        summary = GKQuantileSummary(0.01)
        old = rng.normal(0.2, 0.01, 5_000)
        new = rng.normal(0.8, 0.01, 5_000)
        for value in np.concatenate([old, new]):
            summary.insert(float(value))
        # The all-time median straddles both regimes; the recent-window
        # median would be ~0.8.
        assert 0.2 < summary.median() < 0.8


class TestResources:
    def test_sublinear_summary_size(self, rng):
        summary = GKQuantileSummary(0.02)
        for value in rng.uniform(size=50_000):
            summary.insert(float(value))
        # O((1/eps) log(eps n)) tuples; generous numeric bound.
        assert summary.tuple_count < (1 / 0.02) * 12
        assert summary.memory_words() == 3 * summary.tuple_count

    def test_summary_grows_with_precision(self, rng):
        data = rng.uniform(size=20_000)
        fine = GKQuantileSummary(0.005)
        coarse = GKQuantileSummary(0.05)
        for value in data:
            fine.insert(float(value))
            coarse.insert(float(value))
        assert fine.tuple_count > coarse.tuple_count


class TestAPI:
    def test_query_before_insert_rejected(self):
        with pytest.raises(ParameterError):
            GKQuantileSummary(0.1).query(0.5)

    def test_invalid_epsilon(self):
        with pytest.raises(ParameterError):
            GKQuantileSummary(0.0)
        with pytest.raises(ParameterError):
            GKQuantileSummary(1.0)

    def test_invalid_query(self, rng):
        summary = GKQuantileSummary(0.1)
        summary.insert(0.5)
        with pytest.raises(ParameterError):
            summary.query(1.5)

    def test_nonfinite_rejected(self):
        with pytest.raises(ParameterError):
            GKQuantileSummary(0.1).insert(float("nan"))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100),
                min_size=10, max_size=400))
def test_median_rank_error_property(values):
    data = np.array(values)
    summary = GKQuantileSummary(0.1)
    for value in data:
        summary.insert(float(value))
    # Duplicated values make ranks ambiguous; allow the tie width.
    estimate = summary.median()
    sorted_data = np.sort(data)
    lo = np.searchsorted(sorted_data, estimate, side="left") / len(data)
    hi = np.searchsorted(sorted_data, estimate, side="right") / len(data)
    assert lo - 0.1 - 1e-9 <= 0.5 <= hi + 0.1 + 1e-9
