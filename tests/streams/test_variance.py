"""Sliding-window variance sketches (paper Section 5, Theorem 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import ParameterError
from repro.streams.variance import (
    EHVarianceSketch,
    ExactWindowedVariance,
    MultiDimVarianceSketch,
    theoretical_bound_words,
)


class TestExactReference:
    def test_matches_numpy(self, rng):
        exact = ExactWindowedVariance(100)
        data = rng.uniform(size=250)
        for value in data:
            exact.insert([value])
        np.testing.assert_allclose(exact.std()[0], data[-100:].std())
        np.testing.assert_allclose(exact.mean()[0], data[-100:].mean())
        np.testing.assert_allclose(exact.variance()[0], data[-100:].var())

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            ExactWindowedVariance(10).std()


class TestEHSketchAccuracy:
    @pytest.mark.parametrize("maker", [
        lambda rng, n: rng.normal(0.5, 0.05, n),
        lambda rng, n: rng.uniform(0.0, 1.0, n),
    ], ids=["gaussian", "uniform"])
    def test_relative_error_within_epsilon(self, rng, maker):
        window_size, epsilon = 1_000, 0.2
        data = maker(rng, 6_000)
        sketch = EHVarianceSketch(window_size, epsilon)
        errors = []
        for i, value in enumerate(data):
            sketch.insert(float(value))
            if i >= window_size and i % 333 == 0:
                exact = data[i - window_size + 1:i + 1].var()
                errors.append(abs(sketch.variance() - exact) / exact)
        assert np.mean(errors) < epsilon / 2
        assert max(errors) < epsilon

    def test_shifted_stream_recovers_after_transient(self, rng):
        """A sharp mean shift leaves one straddling bucket whose halved
        contribution can briefly dominate; the error must be small at
        steady state and again once the straddler expires."""
        window_size, epsilon = 1_000, 0.2
        shift_at = 3_000
        data = np.concatenate([rng.normal(0.3, 0.05, shift_at),
                               rng.normal(0.6, 0.02, 3_000)])
        sketch = EHVarianceSketch(window_size, epsilon)
        steady_errors = []
        for i, value in enumerate(data):
            sketch.insert(float(value))
            in_transient = shift_at <= i < shift_at + 2 * window_size
            if i >= window_size and i % 333 == 0 and not in_transient:
                exact = data[i - window_size + 1:i + 1].var()
                steady_errors.append(abs(sketch.variance() - exact) / exact)
        assert steady_errors, "no steady-state evaluation points"
        assert max(steady_errors) < epsilon
        # And the final estimate (well past the shift) is accurate again.
        final_exact = data[-window_size:].var()
        assert abs(sketch.variance() - final_exact) / final_exact < epsilon / 2

    def test_mean_estimate_reasonable(self, rng):
        sketch = EHVarianceSketch(500, 0.2)
        data = rng.normal(0.4, 0.05, 2_000)
        for value in data:
            sketch.insert(float(value))
        assert sketch.mean() == pytest.approx(data[-500:].mean(), abs=0.02)

    def test_count_estimate_tracks_window(self, rng):
        sketch = EHVarianceSketch(200, 0.2)
        for value in rng.uniform(size=800):
            sketch.insert(float(value))
        assert sketch.count() == pytest.approx(200, rel=0.25)

    def test_std_is_sqrt_of_variance(self, rng):
        sketch = EHVarianceSketch(100, 0.2)
        for value in rng.uniform(size=300):
            sketch.insert(float(value))
        assert sketch.std() == pytest.approx(np.sqrt(sketch.variance()))

    def test_constant_stream_gives_zero_variance(self):
        sketch = EHVarianceSketch(100, 0.2)
        for _ in range(500):
            sketch.insert(0.7)
        assert sketch.variance() == pytest.approx(0.0, abs=1e-12)
        assert sketch.bucket_count < 30


class TestEHSketchMemory:
    def test_below_theorem1_bound(self, rng):
        """Section 10.3: actual memory sits well below the theoretic bound."""
        window_size, epsilon = 4_096, 0.2
        sketch = EHVarianceSketch(window_size, epsilon)
        for value in rng.normal(0.5, 0.1, 12_000):
            sketch.insert(float(value))
        bound = theoretical_bound_words(epsilon, window_size)
        assert sketch.max_memory_words() < bound
        # The paper reports 55-65% below; ours lands in a similar band.
        assert sketch.max_memory_words() < 0.7 * bound

    def test_memory_words_is_four_per_bucket(self, rng):
        sketch = EHVarianceSketch(256, 0.2)
        for value in rng.uniform(size=600):
            sketch.insert(float(value))
        assert sketch.memory_words() == 4 * sketch.bucket_count

    def test_max_tracks_high_water_mark(self, rng):
        sketch = EHVarianceSketch(128, 0.2)
        for value in rng.uniform(size=400):
            sketch.insert(float(value))
        assert sketch.max_memory_words() >= sketch.memory_words()

    def test_bucket_count_scales_with_epsilon(self, rng):
        data = rng.normal(0.5, 0.1, 8_000)
        coarse = EHVarianceSketch(2_000, 0.3)
        fine = EHVarianceSketch(2_000, 0.1)
        for value in data:
            coarse.insert(float(value))
            fine.insert(float(value))
        assert fine.bucket_count > coarse.bucket_count


class TestEHSketchAPI:
    def test_timestamps_must_increase(self):
        sketch = EHVarianceSketch(10, 0.2)
        sketch.insert(0.5, timestamp=3)
        with pytest.raises(ParameterError):
            sketch.insert(0.6, timestamp=3)

    def test_nonfinite_rejected(self):
        with pytest.raises(ParameterError):
            EHVarianceSketch(10, 0.2).insert(float("nan"))

    def test_query_before_insert_rejected(self):
        with pytest.raises(ParameterError):
            EHVarianceSketch(10, 0.2).variance()

    @pytest.mark.parametrize("kwargs", [
        {"window_size": 0, "epsilon": 0.2},
        {"window_size": 10, "epsilon": 0.0},
        {"window_size": 10, "epsilon": 1.5},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ParameterError):
            EHVarianceSketch(**kwargs)

    def test_expiry_after_quiet_period(self):
        """Widely spaced timestamps expire everything older."""
        sketch = EHVarianceSketch(10, 0.2)
        sketch.insert(100.0, timestamp=0)
        sketch.insert(0.5, timestamp=1_000)
        sketch.insert(0.6, timestamp=1_001)
        assert sketch.mean() == pytest.approx(0.55, abs=0.01)


class TestMultiDim:
    def test_per_dimension_stds(self, rng):
        sketch = MultiDimVarianceSketch(500, 2)
        data = np.stack([rng.normal(0.3, 0.02, 1_500),
                         rng.normal(0.6, 0.08, 1_500)], axis=1)
        for row in data:
            sketch.insert(row)
        stds = sketch.std()
        assert stds[0] == pytest.approx(0.02, rel=0.3)
        assert stds[1] == pytest.approx(0.08, rel=0.3)

    def test_memory_is_sum_of_sketches(self, rng):
        sketch = MultiDimVarianceSketch(100, 3)
        for _ in range(250):
            sketch.insert(rng.uniform(size=3))
        assert sketch.memory_words() > 0
        assert sketch.max_memory_words() >= sketch.memory_words()

    def test_wrong_dimension_rejected(self, rng):
        sketch = MultiDimVarianceSketch(10, 2)
        with pytest.raises(ParameterError):
            sketch.insert([0.5])


class TestBound:
    def test_formula(self):
        assert theoretical_bound_words(0.2, 1024) == int(np.ceil(25 * 10))

    def test_invalid_arguments(self):
        with pytest.raises(ParameterError):
            theoretical_bound_words(0.0, 100)
        with pytest.raises(ParameterError):
            theoretical_bound_words(0.2, 0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=200),
       st.integers(min_value=1, max_value=64))
def test_sketch_never_produces_negative_variance(values, window_size):
    sketch = EHVarianceSketch(window_size, 0.2)
    for value in values:
        sketch.insert(float(value))
    assert sketch.variance() >= 0.0
    assert np.isfinite(sketch.std())


class TestInsertMany:
    """Blocked sketch ingestion is bit-identical to the scalar loop."""

    def test_eh_sketch_state_identical(self, rng):
        data = rng.normal(0.5, 0.1, 700)
        scalar = EHVarianceSketch(100, 0.2)
        batched = EHVarianceSketch(100, 0.2)
        for value in data:
            scalar.insert(float(value))
        for start in (0, 3, 60, 61, 461):
            stop = {0: 3, 3: 60, 60: 61, 61: 461, 461: 700}[start]
            batched.insert_many(data[start:stop])
        assert scalar.variance() == batched.variance()
        assert scalar.std() == batched.std()
        assert scalar.memory_words() == batched.memory_words()

    def test_multidim_state_identical(self, rng):
        data = rng.uniform(size=(300, 2))
        scalar = MultiDimVarianceSketch(50, 2, 0.2)
        batched = MultiDimVarianceSketch(50, 2, 0.2)
        for row in data:
            scalar.insert(row)
        batched.insert_many(data[:123])
        batched.insert_many(data[123:])
        np.testing.assert_array_equal(scalar.std(), batched.std())
        np.testing.assert_array_equal(scalar.mean(), batched.mean())
        assert scalar.memory_words() == batched.memory_words()

    def test_empty_block_is_noop(self):
        sketch = EHVarianceSketch(10, 0.2)
        sketch.insert(0.5)
        before = sketch.variance()
        sketch.insert_many(np.empty(0))
        assert sketch.variance() == before
