"""Windowed higher-moments sketch (mean / variance / skew)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro._exceptions import ParameterError
from repro.streams.moments import EHMomentsSketch


def feed(sketch, data):
    for value in data:
        sketch.insert(float(value))


class TestAccuracy:
    def test_mean_and_variance(self, rng):
        sketch = EHMomentsSketch(1_000, 0.2)
        data = rng.normal(0.4, 0.05, 4_000)
        feed(sketch, data)
        window = data[-1_000:]
        assert sketch.mean() == pytest.approx(window.mean(), abs=0.01)
        assert sketch.variance() == pytest.approx(window.var(), rel=0.15)

    def test_symmetric_data_near_zero_skew(self, rng):
        sketch = EHMomentsSketch(2_000, 0.2)
        feed(sketch, rng.normal(0.5, 0.05, 6_000))
        assert abs(sketch.skewness()) < 0.4

    def test_strong_negative_skew_detected(self, rng):
        # An engine-like stream: tight band plus a low excursion.
        data = np.concatenate([rng.normal(0.42, 0.005, 3_800),
                               rng.normal(0.06, 0.02, 80),
                               rng.normal(0.42, 0.005, 120)])
        sketch = EHMomentsSketch(4_000, 0.2)
        feed(sketch, data)
        exact = scipy_stats.skew(data[-4_000:])
        assert exact < -3
        assert sketch.skewness() == pytest.approx(exact, rel=0.5)
        assert sketch.skewness() < -2

    def test_positive_skew_detected(self, rng):
        data = np.concatenate([rng.normal(0.2, 0.01, 3_000),
                               rng.uniform(0.6, 1.0, 60)])
        rng.shuffle(data)
        sketch = EHMomentsSketch(3_060, 0.2)
        feed(sketch, data)
        assert sketch.skewness() > 1.0

    def test_skew_tracks_window_not_history(self, rng):
        """After the skewed segment expires, skewness returns near zero."""
        sketch = EHMomentsSketch(500, 0.2)
        feed(sketch, np.concatenate([
            rng.normal(0.42, 0.005, 500),
            rng.normal(0.06, 0.02, 50),      # excursion
            rng.normal(0.42, 0.005, 1_500),  # 3 windows of recovery
        ]))
        assert abs(sketch.skewness()) < 0.6


class TestResources:
    def test_memory_bounded(self, rng):
        sketch = EHMomentsSketch(4_096, 0.2)
        feed(sketch, rng.normal(0.5, 0.1, 12_000))
        assert sketch.memory_words() == 5 * sketch.bucket_count
        assert sketch.max_memory_words() < 5 * 25 * 12 * 2

    def test_constant_stream(self):
        sketch = EHMomentsSketch(100, 0.2)
        feed(sketch, [0.7] * 400)
        assert sketch.variance() == pytest.approx(0.0, abs=1e-12)
        assert sketch.skewness() == 0.0
        assert sketch.bucket_count < 30


class TestAPI:
    def test_query_before_insert_rejected(self):
        sketch = EHMomentsSketch(10)
        for query in (sketch.mean, sketch.variance, sketch.skewness):
            with pytest.raises(ParameterError):
                query()

    def test_timestamps_must_increase(self):
        sketch = EHMomentsSketch(10)
        sketch.insert(0.5, timestamp=2)
        with pytest.raises(ParameterError):
            sketch.insert(0.5, timestamp=2)

    def test_nonfinite_rejected(self):
        with pytest.raises(ParameterError):
            EHMomentsSketch(10).insert(float("inf"))
