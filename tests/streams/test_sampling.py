"""Chain sampling over sliding windows (paper Section 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import ParameterError
from repro.streams.sampling import ChainSample, ReservoirSample


class TestChainSampleBasics:
    def test_fills_after_first_arrival(self, rng):
        sample = ChainSample(100, 16, rng=rng)
        assert len(sample) == 0
        sample.offer([0.5])
        assert len(sample) == 16   # first value populates every slot

    def test_values_shape(self, rng):
        sample = ChainSample(100, 8, n_dims=2, rng=rng)
        for _ in range(10):
            sample.offer(rng.uniform(size=2))
        assert sample.values().shape == (8, 2)

    def test_empty_before_any_arrival(self, rng):
        assert ChainSample(10, 4, rng=rng).values().shape == (0, 1)

    def test_offer_detailed_reports_replaced_slots(self, rng):
        sample = ChainSample(50, 8, rng=rng)
        slots = sample.offer_detailed([0.3])
        assert sorted(slots) == list(range(8))   # first arrival fills all

    def test_offer_bool_consistent_with_detailed(self, rng):
        a = ChainSample(50, 8, rng=np.random.default_rng(3))
        b = ChainSample(50, 8, rng=np.random.default_rng(3))
        for i in range(200):
            value = [i / 200]
            assert a.offer(value) == bool(b.offer_detailed(value))

    def test_timestamps_must_increase(self, rng):
        sample = ChainSample(10, 2, rng=rng)
        sample.offer([0.1], timestamp=5)
        with pytest.raises(ParameterError):
            sample.offer([0.2], timestamp=5)

    def test_wrong_dimension_rejected(self, rng):
        with pytest.raises(ParameterError):
            ChainSample(10, 2, n_dims=2, rng=rng).offer([0.1])

    @pytest.mark.parametrize("kwargs", [
        {"window_size": 0, "sample_size": 4},
        {"window_size": 10, "sample_size": 0},
        {"window_size": 10, "sample_size": 4, "n_dims": 0},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ParameterError):
            ChainSample(**kwargs)


class TestWindowInvariant:
    """The active sample elements always come from the current window."""

    def test_sample_values_always_in_window(self, rng):
        window_size = 64
        sample = ChainSample(window_size, 16, rng=rng)
        history: "list[float]" = []
        for i in range(1_000):
            value = float(rng.uniform())
            history.append(value)
            sample.offer([value])
            current = set(history[-window_size:])
            assert all(v in current for v in sample.values()[:, 0])

    def test_old_regime_fully_purged(self, rng):
        sample = ChainSample(50, 32, rng=rng)
        for _ in range(100):
            sample.offer([rng.uniform(0.0, 0.1)])
        for _ in range(60):   # more than one full window of the new regime
            sample.offer([rng.uniform(0.9, 1.0)])
        assert (sample.values()[:, 0] >= 0.9).all()


class TestUniformity:
    def test_sample_mean_tracks_window_mean(self, rng):
        """On a drifting stream the sample tracks the *window*, and the
        positions sampled within the window are uniform on average."""
        window_size, slots = 200, 64
        sample = ChainSample(window_size, slots, rng=rng)
        stream = np.linspace(0.0, 1.0, 2_000)   # steadily increasing
        for value in stream:
            sample.offer([value])
        window = stream[-window_size:]
        assert sample.values().mean() == pytest.approx(window.mean(), abs=0.02)

    def test_inclusion_rate_matches_theory(self):
        """At steady state each slot replaces at rate 1/W, so the chance
        an arrival enters any of |R| slots is ~ |R|/W (for |R| << W)."""
        rng = np.random.default_rng(0)
        window_size, slots, n = 500, 25, 20_000
        sample = ChainSample(window_size, slots, rng=rng)
        included = 0
        for i in range(n):
            hit = sample.offer([rng.uniform()])
            if i >= window_size:
                included += bool(hit)
        rate = included / (n - window_size)
        assert rate == pytest.approx(slots / window_size, rel=0.15)

    def test_position_distribution_uniform_over_window(self):
        """Repeatedly snapshotting the sample, each window position is
        equally likely to be sampled (chain sampling's guarantee)."""
        rng = np.random.default_rng(1)
        window_size, slots = 50, 10
        sample = ChainSample(window_size, slots, rng=rng)
        counts = np.zeros(window_size)
        history: "list[int]" = []
        for i in range(20_000):
            history.append(i)
            sample.offer([float(i)])
            if i >= window_size and i % 7 == 0:
                ages = i - sample.values()[:, 0]
                for age in ages.astype(int):
                    counts[age] += 1
        frequencies = counts / counts.sum()
        # Every age bucket within ~3x of uniform.
        assert frequencies.max() < 3.0 / window_size
        assert frequencies.min() > 1.0 / (3.0 * window_size)


class TestResourceAccounting:
    def test_chain_lengths_positive_after_arrivals(self, rng):
        sample = ChainSample(100, 8, rng=rng)
        for _ in range(300):
            sample.offer([rng.uniform()])
        lengths = sample.chain_lengths()
        assert (lengths >= 1).all()
        # Expected chain length is O(1); generous bound.
        assert lengths.mean() < 5

    def test_memory_words_formula(self, rng):
        sample = ChainSample(100, 8, n_dims=2, rng=rng)
        for _ in range(50):
            sample.offer(rng.uniform(size=2))
        stored = int(sample.chain_lengths().sum())
        assert sample.memory_words() == stored * 3 + 8


class TestOfferMany:
    """The batched ingestion path is bit-identical to the scalar one."""

    @staticmethod
    def _drive(window_size, slots, n_dims, stream, splits):
        scalar = ChainSample(window_size, slots, n_dims=n_dims,
                             rng=np.random.default_rng(77))
        batched = ChainSample(window_size, slots, n_dims=n_dims,
                              rng=np.random.default_rng(77))
        scalar_changed = [scalar.offer_detailed(value) for value in stream]
        batched_changed = []
        start = 0
        for size in splits:
            batched_changed.extend(batched.offer_many(stream[start:start + size]))
            start += size
        assert start == len(stream)
        return scalar, batched, scalar_changed, batched_changed

    def test_bit_identical_1d(self, rng):
        stream = rng.normal(0.4, 0.05, 400).reshape(-1, 1)
        scalar, batched, changed_a, changed_b = self._drive(
            50, 12, 1, stream, [3, 57, 1, 200, 139])
        assert changed_a == changed_b
        np.testing.assert_array_equal(scalar.values(), batched.values())
        np.testing.assert_array_equal(scalar.chain_lengths(),
                                      batched.chain_lengths())

    def test_bit_identical_2d(self, rng):
        stream = rng.uniform(size=(300, 2))
        scalar, batched, changed_a, changed_b = self._drive(
            40, 8, 2, stream, [300])
        assert changed_a == changed_b
        np.testing.assert_array_equal(scalar.values(), batched.values())

    def test_grouping_does_not_matter(self, rng):
        """Identical results whether the block is one chunk or many."""
        stream = rng.normal(0.5, 0.1, 256).reshape(-1, 1)
        one = ChainSample(30, 6, rng=np.random.default_rng(5))
        many = ChainSample(30, 6, rng=np.random.default_rng(5))
        changed_one = one.offer_many(stream)
        changed_many = []
        for start in range(0, 256, 17):
            changed_many.extend(many.offer_many(stream[start:start + 17]))
        assert changed_one == changed_many
        np.testing.assert_array_equal(one.values(), many.values())

    def test_empty_block_is_noop(self, rng):
        sample = ChainSample(20, 4, rng=rng)
        sample.offer([0.5])
        before = sample.values().copy()
        assert sample.offer_many(np.empty((0, 1))) == []
        np.testing.assert_array_equal(sample.values(), before)

    def test_construction_leaves_rng_untouched(self):
        """Substream seeding must not advance the caller's generator
        (callers draw their data streams from the same generator)."""
        a = np.random.default_rng(9)
        b = np.random.default_rng(9)
        ChainSample(100, 16, rng=a)
        np.testing.assert_array_equal(a.random(32), b.random(32))

    def test_has_active(self, rng):
        sample = ChainSample(20, 4, rng=rng)
        assert not sample.has_active()
        sample.offer([0.5])
        assert sample.has_active()

    def test_wrong_shape_rejected(self, rng):
        with pytest.raises(ParameterError):
            ChainSample(10, 2, rng=rng).offer_many(np.zeros((3, 2)))
        with pytest.raises(ParameterError):
            ChainSample(10, 2, n_dims=2, rng=rng).offer_many(np.zeros(3))

    def test_timestamps_must_increase(self, rng):
        sample = ChainSample(10, 2, rng=rng)
        sample.offer([0.1], timestamp=5)
        with pytest.raises(ParameterError):
            sample.offer_many(np.zeros((2, 1)), start_timestamp=5)


class TestReservoir:
    def test_fills_then_stays_fixed_size(self, rng):
        reservoir = ReservoirSample(10, rng=rng)
        for i in range(100):
            reservoir.offer([float(i)])
        assert len(reservoir) == 10
        assert reservoir.seen == 100

    def test_uniform_over_entire_stream(self):
        rng = np.random.default_rng(2)
        hits = np.zeros(100)
        for _ in range(400):
            reservoir = ReservoirSample(10, rng=rng)
            for i in range(100):
                reservoir.offer([float(i)])
            for value in reservoir.values()[:, 0]:
                hits[int(value)] += 1
        frequencies = hits / hits.sum()
        assert frequencies.max() < 2.5 / 100
        assert frequencies.min() > 1 / (2.5 * 100)

    def test_keeps_stale_values_after_drift(self, rng):
        """The failure mode that motivates chain sampling: a reservoir
        keeps resurrecting pre-drift values."""
        reservoir = ReservoirSample(32, rng=rng)
        chain = ChainSample(100, 32, rng=rng)
        for _ in range(1_000):
            value = [float(rng.uniform(0.0, 0.1))]
            reservoir.offer(value)
            chain.offer(value)
        for _ in range(500):
            value = [float(rng.uniform(0.9, 1.0))]
            reservoir.offer(value)
            chain.offer(value)
        assert (chain.values() >= 0.9).all()
        assert (reservoir.values() < 0.5).any()

    def test_wrong_dimension_rejected(self, rng):
        with pytest.raises(ParameterError):
            ReservoirSample(4, n_dims=2, rng=rng).offer([0.1])


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=16),
       st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=120))
def test_chain_sample_never_leaves_window(window_size, slots, values):
    sample = ChainSample(window_size, slots, rng=np.random.default_rng(0))
    for i, value in enumerate(values):
        sample.offer([value])
        active = sample.values()[:, 0]
        window = values[max(0, i + 1 - window_size):i + 1]
        assert all(v in window for v in active)


class TestNewestActiveTimestamp:
    def test_empty_sample_is_minus_one(self):
        sample = ChainSample(10, 4, rng=np.random.default_rng(0))
        assert sample.newest_active_timestamp() == -1

    def test_tracks_latest_acceptance(self):
        sample = ChainSample(10, 4, rng=np.random.default_rng(1))
        for i in range(50):
            sample.offer([0.5])
            newest = sample.newest_active_timestamp()
            # Staleness is bounded by the window: an active element
            # older than |W| arrivals would have expired.
            assert 0 <= newest <= sample.timestamp
            assert sample.timestamp - newest < sample.window_size

    def test_matches_batched_path(self):
        scalar = ChainSample(16, 8, rng=np.random.default_rng(2))
        batched = ChainSample(16, 8, rng=np.random.default_rng(2))
        values = np.random.default_rng(3).uniform(size=(120, 1))
        for value in values:
            scalar.offer(value)
        batched.offer_many(values)
        assert scalar.newest_active_timestamp() == \
            batched.newest_active_timestamp()
