"""Centralized baseline (Figure 11)."""

from __future__ import annotations

import numpy as np

from repro.data.streams import StreamSet
from repro.detectors.centralized import build_centralized_network
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy


def run(n_leaves, branching, ticks, collect=False, seed=0):
    hierarchy = build_hierarchy(n_leaves, branching)
    network = build_centralized_network(hierarchy, collect_at_root=collect)
    rng = np.random.default_rng(seed)
    streams = StreamSet.from_arrays(
        [rng.uniform(size=(ticks, 1)) for _ in range(n_leaves)])
    sim = NetworkSimulator(hierarchy, network.nodes, streams)
    sim.run()
    return hierarchy, network, sim


class TestMessageVolume:
    def test_every_reading_travels_full_depth(self):
        hierarchy, _, sim = run(16, 4, ticks=10)
        # Levels [16, 4, 1]: each reading crosses 2 edges.
        assert sim.counter.total_messages == 16 * 2 * 10

    def test_rate_is_deterministic(self):
        _, _, first = run(8, 2, ticks=5, seed=1)
        _, _, second = run(8, 2, ticks=5, seed=2)
        assert first.counter.total_messages == second.counter.total_messages

    def test_single_node_network_sends_nothing(self):
        _, _, sim = run(1, 4, ticks=5)
        assert sim.counter.total_messages == 0


class TestRootCollection:
    def test_root_sees_every_reading(self):
        hierarchy, network, _ = run(8, 4, ticks=7, collect=True)
        root = network.nodes[hierarchy.root_id]
        assert len(root.received) == 8 * 7

    def test_collection_off_by_default(self):
        hierarchy, network, _ = run(8, 4, ticks=7)
        root = network.nodes[hierarchy.root_id]
        assert root.received == []
