"""The shared per-node estimator state."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.detectors._state import StreamModelState


def make_state(**overrides):
    defaults = dict(arrival_window=200, sample_size=20, n_dims=1,
                    rng=np.random.default_rng(0))
    defaults.update(overrides)
    return StreamModelState(**defaults)


class TestLifecycle:
    def test_no_model_before_min_arrivals(self):
        state = make_state(min_arrivals=10)
        for _ in range(9):
            state.observe(np.array([0.5]))
        assert state.model() is None
        state.observe(np.array([0.5]))
        assert state.model() is not None

    def test_default_min_arrivals(self):
        state = make_state(sample_size=80)
        assert state._min_arrivals == 10   # sample_size // 8

    def test_model_cached_between_refreshes(self, rng):
        state = make_state(model_refresh=50, min_arrivals=2)
        for _ in range(10):
            state.observe(rng.uniform(size=1))
        first = state.model()
        state.observe(rng.uniform(size=1))
        assert state.model() is first      # cached
        for _ in range(60):
            state.observe(rng.uniform(size=1))
        assert state.model() is not first  # refreshed

    def test_count_window_size_applied_on_rebuild(self, rng):
        state = make_state(model_refresh=1, min_arrivals=2)
        for _ in range(5):
            state.observe(rng.uniform(size=1))
        state.count_window_size = 12_345
        state.observe(rng.uniform(size=1))
        assert state.model().window_size == 12_345

    def test_observe_returns_changed_slots(self):
        state = make_state()
        changed = state.observe(np.array([0.4]))
        assert len(changed) == 20   # first arrival fills all slots

    def test_memory_words_positive(self, rng):
        state = make_state()
        for _ in range(50):
            state.observe(rng.uniform(size=1))
        assert state.memory_words() > 0

    def test_invalid_model_refresh(self):
        with pytest.raises(ParameterError):
            make_state(model_refresh=0)

    def test_model_reflects_recent_distribution(self, rng):
        state = make_state(arrival_window=100, sample_size=30,
                           min_arrivals=2, model_refresh=4)
        for _ in range(150):
            state.observe(rng.normal(0.2, 0.01, size=1))
        for _ in range(150):
            state.observe(rng.normal(0.8, 0.01, size=1))
        model = state.model()
        assert model.mean()[0] == pytest.approx(0.8, abs=0.05)


class TestObserveMany:
    """Blocked observation is bit-identical to the scalar loop."""

    def test_changed_slots_and_model_identical(self):
        data = np.random.default_rng(7).normal(0.5, 0.1, (400, 1))
        scalar = make_state(rng=np.random.default_rng(1))
        batched = make_state(rng=np.random.default_rng(1))
        changed_a = [scalar.observe(row) for row in data]
        changed_b = []
        for start in (0, 3, 250):
            stop = {0: 3, 3: 250, 250: 400}[start]
            changed_b.extend(batched.observe_many(data[start:stop]))
        assert changed_a == changed_b
        assert scalar.arrivals == batched.arrivals
        np.testing.assert_array_equal(scalar.sample.values(),
                                      batched.sample.values())
        np.testing.assert_array_equal(scalar.sketch.std(), batched.sketch.std())


class TestChangeDrivenRefresh:
    def test_model_call_between_checks_is_pure_read(self):
        state = make_state(model_refresh=4, min_arrivals=2,
                           rng=np.random.default_rng(3))
        rng = np.random.default_rng(8)
        for _ in range(50):
            state.observe(rng.normal(0.5, 0.05, size=1))
        first = state.model()
        assert first is not None
        assert state.model() is first
        assert state.model() is first

    def test_clean_check_reuses_cached_object(self):
        """A due check with an unchanged sample and stable deviation
        hands back the same estimator object instead of rebuilding."""
        state = make_state(arrival_window=10_000, sample_size=20,
                           model_refresh=4, min_arrivals=2,
                           rng=np.random.default_rng(3))
        rng = np.random.default_rng(8)
        # Deep into the stream, acceptances are ~1/ts per slot and no
        # expiries occur, so short blocks rarely touch the sample.
        for _ in range(2_000):
            state.observe(rng.normal(0.5, 0.05, size=1))
        first = state.model()
        before = state.sample.mutation_count
        for _ in range(4):
            state.observe(rng.normal(0.5, 0.05, size=1))
        assert state.sample.mutation_count == before  # seed-verified quiet block
        assert state.model() is first

    def test_mutated_sample_forces_rebuild(self):
        state = make_state(arrival_window=50, sample_size=10,
                           model_refresh=4, min_arrivals=2,
                           rng=np.random.default_rng(3))
        rng = np.random.default_rng(8)
        for _ in range(60):
            state.observe(rng.normal(0.5, 0.05, size=1))
        first = state.model()
        # Push a full window through: every active element must turn
        # over, so the next due check cannot reuse the old model.
        for _ in range(50):
            state.observe(rng.normal(0.5, 0.05, size=1))
        assert state.model() is not first

    def test_count_window_resize_forces_rebuild(self):
        state = make_state(model_refresh=4, min_arrivals=2,
                           rng=np.random.default_rng(3))
        rng = np.random.default_rng(8)
        for _ in range(20):
            state.observe(rng.normal(0.5, 0.05, size=1))
        first = state.model()
        state.count_window_size = 999
        for _ in range(4):
            state.observe(rng.normal(0.5, 0.05, size=1))
        rebuilt = state.model()
        assert rebuilt is not first
        assert rebuilt.window_size == 999

    def test_arrivals_until_check_matches_scalar_schedule(self):
        """Observing `arrivals_until_check()` arrivals lands exactly on
        the next arrival where model() may rebuild."""
        state = make_state(model_refresh=8, min_arrivals=4,
                           rng=np.random.default_rng(3))
        rng = np.random.default_rng(9)
        for _ in range(3):
            state.observe(rng.uniform(size=1))
            assert state.model() is None
        assert state.arrivals_until_check() == 1
        state.observe(rng.uniform(size=1))
        assert state.model() is not None
        assert state.arrivals_until_check() == 8

    def test_invalid_bandwidth_tol(self):
        with pytest.raises(ParameterError):
            make_state(bandwidth_tol=-0.1)
