"""The shared per-node estimator state."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.detectors._state import StreamModelState


def make_state(**overrides):
    defaults = dict(arrival_window=200, sample_size=20, n_dims=1,
                    rng=np.random.default_rng(0))
    defaults.update(overrides)
    return StreamModelState(**defaults)


class TestLifecycle:
    def test_no_model_before_min_arrivals(self):
        state = make_state(min_arrivals=10)
        for _ in range(9):
            state.observe(np.array([0.5]))
        assert state.model() is None
        state.observe(np.array([0.5]))
        assert state.model() is not None

    def test_default_min_arrivals(self):
        state = make_state(sample_size=80)
        assert state._min_arrivals == 10   # sample_size // 8

    def test_model_cached_between_refreshes(self, rng):
        state = make_state(model_refresh=50, min_arrivals=2)
        for _ in range(10):
            state.observe(rng.uniform(size=1))
        first = state.model()
        state.observe(rng.uniform(size=1))
        assert state.model() is first      # cached
        for _ in range(60):
            state.observe(rng.uniform(size=1))
        assert state.model() is not first  # refreshed

    def test_count_window_size_applied_on_rebuild(self, rng):
        state = make_state(model_refresh=1, min_arrivals=2)
        for _ in range(5):
            state.observe(rng.uniform(size=1))
        state.count_window_size = 12_345
        state.observe(rng.uniform(size=1))
        assert state.model().window_size == 12_345

    def test_observe_returns_changed_slots(self):
        state = make_state()
        changed = state.observe(np.array([0.4]))
        assert len(changed) == 20   # first arrival fills all slots

    def test_memory_words_positive(self, rng):
        state = make_state()
        for _ in range(50):
            state.observe(rng.uniform(size=1))
        assert state.memory_words() > 0

    def test_invalid_model_refresh(self):
        with pytest.raises(ParameterError):
            make_state(model_refresh=0)

    def test_model_reflects_recent_distribution(self, rng):
        state = make_state(arrival_window=100, sample_size=30,
                           min_arrivals=2, model_refresh=4)
        for _ in range(150):
            state.observe(rng.normal(0.2, 0.01, size=1))
        for _ in range(150):
            state.observe(rng.normal(0.8, 0.01, size=1))
        model = state.model()
        assert model.mean()[0] == pytest.approx(0.8, abs=0.05)
