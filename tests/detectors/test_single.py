"""The batteries-included single-sensor detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.core.mdef import MDEFSpec
from repro.core.outliers import DistanceOutlierSpec
from repro.detectors.single import OnlineOutlierDetector

DIST = DistanceOutlierSpec(radius=0.01, count_threshold=5)
MDEF = MDEFSpec(sampling_radius=0.08, counting_radius=0.01, min_mdef=0.8)


class TestDistanceMode:
    def test_flags_spikes_after_warmup(self, rng):
        detector = OnlineOutlierDetector(500, 50, DIST, rng=rng)
        stream = rng.normal(0.4, 0.02, 1_200)
        spikes = {700, 900, 1_100}
        for tick in spikes:
            stream[tick] = 0.85
        flagged = []
        for tick, value in enumerate(stream):
            decision = detector.process(value)
            if decision is not None and decision.is_outlier:
                flagged.append(tick)
        assert spikes <= set(flagged)
        assert len(set(flagged) - spikes) < 10
        assert detector.readings_flagged == len(flagged)
        assert detector.readings_seen == 1_200

    def test_returns_none_during_warmup(self, rng):
        detector = OnlineOutlierDetector(100, 10, DIST, rng=rng)
        for _ in range(100):
            assert detector.process(0.4) is None
        assert not detector.is_warm
        assert detector.process(0.4) is not None
        assert detector.is_warm

    def test_custom_warmup(self, rng):
        detector = OnlineOutlierDetector(100, 10, DIST, warmup=5, rng=rng)
        outputs = [detector.process(rng.normal(0.4, 0.02)) for _ in range(8)]
        assert outputs[4] is None
        assert outputs[6] is not None

    def test_decision_carries_count(self, rng):
        detector = OnlineOutlierDetector(200, 40, DIST, warmup=200, rng=rng)
        decision = None
        for value in rng.normal(0.4, 0.02, 300):
            decision = detector.process(value)
        assert decision is not None
        assert decision.neighbor_count > DIST.count_threshold

    def test_memory_footprint_small(self, rng):
        detector = OnlineOutlierDetector(2_000, 100, DIST, rng=rng)
        for value in rng.normal(0.4, 0.02, 3_000):
            detector.process(value)
        # Far below the 2000-word window it summarises.
        assert detector.memory_words() < 1_000


class TestMDEFMode:
    def test_flags_gap_values(self, plateau_window):
        detector = OnlineOutlierDetector(
            1_500, 150, MDEF, warmup=1_500,
            rng=np.random.default_rng(0))
        flagged_gap = checked_gap = 0
        for tick, value in enumerate(plateau_window):
            decision = detector.process(value)
            if decision is None:
                continue
            if 0.43 < value < 0.49:
                checked_gap += 1
                flagged_gap += bool(decision.is_outlier)
        assert checked_gap > 0
        assert flagged_gap / checked_gap > 0.5

    def test_mdef_decision_type(self, plateau_window):
        from repro.core.mdef import MDEFDecision
        detector = OnlineOutlierDetector(
            500, 60, MDEF, warmup=500, rng=np.random.default_rng(1))
        decision = None
        for value in plateau_window[:700]:
            decision = detector.process(value)
        assert isinstance(decision, MDEFDecision)


class TestValidation:
    def test_bad_spec_type(self):
        with pytest.raises(ParameterError, match="spec must be"):
            OnlineOutlierDetector(100, 10, spec="distance")

    def test_sample_larger_than_window(self):
        with pytest.raises(ParameterError):
            OnlineOutlierDetector(10, 20, DIST)

    def test_negative_warmup(self):
        with pytest.raises(ParameterError):
            OnlineOutlierDetector(100, 10, DIST, warmup=-1)

    def test_2d_readings(self, rng):
        detector = OnlineOutlierDetector(
            300, 60, DistanceOutlierSpec(radius=0.02, count_threshold=5),
            n_dims=2, warmup=300, rng=rng)
        for _ in range(300):
            detector.process(rng.normal(0.4, 0.02, size=2))
        decision = detector.process([0.9, 0.9])
        assert decision.is_outlier


class TestProcessMany:
    """The batched ingestion path reproduces the scalar decisions."""

    @staticmethod
    def _compare(spec, stream, splits, window=500, sample=50):
        scalar = OnlineOutlierDetector(window, sample, spec,
                                       rng=np.random.default_rng(11))
        batched = OnlineOutlierDetector(window, sample, spec,
                                        rng=np.random.default_rng(11))
        scalar_decisions = [scalar.process(v) for v in stream]
        batched_decisions = []
        start = 0
        for size in splits:
            batched_decisions.extend(batched.process_many(stream[start:start + size]))
            start += size
        assert start == len(stream)
        assert len(scalar_decisions) == len(batched_decisions)
        for a, b in zip(scalar_decisions, batched_decisions):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.is_outlier == b.is_outlier
        assert scalar.readings_seen == batched.readings_seen
        assert scalar.readings_flagged == batched.readings_flagged
        return scalar_decisions, batched_decisions

    def test_distance_mode_identical_flags(self, rng):
        stream = rng.normal(0.4, 0.02, 1_200)
        for tick in (700, 900, 1_100):
            stream[tick] = 0.85
        self._compare(DIST, stream, [3, 498, 37, 400, 262])

    def test_mdef_mode_identical_flags(self, rng):
        stream = rng.normal(0.4, 0.02, 900)
        stream[750] = 0.9
        self._compare(MDEF, stream, [900])

    def test_neighbor_counts_close(self, rng):
        """Counts come from the batched range query instead of the
        sorted-1d fast path; they agree to floating-point noise."""
        stream = rng.normal(0.4, 0.02, 800)
        scalar_decisions, batched_decisions = self._compare(
            DIST, stream, [800], window=300, sample=30)
        for a, b in zip(scalar_decisions, batched_decisions):
            if a is not None:
                assert a.neighbor_count == pytest.approx(
                    b.neighbor_count, abs=1e-9)

    def test_single_element_blocks_match_scalar(self, rng):
        stream = rng.normal(0.4, 0.02, 400)
        self._compare(DIST, stream, [1] * 400, window=150, sample=15)

    def test_wrong_shape_rejected(self, rng):
        detector = OnlineOutlierDetector(100, 10, DIST, rng=rng)
        with pytest.raises(ParameterError):
            detector.process_many(np.zeros((5, 2)))
