"""D3 distributed deviation detection (paper Section 7, Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.core.outliers import DistanceOutlierSpec
from repro.data.streams import StreamSet
from repro.detectors.d3 import (
    D3Config,
    D3LeafNode,
    D3ParentNode,
    build_d3_network,
    expected_parent_arrival_window,
)
from repro.network.messages import OutlierReport, ValueForward
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy

SPEC = DistanceOutlierSpec(radius=0.01, count_threshold=5)


def small_config(**overrides):
    defaults = dict(spec=SPEC, window_size=400, sample_size=40,
                    sample_fraction=0.5, warmup=400)
    defaults.update(overrides)
    return D3Config(**defaults)


def cluster_streams(rng, n_leaves, length, outlier_ticks=()):
    """Gaussian streams; selected ticks of leaf 0 carry isolated values."""
    arrays = []
    for leaf in range(n_leaves):
        values = np.clip(rng.normal(0.4, 0.02, size=(length, 1)), 0, 1)
        if leaf == 0:
            for tick in outlier_ticks:
                values[tick] = 0.85
        arrays.append(values)
    return StreamSet.from_arrays(arrays)


class TestConfig:
    def test_defaults_follow_paper(self):
        config = D3Config(spec=SPEC)
        assert config.window_size == 10_000
        assert config.sample_size == 500
        assert config.sample_fraction == 0.5
        assert config.parent_window == "fixed"

    def test_effective_warmup_defaults_to_window(self):
        assert D3Config(spec=SPEC, window_size=1_000,
                        sample_size=50).effective_warmup == 1_000
        assert D3Config(spec=SPEC, warmup=7).effective_warmup == 7

    @pytest.mark.parametrize("kwargs", [
        {"window_size": 0},
        {"sample_size": 0},
        {"sample_fraction": 0.0},
        {"sample_fraction": 1.5},
        {"sample_size": 200, "window_size": 100},
        {"parent_window": "bogus"},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            D3Config(spec=SPEC, **kwargs)


class TestArrivalWindow:
    def test_fixed_mode_independent_of_fanout(self):
        config = small_config()
        assert expected_parent_arrival_window(2, config) == \
            expected_parent_arrival_window(8, config)

    def test_union_mode_scales_with_children(self):
        config = small_config(parent_window="union")
        assert expected_parent_arrival_window(8, config) == \
            4 * expected_parent_arrival_window(2, config)

    def test_never_below_sample_size(self):
        config = small_config(sample_fraction=0.01)
        assert expected_parent_arrival_window(2, config) >= config.sample_size


class TestBuilder:
    def test_node_types_per_level(self):
        hierarchy = build_hierarchy(16, 4)
        network = build_d3_network(hierarchy, small_config(), 1,
                                   rng=np.random.default_rng(0))
        for leaf in hierarchy.leaf_ids:
            assert isinstance(network.nodes[leaf], D3LeafNode)
        for tier in hierarchy.levels[1:]:
            for node in tier:
                assert isinstance(network.nodes[node], D3ParentNode)

    def test_shared_log(self):
        hierarchy = build_hierarchy(4, 4)
        network = build_d3_network(hierarchy, small_config(), 1,
                                   rng=np.random.default_rng(0))
        assert len(network.log) == 0


class TestDetectionFlow:
    def test_leaf_flags_isolated_value_and_escalates(self, rng):
        hierarchy = build_hierarchy(4, 4)
        config = small_config()
        network = build_d3_network(hierarchy, config, 1,
                                   rng=np.random.default_rng(1))
        outlier_tick = 450
        streams = cluster_streams(rng, 4, 500, outlier_ticks=(outlier_tick,))
        sim = NetworkSimulator(hierarchy, network.nodes, streams)
        sim.run()
        level1 = [d for d in network.log.at_level(1) if d.tick == outlier_tick]
        assert len(level1) == 1
        assert level1[0].origin == 0
        assert level1[0].value[0] == pytest.approx(0.85)
        # The parent re-checked and confirmed (its union data is also
        # concentrated at 0.4).
        level2 = [d for d in network.log.at_level(2) if d.tick == outlier_tick]
        assert len(level2) == 1

    def test_no_detection_before_warmup(self, rng):
        hierarchy = build_hierarchy(4, 4)
        network = build_d3_network(hierarchy, small_config(warmup=1_000), 1,
                                   rng=np.random.default_rng(1))
        streams = cluster_streams(rng, 4, 500, outlier_ticks=(450,))
        sim = NetworkSimulator(hierarchy, network.nodes, streams)
        sim.run()
        assert len(network.log) == 0

    def test_cluster_values_not_flagged(self, rng):
        hierarchy = build_hierarchy(4, 4)
        network = build_d3_network(hierarchy, small_config(), 1,
                                   rng=np.random.default_rng(2))
        streams = cluster_streams(rng, 4, 600)
        sim = NetworkSimulator(hierarchy, network.nodes, streams)
        sim.run()
        # A clean Gaussian cluster produces (almost) no flags: well under
        # 1% of the 4 x 200 post-warmup arrivals.
        assert len(network.log.at_level(1)) <= 8

    def test_forwarding_volume_proportional_to_f(self, rng):
        hierarchy = build_hierarchy(4, 4)
        volumes = {}
        for f in (0.25, 1.0):
            network = build_d3_network(
                hierarchy, small_config(sample_fraction=f, warmup=10_000), 1,
                rng=np.random.default_rng(3))
            streams = cluster_streams(np.random.default_rng(4), 4, 900)
            sim = NetworkSimulator(hierarchy, network.nodes, streams)
            sim.run()
            volumes[f] = sim.counter.counts.get("ValueForward", 0)
        # Leaf sends scale linearly with f (relayed traffic adds a bit
        # of superlinearity, hence the generous band).
        assert volumes[1.0] / volumes[0.25] == pytest.approx(4.0, rel=0.5)


class TestParentWindowModes:
    def test_fixed_mode_count_scaling(self, rng):
        hierarchy = build_hierarchy(4, 4)
        config = small_config(parent_window="fixed")
        network = build_d3_network(hierarchy, config, 1,
                                   rng=np.random.default_rng(5))
        streams = cluster_streams(rng, 4, 600)
        NetworkSimulator(hierarchy, network.nodes, streams).run()
        parent = network.nodes[hierarchy.root_id]
        assert parent.state.count_window_size == config.window_size

    def test_union_mode_count_scaling(self, rng):
        hierarchy = build_hierarchy(4, 4)
        config = small_config(parent_window="union")
        network = build_d3_network(hierarchy, config, 1,
                                   rng=np.random.default_rng(5))
        streams = cluster_streams(rng, 4, 600)
        NetworkSimulator(hierarchy, network.nodes, streams).run()
        parent = network.nodes[hierarchy.root_id]
        assert parent.state.count_window_size == 4 * config.window_size


class TestLeafUnitBehaviour:
    def test_leaf_ignores_messages(self):
        from repro.network.node import DetectionLog
        leaf = D3LeafNode(0, None, 1, small_config(), 1, DetectionLog(),
                          np.random.default_rng(0))
        report = OutlierReport(value=np.array([0.5]), origin=0,
                               flagged_level=1, tick=0)
        assert leaf.on_message(report, sender=9, tick=0) == []

    def test_parent_has_no_readings(self):
        from repro.network.node import DetectionLog
        parent = D3ParentNode(5, None, 2, 4, 4, small_config(), 1,
                              DetectionLog(), np.random.default_rng(0))
        assert parent.on_reading(np.array([0.5]), 0) == []

    def test_parent_ignores_reports_before_model_ready(self):
        from repro.network.node import DetectionLog
        log = DetectionLog()
        parent = D3ParentNode(5, None, 2, 4, 4, small_config(warmup=0), 1,
                              log, np.random.default_rng(0))
        report = OutlierReport(value=np.array([0.9]), origin=0,
                               flagged_level=1, tick=3)
        assert parent.on_message(report, sender=0, tick=3) == []
        assert len(log) == 0

    def test_parent_forwards_sample_with_probability_one(self):
        from repro.network.node import DetectionLog
        parent = D3ParentNode(5, parent=9, level=2, n_children=4,
                              n_leaves_under=4,
                              config=small_config(sample_fraction=1.0),
                              n_dims=1, log=DetectionLog(),
                              rng=np.random.default_rng(0))
        message = ValueForward(value=np.array([0.5]))
        out = parent.on_message(message, sender=0, tick=0)
        # First arrival always enters the (empty) chain sample.
        assert out == [(9, message)]
