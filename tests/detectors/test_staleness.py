"""Graceful degradation: child staleness tracking and horizons."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.core.mdef import MDEFSpec
from repro.core.outliers import DistanceOutlierSpec
from repro.detectors._state import ChildStalenessTracker
from repro.detectors.d3 import D3Config, D3ParentNode
from repro.detectors.mgdd import MGDDConfig, MGDDLeafNode, MGDDLeaderNode
from repro.network.messages import ModelUpdate, ValueForward
from repro.network.node import DetectionLog

D3_SPEC = DistanceOutlierSpec(radius=0.01, count_threshold=5)
MGDD_SPEC = MDEFSpec(sampling_radius=0.08, counting_radius=0.01,
                     min_mdef=0.8)


def d3_config(**overrides):
    defaults = dict(spec=D3_SPEC, window_size=400, sample_size=40,
                    sample_fraction=0.5, warmup=400)
    defaults.update(overrides)
    return D3Config(**defaults)


def mgdd_config(**overrides):
    defaults = dict(spec=MGDD_SPEC, window_size=400, sample_size=40,
                    sample_fraction=0.5, warmup=400)
    defaults.update(overrides)
    return MGDDConfig(**defaults)


class TestChildStalenessTracker:
    def test_never_heard_child_is_maximally_stale(self):
        tracker = ChildStalenessTracker({3: 1, 7: 1})
        assert tracker.staleness(10) == {3: 11, 7: 11}

    def test_mark_resets_staleness(self):
        tracker = ChildStalenessTracker({3: 1, 7: 1})
        tracker.mark(3, 4)
        assert tracker.staleness(10) == {3: 6, 7: 11}
        tracker.mark(3, 10)
        assert tracker.staleness(10)[3] == 0

    def test_unregistered_sender_still_tracked(self):
        tracker = ChildStalenessTracker({3: 1})
        tracker.mark(9, 2)
        assert tracker.staleness(5) == {3: 6, 9: 3}

    def test_active_leaf_count_weights_by_subtree(self):
        tracker = ChildStalenessTracker({3: 4, 7: 4})
        tracker.mark(3, 8)
        tracker.mark(7, 2)
        # At tick 10 with horizon 5: child 3 is 2 stale (active, 4
        # leaves), child 7 is 8 stale (excluded).
        assert tracker.active_leaf_count(10, horizon=5) == 4
        assert tracker.active_leaf_count(10, horizon=8) == 8
        assert tracker.active_leaf_count(10, horizon=1) == 0


class TestHorizonConfig:
    def test_default_is_disabled(self):
        assert d3_config().staleness_horizon is None
        assert mgdd_config().staleness_horizon is None

    def test_invalid_horizon_rejected(self):
        for make in (d3_config, mgdd_config):
            with pytest.raises(ParameterError):
                make(staleness_horizon=0)
            with pytest.raises(ParameterError):
                make(staleness_horizon=-3)


class TestD3ParentDegradation:
    def make_parent(self, **config_overrides):
        config_overrides.setdefault("parent_window", "union")
        parent = D3ParentNode(
            5, None, 2, 2, 8, d3_config(**config_overrides), 1,
            DetectionLog(), np.random.default_rng(0),
            children_leaf_counts={3: 4, 4: 4})
        return parent

    def test_reports_per_child_staleness(self):
        parent = self.make_parent()
        parent.on_message(ValueForward(value=np.array([0.4])),
                          sender=3, tick=6)
        assert parent.child_staleness(10) == {3: 4, 4: 11}

    def test_stale_children_excluded_from_window_scaling(self):
        fresh = self.make_parent(staleness_horizon=5)
        # Only child 3's subtree (4 leaves) has been heard from inside
        # the horizon, so the union window scales by 4 leaves, not 8.
        fresh.on_message(ValueForward(value=np.array([0.4])),
                         sender=3, tick=100)
        assert fresh._active_leaves(100) == 4
        assert fresh.state.count_window_size == 101 * 4

    def test_no_horizon_keeps_full_leaf_count(self):
        parent = self.make_parent()
        parent.on_message(ValueForward(value=np.array([0.4])),
                          sender=3, tick=100)
        assert parent._active_leaves(100) == 8
        assert parent.state.count_window_size == 101 * 8

    def test_all_stale_floors_at_one_leaf(self):
        parent = self.make_parent(staleness_horizon=5)
        assert parent._active_leaves(50) == 1


class TestMGDDDegradation:
    def test_leaf_model_staleness(self):
        leaf = MGDDLeafNode(0, 9, mgdd_config(), 1, DetectionLog(),
                            np.random.default_rng(0))
        assert leaf.model_staleness(10) == 11
        update = ModelUpdate(stddev=np.array([0.05]),
                             full_sample=np.full((40, 1), 0.4),
                             window_size=400)
        leaf.on_message(update, sender=9, tick=4)
        assert leaf.model_staleness(10) == 6

    def test_leaf_pauses_detection_past_horizon(self):
        log = DetectionLog()
        leaf = MGDDLeafNode(0, 9, mgdd_config(warmup=0,
                                              staleness_horizon=5),
                            1, log, np.random.default_rng(0))
        update = ModelUpdate(stddev=np.array([0.001]),
                             full_sample=np.full((40, 1), 0.4),
                             window_size=400)
        leaf.on_message(update, sender=9, tick=0)
        # Near the cluster but in a local void: dense sampling
        # neighbourhood, empty counting neighbourhood -> MDEF outlier.
        outlier = np.array([0.45])
        leaf.on_reading(outlier, tick=3)          # within horizon
        flagged_fresh = list(leaf.flagged_ticks)
        leaf.on_reading(outlier, tick=50)         # model long stale
        assert leaf.flagged_ticks == flagged_fresh
        assert 3 in flagged_fresh
        assert 50 not in leaf.flagged_ticks

    def test_leaf_without_horizon_keeps_detecting(self):
        leaf = MGDDLeafNode(0, 9, mgdd_config(warmup=0), 1,
                            DetectionLog(), np.random.default_rng(0))
        update = ModelUpdate(stddev=np.array([0.001]),
                             full_sample=np.full((40, 1), 0.4),
                             window_size=400)
        leaf.on_message(update, sender=9, tick=0)
        leaf.on_reading(np.array([0.45]), tick=50)
        assert 50 in leaf.flagged_ticks

    def test_leader_scales_global_window_by_active_leaves(self):
        root = MGDDLeaderNode(4, parent=None, children=(0, 1),
                              n_children=2, n_leaves_region=8,
                              config=mgdd_config(staleness_horizon=5,
                                                 parent_window="union"),
                              n_dims=1, rng=np.random.default_rng(0),
                              children_leaf_counts={0: 4, 1: 4})
        root.on_message(ValueForward(value=np.array([0.4])),
                        sender=0, tick=100)
        assert root.child_staleness(100) == {0: 0, 1: 101}
        assert root._active_leaves(100) == 4
        assert root._global_window_size(100) == 101 * 4

    def test_model_update_does_not_mark_sender(self):
        # Downward ModelUpdate traffic comes from the parent, not a
        # child; only upward ValueForward resets child staleness.
        leader = MGDDLeaderNode(4, parent=9, children=(0, 1),
                                n_children=2, n_leaves_region=2,
                                config=mgdd_config(), n_dims=1,
                                rng=np.random.default_rng(0),
                                children_leaf_counts={0: 1, 1: 1})
        leader.on_message(ModelUpdate(stddev=np.array([0.05])),
                          sender=9, tick=5)
        assert leader.child_staleness(5) == {0: 6, 1: 6}
