"""MGDD multi-granular deviation detection (paper Section 8, Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.core.mdef import MDEFSpec
from repro.data.streams import StreamSet
from repro.data.synthetic import make_plateau_streams
from repro.detectors.mgdd import (
    MGDDConfig,
    MGDDLeaderNode,
    MGDDLeafNode,
    build_mgdd_network,
)
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy

SPEC = MDEFSpec(sampling_radius=0.08, counting_radius=0.01, min_mdef=0.8)


def small_config(**overrides):
    defaults = dict(spec=SPEC, window_size=400, sample_size=40,
                    sample_fraction=0.5, warmup=400)
    defaults.update(overrides)
    return MGDDConfig(**defaults)


class TestConfig:
    def test_defaults(self):
        config = MGDDConfig(spec=SPEC)
        assert config.update_policy == "incremental"
        assert config.relay_policy == "bernoulli"
        assert config.effective_bandwidth_cap == pytest.approx(0.02)

    def test_explicit_bandwidth_cap(self):
        config = MGDDConfig(spec=SPEC, bandwidth_cap=0.05)
        assert config.effective_bandwidth_cap == 0.05

    @pytest.mark.parametrize("kwargs", [
        {"update_policy": "sometimes"},
        {"relay_policy": "never"},
        {"parent_window": "elastic"},
        {"lazy_threshold": 0.0},
        {"lazy_check_every": 0},
        {"sample_size": 500, "window_size": 100},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            MGDDConfig(spec=SPEC, **kwargs)


def run_network(config, n_leaves=4, length=900, seed=0):
    hierarchy = build_hierarchy(n_leaves, 4)
    network = build_mgdd_network(hierarchy, config, 1,
                                 rng=np.random.default_rng(seed))
    streams = StreamSet.from_arrays(
        make_plateau_streams(n_leaves, length, seed=seed + 1))
    sim = NetworkSimulator(hierarchy, network.nodes, streams)
    sim.run()
    return hierarchy, network, sim


class TestGlobalModelDissemination:
    def test_updates_reach_leaves(self):
        hierarchy, network, sim = run_network(small_config())
        assert sim.counter.counts.get("ModelUpdate", 0) > 0
        for leaf in hierarchy.leaf_ids:
            assert network.nodes[leaf].global_copy.model() is not None

    def test_root_counts_updates(self):
        _, network, _ = run_network(small_config())
        assert network.root.updates_sent > 0

    def test_lazy_policy_sends_fewer_floods(self):
        # Stationary stream: the lazy scheme re-broadcasts rarely.
        _, _, sim_inc = run_network(small_config(), seed=3)
        _, _, sim_lazy = run_network(
            small_config(update_policy="lazy", lazy_threshold=0.2), seed=3)
        inc = sim_inc.counter.counts.get("ModelUpdate", 0)
        lazy = sim_lazy.counter.counts.get("ModelUpdate", 0)
        assert lazy < inc / 2

    def test_relay_policies_change_traffic(self):
        _, _, bern = run_network(small_config(relay_policy="bernoulli"),
                                 n_leaves=16, seed=5)
        _, _, incl = run_network(small_config(relay_policy="inclusion"),
                                 n_leaves=16, seed=5)
        # Inclusion gating thins upward traffic at every hop.
        assert incl.counter.counts.get("ValueForward", 0) < \
            bern.counter.counts.get("ValueForward", 0)


class TestDetection:
    def test_gap_arrivals_flagged(self):
        config = small_config(window_size=600, sample_size=60, warmup=600)
        hierarchy = build_hierarchy(4, 4)
        network = build_mgdd_network(hierarchy, config, 1,
                                     rng=np.random.default_rng(7))
        rng = np.random.default_rng(8)
        arrays = make_plateau_streams(4, 1_200, seed=9)
        # Plant a mid-gap value at a known post-warmup tick on leaf 0.
        arrays[0][900] = [0.46]
        streams = StreamSet.from_arrays(arrays)
        NetworkSimulator(hierarchy, network.nodes, streams).run()
        planted = [d for d in network.log.detections
                   if d.tick == 900 and d.origin == 0]
        assert len(planted) == 1

    def test_only_leaves_detect(self):
        _, network, _ = run_network(small_config())
        assert all(d.level == 1 for d in network.log.detections)

    def test_no_detection_before_warmup(self):
        _, network, _ = run_network(small_config(warmup=10_000))
        assert len(network.log) == 0


class TestNodeUnits:
    def test_leaf_applies_model_update(self):
        from repro.network.messages import ModelUpdate
        from repro.network.node import DetectionLog
        leaf = MGDDLeafNode(0, 9, small_config(), 1, DetectionLog(),
                            np.random.default_rng(0))
        assert leaf.global_copy.model() is None
        update = ModelUpdate(stddev=np.array([0.05]),
                             full_sample=np.full((40, 1), 0.4),
                             window_size=400)
        leaf.on_message(update, sender=9, tick=0)
        assert leaf.global_copy.model() is not None

    def test_leader_floods_updates_to_children(self):
        from repro.network.messages import ModelUpdate
        leader = MGDDLeaderNode(4, parent=9, children=(0, 1, 2),
                                n_children=3, n_leaves_region=3,
                                config=small_config(), n_dims=1,
                                rng=np.random.default_rng(0))
        update = ModelUpdate(stddev=np.array([0.05]))
        out = leader.on_message(update, sender=9, tick=0)
        assert sorted(dest for dest, _ in out) == [0, 1, 2]

    def test_root_broadcasts_on_inclusion(self):
        from repro.network.messages import ValueForward
        root = MGDDLeaderNode(4, parent=None, children=(0, 1),
                              n_children=2, n_leaves_region=2,
                              config=small_config(), n_dims=1,
                              rng=np.random.default_rng(0))
        out = root.on_message(ValueForward(value=np.array([0.4])),
                              sender=0, tick=0)
        # The first arrival fills every slot -> an incremental update.
        kinds = {type(msg).__name__ for _, msg in out}
        assert kinds == {"ModelUpdate"}
        assert root.updates_sent == 1

    def test_incremental_update_carries_changed_slots(self):
        from repro.network.messages import ValueForward
        root = MGDDLeaderNode(4, parent=None, children=(0,),
                              n_children=1, n_leaves_region=1,
                              config=small_config(), n_dims=1,
                              rng=np.random.default_rng(0))
        out = root.on_message(ValueForward(value=np.array([0.37])),
                              sender=0, tick=0)
        update = out[0][1]
        assert update.value[0] == pytest.approx(0.37)
        assert len(update.slots) == 40   # first arrival fills all slots


class TestRegionalModels:
    """config.model_level: Example 1's "outliers at any level of detail"."""

    def _run_regional(self, model_level, seed=11):
        from repro.data.synthetic import PlateauSpec, make_plateau_stream
        hierarchy = build_hierarchy(8, 4)   # levels: 8 / 2 / 1
        config = small_config(model_level=model_level, sample_size=60,
                              window_size=600, warmup=600)
        network = build_mgdd_network(hierarchy, config, 1,
                                     rng=np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        # Region A (leaves 0-3) and region B (leaves 4-7) observe
        # *different* plateaus.
        spec_a = PlateauSpec(plateau_a=(0.10, 0.22), plateau_b=(0.30, 0.38),
                             gap=(0.23, 0.29))
        spec_b = PlateauSpec(plateau_a=(0.60, 0.72), plateau_b=(0.80, 0.88),
                             gap=(0.73, 0.79))
        arrays = [make_plateau_stream(1_200, 1, spec=spec_a, rng=rng)
                  for _ in range(4)]
        arrays += [make_plateau_stream(1_200, 1, spec=spec_b, rng=rng)
                   for _ in range(4)]
        streams = StreamSet.from_arrays(arrays)
        NetworkSimulator(hierarchy, network.nodes, streams).run()
        return hierarchy, network

    def test_default_single_source_at_root(self):
        hierarchy, network = self._run_regional(model_level=None)
        sources = network.model_sources
        assert [s.node_id for s in sources] == [hierarchy.root_id]
        assert sources[0].updates_sent > 0

    def test_regional_sources_per_tier(self):
        hierarchy, network = self._run_regional(model_level=2)
        sources = {s.node_id for s in network.model_sources}
        assert sources == set(hierarchy.levels[1])
        # The root receives nothing and never broadcasts.
        assert network.root.updates_sent == 0

    def test_regional_mirrors_reflect_their_region(self):
        hierarchy, network = self._run_regional(model_level=2)
        left = network.nodes[0].global_copy.model()    # region A leaf
        right = network.nodes[4].global_copy.model()   # region B leaf
        assert left is not None and right is not None
        # Region A's model mass sits below 0.5; region B's above.
        assert left.range_probability(0.0, 0.5) > 0.8
        assert right.range_probability(0.5, 1.0) > 0.8

    def test_invalid_model_level_rejected(self):
        hierarchy = build_hierarchy(8, 4)
        config = small_config(model_level=1)
        with pytest.raises(ParameterError):
            build_mgdd_network(hierarchy, config, 1,
                               rng=np.random.default_rng(0))
