"""Failure injection: the detectors under message loss.

The paper targets unattended deployments; radio loss is the everyday
failure mode.  D3's leaf detection is loss-immune by construction (it
uses only local state); what degrades is cross-level escalation and the
parents' sample freshness.  MGDD's leaf detection *does* depend on the
network (global-model updates), so loss slows its model dissemination.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mdef import MDEFSpec
from repro.core.outliers import DistanceOutlierSpec
from repro.data.streams import StreamSet
from repro.data.synthetic import make_plateau_streams
from repro.detectors.d3 import D3Config, build_d3_network
from repro.detectors.mgdd import MGDDConfig, build_mgdd_network
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy


def d3_run(loss_rate, rng_seed=0):
    hierarchy = build_hierarchy(8, 4)
    config = D3Config(
        spec=DistanceOutlierSpec(radius=0.01, count_threshold=5),
        window_size=400, sample_size=40, sample_fraction=0.5, warmup=400)
    network = build_d3_network(hierarchy, config, 1,
                               rng=np.random.default_rng(rng_seed))
    rng = np.random.default_rng(rng_seed + 1)
    arrays = [np.clip(rng.normal(0.4, 0.02, (600, 1)), 0, 1)
              for _ in range(8)]
    arrays[0][500] = 0.9   # a blatant outlier after warmup
    streams = StreamSet.from_arrays(arrays)
    sim = NetworkSimulator(hierarchy, network.nodes, streams,
                           loss_rate=loss_rate,
                           rng=np.random.default_rng(rng_seed + 2))
    sim.run()
    return network, sim


class TestD3UnderLoss:
    def test_leaf_detection_unaffected(self):
        lossless, _ = d3_run(loss_rate=0.0)
        lossy, sim = d3_run(loss_rate=0.5)
        assert sim.messages_lost > 0
        hit = [d for d in lossy.log.at_level(1)
               if d.tick == 500 and d.origin == 0]
        assert len(hit) == 1   # local decision needs no radio

    def test_escalation_degrades_gracefully(self):
        # With heavy loss some reports never reach the parents, but the
        # system keeps running and never crashes or misroutes.
        lossy, sim = d3_run(loss_rate=0.8, rng_seed=3)
        level1 = len(lossy.log.at_level(1))
        level2 = len(lossy.log.at_level(2))
        assert level2 <= level1
        assert sim.counter.total_messages > 0


class TestMGDDUnderLoss:
    def test_model_dissemination_survives_moderate_loss(self):
        hierarchy = build_hierarchy(8, 4)
        config = MGDDConfig(
            spec=MDEFSpec(sampling_radius=0.08, counting_radius=0.01,
                          min_mdef=0.8),
            window_size=400, sample_size=40, sample_fraction=0.5,
            warmup=400)
        network = build_mgdd_network(hierarchy, config, 1,
                                     rng=np.random.default_rng(5))
        streams = StreamSet.from_arrays(make_plateau_streams(8, 900, seed=6))
        sim = NetworkSimulator(hierarchy, network.nodes, streams,
                               loss_rate=0.3,
                               rng=np.random.default_rng(7))
        sim.run()
        assert sim.messages_lost > 0
        # Updates keep flowing; every leaf ends up with a usable model.
        filled = [network.nodes[leaf].global_copy.model() is not None
                  for leaf in hierarchy.leaf_ids]
        assert all(filled)
