"""Reproducibility: same seed, same simulation, bit for bit."""

from __future__ import annotations

import numpy as np

from repro.core.mdef import MDEFSpec
from repro.core.outliers import DistanceOutlierSpec
from repro.data.streams import StreamSet
from repro.data.synthetic import make_mixture_streams, make_plateau_streams
from repro.detectors.d3 import D3Config, build_d3_network
from repro.detectors.mgdd import MGDDConfig, build_mgdd_network
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy


def run_d3(seed):
    hierarchy = build_hierarchy(8, 4)
    config = D3Config(
        spec=DistanceOutlierSpec(radius=0.01, count_threshold=5),
        window_size=300, sample_size=30, sample_fraction=0.5, warmup=300)
    network = build_d3_network(hierarchy, config, 1,
                               rng=np.random.default_rng(seed))
    streams = StreamSet.from_arrays(make_mixture_streams(8, 600, seed=seed))
    sim = NetworkSimulator(hierarchy, network.nodes, streams)
    sim.run()
    detections = [(d.tick, d.origin, d.level, float(d.value[0]))
                  for d in network.log.detections]
    return detections, dict(sim.counter.counts)


def run_mgdd(seed):
    hierarchy = build_hierarchy(8, 4)
    config = MGDDConfig(
        spec=MDEFSpec(sampling_radius=0.08, counting_radius=0.01,
                      min_mdef=0.8),
        window_size=300, sample_size=30, sample_fraction=0.5, warmup=300)
    network = build_mgdd_network(hierarchy, config, 1,
                                 rng=np.random.default_rng(seed))
    streams = StreamSet.from_arrays(make_plateau_streams(8, 600, seed=seed))
    sim = NetworkSimulator(hierarchy, network.nodes, streams)
    sim.run()
    detections = [(d.tick, d.origin) for d in network.log.detections]
    return detections, dict(sim.counter.counts)


class TestDeterminism:
    def test_d3_identical_across_invocations(self):
        first = run_d3(seed=9)
        second = run_d3(seed=9)
        assert first == second

    def test_d3_differs_across_seeds(self):
        _, counts_a = run_d3(seed=9)
        _, counts_b = run_d3(seed=10)
        assert counts_a != counts_b

    def test_mgdd_identical_across_invocations(self):
        assert run_mgdd(seed=4) == run_mgdd(seed=4)

    def test_harness_experiment_reproducible(self):
        from repro.eval.harness import ExperimentConfig, run_accuracy_run
        config = ExperimentConfig(algorithm="d3", n_leaves=4,
                                  window_size=250, measure_ticks=150,
                                  truth_stride=4, n_runs=1)
        a = run_accuracy_run(config, seed=3)
        b = run_accuracy_run(config, seed=3)
        for level in a.levels:
            assert a.levels[level].kernel == b.levels[level].kernel
            assert a.n_true_outliers[level] == b.n_true_outliers[level]
