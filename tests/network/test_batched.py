"""Epoch-batched simulation reproduces the per-tick simulation exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mdef import MDEFSpec
from repro.core.outliers import DistanceOutlierSpec
from repro.data.streams import StreamSet
from repro.data.synthetic import make_mixture_streams, make_plateau_streams
from repro.detectors.d3 import D3Config, build_d3_network
from repro.detectors.mgdd import MGDDConfig, build_mgdd_network
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy


def build_d3(seed, **sim_kwargs):
    hierarchy = build_hierarchy(8, 4)
    config = D3Config(
        spec=DistanceOutlierSpec(radius=0.01, count_threshold=5),
        window_size=300, sample_size=30, sample_fraction=0.5, warmup=300)
    network = build_d3_network(hierarchy, config, 1,
                               rng=np.random.default_rng(seed))
    streams = StreamSet.from_arrays(make_mixture_streams(8, 600, seed=seed))
    sim = NetworkSimulator(hierarchy, network.nodes, streams, **sim_kwargs)
    return network, sim


def build_mgdd(seed):
    hierarchy = build_hierarchy(8, 4)
    config = MGDDConfig(
        spec=MDEFSpec(sampling_radius=0.08, counting_radius=0.01,
                      min_mdef=0.8),
        window_size=300, sample_size=30, sample_fraction=0.5, warmup=300)
    network = build_mgdd_network(hierarchy, config, 1,
                                 rng=np.random.default_rng(seed))
    streams = StreamSet.from_arrays(make_plateau_streams(8, 600, seed=seed))
    sim = NetworkSimulator(hierarchy, network.nodes, streams)
    return network, sim


def snapshot(network, sim):
    detections = [(d.tick, d.node_id, d.origin, d.level)
                  for d in network.log.detections]
    return detections, dict(sim.counter.counts), sim.tick


def loss_snapshot(network, sim):
    """Snapshot extended with the per-attempt outcome accounting."""
    return (snapshot(network, sim), sim.messages_lost,
            dict(sim.counter.delivered), dict(sim.counter.dropped),
            sim.drops_by_reason)


class TestBatchedEquivalence:
    @pytest.mark.parametrize("epoch_size", [64, 17, 1])
    def test_d3_run_batched_identical(self, epoch_size):
        network_a, sim_a = build_d3(seed=9)
        sim_a.run()
        network_b, sim_b = build_d3(seed=9)
        sim_b.run_batched(epoch_size=epoch_size)
        assert snapshot(network_a, sim_a) == snapshot(network_b, sim_b)

    @pytest.mark.parametrize("epoch_size", [64, 17])
    def test_mgdd_run_batched_identical(self, epoch_size):
        network_a, sim_a = build_mgdd(seed=4)
        sim_a.run()
        network_b, sim_b = build_mgdd(seed=4)
        sim_b.run_batched(epoch_size=epoch_size)
        assert snapshot(network_a, sim_a) == snapshot(network_b, sim_b)

    def test_step_epoch_resumable_mid_run(self):
        """Interleaving epochs of different sizes matches one run()."""
        network_a, sim_a = build_d3(seed=3)
        sim_a.run()
        network_b, sim_b = build_d3(seed=3)
        for n_ticks in (100, 1, 37, 462):
            sim_b.step_epoch(n_ticks)
        assert snapshot(network_a, sim_a) == snapshot(network_b, sim_b)

    def test_on_tick_callback_fires_per_tick(self):
        _, sim = build_d3(seed=5)
        seen = []
        sim.run_batched(200, epoch_size=64, on_tick=seen.append)
        assert seen == list(range(200))


class TestLossyBatchedEquivalence:
    """Satellite (d): the two ingestion paths consume the loss rng in the
    same order, so detections, counters, and loss patterns all match."""

    @pytest.mark.parametrize("epoch_size", [64, 17])
    def test_d3_lossy_runs_identical(self, epoch_size):
        network_a, sim_a = build_d3(seed=9, loss_rate=0.2,
                                    rng=np.random.default_rng(11))
        sim_a.run()
        network_b, sim_b = build_d3(seed=9, loss_rate=0.2,
                                    rng=np.random.default_rng(11))
        sim_b.run_batched(epoch_size=epoch_size)
        assert loss_snapshot(network_a, sim_a) \
            == loss_snapshot(network_b, sim_b)
        assert sim_a.messages_lost > 0

    def test_d3_lossy_step_vs_step_epoch(self):
        network_a, sim_a = build_d3(seed=3, loss_rate=0.3,
                                    rng=np.random.default_rng(5))
        for _ in range(600):
            sim_a.step()
        network_b, sim_b = build_d3(seed=3, loss_rate=0.3,
                                    rng=np.random.default_rng(5))
        for n_ticks in (100, 1, 37, 462):
            sim_b.step_epoch(n_ticks)
        assert loss_snapshot(network_a, sim_a) \
            == loss_snapshot(network_b, sim_b)

    def test_d3_crash_plan_runs_identical(self):
        from repro.network.faults import CrashWindow, FaultPlan
        # Crash a leaf (stops sending) and an L2 leader (node 8: its
        # children's forwards drop while it is down).
        faults = FaultPlan(crashes=[CrashWindow(node=1, start=350, end=450),
                                    CrashWindow(node=8, start=400, end=500)])
        network_a, sim_a = build_d3(seed=9, loss_rate=0.1, faults=faults,
                                    rng=np.random.default_rng(2))
        sim_a.run()
        network_b, sim_b = build_d3(seed=9, loss_rate=0.1, faults=faults,
                                    rng=np.random.default_rng(2))
        sim_b.run_batched(epoch_size=64)
        assert loss_snapshot(network_a, sim_a) \
            == loss_snapshot(network_b, sim_b)
        assert sim_a.drops_by_reason.get("crash", 0) > 0
