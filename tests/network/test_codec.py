"""16-bit wire encoding of model state."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import ParameterError
from repro.core.estimator import KernelDensityEstimator
from repro.network.codec import (
    decode_model_state,
    decode_values,
    encode_model_state,
    encode_values,
    quantization_step,
)


class TestValueCodec:
    def test_roundtrip_error_below_quantisation(self, rng):
        values = rng.uniform(size=(50, 2))
        decoded = decode_values(encode_values(values), (50, 2))
        assert np.abs(decoded - values).max() <= quantization_step()

    def test_two_bytes_per_number(self, rng):
        values = rng.uniform(size=123)
        assert len(encode_values(values)) == 123 * 2

    def test_endpoints_exact(self):
        decoded = decode_values(encode_values(np.array([0.0, 1.0])), (2,))
        assert decoded.tolist() == [0.0, 1.0]

    def test_out_of_domain_rejected(self):
        with pytest.raises(ParameterError):
            encode_values(np.array([1.5]))
        with pytest.raises(ParameterError):
            encode_values(np.array([float("nan")]))

    def test_shape_mismatch_rejected(self, rng):
        payload = encode_values(rng.uniform(size=4))
        with pytest.raises(ParameterError):
            decode_values(payload, (5,))


class TestModelCodec:
    def test_roundtrip(self, rng):
        sample = rng.uniform(size=(64, 2))
        stddev = np.array([0.05, 0.08])
        payload = encode_model_state(sample, stddev, window_size=10_240)
        out_sample, out_stddev, out_window = decode_model_state(payload)
        assert out_window == 10_240
        np.testing.assert_allclose(out_sample, sample,
                                   atol=quantization_step())
        np.testing.assert_allclose(out_stddev, stddev,
                                   atol=quantization_step())

    def test_payload_size_matches_word_accounting(self, rng):
        sample = rng.uniform(size=(100, 1))
        payload = encode_model_state(sample, np.array([0.1]), 500)
        # header (4 words) + stddev (1) + sample (100), 2 bytes each.
        assert len(payload) == (4 + 1 + 100) * 2

    def test_decoded_model_operationally_identical(self, gaussian_window):
        model = KernelDensityEstimator.from_window(gaussian_window, 200)
        payload = encode_model_state(model.sample,
                                     gaussian_window.std(keepdims=True),
                                     model.window_size)
        sample, stddev, window = decode_model_state(payload)
        clone = KernelDensityEstimator(sample, stddev=stddev,
                                       window_size=window)
        for p in (0.35, 0.40, 0.45, 0.8):
            original = float(np.asarray(model.neighborhood_count(p, 0.01)))
            decoded = float(np.asarray(clone.neighborhood_count(p, 0.01)))
            assert decoded == pytest.approx(original, rel=0.01, abs=0.5)

    def test_large_window_size(self, rng):
        payload = encode_model_state(rng.uniform(size=(2, 1)),
                                     np.array([0.1]), 2**20)
        assert decode_model_state(payload)[2] == 2**20

    @pytest.mark.parametrize("mutator", [
        lambda p: p[:5],                 # truncated header
        lambda p: p + b"\x00\x00",       # trailing garbage
    ])
    def test_corrupt_payload_rejected(self, rng, mutator):
        payload = encode_model_state(rng.uniform(size=(4, 1)),
                                     np.array([0.1]), 100)
        with pytest.raises(ParameterError):
            decode_model_state(mutator(payload))

    def test_invalid_inputs(self, rng):
        with pytest.raises(ParameterError):
            encode_model_state(rng.uniform(size=4), np.array([0.1]), 10)
        with pytest.raises(ParameterError):
            encode_model_state(rng.uniform(size=(4, 1)),
                               np.array([0.1, 0.2]), 10)
        with pytest.raises(ParameterError):
            encode_model_state(rng.uniform(size=(4, 1)),
                               np.array([0.1]), 0)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=1, max_value=2**31))
def test_model_codec_roundtrip_property(n, d, window):
    rng = np.random.default_rng(n * 100 + d)
    sample = rng.uniform(size=(n, d))
    stddev = rng.uniform(0, 1, size=d)
    out_sample, out_stddev, out_window = decode_model_state(
        encode_model_state(sample, stddev, window))
    assert out_window == window
    assert np.abs(out_sample - sample).max() <= quantization_step()
    assert np.abs(out_stddev - stddev).max() <= quantization_step()
