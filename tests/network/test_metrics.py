"""Resource reports (paper Section 10.3)."""

from __future__ import annotations

import numpy as np

from repro.network.messages import MessageCounter, ValueForward
from repro.network.metrics import CommunicationReport, MemoryReport


class TestMemoryReport:
    def test_totals(self):
        report = MemoryReport(sample_words=1000, variance_words=150,
                              model_words=200)
        assert report.total_words == 1350
        assert report.total_bytes == 2700   # 16-bit words

    def test_model_words_default_zero(self):
        report = MemoryReport(sample_words=10, variance_words=5)
        assert report.total_words == 15


class TestCommunicationReport:
    def test_rates(self):
        counter = MessageCounter()
        for _ in range(100):
            counter.record(ValueForward(value=np.array([0.1])))
        report = CommunicationReport(n_ticks=50, n_nodes=10, counter=counter)
        assert report.messages_per_second == 2.0
        assert report.messages_per_node_per_second == 0.2

    def test_zero_nodes(self):
        report = CommunicationReport(n_ticks=10, n_nodes=0,
                                     counter=MessageCounter())
        assert report.messages_per_node_per_second == 0.0
