"""Resource reports (paper Section 10.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.messages import (
    Ack,
    MessageCounter,
    ModelHandoff,
    ModelUpdate,
    OutlierReport,
    ValueForward,
)
from repro.network.metrics import (
    BYTES_PER_WORD,
    CommunicationReport,
    MemoryReport,
)


class TestMemoryReport:
    def test_totals(self):
        report = MemoryReport(sample_words=1000, variance_words=150,
                              model_words=200)
        assert report.total_words == 1350
        assert report.total_bytes == 2700   # 16-bit words

    def test_model_words_default_zero(self):
        report = MemoryReport(sample_words=10, variance_words=5)
        assert report.total_words == 15

    def test_bytes_use_16_bit_words(self):
        assert BYTES_PER_WORD == 2
        report = MemoryReport(sample_words=7, variance_words=0)
        assert report.total_bytes == 7 * BYTES_PER_WORD

    def test_zero_report(self):
        report = MemoryReport(sample_words=0, variance_words=0)
        assert report.total_words == 0
        assert report.total_bytes == 0

    def test_frozen(self):
        report = MemoryReport(sample_words=1, variance_words=1)
        with pytest.raises(AttributeError):
            report.sample_words = 2   # type: ignore[misc]


class TestCommunicationReport:
    def test_rates(self):
        counter = MessageCounter()
        for _ in range(100):
            counter.record(ValueForward(value=np.array([0.1])))
        report = CommunicationReport(n_ticks=50, n_nodes=10, counter=counter)
        assert report.messages_per_second == 2.0
        assert report.messages_per_node_per_second == 0.2

    def test_zero_nodes(self):
        report = CommunicationReport(n_ticks=10, n_nodes=0,
                                     counter=MessageCounter())
        assert report.messages_per_node_per_second == 0.0

    def test_zero_ticks(self):
        counter = MessageCounter()
        counter.record(Ack(seq=0))
        report = CommunicationReport(n_ticks=0, n_nodes=4, counter=counter)
        assert report.messages_per_second == 0.0
        assert report.messages_per_node_per_second == 0.0


class TestWordAccounting:
    """The per-kind word/byte accounting the paper's cost model rests on."""

    def test_value_forward_words(self):
        # d values + 1 timestamp word.
        assert ValueForward(value=np.zeros(3)).size_words() == 4
        assert ValueForward(value=np.zeros(1)).size_words() == 2

    def test_outlier_report_words(self):
        # d values + origin + flagged_level + tick.
        message = OutlierReport(value=np.zeros(2), origin=1,
                                flagged_level=1, tick=9)
        assert message.size_words() == 5

    def test_model_update_words_incremental(self):
        # stddev (d) + window word + per-slot values + slot indices.
        message = ModelUpdate(stddev=np.zeros(1), slots=(0, 3),
                              value=np.zeros(2))
        assert message.size_words() == 1 + 1 + 2 + 2

    def test_model_update_words_full_broadcast(self):
        message = ModelUpdate(stddev=np.zeros(1),
                              full_sample=np.zeros((5, 2)))
        assert message.size_words() == 1 + 1 + 10

    def test_ack_and_handoff_words(self):
        assert Ack(seq=17).size_words() == 2
        assert ModelHandoff(leader=0, words=123).size_words() == 123

    def test_counter_accumulates_words_by_kind(self):
        counter = MessageCounter()
        counter.record(ValueForward(value=np.zeros(3)))   # 4 words
        counter.record(ValueForward(value=np.zeros(3)))   # 4 words
        counter.record(Ack(seq=0))                        # 2 words
        assert counter.words == {"ValueForward": 8, "Ack": 2}
        assert counter.total_words == 10
        # Bytes at the paper's 16-bit word size.
        assert counter.total_words * BYTES_PER_WORD == 20


class TestCounterConservation:
    def test_identity_holds_when_outcomes_recorded(self):
        counter = MessageCounter()
        message = ValueForward(value=np.zeros(1))
        counter.record(message)
        counter.record(message)
        counter.record_delivered(message)
        counter.record_dropped(message)
        assert counter.conservation_failures() == []
        assert counter.total_messages == 2
        assert counter.total_delivered == 1
        assert counter.total_dropped == 1

    def test_identity_violation_reported_per_kind(self):
        counter = MessageCounter()
        counter.record(ValueForward(value=np.zeros(1)))
        counter.record(Ack(seq=0))
        counter.record_delivered(Ack(seq=0))
        assert counter.conservation_failures() == ["ValueForward"]
