"""Reliable transport: acks, retransmission, parking, dedup."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.data.streams import StreamSet
from repro.network.faults import CrashWindow, FaultPlan
from repro.network.messages import ValueForward
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy
from repro.network.transport import ReliableTransport, TransportConfig

from tests.network.test_simulator import CollectingNode, ForwardingLeaf


def _msg():
    return ValueForward(value=np.array([0.5]))


class TestTransportConfig:
    def test_backoff_schedule(self):
        config = TransportConfig(backoff_base=2, backoff_factor=3)
        assert config.backoff_ticks(1) == 2
        assert config.backoff_ticks(2) == 6
        assert config.backoff_ticks(3) == 18

    def test_validation(self):
        with pytest.raises(ParameterError):
            TransportConfig(max_retries=-1)
        with pytest.raises(ParameterError):
            TransportConfig(backoff_base=0)
        with pytest.raises(ParameterError):
            TransportConfig(backoff_factor=0)
        with pytest.raises(ParameterError):
            TransportConfig(max_parked=0)
        TransportConfig(max_parked=None)
        TransportConfig(max_parked=1)


class TestReliableTransportState:
    def test_submit_due_immediately(self):
        transport = ReliableTransport(config=TransportConfig())
        entry = transport.submit(0, 1, _msg(), tick=5)
        due = transport.collect_due(5, lambda node, tick: False)
        assert due == [entry]

    def test_acknowledge_retires(self):
        transport = ReliableTransport(config=TransportConfig())
        entry = transport.submit(0, 1, _msg(), tick=0)
        transport.acknowledge(entry)
        assert transport.n_pending == 0
        assert not transport.collect_due(10, lambda node, tick: False)

    def test_backoff_then_expiry(self):
        transport = ReliableTransport(
            config=TransportConfig(max_retries=2, backoff_base=1,
                                   backoff_factor=2))
        entry = transport.submit(0, 1, _msg(), tick=0)
        # Attempt 1 fails: retry after 1 tick.  Attempt 2 fails: retry
        # after 2 more.  Attempt 3 fails: budget exhausted.
        transport.note_attempt(entry)
        assert transport.schedule_or_expire(entry, 0)
        assert entry.next_attempt == 1
        transport.note_attempt(entry)
        assert transport.schedule_or_expire(entry, 1)
        assert entry.next_attempt == 3
        transport.note_attempt(entry)
        assert not transport.schedule_or_expire(entry, 3)
        assert transport.n_expired == 1
        assert transport.n_retransmissions == 2
        assert transport.n_pending == 0

    def test_sender_crash_drops_pending(self):
        transport = ReliableTransport(config=TransportConfig())
        transport.submit(0, 1, _msg(), tick=0)
        due = transport.collect_due(1, lambda node, tick: node == 0)
        assert due == []
        assert transport.n_sender_crashes == 1
        assert transport.n_pending == 0

    def test_park_and_flush_on_recovery(self):
        transport = ReliableTransport(config=TransportConfig())
        entry = transport.submit(0, 1, _msg(), tick=0)
        transport.park(entry)
        assert transport.n_parked == 1
        assert not transport.collect_due(1, lambda node, tick: node == 1)
        due = transport.collect_due(2, lambda node, tick: False)
        assert due == [entry]
        assert not entry.parked
        assert transport.n_park_flushes == 1

    def test_bounded_park_evicts_oldest_first(self):
        transport = ReliableTransport(
            config=TransportConfig(max_parked=2))
        entries = [transport.submit(0, 1, _msg(), tick=t)
                   for t in range(3)]
        assert transport.park(entries[0]) is None
        assert transport.park(entries[1]) is None
        evicted = transport.park(entries[2])
        assert evicted is entries[0]
        assert transport.n_park_evictions == 1
        assert transport.n_parked == 2
        assert entries[0].seq not in transport._pending
        assert transport.stats()["park_evictions"] == 1

    def test_unbounded_park_never_evicts(self):
        transport = ReliableTransport(config=TransportConfig())
        for t in range(50):
            entry = transport.submit(0, 1, _msg(), tick=t)
            assert transport.park(entry) is None
        assert transport.n_parked == 50
        assert transport.n_park_evictions == 0


def build_lossy_sim(loss_rate, transport=None, faults=None, length=12,
                    seed=0, **kwargs):
    hierarchy = build_hierarchy(2, 2)
    rng = np.random.default_rng(seed)
    streams = StreamSet.from_arrays(
        [rng.uniform(size=(length, 1)) for _ in range(2)])
    nodes = {leaf: ForwardingLeaf(leaf, hierarchy.parent_of(leaf))
             for leaf in hierarchy.leaf_ids}
    nodes[hierarchy.root_id] = CollectingNode(hierarchy.root_id)
    sim = NetworkSimulator(hierarchy, nodes, streams,
                           loss_rate=loss_rate, transport=transport,
                           faults=faults,
                           rng=np.random.default_rng(seed + 100), **kwargs)
    return hierarchy, nodes, sim


class TestSimulatorIntegration:
    def test_retransmission_recovers_lost_messages(self):
        # Heavy loss without transport loses messages for good; with the
        # shim, retries push delivery close to complete.
        _, bare_nodes, bare = build_lossy_sim(0.5)
        bare.run()
        _, rel_nodes, reliable = build_lossy_sim(
            0.5, transport=TransportConfig(max_retries=8))
        reliable.run()
        bare_got = len(bare_nodes[bare.hierarchy.root_id].received)
        rel_got = len(rel_nodes[reliable.hierarchy.root_id].received)
        assert rel_got > bare_got
        assert reliable.transport.n_retransmissions > 0

    def test_every_attempt_and_ack_counted(self):
        _, _, sim = build_lossy_sim(
            0.3, transport=TransportConfig(max_retries=4))
        sim.run()
        counter = sim.counter
        assert counter.conservation_failures() == []
        # Data attempts = the 2-per-tick originals + retransmissions.
        assert counter.counts["ValueForward"] == \
            2 * sim.tick + sim.transport.n_retransmissions
        # Every delivered data attempt triggers exactly one ack attempt.
        assert counter.counts["Ack"] == counter.delivered["ValueForward"]

    def test_exactly_once_delivery_to_behaviour(self):
        # Lost acks force retransmission of already-delivered messages;
        # the receiver-side dedup must keep the app-level count at one
        # per original send.
        hierarchy, nodes, sim = build_lossy_sim(
            0.4, transport=TransportConfig(max_retries=10), length=30,
            seed=3)
        sim.run()
        root = nodes[hierarchy.root_id]
        n_sent = 2 * sim.tick   # every leaf forwards every reading
        expired = sim.transport.n_expired
        pending = sim.transport.n_pending
        # Each original is delivered to the behaviour at most once, and
        # only expired/pending ones may be missing.
        assert len(root.received) <= n_sent
        assert len(root.received) >= n_sent - expired - pending

    def test_total_loss_expires_after_budget(self):
        _, nodes, sim = build_lossy_sim(
            1.0, transport=TransportConfig(max_retries=2), length=12)
        sim.run()
        assert len(nodes[sim.hierarchy.root_id].received) == 0
        assert sim.transport.n_expired > 0
        assert sim.counter.conservation_failures() == []

    def test_parked_messages_flush_on_recovery(self):
        # The root (node 2) is down for ticks [2, 6): leaf messages park
        # and flush when it recovers, with nothing dropped.
        faults = FaultPlan(crashes=[CrashWindow(node=2, start=2, end=6)])
        hierarchy, nodes, sim = build_lossy_sim(
            0.0, transport=TransportConfig(max_retries=3), faults=faults,
            length=10)
        assert hierarchy.root_id == 2
        sim.run()
        root = nodes[hierarchy.root_id]
        # All 2 x 10 forwards eventually arrive (none lost, parking only).
        assert len(root.received) == 20
        assert sim.transport.n_park_flushes > 0
        assert sim.counter.conservation_failures() == []

    def test_bounded_park_charges_evictions_as_drops(self):
        # A long root outage with a tiny park buffer: evictions happen,
        # are charged as drops (reason "park-evict"), and the per-kind
        # conservation identity still holds exactly.
        faults = FaultPlan(crashes=[CrashWindow(node=2, start=1, end=9)])
        hierarchy, nodes, sim = build_lossy_sim(
            0.0, transport=TransportConfig(max_retries=3, max_parked=3),
            faults=faults, length=12)
        sim.run()
        assert sim.transport.n_park_evictions > 0
        assert sim.drops_by_reason["park-evict"] == \
            sim.transport.n_park_evictions
        assert sim.counter.conservation_failures() == []
        assert sim.counter.total_messages == \
            sim.counter.total_delivered + sim.counter.total_dropped
        # Evicted forwards never reach the root.
        root = nodes[hierarchy.root_id]
        assert len(root.received) == 24 - sim.transport.n_park_evictions

    def test_sender_crash_loses_its_buffer(self):
        # Leaf 0 crashes while the root is down: its parked messages die
        # with it, leaf 1's flush through.
        faults = FaultPlan(crashes=[
            CrashWindow(node=2, start=2, end=6),
            CrashWindow(node=0, start=4, end=None)])
        hierarchy, nodes, sim = build_lossy_sim(
            0.0, transport=TransportConfig(max_retries=3), faults=faults,
            length=10)
        sim.run()
        assert sim.transport.n_sender_crashes > 0
        senders = [sender for _, sender, _
                   in nodes[hierarchy.root_id].received]
        assert senders.count(1) == 10
        assert senders.count(0) < 10
