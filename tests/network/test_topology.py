"""Hierarchy construction (paper Section 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import TopologyError
from repro.network.topology import build_hierarchy


class TestPaperTopology:
    """32 leaves with two tiers of leaders above (plus the root)."""

    def test_level_sizes(self):
        h = build_hierarchy(32, branching=4)
        assert [len(tier) for tier in h.levels] == [32, 8, 2, 1]
        assert h.n_levels == 4

    def test_leaves_and_root(self):
        h = build_hierarchy(32, branching=4)
        assert h.leaf_ids == tuple(range(32))
        assert h.root_id == h.levels[-1][0]
        assert h.parent_of(h.root_id) is None

    def test_every_nonroot_has_parent_one_level_up(self):
        h = build_hierarchy(32, branching=4)
        for level_idx, tier in enumerate(h.levels[:-1]):
            for node in tier:
                parent = h.parent_of(node)
                assert parent in h.levels[level_idx + 1]

    def test_leaves_under_root_is_everything(self):
        h = build_hierarchy(32, branching=4)
        assert sorted(h.leaves_under(h.root_id)) == list(range(32))

    def test_leaves_under_leaf_is_itself(self):
        h = build_hierarchy(32, branching=4)
        assert h.leaves_under(5) == (5,)

    def test_level_of(self):
        h = build_hierarchy(32, branching=4)
        assert h.level_of(0) == 1
        assert h.level_of(h.root_id) == 4

    def test_level_of_unknown_node(self):
        h = build_hierarchy(4, branching=2)
        with pytest.raises(TopologyError):
            h.level_of(999)

    def test_edges_count(self):
        h = build_hierarchy(32, branching=4)
        assert len(h.edges()) == h.n_nodes - 1


class TestGeneralShapes:
    def test_single_leaf(self):
        h = build_hierarchy(1)
        assert h.n_nodes == 1
        assert h.root_id == 0
        assert h.leaf_ids == (0,)

    def test_non_divisible_leaf_count(self):
        h = build_hierarchy(10, branching=4)
        assert [len(t) for t in h.levels] == [10, 3, 1]

    def test_positions_inside_unit_square(self):
        h = build_hierarchy(25, branching=5)
        for x, y in h.positions.values():
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_leader_position_is_cell_centroid(self):
        h = build_hierarchy(4, branching=4)
        leader = h.root_id
        xs = [h.positions[leaf][0] for leaf in h.leaf_ids]
        assert h.positions[leader][0] == pytest.approx(sum(xs) / 4)

    def test_invalid_branching(self):
        with pytest.raises(TopologyError):
            build_hierarchy(8, branching=1)

    def test_invalid_leaf_count(self):
        from repro._exceptions import ParameterError
        with pytest.raises(ParameterError):
            build_hierarchy(0)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=2, max_value=8))
def test_structural_invariants(n_leaves, branching):
    h = build_hierarchy(n_leaves, branching)
    # Every node appears in exactly one level.
    all_nodes = [node for tier in h.levels for node in tier]
    assert sorted(all_nodes) == sorted(h.parents)
    assert len(set(all_nodes)) == h.n_nodes
    # Exactly one root; every other node's parent is its ancestor tier.
    roots = [n for n, p in h.parents.items() if p is None]
    assert roots == [h.root_id]
    # Children/parents agree.
    for node, parent in h.parents.items():
        if parent is not None:
            assert node in h.children_of(parent)
    # The root covers every leaf exactly once.
    assert sorted(h.leaves_under(h.root_id)) == list(range(n_leaves))
