"""Leader election / rotation."""

from __future__ import annotations

import pytest

from repro._exceptions import ParameterError, TopologyError
from repro.network.election import (
    EnergyAwareElection,
    RoundRobinElection,
    handoff_cost_words,
)
from repro.network.topology import build_hierarchy


class TestRoundRobin:
    def test_every_member_serves_equally(self):
        hierarchy = build_hierarchy(8, 4)
        election = RoundRobinElection(hierarchy, epoch_length=10)
        leader = hierarchy.levels[1][0]
        members = hierarchy.leaves_under(leader)
        served = [election.assignment(epoch * 10).bearer_of(leader)
                  for epoch in range(2 * len(members))]
        for member in members:
            assert served.count(member) == 2

    def test_assignment_stable_within_epoch(self):
        hierarchy = build_hierarchy(8, 4)
        election = RoundRobinElection(hierarchy, epoch_length=100)
        a = election.assignment(5)
        b = election.assignment(99)
        assert a.bearer == b.bearer
        assert a.epoch == b.epoch == 0

    def test_bearer_is_a_subtree_member(self):
        hierarchy = build_hierarchy(16, 4)
        election = RoundRobinElection(hierarchy, epoch_length=1)
        for tick in range(8):
            assignment = election.assignment(tick)
            for leader, bearer in assignment.bearer.items():
                assert bearer in hierarchy.leaves_under(leader)

    def test_root_rotation_covers_all_leaves(self):
        hierarchy = build_hierarchy(8, 4)
        election = RoundRobinElection(hierarchy, epoch_length=1)
        root = hierarchy.root_id
        bearers = {election.assignment(t).bearer_of(root) for t in range(8)}
        assert bearers == set(hierarchy.leaf_ids)

    def test_unknown_leader_rejected(self):
        hierarchy = build_hierarchy(8, 4)
        election = RoundRobinElection(hierarchy, epoch_length=1)
        with pytest.raises(TopologyError):
            election.assignment(0).bearer_of(0)   # a leaf, not a leader

    def test_single_node_hierarchy_rejected(self):
        with pytest.raises(TopologyError):
            RoundRobinElection(build_hierarchy(1), epoch_length=1)

    def test_negative_tick_rejected(self):
        election = RoundRobinElection(build_hierarchy(4, 4), epoch_length=5)
        with pytest.raises(ParameterError):
            election.assignment(-1)


class TestEnergyAware:
    def test_least_spent_member_elected(self):
        hierarchy = build_hierarchy(4, 4)
        election = EnergyAwareElection(hierarchy, epoch_length=10)
        spent = {0: 5.0, 1: 1.0, 2: 9.0, 3: 4.0}
        assignment = election.assignment(0, spent)
        assert assignment.bearer_of(hierarchy.root_id) == 1

    def test_ties_break_to_lowest_id(self):
        hierarchy = build_hierarchy(4, 4)
        election = EnergyAwareElection(hierarchy, epoch_length=10)
        assignment = election.assignment(0, {})
        assert assignment.bearer_of(hierarchy.root_id) == 0

    def test_rotation_balances_energy(self):
        """Repeatedly charging the bearer and re-electing equalises spend."""
        hierarchy = build_hierarchy(4, 4)
        election = EnergyAwareElection(hierarchy, epoch_length=1)
        spent = {leaf: 0.0 for leaf in hierarchy.leaf_ids}
        for epoch in range(40):
            bearer = election.assignment(epoch, spent).bearer_of(
                hierarchy.root_id)
            spent[bearer] += 1.0
        values = list(spent.values())
        assert max(values) - min(values) <= 1.0


class TestHandoffCost:
    def test_formula(self):
        # |R| (d + 1) value+timestamp words plus the sketches.
        assert handoff_cost_words(100, 2, sketch_words=60) == 100 * 3 + 60

    def test_invalid(self):
        with pytest.raises(ParameterError):
            handoff_cost_words(0, 1, 10)
        with pytest.raises(ParameterError):
            handoff_cost_words(10, 1, -1)
