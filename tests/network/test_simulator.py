"""Tick-driven network simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import SimulationError, TopologyError
from repro.data.streams import StreamSet
from repro.network.messages import ValueForward
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy


class ForwardingLeaf:
    """Forwards every reading to its parent."""

    def __init__(self, node_id, parent):
        self.node_id = node_id
        self._parent = parent

    def on_reading(self, value, tick):
        if self._parent is None:
            return []
        return [(self._parent, ValueForward(value=np.array(value)))]

    def on_message(self, message, sender, tick):
        return []


class CollectingNode:
    """Absorbs everything; optionally relays upward."""

    def __init__(self, node_id, parent=None):
        self.node_id = node_id
        self._parent = parent
        self.received = []

    def on_reading(self, value, tick):
        return []

    def on_message(self, message, sender, tick):
        self.received.append((tick, sender, message))
        if self._parent is not None:
            return [(self._parent, message)]
        return []


class LoopingNode(CollectingNode):
    """Pathological: bounces every message back to the sender."""

    def on_message(self, message, sender, tick):
        return [(sender, message)]


def build_sim(n_leaves=4, branching=4, length=10, relays=False):
    hierarchy = build_hierarchy(n_leaves, branching)
    rng = np.random.default_rng(0)
    streams = StreamSet.from_arrays(
        [rng.uniform(size=(length, 1)) for _ in range(n_leaves)])
    nodes = {}
    for node in hierarchy.parents:
        if node in hierarchy.leaf_ids:
            nodes[node] = ForwardingLeaf(node, hierarchy.parent_of(node))
        else:
            parent = hierarchy.parent_of(node) if relays else None
            nodes[node] = CollectingNode(node, parent)
    return hierarchy, nodes, streams


class TestStepping:
    def test_messages_delivered_and_counted(self):
        hierarchy, nodes, streams = build_sim()
        sim = NetworkSimulator(hierarchy, nodes, streams)
        sim.step()
        root = nodes[hierarchy.root_id]
        assert len(root.received) == 4
        assert sim.counter.total_messages == 4
        assert sim.tick == 1

    def test_relays_multiply_hops(self):
        hierarchy, nodes, streams = build_sim(n_leaves=16, relays=True)
        sim = NetworkSimulator(hierarchy, nodes, streams)
        sim.step()
        # 16 leaf->L2 messages, each relayed L2->root: 32 transmissions.
        assert sim.counter.total_messages == 32
        assert len(nodes[hierarchy.root_id].received) == 16

    def test_run_all_remaining(self):
        hierarchy, nodes, streams = build_sim(length=7)
        sim = NetworkSimulator(hierarchy, nodes, streams)
        sim.run()
        assert sim.tick == 7
        assert sim.n_ticks_available == 0

    def test_step_past_end_rejected(self):
        hierarchy, nodes, streams = build_sim(length=2)
        sim = NetworkSimulator(hierarchy, nodes, streams)
        sim.run(2)
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_too_many_rejected(self):
        hierarchy, nodes, streams = build_sim(length=3)
        sim = NetworkSimulator(hierarchy, nodes, streams)
        with pytest.raises(SimulationError):
            sim.run(4)

    def test_on_tick_called_in_order(self):
        hierarchy, nodes, streams = build_sim(length=5)
        sim = NetworkSimulator(hierarchy, nodes, streams)
        seen = []
        sim.run(5, on_tick=seen.append)
        assert seen == [0, 1, 2, 3, 4]

    def test_message_storm_detected(self):
        """Two nodes bouncing one message forever must trip the guard."""
        hierarchy, nodes, streams = build_sim(n_leaves=4)
        root = hierarchy.root_id
        nodes[root] = LoopingNode(root)
        for leaf in hierarchy.leaf_ids:
            looper = LoopingNode(leaf)
            looper.on_reading = (
                lambda v, t, p=hierarchy.parent_of(leaf):
                [(p, ValueForward(value=np.array(v)))])
            nodes[leaf] = looper
        sim = NetworkSimulator(hierarchy, nodes, streams)
        with pytest.raises(SimulationError, match="storm"):
            sim.step()


class TestLossAccounting:
    def test_total_loss_rate_drops_everything(self):
        hierarchy, nodes, streams = build_sim(length=5)
        sim = NetworkSimulator(hierarchy, nodes, streams, loss_rate=1.0,
                               rng=np.random.default_rng(0))
        sim.run()
        assert len(nodes[hierarchy.root_id].received) == 0
        assert sim.messages_lost == sim.counter.total_messages == 20
        assert sim.counter.conservation_failures() == []

    def test_loss_rate_out_of_range_rejected(self):
        hierarchy, nodes, streams = build_sim()
        for bad in (1.5, -0.1):
            with pytest.raises(SimulationError):
                NetworkSimulator(hierarchy, nodes, streams, loss_rate=bad)

    def test_conservation_per_kind_under_loss(self):
        hierarchy, nodes, streams = build_sim(n_leaves=16, length=10,
                                              relays=True)
        sim = NetworkSimulator(hierarchy, nodes, streams, loss_rate=0.3,
                               rng=np.random.default_rng(1))
        sim.run()
        counter = sim.counter
        assert counter.conservation_failures() == []
        for kind, sent in counter.counts.items():
            assert sent == counter.delivered.get(kind, 0) \
                + counter.dropped.get(kind, 0)
        assert 0 < sim.messages_lost < counter.total_messages
        assert sim.messages_lost == counter.total_dropped

    def test_drops_attributed_by_reason(self):
        from repro.network.faults import CrashWindow, FaultPlan
        hierarchy, nodes, streams = build_sim(length=6)
        faults = FaultPlan(crashes=[
            CrashWindow(node=hierarchy.root_id, start=0, end=3)])
        sim = NetworkSimulator(hierarchy, nodes, streams, loss_rate=0.4,
                               faults=faults,
                               rng=np.random.default_rng(2))
        sim.run()
        reasons = sim.drops_by_reason
        assert reasons["crash"] > 0
        assert reasons["loss"] > 0
        # messages_lost counts radio losses; crash drops are separate.
        assert reasons["loss"] == sim.messages_lost
        assert sum(reasons.values()) == sim.counter.total_dropped


class TestDeliveryCap:
    def test_cap_is_configurable(self):
        # Finite traffic (4 sends + 4 bounces the leaves absorb) is
        # fine by the default guard but trips a tiny configured cap.
        hierarchy, nodes, streams = build_sim(n_leaves=4)
        nodes[hierarchy.root_id] = LoopingNode(hierarchy.root_id)
        sim = NetworkSimulator(hierarchy, nodes, streams,
                               max_deliveries_per_tick=5)
        with pytest.raises(SimulationError, match="storm"):
            sim.step()

    def test_cap_above_traffic_is_harmless(self):
        hierarchy, nodes, streams = build_sim()
        sim = NetworkSimulator(hierarchy, nodes, streams,
                               max_deliveries_per_tick=4)
        sim.step()
        assert len(nodes[hierarchy.root_id].received) == 4

    def test_cap_below_one_rejected(self):
        hierarchy, nodes, streams = build_sim()
        with pytest.raises(SimulationError):
            NetworkSimulator(hierarchy, nodes, streams,
                             max_deliveries_per_tick=0)


class TestValidation:
    def test_stream_count_mismatch(self):
        hierarchy, nodes, _ = build_sim(n_leaves=4)
        wrong = StreamSet.from_arrays([np.zeros((5, 1))] * 3)
        with pytest.raises(TopologyError):
            NetworkSimulator(hierarchy, nodes, wrong)

    def test_missing_node_behaviour(self):
        hierarchy, nodes, streams = build_sim(n_leaves=4)
        del nodes[hierarchy.root_id]
        with pytest.raises(TopologyError, match="no behaviour"):
            NetworkSimulator(hierarchy, nodes, streams)

    def test_unknown_destination(self):
        hierarchy, nodes, streams = build_sim(n_leaves=2, branching=2)
        leaf = nodes[0]
        leaf.on_reading = lambda v, t: [(999, ValueForward(value=np.array(v)))]
        sim = NetworkSimulator(hierarchy, nodes, streams)
        with pytest.raises(SimulationError, match="unknown node"):
            sim.step()
