"""Message taxonomy and accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.messages import (
    Ack,
    Message,
    MessageCounter,
    ModelHandoff,
    ModelUpdate,
    OutlierReport,
    ValueForward,
)


class TestSizes:
    def test_value_forward(self):
        msg = ValueForward(value=np.array([0.1, 0.2]))
        assert msg.size_words() == 3   # 2 coords + timestamp

    def test_outlier_report(self):
        msg = OutlierReport(value=np.array([0.1]), origin=3,
                            flagged_level=1, tick=7)
        assert msg.size_words() == 4

    def test_incremental_model_update(self):
        msg = ModelUpdate(stddev=np.array([0.05]), slots=(1, 4),
                          value=np.array([0.3]), window_size=100)
        # stddev(1) + window(1) + value(1) + 2 slots
        assert msg.size_words() == 5

    def test_full_model_update(self):
        msg = ModelUpdate(stddev=np.array([0.05, 0.04]),
                          full_sample=np.zeros((10, 2)), window_size=100)
        assert msg.size_words() == 2 + 1 + 20

    def test_ack(self):
        assert Ack(seq=17).size_words() == 2   # seq + timestamp

    def test_model_handoff(self):
        assert ModelHandoff(leader=9, words=85).size_words() == 85

    def test_base_class_abstract(self):
        with pytest.raises(NotImplementedError):
            Message().size_words()


class TestCounter:
    def test_counts_by_kind(self):
        counter = MessageCounter()
        counter.record(ValueForward(value=np.array([0.1])))
        counter.record(ValueForward(value=np.array([0.2])))
        counter.record(OutlierReport(value=np.array([0.1]), origin=0,
                                     flagged_level=1, tick=0))
        assert counter.counts == {"ValueForward": 2, "OutlierReport": 1}
        assert counter.total_messages == 3

    def test_words_accumulate(self):
        counter = MessageCounter()
        counter.record(ValueForward(value=np.array([0.1, 0.2])))
        assert counter.total_words == 3
        assert counter.words["ValueForward"] == 3

    def test_rate(self):
        counter = MessageCounter()
        for _ in range(10):
            counter.record(ValueForward(value=np.array([0.1])))
        assert counter.messages_per_tick(5) == 2.0
        assert counter.messages_per_tick(0) == 0.0

    def test_delivered_and_dropped_by_kind(self):
        counter = MessageCounter()
        msg = ValueForward(value=np.array([0.1]))
        for _ in range(3):
            counter.record(msg)
        counter.record_delivered(msg)
        counter.record_delivered(msg)
        counter.record_dropped(msg)
        assert counter.delivered == {"ValueForward": 2}
        assert counter.dropped == {"ValueForward": 1}
        assert counter.total_delivered == 2
        assert counter.total_dropped == 1

    def test_conservation_identity(self):
        counter = MessageCounter()
        msg = ValueForward(value=np.array([0.1]))
        ack = Ack(seq=1)
        counter.record(msg)
        counter.record_delivered(msg)
        counter.record(ack)
        assert counter.conservation_failures() == ["Ack"]
        counter.record_dropped(ack)
        assert counter.conservation_failures() == []
