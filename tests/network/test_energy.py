"""Radio energy accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.data.streams import StreamSet
from repro.detectors.centralized import build_centralized_network
from repro.detectors.d3 import D3Config, build_d3_network
from repro.core.outliers import DistanceOutlierSpec
from repro.network.energy import BITS_PER_WORD, EnergyAccountant, RadioModel
from repro.network.messages import ValueForward
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy


class TestRadioModel:
    def test_transmit_grows_with_distance_squared(self):
        radio = RadioModel()
        near = radio.transmit_energy(100, 10.0)
        far = radio.transmit_energy(100, 20.0)
        amplifier_near = near - radio.receive_energy(100)
        amplifier_far = far - radio.receive_energy(100)
        assert amplifier_far == pytest.approx(4 * amplifier_near)

    def test_receive_is_electronics_only(self):
        radio = RadioModel()
        assert radio.receive_energy(16) == pytest.approx(
            radio.electronics_j_per_bit * 16)

    def test_negative_inputs_rejected(self):
        radio = RadioModel()
        with pytest.raises(ParameterError):
            radio.transmit_energy(-1, 10.0)
        with pytest.raises(ParameterError):
            radio.receive_energy(-1)

    def test_invalid_constants_rejected(self):
        with pytest.raises(ParameterError):
            RadioModel(electronics_j_per_bit=0.0)


class TestAccountant:
    def test_single_message_charged_both_ends(self):
        hierarchy = build_hierarchy(4, 4)
        accountant = EnergyAccountant(hierarchy)
        message = ValueForward(value=np.array([0.5]))
        leaf, root = 0, hierarchy.root_id
        accountant.record(leaf, root, message)
        bits = message.size_words() * BITS_PER_WORD
        distance = accountant.distance_m(leaf, root)
        assert accountant.spent(leaf) == pytest.approx(
            accountant.radio.transmit_energy(bits, distance))
        assert accountant.spent(root) == pytest.approx(
            accountant.radio.receive_energy(bits))

    def test_lost_message_charges_sender_only(self):
        hierarchy = build_hierarchy(4, 4)
        accountant = EnergyAccountant(hierarchy)
        message = ValueForward(value=np.array([0.5]))
        accountant.record(0, hierarchy.root_id, message, delivered=False)
        assert accountant.spent(0) > 0
        assert accountant.spent(hierarchy.root_id) == 0.0

    def test_totals(self):
        hierarchy = build_hierarchy(4, 4)
        accountant = EnergyAccountant(hierarchy)
        message = ValueForward(value=np.array([0.5]))
        for leaf in hierarchy.leaf_ids:
            accountant.record(leaf, hierarchy.root_id, message)
        assert accountant.total_joules() == pytest.approx(
            sum(accountant.per_node().values()))
        assert accountant.max_joules() == accountant.spent(hierarchy.root_id)


class TestSimulatorIntegration:
    def _run(self, builder, hierarchy, streams, **sim_kwargs):
        network = builder()
        accountant = EnergyAccountant(hierarchy)
        sim = NetworkSimulator(hierarchy, network.nodes, streams,
                               energy=accountant, **sim_kwargs)
        sim.run()
        return accountant, sim

    def test_centralized_costs_more_than_d3(self, rng):
        hierarchy = build_hierarchy(16, 4)
        streams = StreamSet.from_arrays(
            [np.clip(rng.normal(0.4, 0.03, (400, 1)), 0, 1)
             for _ in range(16)])
        config = D3Config(
            spec=DistanceOutlierSpec(radius=0.01, count_threshold=1e9),
            window_size=200, sample_size=20, sample_fraction=0.25,
            warmup=10_000)
        central, _ = self._run(
            lambda: build_centralized_network(hierarchy), hierarchy, streams)
        d3, _ = self._run(
            lambda: build_d3_network(hierarchy, config, 1,
                                     rng=np.random.default_rng(0)),
            hierarchy, streams)
        assert central.total_joules() > 10 * d3.total_joules()
        # The root-adjacent relays are the hottest nodes either way.
        assert central.max_joules() > d3.max_joules()

    def test_loss_injection_counts_and_still_charges_tx(self, rng):
        hierarchy = build_hierarchy(8, 4)
        streams = StreamSet.from_arrays(
            [rng.uniform(size=(50, 1)) for _ in range(8)])
        network = build_centralized_network(hierarchy)
        accountant = EnergyAccountant(hierarchy)
        sim = NetworkSimulator(hierarchy, network.nodes, streams,
                               energy=accountant, loss_rate=0.5,
                               rng=np.random.default_rng(1))
        sim.run()
        # Half the messages vanish (binomially).
        assert 0.3 < sim.messages_lost / sim.counter.total_messages < 0.7
        # Lost level-1 messages are never relayed: fewer total sends
        # than the lossless 8 * 2 per tick.
        assert sim.counter.total_messages < 50 * 16
        assert accountant.total_joules() > 0

    def test_invalid_loss_rate(self, rng):
        hierarchy = build_hierarchy(2, 2)
        streams = StreamSet.from_arrays([rng.uniform(size=(5, 1))] * 2)
        network = build_centralized_network(hierarchy)
        from repro._exceptions import SimulationError
        with pytest.raises(SimulationError):
            NetworkSimulator(hierarchy, network.nodes, streams,
                             loss_rate=1.5)
