"""Leader bearer repair under crash faults."""

from __future__ import annotations

import pytest

from repro._exceptions import TopologyError
from repro.network.election import (
    BearerRepair,
    EnergyAwareElection,
    RoundRobinElection,
    handoff_cost_words,
)
from repro.network.faults import CrashWindow, FaultPlan
from repro.network.messages import MessageCounter
from repro.network.topology import build_hierarchy


def make_repair(faults, *, epoch_length=10, counter=None,
                handoff_words=None):
    hierarchy = build_hierarchy(8, 4)
    election = RoundRobinElection(hierarchy, epoch_length=epoch_length)
    if handoff_words is None:
        handoff_words = handoff_cost_words(30, 1, sketch_words=8)
    return hierarchy, BearerRepair(election, faults,
                                   handoff_words=handoff_words,
                                   counter=counter)


class TestScheduledRotation:
    def test_initial_assignment_not_charged(self):
        counter = MessageCounter()
        _, repair = make_repair(FaultPlan(), counter=counter)
        repair.maintain(0)
        assert repair.handoffs == []
        assert counter.total_messages == 0

    def test_epoch_rotation_charges_handoffs(self):
        counter = MessageCounter()
        _, repair = make_repair(FaultPlan(), epoch_length=10,
                                counter=counter)
        repair.maintain(0)
        repair.maintain(10)   # epoch turnover: every leader rotates
        rotations = [h for h in repair.handoffs if h.reason == "rotation"]
        assert len(rotations) == 3   # two L2 leaders + the root
        assert counter.counts["ModelHandoff"] == 3
        assert counter.conservation_failures() == []

    def test_maintain_idempotent_per_tick(self):
        counter = MessageCounter()
        _, repair = make_repair(FaultPlan(), counter=counter)
        repair.maintain(0)
        before = list(repair.handoffs)
        assert repair.maintain(0) == repair.maintain(0)
        assert repair.handoffs == before


class TestCrashRepair:
    def test_crashed_bearer_replaced_by_survivor(self):
        hierarchy, repair = make_repair(FaultPlan(
            crashes=[CrashWindow(node=0, start=0, end=50)]))
        bearers = repair.maintain(0)
        # Leader 8 covers leaves 0-3; round-robin epoch 0 schedules leaf
        # 0, which is down, so the next survivor takes the role.
        leader = hierarchy.levels[1][0]
        assert bearers[leader] in hierarchy.leaves_under(leader)
        assert bearers[leader] != 0

    def test_crash_mid_epoch_triggers_handoff(self):
        counter = MessageCounter()
        _, repair = make_repair(FaultPlan(
            crashes=[CrashWindow(node=0, start=3, end=8)]), counter=counter)
        repair.maintain(0)
        repair.maintain(3)
        crashes = [h for h in repair.handoffs if h.reason == "crash"]
        assert len(crashes) >= 1
        assert counter.counts["ModelHandoff"] == len(repair.handoffs)

    def test_all_candidates_down_leader_is_down(self):
        hierarchy, repair = make_repair(FaultPlan(crashes=[
            CrashWindow(node=leaf, start=0, end=20)
            for leaf in (0, 1, 2, 3)]))
        leader = hierarchy.levels[1][0]
        assert repair.leader_is_down(leader, 5)
        assert repair.bearer_of(leader) is None
        # Its sibling leader still has live bearers.
        other = hierarchy.levels[1][1]
        assert not repair.leader_is_down(other, 5)

    def test_recovery_restores_a_bearer(self):
        hierarchy, repair = make_repair(FaultPlan(crashes=[
            CrashWindow(node=leaf, start=0, end=4)
            for leaf in (0, 1, 2, 3)]))
        leader = hierarchy.levels[1][0]
        assert repair.leader_is_down(leader, 2)
        assert not repair.leader_is_down(leader, 4)
        recoveries = [h for h in repair.handoffs if h.reason == "recovery"]
        assert len(recoveries) == 1

    def test_non_leader_nodes_never_down_by_this_criterion(self):
        hierarchy, repair = make_repair(FaultPlan(
            crashes=[CrashWindow(node=0, start=0, end=10)]))
        assert not repair.leader_is_down(0, 5)

    def test_bearer_of_unknown_leader_rejected(self):
        _, repair = make_repair(FaultPlan())
        repair.maintain(0)
        with pytest.raises(TopologyError):
            repair.bearer_of(0)


class TestEnergyAwareRepair:
    def test_energy_election_without_accountant_uses_empty_map(self):
        hierarchy = build_hierarchy(8, 4)
        election = EnergyAwareElection(hierarchy, epoch_length=10)
        repair = BearerRepair(election, FaultPlan(), handoff_words=10)
        bearers = repair.maintain(0)
        # Ties break toward the lowest id.
        leader = hierarchy.levels[1][0]
        assert bearers[leader] == min(hierarchy.leaves_under(leader))
