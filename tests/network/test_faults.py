"""Fault injection: crash schedules, link loss, duplication."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError, TopologyError
from repro.network.faults import (
    CrashWindow,
    EngineCrash,
    FaultPlan,
    random_crash_plan,
)
from repro.network.topology import build_hierarchy


class TestCrashWindow:
    def test_covers_half_open_interval(self):
        window = CrashWindow(node=3, start=10, end=20)
        assert not window.covers(9)
        assert window.covers(10)
        assert window.covers(19)
        assert not window.covers(20)

    def test_open_ended_never_recovers(self):
        window = CrashWindow(node=3, start=10)
        assert window.covers(10)
        assert window.covers(1_000_000)

    def test_overlaps_range(self):
        window = CrashWindow(node=3, start=10, end=20)
        assert window.overlaps(0, 11)
        assert window.overlaps(19, 30)
        assert not window.overlaps(0, 10)
        assert not window.overlaps(20, 30)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ParameterError):
            CrashWindow(node=0, start=-1)
        with pytest.raises(ParameterError):
            CrashWindow(node=0, start=5, end=5)


class TestFaultPlan:
    def test_crashed_consults_windows(self):
        plan = FaultPlan(crashes=[CrashWindow(node=1, start=5, end=8),
                                  CrashWindow(node=1, start=20, end=25)])
        assert plan.crashed(1, 6)
        assert not plan.crashed(1, 10)
        assert plan.crashed(1, 24)
        assert not plan.crashed(2, 6)
        assert plan.crashed_node_ids == (1,)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ParameterError, match="overlapping"):
            FaultPlan(crashes=[CrashWindow(node=1, start=5, end=10),
                               CrashWindow(node=1, start=8, end=12)])

    def test_crash_overlaps_range(self):
        plan = FaultPlan(crashes=[CrashWindow(node=1, start=5, end=8)])
        assert plan.crash_overlaps(1, 0, 6)
        assert not plan.crash_overlaps(1, 8, 20)
        assert not plan.crash_overlaps(2, 0, 100)

    def test_link_loss_override_chain(self):
        plan = FaultPlan(link_loss={(1, 2): 0.9}, default_loss_rate=0.2)
        assert plan.loss_rate_for(1, 2, fallback=0.05) == 0.9
        assert plan.loss_rate_for(2, 1, fallback=0.05) == 0.2

    def test_fallback_to_simulator_rate(self):
        plan = FaultPlan(link_loss={(1, 2): 0.9})
        assert plan.loss_rate_for(3, 4, fallback=0.05) == 0.05

    def test_rate_validation(self):
        with pytest.raises(ParameterError):
            FaultPlan(link_loss={(0, 1): 1.5})
        with pytest.raises(ParameterError):
            FaultPlan(default_loss_rate=-0.1)
        with pytest.raises(ParameterError):
            FaultPlan(duplication_rate=2.0)

    def test_has_link_faults(self):
        assert not FaultPlan().has_link_faults
        assert FaultPlan(link_loss={(0, 1): 0.5}).has_link_faults
        assert FaultPlan(default_loss_rate=0.1).has_link_faults
        assert FaultPlan(duplication_rate=0.1).has_link_faults


class TestRandomCrashPlan:
    def test_crashes_requested_fraction_of_leaves(self):
        hierarchy = build_hierarchy(16, 4)
        plan = random_crash_plan(hierarchy, crash_fraction=0.25,
                                 first_tick=100, last_tick=200,
                                 min_down=10, max_down=50,
                                 rng=np.random.default_rng(0))
        assert len(plan.crashed_node_ids) == 4
        assert set(plan.crashed_node_ids) <= set(hierarchy.leaf_ids)

    def test_windows_inside_requested_range(self):
        hierarchy = build_hierarchy(16, 4)
        plan = random_crash_plan(hierarchy, crash_fraction=0.5,
                                 first_tick=100, last_tick=200,
                                 min_down=10, max_down=50,
                                 rng=np.random.default_rng(1))
        for window in plan.crash_windows:
            assert window.start >= 100
            assert window.end is not None and window.end <= 200
            assert window.end - window.start >= 1

    def test_same_seed_same_plan(self):
        hierarchy = build_hierarchy(16, 4)
        plans = [random_crash_plan(hierarchy, crash_fraction=0.25,
                                   first_tick=0, last_tick=100,
                                   min_down=5, max_down=20,
                                   rng=np.random.default_rng(42))
                 for _ in range(2)]
        assert plans[0].crash_windows == plans[1].crash_windows

    def test_parameter_validation(self):
        hierarchy = build_hierarchy(4, 4)
        with pytest.raises(ParameterError):
            random_crash_plan(hierarchy, crash_fraction=1.5,
                              first_tick=0, last_tick=10,
                              min_down=1, max_down=2)
        with pytest.raises(TopologyError):
            random_crash_plan(hierarchy, crash_fraction=0.5,
                              first_tick=10, last_tick=10,
                              min_down=1, max_down=2)
        with pytest.raises(ParameterError):
            random_crash_plan(hierarchy, crash_fraction=0.5,
                              first_tick=0, last_tick=10,
                              min_down=3, max_down=2)
        with pytest.raises(ParameterError):
            random_crash_plan(hierarchy, crash_fraction=0.5,
                              first_tick=5, last_tick=8,
                              min_down=5, max_down=6)


class TestEngineCrash:
    def test_sorted_and_exposed(self):
        plan = FaultPlan(engine_crashes=[EngineCrash(tick=40),
                                         EngineCrash(tick=7, checkpoint=0)])
        assert [c.tick for c in plan.engine_crashes] == [7, 40]
        assert plan.engine_crashes[0].checkpoint == 0
        assert plan.engine_crashes[1].checkpoint is None

    def test_default_plan_has_none(self):
        assert FaultPlan().engine_crashes == ()

    def test_invalid_ticks_rejected(self):
        with pytest.raises(ParameterError):
            EngineCrash(tick=-1)
        with pytest.raises(ParameterError):
            EngineCrash(tick=3, checkpoint=-1)

    def test_duplicate_ticks_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            FaultPlan(engine_crashes=[EngineCrash(tick=5),
                                      EngineCrash(tick=5)])
