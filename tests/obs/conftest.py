"""Shared fixtures: keep the process-global obs state clean per test."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs():
    """Deactivate and reset the obs singletons around every test."""
    obs.deactivate()
    obs.reset()
    yield
    obs.deactivate()
    obs.reset()
