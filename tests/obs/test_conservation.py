"""Acceptance cross-check: a traced run's per-kind message events must
equal the :class:`~repro.network.messages.MessageCounter` totals exactly,
and tracing must not perturb the simulation.

These run the full accuracy harness under faults (loss + crashes +
duplication + reliable transport + leader repair), so the trace covers
every message kind the simulator can produce -- ValueForward,
OutlierReport, Ack, ModelHandoff for D3 and ModelUpdate for MGDD.
"""

from __future__ import annotations

import collections

import pytest

from repro import obs
from repro.eval.harness import ExperimentConfig, run_accuracy_run
from repro.obs import report, schema


def _faulted_config(algorithm: str) -> ExperimentConfig:
    dataset = {"d3": "synthetic", "mgdd": "plateau"}[algorithm]
    return ExperimentConfig(
        algorithm=algorithm, dataset=dataset, n_leaves=9, branching=3,
        window_size=120, measure_ticks=120, n_runs=1, seed=3,
        loss_rate=0.15, crash_fraction=0.3, duplication_rate=0.05,
        reliable_transport=True, repair_leaders=True,
        staleness_horizon=60)


def _event_counts(events):
    """Per-kind send/deliver/drop counts from message.* trace events."""
    sent = collections.Counter()
    delivered = collections.Counter()
    dropped = collections.Counter()
    for event in events:
        if event["event"] == "message.send":
            sent[event["kind"]] += 1
        elif event["event"] == "message.deliver":
            delivered[event["kind"]] += 1
        elif event["event"] == "message.drop":
            dropped[event["kind"]] += 1
    return sent, delivered, dropped


@pytest.mark.parametrize("algorithm", ["d3", "mgdd"])
class TestConservation:
    def test_trace_matches_counter_exactly(self, algorithm, tmp_path):
        trace_path = tmp_path / f"trace_{algorithm}.jsonl"
        result = run_accuracy_run(_faulted_config(algorithm), seed=3,
                                  obs=str(trace_path))
        events = report.load_events(str(trace_path))

        # The whole trace is schema-valid JSONL.
        assert schema.validate_events(events) == []

        # Per-kind send events equal the counter's totals exactly.
        sent, delivered, dropped = _event_counts(events)
        counts_by_kind = result.network_stats["counts_by_kind"]
        assert dict(sent) == counts_by_kind

        # Every kind conserves: sent == delivered + dropped, in the
        # trace itself and against the counter totals.
        for kind in sent:
            assert sent[kind] == delivered[kind] + dropped[kind], kind
        assert result.network_stats["conservation_failures"] == []
        assert sum(delivered.values()) \
            == result.network_stats["messages_delivered"]
        assert sum(dropped.values()) \
            == result.network_stats["messages_dropped"]

        # Faults actually fired, so the identity was stressed.
        assert sum(dropped.values()) > 0

    def test_tracing_does_not_perturb_results(self, algorithm, tmp_path):
        config = _faulted_config(algorithm)
        plain = run_accuracy_run(config, seed=3)
        traced = run_accuracy_run(config, seed=3,
                                  obs=str(tmp_path / "t.jsonl"))
        assert not obs.ACTIVE   # restored afterwards

        traced_stats = {k: v for k, v in traced.network_stats.items()
                        if k != "obs"}
        assert traced_stats == plain.network_stats
        for level in plain.levels:
            assert traced.precision(level) == plain.precision(level)
            assert traced.recall(level) == plain.recall(level)


class TestSnapshotEmbedding:
    def test_obs_snapshot_in_network_stats(self):
        result = run_accuracy_run(_faulted_config("d3"), seed=3, obs=True)
        snap = result.network_stats["obs"]
        assert snap["n_events"] > 0
        # The metrics bridge mirrors the counter.
        counters = snap["metrics"]["counters"]
        for kind, count in result.network_stats["counts_by_kind"].items():
            assert counters[f"messages.{kind}.sent"] == count

    def test_disabled_run_has_no_obs_key(self):
        result = run_accuracy_run(_faulted_config("d3"), seed=3)
        assert "obs" not in result.network_stats
        assert obs.tracer().n_emitted == 0
