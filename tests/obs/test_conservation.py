"""Acceptance cross-check: a traced run's per-kind message events must
equal the :class:`~repro.network.messages.MessageCounter` totals exactly,
and tracing must not perturb the simulation.

These run the full accuracy harness under faults (loss + crashes +
duplication + reliable transport + leader repair), so the trace covers
every message kind the simulator can produce -- ValueForward,
OutlierReport, Ack, ModelHandoff for D3 and ModelUpdate for MGDD.
"""

from __future__ import annotations

import collections

import numpy as np
import pytest

from repro import obs
from repro.core.outliers import DistanceOutlierSpec
from repro.engine.core import DetectorEngine
from repro.engine.supervisor import SupervisedEngine
from repro.eval.harness import ExperimentConfig, run_accuracy_run
from repro.network.faults import CrashWindow, EngineCrash, FaultPlan
from repro.network.transport import TransportConfig
from repro.obs import report, schema


def _faulted_config(algorithm: str) -> ExperimentConfig:
    dataset = {"d3": "synthetic", "mgdd": "plateau"}[algorithm]
    return ExperimentConfig(
        algorithm=algorithm, dataset=dataset, n_leaves=9, branching=3,
        window_size=120, measure_ticks=120, n_runs=1, seed=3,
        loss_rate=0.15, crash_fraction=0.3, duplication_rate=0.05,
        reliable_transport=True, repair_leaders=True,
        staleness_horizon=60)


def _event_counts(events):
    """Per-kind send/deliver/drop counts from message.* trace events."""
    sent = collections.Counter()
    delivered = collections.Counter()
    dropped = collections.Counter()
    for event in events:
        if event["event"] == "message.send":
            sent[event["kind"]] += 1
        elif event["event"] == "message.deliver":
            delivered[event["kind"]] += 1
        elif event["event"] == "message.drop":
            dropped[event["kind"]] += 1
    return sent, delivered, dropped


@pytest.mark.parametrize("algorithm", ["d3", "mgdd"])
class TestConservation:
    def test_trace_matches_counter_exactly(self, algorithm, tmp_path):
        trace_path = tmp_path / f"trace_{algorithm}.jsonl"
        result = run_accuracy_run(_faulted_config(algorithm), seed=3,
                                  obs=str(trace_path))
        events = report.load_events(str(trace_path))

        # The whole trace is schema-valid JSONL.
        assert schema.validate_events(events) == []

        # Per-kind send events equal the counter's totals exactly.
        sent, delivered, dropped = _event_counts(events)
        counts_by_kind = result.network_stats["counts_by_kind"]
        assert dict(sent) == counts_by_kind

        # Every kind conserves: sent == delivered + dropped, in the
        # trace itself and against the counter totals.
        for kind in sent:
            assert sent[kind] == delivered[kind] + dropped[kind], kind
        assert result.network_stats["conservation_failures"] == []
        assert sum(delivered.values()) \
            == result.network_stats["messages_delivered"]
        assert sum(dropped.values()) \
            == result.network_stats["messages_dropped"]

        # Faults actually fired, so the identity was stressed.
        assert sum(dropped.values()) > 0

    def test_tracing_does_not_perturb_results(self, algorithm, tmp_path):
        config = _faulted_config(algorithm)
        plain = run_accuracy_run(config, seed=3)
        traced = run_accuracy_run(config, seed=3,
                                  obs=str(tmp_path / "t.jsonl"))
        assert not obs.ACTIVE   # restored afterwards

        traced_stats = {k: v for k, v in traced.network_stats.items()
                        if k != "obs"}
        assert traced_stats == plain.network_stats
        for level in plain.levels:
            assert traced.precision(level) == plain.precision(level)
            assert traced.recall(level) == plain.recall(level)


class TestParkEvictionConservation:
    def test_park_evictions_are_traced_and_conserved(self, tmp_path):
        """A bounded park buffer under a long outage: every eviction is
        a ``transport.park_evict`` event AND a ``message.drop`` with
        reason ``park-evict``, and the per-kind conservation identity
        still closes exactly in the trace."""
        from tests.network.test_transport import build_lossy_sim

        faults = FaultPlan(crashes=[CrashWindow(node=2, start=1, end=9)])
        _, _, sim = build_lossy_sim(
            0.0, transport=TransportConfig(max_retries=3, max_parked=3),
            faults=faults, length=12)
        trace_path = tmp_path / "park.jsonl"
        with obs.enabled(str(trace_path)):
            sim.run()
        events = report.load_events(str(trace_path))
        assert schema.validate_events(events) == []

        evicts = [e for e in events if e["event"] == "transport.park_evict"]
        evict_drops = [e for e in events if e["event"] == "message.drop"
                       and e["reason"] == "park-evict"]
        assert sim.transport.n_park_evictions > 0
        assert len(evicts) == sim.transport.n_park_evictions
        assert len(evict_drops) == sim.drops_by_reason["park-evict"]
        assert len(evicts) == len(evict_drops)

        sent, delivered, dropped = _event_counts(events)
        for kind in sent:
            assert sent[kind] == delivered[kind] + dropped[kind], kind
        assert sim.counter.conservation_failures() == []


class TestEngineRecoveryEvents:
    def test_crash_recovery_trace_matches_supervisor_records(self, tmp_path):
        """Every kill-and-restore shows up as exactly one
        ``engine.restore`` + one ``engine.replay`` event whose fields
        equal the supervisor's own recovery records."""
        spec = DistanceOutlierSpec(radius=0.5, count_threshold=3)
        engine = DetectorEngine(3, spec, window_size=40, sample_size=16,
                                warmup=10, model_refresh=8,
                                rng=np.random.default_rng(7))
        plan = FaultPlan(engine_crashes=[
            EngineCrash(tick=20), EngineCrash(tick=70)])
        sup = SupervisedEngine(engine, tmp_path / "state",
                               checkpoint_every=16, fault_plan=plan)
        rng = np.random.default_rng(3)
        data = rng.normal(size=(96, 3))
        trace_path = tmp_path / "engine.jsonl"
        with obs.enabled(str(trace_path)):
            for i in range(0, 96, 32):
                sup.ingest(data[i:i + 32])
        sup.close()
        events = report.load_events(str(trace_path))
        assert schema.validate_events(events) == []

        checkpoints = [e for e in events if e["event"] == "engine.checkpoint"]
        restores = [e for e in events if e["event"] == "engine.restore"]
        replays = [e for e in events if e["event"] == "engine.replay"]
        assert len(checkpoints) > 0
        assert len(restores) == sup.restarts == 2
        assert len(replays) == len(sup.recoveries)
        assert [e["tick"] for e in restores] == \
            [r["crash_tick"] for r in sup.recoveries]
        assert [e["checkpoint_tick"] for e in restores] == \
            [r["checkpoint_tick"] for r in sup.recoveries]
        assert [e["n_ticks"] for e in replays] == \
            [r["replayed_ticks"] for r in sup.recoveries]

    def test_disabled_engine_run_emits_nothing(self, tmp_path):
        spec = DistanceOutlierSpec(radius=0.5, count_threshold=3)
        engine = DetectorEngine(2, spec, window_size=30, sample_size=10,
                                rng=np.random.default_rng(0))
        plan = FaultPlan(engine_crashes=[EngineCrash(tick=10)])
        sup = SupervisedEngine(engine, tmp_path / "state",
                               checkpoint_every=8, fault_plan=plan)
        sup.ingest(np.random.default_rng(1).normal(size=(24, 2)))
        sup.close()
        assert sup.restarts == 1
        assert obs.tracer().n_emitted == 0


class TestSnapshotEmbedding:
    def test_obs_snapshot_in_network_stats(self):
        result = run_accuracy_run(_faulted_config("d3"), seed=3, obs=True)
        snap = result.network_stats["obs"]
        assert snap["n_events"] > 0
        # The metrics bridge mirrors the counter.
        counters = snap["metrics"]["counters"]
        for kind, count in result.network_stats["counts_by_kind"].items():
            assert counters[f"messages.{kind}.sent"] == count

    def test_disabled_run_has_no_obs_key(self):
        result = run_accuracy_run(_faulted_config("d3"), seed=3)
        assert "obs" not in result.network_stats
        assert obs.tracer().n_emitted == 0
