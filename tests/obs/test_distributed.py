"""Worker spools, the deterministic merge, and global conservation."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro._exceptions import ParameterError, SnapshotError
from repro.network.messages import MessageCounter, OutlierReport
from repro.obs.distributed import (
    Spool,
    append_spool_footer,
    conservation_failures,
    counter_totals,
    is_spool_file,
    load_metrics_snapshots,
    load_spool,
    load_spools,
    load_trace,
    load_trace_meta,
    merge_spools,
    spool_path,
    sum_counter_totals,
    worker_trace_sink,
    write_merged,
    write_spool_header,
)


def _write_spool(run_dir, worker_id, events, *, footer=True,
                 counter=None, tail=None):
    """A hand-built spool file: header, event lines, optional footer."""
    path = spool_path(run_dir, worker_id)
    write_spool_header(path, worker_id)
    with open(path, "a", encoding="utf-8") as sink:
        for event in events:
            sink.write(json.dumps(event, sort_keys=True) + "\n")
    if footer:
        append_spool_footer(path, worker_id,
                            n_emitted=len(events),
                            ring_dropped_by_kind={}, counter=counter)
    if tail is not None:
        with open(path, "a", encoding="utf-8") as sink:
            sink.write(tail)
    return path


def _events(kinds_ticks):
    """Event dicts with sequential per-worker seq numbers."""
    out = []
    for i, (kind, tick) in enumerate(kinds_ticks):
        record = {"event": kind, "seq": i, "t": 0.0, "span": None}
        if tick is not None:
            record["tick"] = tick
        out.append(record)
    return out


class TestSpoolRoundTrip:
    def test_worker_trace_sink_round_trip(self, tmp_path):
        counter = MessageCounter()
        report = OutlierReport(value=np.array([1.0]), origin=3,
                               flagged_level=0, tick=5)
        counter.record(report)
        counter.record_delivered(report)
        with worker_trace_sink(tmp_path, 3, counter=counter) as path:
            obs.emit("sample.evict", count=1, tick=5)
            obs.emit("sample.evict", count=2, tick=6)
        spool = load_spool(path)
        assert spool.worker_id == 3
        assert spool.clean
        assert spool.n_torn == 0
        # Spans from worker_trace_sink's own scope are absent here, so
        # the two emitted events are exactly the payload.
        assert [e["event"] for e in spool.events] == ["sample.evict"] * 2
        assert spool.footer is not None
        assert spool.footer["n_emitted"] == 2
        assert spool.counter == counter_totals(counter)

    def test_header_carries_provenance(self, tmp_path):
        with worker_trace_sink(tmp_path, 1):
            pass
        spool = load_spool(spool_path(tmp_path, 1))
        for key in ("pid", "host", "python", "created_t"):
            assert key in spool.header
        assert spool.counter is None   # no counter given

    def test_torn_tail_tolerated_and_counted(self, tmp_path):
        path = _write_spool(tmp_path, 2,
                            _events([("sample.evict", 1),
                                     ("sample.evict", 2)]),
                            footer=False,
                            tail='{"event": "sample.evict", "se\n')
        spool = load_spool(path)
        assert spool.n_torn == 1
        assert not spool.clean
        assert len(spool.events) == 2   # recovered up to the tear

    def test_interior_corruption_is_fatal(self, tmp_path):
        path = spool_path(tmp_path, 2)
        write_spool_header(path, 2)
        with open(path, "a", encoding="utf-8") as sink:
            sink.write("{not json}\n")
            sink.write(json.dumps(_events([("sample.evict", 1)])[0]) + "\n")
        with pytest.raises(SnapshotError, match="interior"):
            load_spool(path)

    def test_missing_footer_means_not_clean(self, tmp_path):
        path = _write_spool(tmp_path, 4,
                            _events([("sample.evict", 1)]), footer=False)
        spool = load_spool(path)
        assert spool.footer is None
        assert not spool.clean
        assert spool.counter is None

    def test_data_after_footer_is_fatal(self, tmp_path):
        path = _write_spool(
            tmp_path, 4, _events([("sample.evict", 1)]),
            tail=json.dumps(_events([("sample.evict", 2)])[0]) + "\n")
        with pytest.raises(SnapshotError, match="after spool footer"):
            load_spool(path)

    def test_not_a_spool_rejected(self, tmp_path):
        plain = tmp_path / "trace.jsonl"
        plain.write_text('{"event": "sample.evict", "seq": 0}\n')
        assert not is_spool_file(plain)
        with pytest.raises(ParameterError, match="header"):
            load_spool(plain)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ParameterError, match="empty"):
            load_spool(empty)

    def test_wrong_version_rejected(self, tmp_path):
        path = spool_path(tmp_path, 1)
        header = {"spool": "repro-spool", "version": 99, "worker_id": 1}
        path.write_text(json.dumps({"spool_header": header}) + "\n")
        with pytest.raises(ParameterError, match="version"):
            load_spool(path)

    def test_load_spools_orders_by_worker_id(self, tmp_path):
        _write_spool(tmp_path, 7, _events([("sample.evict", 1)]))
        _write_spool(tmp_path, 2, _events([("sample.evict", 1)]))
        spools = load_spools(tmp_path)
        assert [s.worker_id for s in spools] == [2, 7]

    def test_load_spools_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ParameterError, match="no worker-"):
            load_spools(tmp_path)


class TestMerge:
    def test_provenance_stamped_and_seq_renumbered(self, tmp_path):
        _write_spool(tmp_path, 1, _events([("sample.evict", 0),
                                           ("sample.evict", 2)]))
        _write_spool(tmp_path, 2, _events([("sample.evict", 1)]))
        merged = merge_spools(load_spools(tmp_path))
        assert merged.worker_ids == [1, 2]
        assert [e["seq"] for e in merged.events] == [0, 1, 2]
        assert all("worker_id" in e and "worker_seq" in e
                   for e in merged.events)
        # Interleaved by high-water tick: w1@0, w2@1, w1@2.
        assert [(e["worker_id"], e["worker_seq"])
                for e in merged.events] == [(1, 0), (2, 0), (1, 1)]

    def test_high_water_carry_never_reorders_a_worker(self, tmp_path):
        # The late event (old tick 1 emitted after tick 9) must stay
        # *after* its predecessor: the merge keys on the monotone
        # high-water tick, not each event's own tick.
        _write_spool(tmp_path, 1, _events([
            ("sample.evict", 9), ("message.deliver", 1),
            ("sample.evict", 10)]))
        merged = merge_spools(load_spools(tmp_path))
        assert [e["worker_seq"] for e in merged.events] == [0, 1, 2]

    def test_span_ids_offset_into_disjoint_ranges(self, tmp_path):
        for worker in (1, 2):
            path = spool_path(tmp_path, worker)
            write_spool_header(path, worker)
            with open(path, "a", encoding="utf-8") as sink:
                sink.write(json.dumps(
                    {"event": "span_open", "seq": 0, "id": 0,
                     "parent": None, "name": "run", "t": 0.0,
                     "span": None, "tick": worker}) + "\n")
                sink.write(json.dumps(
                    {"event": "span_close", "seq": 1, "id": 0,
                     "t": 0.0, "span": None, "tick": worker}) + "\n")
            append_spool_footer(path, worker, n_emitted=2,
                                ring_dropped_by_kind={}, counter=None)
        merged = merge_spools(load_spools(tmp_path))
        opens = {e["worker_id"]: e["id"] for e in merged.events
                 if e["event"] == "span_open"}
        closes = {e["worker_id"]: e["id"] for e in merged.events
                  if e["event"] == "span_close"}
        assert opens[1] != opens[2]          # disjoint id ranges
        assert opens == closes               # pairs still match up

    def test_duplicate_worker_ids_rejected(self):
        spool = Spool(1, {"worker_id": 1},
                      _events([("sample.evict", 0)]), None)
        with pytest.raises(ParameterError, match="duplicate"):
            merge_spools([spool, spool])

    def test_ring_drop_and_torn_meta_carried(self, tmp_path):
        path = spool_path(tmp_path, 5)
        write_spool_header(path, 5)
        append_spool_footer(
            path, 5, n_emitted=10,
            ring_dropped_by_kind={"sample.evict": 4}, counter=None)
        merged = merge_spools([load_spool(path)])
        assert merged.n_ring_dropped == 4
        assert merged.ring_dropped_by_worker[5] == {"sample.evict": 4}
        assert merged.clean

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_merge_is_byte_identical_under_input_reordering(self, data):
        """Property: merging the same spools in any input order yields
        byte-identical merged traces (the satellite (c) guarantee)."""
        n_workers = data.draw(st.integers(min_value=2, max_value=4))
        worker_ids = data.draw(st.lists(
            st.integers(min_value=0, max_value=20),
            min_size=n_workers, max_size=n_workers, unique=True))
        spools = []
        for worker_id in worker_ids:
            ticks = data.draw(st.lists(
                st.one_of(st.none(), st.integers(min_value=0, max_value=30)),
                max_size=8))
            events = _events([("sample.evict", t) for t in ticks])
            spools.append(Spool(worker_id, {"worker_id": worker_id},
                                events, {"n_emitted": len(events)}))

        def merged_bytes(ordering):
            payload = merge_spools(ordering).events
            return "".join(json.dumps(e, sort_keys=True) + "\n"
                           for e in payload)

        baseline = merged_bytes(spools)
        permuted = data.draw(st.permutations(spools))
        assert merged_bytes(permuted) == baseline

    def test_write_merged_round_trips_through_load_trace(self, tmp_path):
        _write_spool(tmp_path, 1, _events([("sample.evict", 0)]))
        merged = merge_spools(load_spools(tmp_path))
        out = tmp_path / "merged.jsonl"
        write_merged(merged.events, out)
        assert load_trace(out) == merged.events


class TestConservation:
    def _send(self, seq, *, words=4):
        return {"event": "message.send", "seq": seq,
                "kind": "OutlierReport", "words": words}

    def test_balanced_books_pass(self):
        events = [self._send(0), self._send(1),
                  {"event": "message.deliver", "seq": 2,
                   "kind": "OutlierReport"},
                  {"event": "message.drop", "seq": 3,
                   "kind": "OutlierReport"},
                  {"event": "detector.flag", "seq": 4}]
        totals = {"counts": {"OutlierReport": 2},
                  "delivered": {"OutlierReport": 1},
                  "dropped": {"OutlierReport": 1},
                  "words": {"OutlierReport": 8}}
        assert conservation_failures(events, totals) == []

    def test_missing_deliver_event_fails(self):
        events = [self._send(0)]
        totals = {"counts": {"OutlierReport": 1},
                  "delivered": {"OutlierReport": 1},
                  "dropped": {}, "words": {"OutlierReport": 4}}
        problems = conservation_failures(events, totals)
        # The trace is short one deliver event; the totals themselves
        # still balance, so that is the *only* failure.
        assert len(problems) == 1
        assert "deliver" in problems[0]

    def test_word_mismatch_fails(self):
        events = [self._send(0, words=3)]
        totals = {"counts": {"OutlierReport": 1}, "delivered": {},
                  "dropped": {"OutlierReport": 1},
                  "words": {"OutlierReport": 4}}
        problems = conservation_failures(events, totals)
        assert any("words" in p for p in problems)

    def test_leaky_totals_fail(self):
        totals = {"counts": {"OutlierReport": 3},
                  "delivered": {"OutlierReport": 1},
                  "dropped": {"OutlierReport": 1}, "words": {}}
        problems = conservation_failures([], totals)
        assert any("sent 3 != delivered 1 + dropped 1" in p
                   for p in problems)

    def test_counter_totals_and_fleet_sum(self):
        counter = MessageCounter()
        report = OutlierReport(value=np.array([0.5]), origin=1,
                               flagged_level=0, tick=0)
        counter.record(report)
        counter.record_dropped(report)
        totals = counter_totals(counter)
        assert totals["counts"]["OutlierReport"] == 1
        assert totals["dropped"]["OutlierReport"] == 1
        summed = sum_counter_totals([totals, totals])
        assert summed["counts"]["OutlierReport"] == 2
        assert summed["words"]["OutlierReport"] \
            == 2 * totals["words"]["OutlierReport"]

    def test_counter_totals_rejects_non_counter(self):
        with pytest.raises(ParameterError, match="counts"):
            counter_totals(object())


class TestLoadTraceMeta:
    def test_plain_trace_has_empty_meta(self, tmp_path):
        plain = tmp_path / "trace.jsonl"
        plain.write_text('{"event": "sample.evict", "seq": 0}\n')
        events, meta = load_trace_meta(plain)
        assert len(events) == 1
        assert meta == {}

    def test_single_spool_and_directory_sources(self, tmp_path):
        counter = MessageCounter()
        path = _write_spool(tmp_path, 3,
                            _events([("sample.evict", 1)]),
                            counter=counter_totals(counter))
        events, meta = load_trace_meta(path)
        assert meta["worker_ids"] == [3]
        assert meta["clean"] is True
        _write_spool(tmp_path, 4, _events([("sample.evict", 0)]),
                     counter=counter_totals(counter))
        events, meta = load_trace_meta(tmp_path)
        assert meta["worker_ids"] == [3, 4]
        assert len(events) == 2
        assert meta["counter_totals"] is not None

    def test_counter_totals_absent_unless_every_footer_has_one(
            self, tmp_path):
        _write_spool(tmp_path, 1, _events([("sample.evict", 0)]),
                     counter={"counts": {}, "delivered": {},
                              "dropped": {}, "words": {}})
        _write_spool(tmp_path, 2, _events([("sample.evict", 0)]))
        _, meta = load_trace_meta(tmp_path)
        assert meta["counter_totals"] is None


class TestLoadMetricsSnapshots:
    def test_accepts_bare_wrapped_and_directory(self, tmp_path):
        bare = tmp_path / "a.metrics.json"
        bare.write_text(json.dumps(
            {"counters": {"x": 1}, "gauges": {}, "histograms": {}}))
        wrapped = tmp_path / "b.metrics.json"
        wrapped.write_text(json.dumps(
            {"worker_id": 1,
             "metrics": {"counters": {"x": 2}, "gauges": {},
                         "histograms": {}}}))
        snapshots = load_metrics_snapshots([bare, wrapped])
        assert [s["counters"]["x"] for s in snapshots] == [1, 2]
        from_dir = load_metrics_snapshots([tmp_path])
        assert len(from_dir) == 2

    def test_rejects_non_snapshots(self, tmp_path):
        empty_dir = tmp_path / "nothing"
        empty_dir.mkdir()
        with pytest.raises(ParameterError, match="no .*metrics.json"):
            load_metrics_snapshots([empty_dir])
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"no": "metrics"}')
        with pytest.raises(ParameterError, match="no metrics snapshot"):
            load_metrics_snapshots([bogus])
