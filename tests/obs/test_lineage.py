"""Detection lineage: stable reading ids, causal context, ``explain``.

The acceptance property of the lineage layer: in a *faulted* run
(loss + crashes + duplication + reliable transport) every single
``detector.flag`` must reconstruct into a complete
:class:`~repro.obs.lineage.LineageRecord` -- decision inputs (estimate
vs threshold), the model sequence number consulted, and an event-time
-> flag-time latency that equals ``flag_tick - reading_tick`` recomputed
independently from the raw event stream.  With tracing off the lineage
layer must not exist: that bit-identity is covered by the conservation
suite; here we pin the schema-versioning contract (old traces stay
valid) and the observational-only ``model_seq`` counters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import obs
from repro.detectors._state import StreamModelState
from repro.eval.harness import ExperimentConfig, run_accuracy_run
from repro.network.node import Detection, DetectionLog
from repro.obs import report, schema
from repro.obs.explain import (
    explain,
    explanation_dict,
    format_explanation,
    select_record,
)
from repro.obs.lineage import lineage_fields, reading_id, reconstruct
from repro._exceptions import ParameterError


def _faulted_config(algorithm: str) -> ExperimentConfig:
    dataset = {"d3": "synthetic", "mgdd": "plateau"}[algorithm]
    return ExperimentConfig(
        algorithm=algorithm, dataset=dataset, n_leaves=9, branching=3,
        window_size=120, measure_ticks=120, n_runs=1, seed=3,
        loss_rate=0.15, crash_fraction=0.3, duplication_rate=0.05,
        reliable_transport=True, repair_leaders=True,
        staleness_horizon=60)


class TestSchemaVersioning:
    def test_lineage_kinds_are_declared(self):
        for kind in ("lineage.ingest", "lineage.model_merge",
                     "lineage.detect"):
            assert kind in schema.EVENT_FIELDS

    def test_pre_lineage_flag_event_still_validates(self):
        # A detector.flag recorded before the enrichment (no prob /
        # latency / model_seq keys) must stay --validate green.
        record = {"event": "detector.flag", "seq": 0, "t": 0.0,
                  "span": None, "node": 3, "level": 1, "origin": 3,
                  "tick": 17}
        assert schema.validate_event(record) == []

    def test_mistyped_optional_field_is_rejected(self):
        record = {"event": "detector.flag", "seq": 0, "t": 0.0,
                  "span": None, "node": 3, "level": 1, "origin": 3,
                  "tick": 17, "model_seq": "three"}
        problems = schema.validate_event(record)
        assert any("model_seq" in p for p in problems)


class TestReadingIdentity:
    def test_reading_id_is_origin_and_tick(self):
        assert reading_id(4, 250) == "r4@250"

    def test_lineage_fields_duck_types_messages(self):
        class Report:
            origin = 5
            tick = 99
        assert lineage_fields(Report()) \
            == {"origin": 5, "reading_tick": 99}

        class Forward:
            pass
        assert lineage_fields(Forward()) == {}


class TestModelSeq:
    def test_rebuild_bumps_the_counter(self):
        state = StreamModelState(60, 10, 1, model_refresh=1,
                                 rng=np.random.default_rng(0))
        assert state.model_seq == 0
        for i in range(30):
            state.observe(np.array([i / 30.0]))
        state.model()
        assert state.model_seq >= 1

    def test_snapshot_round_trips_the_counter(self):
        state = StreamModelState(60, 10, 1, model_refresh=1,
                                 rng=np.random.default_rng(0))
        for i in range(30):
            state.observe(np.array([i / 30.0]))
        state.model()
        snapshot = state.snapshot_state()
        assert snapshot["model_seq"] == state.model_seq
        restored = StreamModelState.restore_state(snapshot)
        assert restored.model_seq == state.model_seq

    def test_pre_lineage_snapshot_restores_to_zero(self):
        state = StreamModelState(60, 10, 1,
                                 rng=np.random.default_rng(0))
        snapshot = state.snapshot_state()
        del snapshot["model_seq"]     # a checkpoint taken before PR 9
        assert StreamModelState.restore_state(snapshot).model_seq == 0


@pytest.mark.parametrize("algorithm", ["d3", "mgdd"])
class TestExplainCompleteness:
    def test_every_flag_reconstructs_complete(self, algorithm, tmp_path):
        trace_path = tmp_path / f"lineage_{algorithm}.jsonl"
        result = run_accuracy_run(_faulted_config(algorithm), seed=3,
                                  obs=str(trace_path))
        events = report.load_events(str(trace_path))
        assert schema.validate_events(events) == []

        flags = [e for e in events if e["event"] == "detector.flag"]
        assert flags, "the faulted run must flag something"
        records = reconstruct(events)
        assert len(records) == len(flags)
        for record in records:
            assert record.complete, record
            assert record.prob is not None
            assert record.threshold is not None
            assert record.model_seq is not None
            assert record.latency == record.flag_tick - record.reading_tick
            assert record.latency >= 0
            # The human rendering and the JSON form both resolve.
            assert record.reading in format_explanation(record)
            assert explanation_dict(record)["complete"] is True

        # The unconditional harness roll-up agrees with the trace.
        detections = result.network_stats["detections"]
        assert detections["n_flags"] == len(flags)

    def test_selectors_address_the_same_records(self, algorithm, tmp_path):
        trace_path = tmp_path / f"select_{algorithm}.jsonl"
        run_accuracy_run(_faulted_config(algorithm), seed=3,
                         obs=str(trace_path))
        events = report.load_events(str(trace_path))
        records = reconstruct(events)
        last = explain(events, "last")
        assert last == records[-1]
        assert explain(events, "first") == records[0]
        assert explain(events, -1) == last
        assert select_record(
            records, f"{last.node}:{last.reading_tick}").node == last.node
        with pytest.raises(ParameterError):
            explain(events, "nonsense")
        with pytest.raises(ParameterError):
            explain(events, len(records))


class TestTraceReportLatency:
    def test_summarize_reports_flag_latency(self, tmp_path):
        trace_path = tmp_path / "lat.jsonl"
        run_accuracy_run(_faulted_config("d3"), seed=3,
                         obs=str(trace_path))
        events = report.load_events(str(trace_path))
        summary = report.summarize(events)
        stats = summary["flag_latency"]
        assert stats is not None
        assert stats["count"] == summary["n_detections"]
        assert 0 <= stats["p50"] <= stats["p99"] <= stats["max"]
        assert "flag latency" in report.format_report(summary)

    def test_pre_lineage_trace_reports_none(self):
        events = [{"event": "detector.flag", "seq": 0, "t": 0.0,
                   "span": None, "node": 1, "level": 1, "origin": 1,
                   "tick": 5}]
        summary = report.summarize(events)
        # Old traces carry no latency fields: the column stays None and
        # the report renders without it.
        assert summary["flag_latency"] is None
        assert "flag latency" not in report.format_report(summary)


class TestHealthLatencySLO:
    def test_slow_flag_trips_the_latency_violation(self):
        from repro.obs.health import HealthMonitor, HealthThresholds
        from repro.obs.top import build_workload

        simulator, nodes, hierarchy = build_workload(
            n_leaves=2, window_size=40, n_ticks=30)
        simulator.run(20)
        log = DetectionLog()
        leaf = min(nodes)
        log.record(Detection(tick=3, node_id=leaf, level=1, origin=leaf,
                             value=np.array([0.5])), flag_tick=20)
        monitor = HealthMonitor(
            nodes, hierarchy, detections=log,
            thresholds=HealthThresholds(max_flag_latency=10.0))
        report_ = monitor.check(20)[leaf]
        assert report_.flag_latency_max == 17
        assert "latency" in report_.violations
        assert report_.score < 1.0
        # The drain is incremental: a second check sees no new flags.
        assert monitor.check(21)[leaf].flag_latency_max is None


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    seed=st.integers(min_value=0, max_value=50),
    loss_rate=st.floats(min_value=0.0, max_value=0.3),
    crash_fraction=st.sampled_from([0.0, 0.25]),
    duplication_rate=st.floats(min_value=0.0, max_value=0.1),
)
def test_lineage_is_causal_under_random_fault_plans(
        seed, loss_rate, crash_fraction, duplication_rate):
    """Property: whatever the fault plan, every flagged detection's
    lineage is acyclic (hop ticks never precede the reading, and never
    decrease along the hop sequence), its decision inputs are populated,
    and its latency equals ``flag_tick - reading_tick`` recomputed
    independently from the raw event stream."""
    obs.reset()
    config = ExperimentConfig(
        algorithm="d3", dataset="synthetic", n_leaves=4, branching=2,
        window_size=60, measure_ticks=60, n_runs=1, seed=seed,
        loss_rate=loss_rate, crash_fraction=crash_fraction,
        duplication_rate=duplication_rate, reliable_transport=True,
        staleness_horizon=30)
    run_accuracy_run(config, seed=seed, obs=True)
    events = obs.tracer().events()

    flags = [e for e in events if e["event"] == "detector.flag"]
    for flag in flags:
        assert flag["latency"] == flag["flag_tick"] - flag["reading_tick"]
        assert flag["latency"] >= 0

    records = reconstruct(events)
    assert len(records) == len(flags)
    delivered = {(e["origin"], e["reading_tick"], e.get("seq_no"))
                 for e in events if e["event"] == "message.deliver"
                 and "origin" in e}
    for record in records:
        assert record.complete, record
        previous_tick = record.reading_tick
        for hop in sorted(record.hops, key=lambda h: h["seq"]):
            assert hop["origin"] == record.origin
            assert hop["reading_tick"] == record.reading_tick
            assert hop["tick"] >= record.reading_tick
            assert hop["tick"] >= previous_tick
            previous_tick = hop["tick"]
        # A flag above the leaf tier can only have seen the report if
        # some copy of it was actually delivered.
        if record.level >= 2:
            assert record.n_delivered >= 1
            assert any(key[0] == record.origin
                       and key[1] == record.reading_tick
                       for key in delivered)
    obs.reset()
