"""Model-health monitors: signals, SLOs, events, and non-interference."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro._exceptions import ParameterError
from repro.detectors._state import StreamModelState
from repro.eval.harness import ExperimentConfig, run_accuracy_run
from repro.obs.health import (HealthMonitor, HealthThresholds, ModelHealth,
                              PENALTIES)
from repro.obs.schema import validate_events


class _Node:
    """Minimal monitored node: just a ``state`` attribute."""

    def __init__(self, state):
        self.state = state


def _fed_state(values, *, window=64, sample_size=16, n_dims=1, seed=0):
    """A StreamModelState that has observed ``values`` and built a model."""
    state = StreamModelState(window, sample_size, n_dims,
                             model_refresh=1,
                             rng=np.random.default_rng(seed))
    state.observe_many(np.asarray(values, dtype=float).reshape(-1, n_dims))
    state.model()
    return state


class TestThresholds:
    def test_defaults_valid(self):
        thresholds = HealthThresholds()
        assert 0.0 <= thresholds.min_sample_fill <= 1.0
        assert thresholds.drift_tol > 0

    @pytest.mark.parametrize("kwargs", [
        {"min_sample_fill": -0.1},
        {"min_sample_fill": 1.5},
        {"drift_tol": 0.0},
        {"max_staleness_ratio": 0.0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ParameterError):
            HealthThresholds(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"n_probes": 0},
        {"probe_radius": 0.0},
        {"probe_radius": 0.6},
    ])
    def test_monitor_rejects_bad_probe_config(self, kwargs):
        with pytest.raises(ParameterError):
            HealthMonitor({}, **kwargs)


class TestScore:
    def test_no_violations_is_perfect(self):
        rng = np.random.default_rng(1)
        node = _Node(_fed_state(rng.uniform(0.2, 0.8, size=200)))
        monitor = HealthMonitor({0: node})
        report = monitor.check(tick=0)[0]
        assert isinstance(report, ModelHealth)
        assert report.violations == ()
        assert report.score == 1.0

    def test_penalties_clamp_to_zero(self):
        assert PENALTIES["bandwidth-collapse"] == pytest.approx(0.40)
        # A pile of violations cannot push the score below zero.
        from repro.obs.health import _score
        assert _score(tuple(PENALTIES)) == 0.0

    def test_bandwidth_collapse_detected(self):
        # A constant stream has zero sketched deviation in every
        # dimension: Scott bandwidths collapse, the model degenerates.
        node = _Node(_fed_state(np.full(200, 0.5)))
        monitor = HealthMonitor({0: node})
        report = monitor.check(tick=0)[0]
        assert report.bandwidth_collapsed
        assert "bandwidth-collapse" in report.violations
        assert report.score <= 1.0 - PENALTIES["bandwidth-collapse"]


class TestDrift:
    def _monitor_and_node(self):
        state = StreamModelState(64, 16, 1, model_refresh=1,
                                 rng=np.random.default_rng(2))
        node = _Node(state)
        return HealthMonitor({0: node}, probe_seed=3), state

    def test_no_drift_until_two_models(self):
        monitor, state = self._monitor_and_node()
        rng = np.random.default_rng(4)
        state.observe_many(rng.uniform(0.2, 0.4, size=(100, 1)))
        state.model()
        report = monitor.check(tick=0)[0]
        assert report.drift_linf is None

    def test_mean_shift_raises_drift(self):
        monitor, state = self._monitor_and_node()
        rng = np.random.default_rng(5)
        state.observe_many(rng.normal(0.25, 0.02, size=(200, 1)).clip(0, 1))
        state.model()
        monitor.check(tick=0)
        # Shift the distribution far enough to displace the window.
        state.observe_many(rng.normal(0.75, 0.02, size=(200, 1)).clip(0, 1))
        state.model()
        report = monitor.check(tick=1)[0]
        assert report.drift_linf is not None
        assert report.drift_linf >= monitor.thresholds.drift_tol
        assert "drift" in report.violations

    def test_unchanged_model_not_reprobed(self):
        monitor, state = self._monitor_and_node()
        rng = np.random.default_rng(6)
        state.observe_many(rng.uniform(0.2, 0.8, size=(100, 1)))
        state.model()
        first = monitor.check(tick=0)[0]
        second = monitor.check(tick=1)[0]   # same cached model object
        assert first.drift_linf is None
        assert second.drift_linf is None    # identity-compared, no probe

    def test_check_is_a_pure_read(self):
        # The monitor must never trigger a rebuild: cached_model identity
        # is unchanged across a check even when a rebuild would be due.
        monitor, state = self._monitor_and_node()
        rng = np.random.default_rng(7)
        state.observe_many(rng.uniform(0.2, 0.8, size=(100, 1)))
        state.model()
        before = state.cached_model
        state.observe_many(rng.uniform(0.2, 0.8, size=(50, 1)))
        monitor.check(tick=0)               # rebuild is due, but not ours
        assert state.cached_model is before


class TestEventsAndHooks:
    def test_events_schema_valid_when_active(self):
        node = _Node(_fed_state(np.full(200, 0.5)))   # collapsed -> violation
        monitor = HealthMonitor({0: node})
        with obs.enabled():
            monitor.check(tick=3)
        events = obs.tracer().events()
        kinds = {record["event"] for record in events}
        assert "health.check" in kinds
        assert "health.node" in kinds
        assert "health.slo_violation" in kinds
        assert validate_events(events) == []

    def test_inactive_monitor_emits_nothing(self):
        node = _Node(_fed_state(np.full(200, 0.5)))
        monitor = HealthMonitor({0: node})
        report = monitor.check(tick=0)[0]
        assert report.violations            # signal computed...
        assert obs.tracer().n_emitted == 0  # ...but nothing emitted

    def test_gauges_published(self):
        rng = np.random.default_rng(8)
        node = _Node(_fed_state(rng.uniform(0.2, 0.8, size=200)))
        monitor = HealthMonitor({0: node})
        with obs.enabled():
            monitor.check(tick=0)
        snapshot = obs.metrics().snapshot()
        assert snapshot["gauges"]["health.node.0.score"] == 1.0
        assert snapshot["counters"]["health.checks"] == 1

    def test_on_violation_hook_fires(self):
        node = _Node(_fed_state(np.full(200, 0.5)))
        seen = []
        monitor = HealthMonitor(
            {0: node}, on_violation=lambda nid, rep: seen.append((nid, rep)))
        monitor.check(tick=0)
        assert len(seen) == 1
        assert seen[0][0] == 0
        assert "bandwidth-collapse" in seen[0][1].violations

    def test_nodes_without_state_skipped(self):
        monitor = HealthMonitor({0: object()})
        assert monitor.check(tick=0) == {}


class TestSummary:
    def test_shape_and_peak_drift(self):
        rng = np.random.default_rng(9)
        node = _Node(_fed_state(rng.uniform(0.2, 0.8, size=200)))
        monitor = HealthMonitor({0: node})
        monitor.check(tick=0)
        summary = monitor.summary()
        assert summary["n_checks"] == 1
        assert summary["n_nodes"] == 1
        assert summary["min_score"] == 1.0
        node_entry = summary["nodes"]["0"]
        assert set(node_entry) == {"score", "drift_linf", "peak_drift",
                                   "violations"}


def _run(dataset, *, health_every=20, obs_flag=True):
    config = ExperimentConfig(
        algorithm="d3", dataset=dataset, n_leaves=4, window_size=120,
        sample_ratio=0.25, measure_ticks=160,
        health_check_every=health_every)
    return run_accuracy_run(config, seed=7, obs=obs_flag)


class TestHarnessIntegration:
    def test_drift_injection_raises_drift_and_emits(self):
        # The acceptance criterion: a seeded drift-injection run must
        # provably raise the drift score vs the stationary baseline and
        # emit schema-valid health.drift events.
        drifted = _run("drift")
        stationary = _run("synthetic")

        def peak(result):
            nodes = result.network_stats["health"]["nodes"].values()
            return max(entry["peak_drift"] for entry in nodes
                       if entry["peak_drift"] is not None)

        assert peak(drifted) > peak(stationary)
        by_kind = drifted.network_stats["obs"]["events_by_kind"]
        assert by_kind.get("health.drift", 0) >= 1
        assert by_kind.get("health.drift", 0) > \
            stationary.network_stats["obs"]["events_by_kind"].get(
                "health.drift", 0)

    def test_monitor_does_not_change_detections(self):
        # Attaching the monitor is observation only: detection results
        # are identical with and without health checks.
        with_monitor = _run("synthetic", obs_flag=False)
        without = ExperimentConfig(
            algorithm="d3", dataset="synthetic", n_leaves=4,
            window_size=120, sample_ratio=0.25, measure_ticks=160)
        baseline = run_accuracy_run(without, seed=7, obs=False)
        assert with_monitor.levels == baseline.levels
        assert with_monitor.n_true_outliers == baseline.n_true_outliers

    def test_summary_embedded_in_network_stats(self):
        result = _run("synthetic")
        health = result.network_stats["health"]
        assert health["n_checks"] > 0
        assert health["n_nodes"] > 0
