"""Tracer ring buffer, spans, file sink, and the activation toggles."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.trace import Tracer


class TestTracerRing:
    def test_emit_records_common_fields(self):
        tracer = Tracer()
        record = tracer.emit("sample.evict", count=3)
        assert record["event"] == "sample.evict"
        assert record["count"] == 3
        assert record["seq"] == 0
        assert record["span"] is None
        assert isinstance(record["t"], float)

    def test_seq_monotonic(self):
        tracer = Tracer()
        seqs = [tracer.emit("sample.evict", count=1)["seq"]
                for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_ring_bounded_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit("sample.evict", count=i)
        events = tracer.events()
        assert len(events) == 4
        assert [e["count"] for e in events] == [6, 7, 8, 9]
        assert tracer.n_emitted == 10
        assert tracer.n_dropped == 6

    def test_counts_by_kind(self):
        tracer = Tracer()
        tracer.emit("sample.evict", count=1)
        tracer.emit("sample.evict", count=2)
        tracer.emit("transport.expire", seq_no=0, attempts=3)
        assert tracer.counts_by_kind() == {
            "sample.evict": 2, "transport.expire": 1}

    def test_numpy_fields_jsonable_in_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        tracer.open_sink(str(path))
        tracer.emit("sample.evict", count=np.int64(2),
                    timestamp=np.float64(1.5),
                    values=np.array([0.25, 0.75]))
        tracer.close_sink()
        record = json.loads(path.read_text())
        assert record["count"] == 2
        assert record["timestamp"] == 1.5
        assert record["values"] == [0.25, 0.75]


class TestRingCapacityEdges:
    def test_exactly_at_default_capacity_drops_nothing(self):
        from repro.obs.trace import DEFAULT_CAPACITY

        tracer = Tracer()
        for _ in range(DEFAULT_CAPACITY):
            tracer.emit("sample.evict", count=1)
        assert tracer.n_emitted == DEFAULT_CAPACITY
        assert tracer.n_dropped == 0
        assert len(tracer.events()) == DEFAULT_CAPACITY

    def test_one_past_default_capacity_wraps(self):
        from repro.obs.trace import DEFAULT_CAPACITY

        tracer = Tracer()
        for i in range(DEFAULT_CAPACITY + 1):
            tracer.emit("sample.evict", count=i)
        assert tracer.n_dropped == 1
        events = tracer.events()
        assert len(events) == DEFAULT_CAPACITY
        # The oldest event (count=0) fell off; order is preserved.
        assert events[0]["count"] == 1
        assert events[-1]["count"] == DEFAULT_CAPACITY


class TestSinkFailures:
    def test_unwritable_path_raises_clear_error(self, tmp_path):
        from repro._exceptions import ParameterError

        bad = tmp_path / "no-such-dir" / "trace.jsonl"
        tracer = Tracer()
        with pytest.raises(ParameterError, match="cannot open trace sink"):
            tracer.open_sink(str(bad))
        assert tracer.sink_path is None

    def test_sink_dying_mid_run_warns_and_continues(self):
        class _DeadSink:
            def write(self, text):
                raise OSError("disk full")

            def close(self):
                pass

        tracer = Tracer()
        tracer._sink = _DeadSink()
        tracer._sink_path = "/dev/fullish"
        with pytest.warns(RuntimeWarning, match="failed mid-run"):
            record = tracer.emit("sample.evict", count=1)
        assert record["count"] == 1           # the emit itself succeeded
        assert tracer.sink_path is None       # sink dropped...
        tracer.emit("sample.evict", count=2)  # ...and tracing continues
        assert tracer.n_emitted == 2

    def test_bad_ambient_trace_file_warns_not_raises(self):
        from repro.obs import _open_ambient_sink

        with pytest.warns(RuntimeWarning, match="REPRO_TRACE_FILE"):
            _open_ambient_sink("/no/such/dir/trace.jsonl")
        assert obs.tracer().sink_path is None


class TestSpans:
    def test_nesting_and_parent(self):
        tracer = Tracer()
        outer = tracer.open_span("run")
        inner = tracer.open_span("tick", tick=0)
        assert tracer.current_span() == inner
        events = tracer.events()
        assert events[0]["event"] == "span_open"
        assert events[0]["parent"] is None
        assert events[1]["parent"] == outer
        tracer.close_span(inner)
        assert tracer.current_span() == outer
        tracer.close_span(outer)
        assert tracer.current_span() is None

    def test_events_inherit_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("run") as span_id:
            record = tracer.emit("sample.evict", count=1)
        assert record["span"] == span_id

    def test_span_contextmanager_closes_with_duration(self):
        tracer = Tracer()
        with tracer.span("run"):
            pass
        close = tracer.events()[-1]
        assert close["event"] == "span_close"
        assert close["dur_s"] >= 0.0

    def test_close_span_pops_through_stack(self):
        tracer = Tracer()
        outer = tracer.open_span("run")
        tracer.open_span("tick", tick=0)
        tracer.close_span(outer)   # closes the stale inner too
        assert tracer.current_span() is None


class TestSink:
    def test_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        tracer.open_sink(str(path))
        tracer.emit("sample.evict", count=1)
        tracer.emit("sample.evict", count=2)
        tracer.close_sink()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["count"] == 2

    def test_sink_survives_ring_overflow(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(capacity=2)
        tracer.open_sink(str(path))
        for i in range(6):
            tracer.emit("sample.evict", count=i)
        tracer.close_sink()
        assert len(path.read_text().splitlines()) == 6


class TestActivation:
    def test_disabled_path_adds_zero_events(self):
        # Instrumented code paths gate on obs.ACTIVE, so running real
        # components with the flag off must leave everything empty.
        from repro.streams.sampling import ChainSample

        assert not obs.ACTIVE
        sample = ChainSample(window_size=8, sample_size=4)
        for i in range(64):
            sample.offer(float(i), timestamp=i)
        assert sample.eviction_count > 0   # evictions happened...
        assert obs.tracer().n_emitted == 0  # ...but none were traced
        assert obs.tracer().events() == []
        assert obs.metrics().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert obs.profiler().summary() == {}

    def test_enabled_restores_previous_state(self):
        assert not obs.ACTIVE
        with obs.enabled():
            assert obs.ACTIVE
            obs.emit("sample.evict", count=1)
        assert not obs.ACTIVE
        assert obs.tracer().n_emitted == 1

    def test_enabled_opens_and_closes_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.enabled(str(path)):
            obs.emit("sample.evict", count=1)
        assert obs.tracer().sink_path is None
        assert len(path.read_text().splitlines()) == 1

    def test_reset_discards_events(self):
        obs.activate()
        obs.emit("sample.evict", count=1)
        obs.reset()
        assert obs.tracer().n_emitted == 0

    def test_snapshot_shape(self):
        obs.activate()
        obs.emit("sample.evict", count=1)
        obs.metrics().counter("transport.retries").inc()
        obs.profiler().record("simulator.drain", 0.25)
        snap = obs.snapshot()
        assert snap["n_events"] == 1
        assert snap["events_by_kind"] == {"sample.evict": 1}
        assert snap["metrics"]["counters"]["transport.retries"] == 1
        assert "simulator.drain" in snap["profile"]


class TestEnvParsing:
    @pytest.mark.parametrize("value", ["", "0", "false", "FALSE", "no", "off"])
    def test_falsey(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert not obs._env_active()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "2"])
    def test_truthy(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert obs._env_active()

    def test_unset_is_falsey(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not obs._env_active()


class TestRingDropAccounting:
    """Satellite of the distributed plane: per-kind overflow counts."""

    def test_dropped_by_kind_tallies_evictions(self):
        tracer = Tracer(capacity=4)
        for _ in range(6):
            tracer.emit("sample.evict", count=1)
        for _ in range(2):
            tracer.emit("transport.expire", seq_no=0, attempts=1)
        # 8 emitted into a 4-slot ring: the 4 oldest (all sample.evict)
        # were evicted, and the tally says which kinds they were.
        assert tracer.n_dropped == 4
        assert tracer.dropped_by_kind() == {"sample.evict": 4}

    def test_no_overflow_means_empty_tally(self):
        tracer = Tracer()
        tracer.emit("sample.evict", count=1)
        assert tracer.dropped_by_kind() == {}

    def test_snapshot_surfaces_ring_drops(self):
        obs.activate()
        obs.emit("sample.evict", count=1)
        snap = obs.snapshot()
        assert snap["n_ring_dropped"] == 0
        assert snap["ring_dropped_by_kind"] == {}

    def test_sink_is_complete_despite_ring_overflow(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(capacity=2)
        tracer.open_sink(str(path))
        for i in range(5):
            tracer.emit("sample.evict", count=i)
        tracer.close_sink()
        # The ring evicted 3 events; the sink file still holds all 5.
        assert tracer.n_dropped == 3
        assert len(path.read_text().splitlines()) == 5

    def test_append_mode_preserves_existing_content(self, tmp_path):
        path = tmp_path / "spool.jsonl"
        path.write_text('{"spool_header": {"worker_id": 1}}\n')
        tracer = Tracer()
        tracer.open_sink(str(path), append=True)
        tracer.emit("sample.evict", count=1)
        tracer.close_sink()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert "spool_header" in lines[0]
