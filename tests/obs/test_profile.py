"""Phase profiler accumulation, summary ordering, and exception safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.obs.profile import PhaseProfiler


class TestPhaseProfiler:
    def test_record_accumulates(self):
        profiler = PhaseProfiler()
        profiler.record("simulator.drain", 0.2)
        profiler.record("simulator.drain", 0.4)
        summary = profiler.summary()["simulator.drain"]
        assert summary["calls"] == 2
        assert summary["total_s"] == pytest.approx(0.6)
        assert summary["mean_s"] == summary["total_s"] / 2
        assert summary["max_s"] == 0.4

    def test_summary_hottest_first(self):
        profiler = PhaseProfiler()
        profiler.record("cold", 0.1)
        profiler.record("hot", 5.0)
        profiler.record("warm", 1.0)
        assert list(profiler.summary()) == ["hot", "warm", "cold"]

    def test_phase_contextmanager(self):
        profiler = PhaseProfiler()
        with profiler.phase("estimator.rebuild"):
            pass
        summary = profiler.summary()["estimator.rebuild"]
        assert summary["calls"] == 1
        assert summary["total_s"] >= 0.0

    def test_empty_summary(self):
        assert PhaseProfiler().summary() == {}

    def test_phase_charged_on_exception(self):
        # A phase entered but aborted by an exception must still land in
        # the summary -- otherwise failing runs profile as 0 ns.
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with profiler.phase("estimator.rebuild"):
                raise RuntimeError("boom")
        summary = profiler.summary()["estimator.rebuild"]
        assert summary["calls"] == 1
        assert summary["total_s"] >= 0.0


class TestInstrumentedSitesOnException:
    """The manual perf_counter sites must close their phase in finally."""

    def test_failed_rebuild_still_charged(self, monkeypatch):
        from repro.detectors import _state as state_module
        from repro.detectors._state import StreamModelState

        state = StreamModelState(64, 16, 1, model_refresh=1,
                                 rng=np.random.default_rng(0))
        state.observe_many(np.random.default_rng(1).uniform(
            0.2, 0.8, size=(50, 1)))

        def _broken(*args, **kwargs):
            raise RuntimeError("constructor down")

        monkeypatch.setattr(state_module, "KernelDensityEstimator", _broken)
        with obs.enabled():
            with pytest.raises(RuntimeError):
                state.model()
        summary = obs.profiler().summary()
        assert summary["estimator.rebuild"]["calls"] == 1
        assert obs.tracer().counts_by_kind().get("estimator.rebuild") == 1

    def test_failed_sorted_query_still_charged(self, monkeypatch):
        from repro.core.estimator import KernelDensityEstimator

        rng = np.random.default_rng(2)
        model = KernelDensityEstimator(
            rng.uniform(0.2, 0.8, size=(64, 1)), window_size=64)

        def _broken(self, low, high):
            raise RuntimeError("query down")

        monkeypatch.setattr(KernelDensityEstimator,
                            "_range_probability_sorted_1d", _broken)
        with obs.enabled():
            with pytest.raises(RuntimeError):
                model.range_probability(0.2, 0.6)
        summary = obs.profiler().summary()
        assert summary["estimator.query_sorted"]["calls"] == 1


class TestKernelPhaseCoverage:
    """The backend-era hot paths each charge their own named phase."""

    def test_range_batch_phase(self):
        from repro.core.estimator import KernelDensityEstimator

        rng = np.random.default_rng(3)
        model = KernelDensityEstimator(rng.uniform(0.2, 0.8, size=(64, 1)))
        lows = rng.uniform(0.2, 0.5, size=(8, 1))
        with obs.enabled():
            model.range_probability(lows, lows + 0.1)
        assert obs.profiler().summary()["kernels.range_batch"]["calls"] == 1

    def test_sorted_nd_phase(self):
        from repro.core.estimator import KernelDensityEstimator

        rng = np.random.default_rng(4)
        model = KernelDensityEstimator(rng.uniform(0.2, 0.8, size=(64, 2)),
                                       bandwidths=np.full(2, 0.01))
        with obs.enabled():
            model.range_probability(np.array([0.3, 0.3]),
                                    np.array([0.32, 0.32]))
        assert obs.profiler().summary()["kernels.sorted_nd"]["calls"] == 1

    def test_offer_many_phase(self):
        from repro.streams.sampling import ChainSample

        chain = ChainSample(64, 16, rng=np.random.default_rng(5))
        with obs.enabled():
            chain.offer_many(np.random.default_rng(6).uniform(size=40))
        assert obs.profiler().summary()["chain.offer_many"]["calls"] == 1

    def test_update_many_phase(self):
        from repro.streams.variance import MultiDimVarianceSketch

        sketch = MultiDimVarianceSketch(64, 2)
        with obs.enabled():
            sketch.insert_many(
                np.random.default_rng(7).uniform(size=(40, 2)))
        assert obs.profiler().summary()["sketch.update_many"]["calls"] == 1
