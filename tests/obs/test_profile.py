"""Phase profiler accumulation and summary ordering."""

from __future__ import annotations

import pytest

from repro.obs.profile import PhaseProfiler


class TestPhaseProfiler:
    def test_record_accumulates(self):
        profiler = PhaseProfiler()
        profiler.record("simulator.drain", 0.2)
        profiler.record("simulator.drain", 0.4)
        summary = profiler.summary()["simulator.drain"]
        assert summary["calls"] == 2
        assert summary["total_s"] == pytest.approx(0.6)
        assert summary["mean_s"] == summary["total_s"] / 2
        assert summary["max_s"] == 0.4

    def test_summary_hottest_first(self):
        profiler = PhaseProfiler()
        profiler.record("cold", 0.1)
        profiler.record("hot", 5.0)
        profiler.record("warm", 1.0)
        assert list(profiler.summary()) == ["hot", "warm", "cold"]

    def test_phase_contextmanager(self):
        profiler = PhaseProfiler()
        with profiler.phase("estimator.rebuild"):
            pass
        summary = profiler.summary()["estimator.rebuild"]
        assert summary["calls"] == 1
        assert summary["total_s"] >= 0.0

    def test_empty_summary(self):
        assert PhaseProfiler().summary() == {}
