"""Counters, gauges, histograms, and the MessageCounter bridge."""

from __future__ import annotations

import numpy as np

from repro.network.messages import Ack, MessageCounter, ValueForward
from repro.obs.metrics import MetricsRegistry


class TestPrimitives:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("transport.retries")
        counter.inc()
        counter.inc(3)
        assert registry.counter("transport.retries") is counter
        assert counter.value == 4

    def test_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("sample.size").set(100.0)
        registry.gauge("sample.size").set(99.0)
        assert registry.gauge("sample.size").value == 99.0

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("estimator.range_query.latency")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_empty_histogram_summary_is_zeros(self):
        summary = MetricsRegistry().histogram("x").summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0


class TestAbsorb:
    def test_absorb_message_counter(self):
        counter = MessageCounter()
        forward = ValueForward(value=np.array([0.5]))
        counter.record(forward)
        counter.record(forward)
        counter.record_delivered(forward)
        counter.record_dropped(forward)
        counter.record(Ack(seq=0))
        counter.record_delivered(Ack(seq=0))

        registry = MetricsRegistry()
        registry.absorb_message_counter(counter)
        counters = registry.snapshot()["counters"]
        assert counters["messages.ValueForward.sent"] == 2
        assert counters["messages.ValueForward.delivered"] == 1
        assert counters["messages.ValueForward.dropped"] == 1
        assert counters["messages.ValueForward.words"] == 2 * forward.size_words()
        assert counters["messages.Ack.sent"] == 1
        assert counters["messages.Ack.delivered"] == 1

    def test_absorb_mapping_recurses_and_skips_non_numeric(self):
        registry = MetricsRegistry()
        registry.absorb_mapping({
            "retransmissions": 7,
            "enabled": True,
            "nested": {"expired": 2.5},
            "label": "ignored",
        }, "transport")
        gauges = registry.snapshot()["gauges"]
        assert gauges["transport.retransmissions"] == 7.0
        assert gauges["transport.enabled"] == 1.0
        assert gauges["transport.nested.expired"] == 2.5
        assert "transport.label" not in gauges

    def test_snapshot_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["histograms"]["h"]["count"] == 1


class TestMerge:
    """Fleet merge rules: counters add, gauges last-writer-by-tick,
    histograms bucket-wise -- each associative and commutative."""

    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("fleet.flags").inc(3)
        b.counter("fleet.flags").inc(4)
        b.counter("fleet.readings").inc(10)
        a.merge(b.snapshot())
        counters = a.snapshot()["counters"]
        assert counters["fleet.flags"] == 7
        assert counters["fleet.readings"] == 10

    def test_gauges_resolve_last_writer_by_tick(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("fleet.progress.tick").set(120.0, tick=120)
        b.gauge("fleet.progress.tick").set(80.0, tick=80)
        a.merge(b.snapshot())
        # The later tick wins regardless of merge direction.
        assert a.snapshot()["gauges"]["fleet.progress.tick"] == 120.0
        b.merge(MetricsRegistry().snapshot())   # no-op
        fresh = MetricsRegistry()
        fresh.merge(b.snapshot())
        snap_a = MetricsRegistry()
        snap_a.gauge("fleet.progress.tick").set(120.0, tick=120)
        fresh.merge(snap_a.snapshot())
        assert fresh.snapshot()["gauges"]["fleet.progress.tick"] == 120.0

    def test_untick_gauge_adopted_not_zero_clobbered(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.gauge("fleet.worker.1.elapsed_s").set(-2.5)
        a.merge(b.snapshot())
        assert a.snapshot()["gauges"]["fleet.worker.1.elapsed_s"] == -2.5

    def test_histograms_merge_bucket_wise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 2.0):
            a.histogram("fleet.batch_ingest_s").observe(value)
        for value in (3.0, 6.0):
            b.histogram("fleet.batch_ingest_s").observe(value)
        a.merge(b.snapshot())
        summary = a.snapshot()["histograms"]["fleet.batch_ingest_s"]
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 6.0
        assert summary["mean"] == 3.0

    def test_merge_snapshots_order_insensitive(self):
        import itertools

        from repro.obs.metrics import merge_snapshots

        snaps = []
        for worker, (tick, flags) in enumerate([(100, 3), (160, 5),
                                                (40, 1)]):
            registry = MetricsRegistry()
            registry.counter("fleet.flags").inc(flags)
            registry.gauge("fleet.progress.tick").set(float(tick),
                                                      tick=tick)
            registry.histogram("h").observe(float(worker))
            snaps.append(registry.snapshot())
        baseline = merge_snapshots(snaps)
        for ordering in itertools.permutations(snaps):
            assert merge_snapshots(list(ordering)) == baseline
        assert baseline["counters"]["fleet.flags"] == 9
        assert baseline["gauges"]["fleet.progress.tick"] == 160.0

    def test_empty_snapshot_shape_has_no_gauge_ticks(self):
        snap = MetricsRegistry().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
        ticked = MetricsRegistry()
        ticked.gauge("g").set(1.0, tick=3)
        assert ticked.snapshot()["gauge_ticks"] == {"g": 3}
