"""Counters, gauges, histograms, and the MessageCounter bridge."""

from __future__ import annotations

import numpy as np

from repro.network.messages import Ack, MessageCounter, ValueForward
from repro.obs.metrics import MetricsRegistry


class TestPrimitives:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("transport.retries")
        counter.inc()
        counter.inc(3)
        assert registry.counter("transport.retries") is counter
        assert counter.value == 4

    def test_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("sample.size").set(100.0)
        registry.gauge("sample.size").set(99.0)
        assert registry.gauge("sample.size").value == 99.0

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("estimator.range_query.latency")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_empty_histogram_summary_is_zeros(self):
        summary = MetricsRegistry().histogram("x").summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0


class TestAbsorb:
    def test_absorb_message_counter(self):
        counter = MessageCounter()
        forward = ValueForward(value=np.array([0.5]))
        counter.record(forward)
        counter.record(forward)
        counter.record_delivered(forward)
        counter.record_dropped(forward)
        counter.record(Ack(seq=0))
        counter.record_delivered(Ack(seq=0))

        registry = MetricsRegistry()
        registry.absorb_message_counter(counter)
        counters = registry.snapshot()["counters"]
        assert counters["messages.ValueForward.sent"] == 2
        assert counters["messages.ValueForward.delivered"] == 1
        assert counters["messages.ValueForward.dropped"] == 1
        assert counters["messages.ValueForward.words"] == 2 * forward.size_words()
        assert counters["messages.Ack.sent"] == 1
        assert counters["messages.Ack.delivered"] == 1

    def test_absorb_mapping_recurses_and_skips_non_numeric(self):
        registry = MetricsRegistry()
        registry.absorb_mapping({
            "retransmissions": 7,
            "enabled": True,
            "nested": {"expired": 2.5},
            "label": "ignored",
        }, "transport")
        gauges = registry.snapshot()["gauges"]
        assert gauges["transport.retransmissions"] == 7.0
        assert gauges["transport.enabled"] == 1.0
        assert gauges["transport.nested.expired"] == 2.5
        assert "transport.label" not in gauges

    def test_snapshot_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["histograms"]["h"]["count"] == 1
