"""The ``repro top`` live view, driven headless through StringIO."""

from __future__ import annotations

import io

import pytest

from repro import obs
from repro._exceptions import ParameterError
from repro.obs.health import HealthMonitor
from repro.obs.top import TopView, build_workload, run_top


class TestBuildWorkload:
    def test_rejects_unknown_dataset(self):
        with pytest.raises(ParameterError):
            build_workload(dataset="nope")

    def test_returns_runnable_pieces(self):
        simulator, nodes, hierarchy = build_workload(
            n_leaves=2, window_size=40, n_ticks=20)
        assert len(nodes) >= 2
        simulator.run(5)   # a few ticks run cleanly


class TestTopView:
    def test_absorb_is_incremental(self):
        simulator, nodes, hierarchy = build_workload(
            n_leaves=2, window_size=40, n_ticks=40)
        monitor = HealthMonitor(nodes, hierarchy)
        view = TopView(nodes, monitor)
        with obs.enabled():
            simulator.run(10)
            first = view.absorb_events()
            assert first > 0
            assert view.absorb_events() == 0   # nothing new
            simulator.run(5)
            assert view.absorb_events() > 0

    def test_render_contains_node_rows(self):
        simulator, nodes, hierarchy = build_workload(
            n_leaves=2, window_size=40, n_ticks=60)
        monitor = HealthMonitor(nodes, hierarchy)
        view = TopView(nodes, monitor)
        with obs.enabled():
            simulator.run(60)
            monitor.check(59)
            frame = view.render(59)
        assert "repro top" in frame
        assert "score" in frame and "drift" in frame
        # One row per monitored node after the header + rule.
        assert len(frame.splitlines()) == 3 + len(monitor.last_reports())
        assert view.n_frames == 1


class TestRunTop:
    def test_headless_run_renders_frames(self):
        sink = io.StringIO()
        summary = run_top(n_leaves=2, window_size=40, n_ticks=60,
                          refresh_every=20, interval_s=0.0, out=sink)
        assert summary["frames"] == 3
        assert summary["final_tick"] == 59
        assert summary["health"]["n_checks"] == 3
        assert sink.getvalue().count("repro top") == 3
        # The scoped run leaves the ambient obs state untouched.
        assert not obs.ACTIVE
        assert obs.tracer().n_emitted == 0

    def test_clear_mode_emits_ansi(self):
        sink = io.StringIO()
        run_top(n_leaves=2, window_size=40, n_ticks=20,
                refresh_every=20, interval_s=0.0, out=sink, clear=True)
        assert sink.getvalue().startswith("\x1b[2J\x1b[H")

    def test_rejects_bad_refresh(self):
        with pytest.raises(ParameterError):
            run_top(refresh_every=0)
