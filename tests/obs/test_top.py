"""The ``repro top`` live view, driven headless through StringIO."""

from __future__ import annotations

import io

import pytest

from repro import obs
from repro._exceptions import ParameterError
from repro.obs.health import HealthMonitor
from repro.obs.top import TopView, build_workload, run_top


class TestBuildWorkload:
    def test_rejects_unknown_dataset(self):
        with pytest.raises(ParameterError):
            build_workload(dataset="nope")

    def test_returns_runnable_pieces(self):
        simulator, nodes, hierarchy = build_workload(
            n_leaves=2, window_size=40, n_ticks=20)
        assert len(nodes) >= 2
        simulator.run(5)   # a few ticks run cleanly


class TestTopView:
    def test_absorb_is_incremental(self):
        simulator, nodes, hierarchy = build_workload(
            n_leaves=2, window_size=40, n_ticks=40)
        monitor = HealthMonitor(nodes, hierarchy)
        view = TopView(nodes, monitor)
        with obs.enabled():
            simulator.run(10)
            first = view.absorb_events()
            assert first > 0
            assert view.absorb_events() == 0   # nothing new
            simulator.run(5)
            assert view.absorb_events() > 0

    def test_render_contains_node_rows(self):
        simulator, nodes, hierarchy = build_workload(
            n_leaves=2, window_size=40, n_ticks=60)
        monitor = HealthMonitor(nodes, hierarchy)
        view = TopView(nodes, monitor)
        with obs.enabled():
            simulator.run(60)
            monitor.check(59)
            frame = view.render(59)
        assert "repro top" in frame
        assert "score" in frame and "drift" in frame
        assert "flags" in frame and "lat" in frame
        # One row per monitored node after the header + rule.
        assert len(frame.splitlines()) == 3 + len(monitor.last_reports())
        assert view.n_frames == 1

    def test_render_on_an_empty_ring(self):
        # No run, no checks: the frame is just the header + rule, and
        # rendering must not divide by or index into anything empty.
        simulator, nodes, hierarchy = build_workload(
            n_leaves=2, window_size=40, n_ticks=20)
        monitor = HealthMonitor(nodes, hierarchy)
        view = TopView(nodes, monitor)
        frame = view.render(0)
        assert "repro top" in frame
        assert len(frame.splitlines()) == 3
        assert view.absorb_events() == 0

    def test_absorbs_lineage_only_ring(self):
        # A ring holding nothing but lineage.* events (e.g. a warm-up
        # slice before any message flies) is absorbed without crashing
        # and without miscounting the message columns.
        simulator, nodes, hierarchy = build_workload(
            n_leaves=2, window_size=40, n_ticks=20)
        monitor = HealthMonitor(nodes, hierarchy)
        view = TopView(nodes, monitor)
        with obs.enabled():
            obs.emit("lineage.ingest", node=0, tick=1)
            obs.emit("lineage.model_merge", node=0, tick=2, model_seq=1)
            obs.emit("lineage.detect", node=0, level=1, origin=0,
                     reading_tick=2, flag_tick=2, latency=0)
            assert view.absorb_events() == 3
            assert view._sent == {} and view._received == {}

    def test_absorbs_flag_latency(self):
        simulator, nodes, hierarchy = build_workload(
            n_leaves=2, window_size=40, n_ticks=60)
        monitor = HealthMonitor(nodes, hierarchy)
        view = TopView(nodes, monitor)
        with obs.enabled():
            obs.emit("detector.flag", node=1, level=2, origin=0, tick=5,
                     latency=4)
            obs.emit("detector.flag", node=1, level=2, origin=0, tick=9,
                     latency=2)
            simulator.run(40)
            monitor.check(39)
            view.render(39)
        assert view._flags[1] == 2
        assert view._latency_max[1] == 4


class TestRunTop:
    def test_headless_run_renders_frames(self):
        sink = io.StringIO()
        summary = run_top(n_leaves=2, window_size=40, n_ticks=60,
                          refresh_every=20, interval_s=0.0, out=sink)
        assert summary["frames"] == 3
        assert summary["final_tick"] == 59
        assert summary["health"]["n_checks"] == 3
        assert sink.getvalue().count("repro top") == 3
        # The scoped run leaves the ambient obs state untouched.
        assert not obs.ACTIVE
        assert obs.tracer().n_emitted == 0

    def test_clear_mode_emits_ansi(self):
        sink = io.StringIO()
        run_top(n_leaves=2, window_size=40, n_ticks=20,
                refresh_every=20, interval_s=0.0, out=sink, clear=True)
        assert sink.getvalue().startswith("\x1b[2J\x1b[H")

    def test_rejects_bad_refresh(self):
        with pytest.raises(ParameterError):
            run_top(refresh_every=0)
