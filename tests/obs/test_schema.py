"""Event schema validation: positive and negative cases."""

from __future__ import annotations

from repro import obs
from repro.obs import schema


def _emit(event, **fields):
    """Emit through an active tracer and return the full record."""
    return obs.tracer().emit(event, **fields)


class TestValidEvents:
    def test_every_kind_has_fields(self):
        assert set(schema.EVENT_KINDS) == set(schema.EVENT_FIELDS)

    def test_emitted_events_validate(self):
        obs.activate()
        with obs.span("run"):
            _emit("message.send", kind="ValueForward", sender=1, dest=0,
                  words=2)
            _emit("message.deliver", kind="ValueForward", dest=0)
            _emit("message.drop", kind="Ack", reason="loss")
            _emit("transport.retransmit", seq_no=4, attempt=2)
            _emit("detector.flag", node=0, level=1, origin=3, tick=7)
            _emit("detector.check", node=0, level=2, origin=3, flagged=False)
            _emit("sample.evict", count=2)
            _emit("estimator.rebuild", sample_size=100, dur_s=0.001)
        assert schema.validate_events(obs.tracer().events()) == []

    def test_extra_fields_allowed(self):
        obs.activate()
        record = _emit("sample.evict", count=1, timestamp=9, custom="x")
        assert schema.validate_event(record) == []


class TestInvalidEvents:
    def test_unknown_kind(self):
        obs.activate()
        record = _emit("nonsense.kind")
        problems = schema.validate_event(record)
        assert any("unknown event" in p for p in problems)

    def test_missing_required_field(self):
        obs.activate()
        record = _emit("message.send", kind="Ack", sender=1, dest=0)
        problems = schema.validate_event(record)
        assert any("words" in p for p in problems)

    def test_wrong_type(self):
        obs.activate()
        record = _emit("sample.evict", count="two")
        problems = schema.validate_event(record)
        assert any("count" in p for p in problems)

    def test_bool_is_not_int(self):
        obs.activate()
        record = _emit("sample.evict", count=True)
        assert schema.validate_event(record) != []

    def test_span_open_name_must_be_known(self):
        obs.activate()
        obs.tracer().open_span("bogus")
        problems = schema.validate_events(obs.tracer().events())
        assert any("bogus" in p for p in problems)

    def test_missing_common_fields(self):
        problems = schema.validate_event({"event": "sample.evict", "count": 1})
        assert any("seq" in p for p in problems)

    def test_validate_events_prefixes_index(self):
        obs.activate()
        _emit("sample.evict", count=1)
        _emit("nonsense.kind")
        problems = schema.validate_events(obs.tracer().events())
        assert problems
        assert all(p.startswith("[1]") for p in problems)
