"""Metric exporters: Prometheus text format, JSONL, and the strict parser."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro._exceptions import ParameterError
from repro.obs.export import (json_lines, parse_prometheus, prometheus_text,
                              write_metrics)


def _snapshot():
    registry = obs.metrics()
    registry.counter("messages.Ack.sent").inc(3)
    registry.gauge("health.node.0.score").set(0.7)
    histogram = registry.histogram("estimator.query.latency")
    histogram.observe(0.5)
    histogram.observe(1.5)
    return registry.snapshot()


class TestPrometheusText:
    def test_round_trips_through_parser(self):
        text = prometheus_text(_snapshot())
        names = parse_prometheus(text)
        assert "repro_messages_Ack_sent_total" in names
        assert "repro_health_node_0_score" in names
        # Histograms flatten to summary component samples.
        assert "repro_estimator_query_latency_count" in names
        assert "repro_estimator_query_latency_sum" in names

    def test_dotted_name_preserved_as_label(self):
        text = prometheus_text(_snapshot())
        assert 'metric="messages.Ack.sent"' in text

    def test_extra_labels_merged(self):
        text = prometheus_text(_snapshot(), labels={"run": "bench-7"})
        assert 'run="bench-7"' in text
        parse_prometheus(text)   # still well-formed

    def test_empty_snapshot_is_empty_text(self):
        assert prometheus_text(obs.metrics().snapshot()) == ""
        assert parse_prometheus("") == []

    def test_rejects_bad_prefix(self):
        with pytest.raises(ParameterError):
            prometheus_text(_snapshot(), prefix="9bad")

    def test_infinities_formatted(self):
        # An empty histogram snapshots min=0/max=0, but raw inf values
        # from a gauge must serialise to the Prometheus spellings.
        obs.metrics().gauge("weird").set(float("inf"))
        text = prometheus_text(obs.metrics().snapshot())
        assert "+Inf" in text
        parse_prometheus(text)


class TestParserStrictness:
    @pytest.mark.parametrize("text", [
        "repro_x 1\n",                                   # sample before TYPE
        "# TYPE repro_x wrong\nrepro_x 1\n",             # unknown type
        "# TYPE repro_x gauge\nrepro_x one\n",           # non-numeric value
        "# TYPE repro_x gauge\nrepro_x{bad-label=\"v\"} 1\n",
        "# HELP repro_x\n",                              # truncated HELP
    ])
    def test_rejects_malformed(self, text):
        with pytest.raises(ParameterError):
            parse_prometheus(text)

    def test_accepts_special_values(self):
        text = ("# TYPE repro_x gauge\n"
                "repro_x +Inf\n"
                "repro_x -Inf\n"
                "repro_x NaN\n")
        assert parse_prometheus(text) == ["repro_x", "repro_x", "repro_x"]


class TestJsonLines:
    def test_one_object_per_metric(self):
        lines = json_lines(_snapshot()).splitlines()
        docs = [json.loads(line) for line in lines]
        assert {doc["type"] for doc in docs} == \
            {"counter", "gauge", "histogram"}
        by_name = {doc["name"]: doc for doc in docs}
        assert by_name["messages.Ack.sent"]["value"] == 3
        assert by_name["estimator.query.latency"]["count"] == 2


class TestWriteMetrics:
    def test_suffix_inference(self, tmp_path):
        snapshot = _snapshot()
        prom = tmp_path / "m.prom"
        jsonl = tmp_path / "m.jsonl"
        assert write_metrics(snapshot, str(prom)) == "prom"
        assert write_metrics(snapshot, str(jsonl)) == "jsonl"
        parse_prometheus(prom.read_text())
        assert json.loads(jsonl.read_text().splitlines()[0])

    def test_unknown_suffix_needs_fmt(self, tmp_path):
        with pytest.raises(ParameterError):
            write_metrics(_snapshot(), str(tmp_path / "m.dat"))
        write_metrics(_snapshot(), str(tmp_path / "m.dat"), fmt="prom")

    def test_unknown_fmt_rejected(self, tmp_path):
        with pytest.raises(ParameterError):
            write_metrics(_snapshot(), str(tmp_path / "m.prom"), fmt="xml")
