"""The REPRO_SANITIZE runtime invariant checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import _sanitize
from repro._sanitize import SanitizeError
from repro.core.estimator import KernelDensityEstimator
from repro.network.codec import (decode_model_state, encode_model_state,
                                 quantization_step)
from repro.streams.sampling import ChainSample
from repro.streams.variance import EHVarianceSketch


class TestSwitch:
    def test_env_parsing(self, monkeypatch):
        for value, expected in (("1", True), ("true", True), ("on", True),
                                ("0", False), ("false", False), ("", False),
                                ("off", False), ("no", False)):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert _sanitize._env_active() is expected
        monkeypatch.delenv("REPRO_SANITIZE")
        assert _sanitize._env_active() is False

    def test_enabled_context_restores_previous_state(self):
        previous = _sanitize.ACTIVE
        try:
            _sanitize.deactivate()
            with _sanitize.enabled():
                assert _sanitize.ACTIVE
            assert not _sanitize.ACTIVE
        finally:
            if previous:
                _sanitize.activate()

    def test_activate_deactivate(self):
        previous = _sanitize.ACTIVE
        try:
            _sanitize.activate()
            assert _sanitize.ACTIVE
            _sanitize.deactivate()
            assert not _sanitize.ACTIVE
        finally:
            if previous:
                _sanitize.activate()

    def test_error_is_catchable_both_ways(self):
        from repro._exceptions import ReproError
        assert issubclass(SanitizeError, ReproError)
        assert issubclass(SanitizeError, AssertionError)


class TestProbabilityChecks:
    def test_valid_probabilities_pass(self):
        _sanitize.check_probabilities(np.array([0.0, 0.5, 1.0]), label="t")
        # Round-off a hair outside [0, 1] is legitimate cancellation.
        _sanitize.check_probabilities(np.array([-1e-12, 1.0 + 1e-12]), label="t")

    def test_out_of_range_raises(self):
        with pytest.raises(SanitizeError, match="outside"):
            _sanitize.check_probabilities(np.array([0.2, 1.5]), label="t")
        with pytest.raises(SanitizeError, match="outside"):
            _sanitize.check_probabilities(-0.01, label="t")

    def test_non_finite_raises(self):
        with pytest.raises(SanitizeError, match="non-finite"):
            _sanitize.check_probabilities(np.array([np.nan]), label="t")

    def test_mass_sum_above_one_raises(self):
        with pytest.raises(SanitizeError, match="total mass"):
            _sanitize.check_mass(np.array([0.7, 0.7]), label="t")

    def test_valid_mass_passes(self):
        _sanitize.check_mass(np.array([0.25, 0.25, 0.5]), label="t")


class TestBandwidthChecks:
    def test_positive_bandwidths_pass(self):
        _sanitize.check_bandwidths(np.array([0.01, 0.02]), label="t")

    @pytest.mark.parametrize("bad", [[0.0], [-0.1], [np.nan], []])
    def test_degenerate_bandwidths_raise(self, bad):
        with pytest.raises(SanitizeError):
            _sanitize.check_bandwidths(np.array(bad, dtype=float), label="t")


class TestChainSampleChecks:
    def make_sample(self, rng, n=500):
        sample = ChainSample(64, 16, rng=rng)
        sample.offer_many(rng.uniform(size=(n, 1)))
        return sample

    def test_healthy_sample_passes(self, rng):
        _sanitize.check_chain_sample(self.make_sample(rng))

    def test_offer_paths_pass_with_checks_live(self, rng):
        with _sanitize.enabled():
            sample = ChainSample(32, 8, rng=rng)
            for value in rng.uniform(size=40):
                sample.offer(value)
            sample.offer_many(rng.uniform(size=(200, 1)))

    def test_corrupted_successor_raises(self, rng):
        sample = self.make_sample(rng)
        chain = next(c for c in sample._chains if c.items)
        chain.successor_ts = chain.items[-1][0]   # due in the past
        with pytest.raises(SanitizeError, match="successor"):
            _sanitize.check_chain_sample(sample)

    def test_expired_item_raises(self, rng):
        sample = self.make_sample(rng)
        chain = next(c for c in sample._chains if c.items)
        ts, value = chain.items[0]
        chain.items[0] = (ts - 10_000, value)     # far outside the window
        with pytest.raises(SanitizeError, match="window"):
            _sanitize.check_chain_sample(sample)

    def test_mutation_count_regression_raises(self, rng):
        sample = self.make_sample(rng)
        with pytest.raises(SanitizeError, match="mutation_count"):
            _sanitize.check_chain_sample(
                sample, mutations_before=sample.mutation_count + 1)


class TestEHSketchChecks:
    def make_sketch(self, rng, n=300):
        sketch = EHVarianceSketch(128, epsilon=0.2)
        sketch.insert_many(rng.uniform(size=n))
        return sketch

    def test_healthy_sketch_passes(self, rng):
        _sanitize.check_eh_sketch(self.make_sketch(rng))

    def test_insert_paths_pass_with_checks_live(self, rng):
        with _sanitize.enabled():
            sketch = EHVarianceSketch(64, epsilon=0.2)
            for value in rng.uniform(size=100):
                sketch.insert(float(value))
            sketch.insert_many(rng.uniform(size=200))

    def test_zero_count_bucket_raises(self, rng):
        sketch = self.make_sketch(rng)
        sketch._buckets[0].count = 0
        with pytest.raises(SanitizeError, match="count"):
            _sanitize.check_eh_sketch(sketch)

    def test_unordered_buckets_raise(self, rng):
        sketch = self.make_sketch(rng)
        if len(sketch._buckets) < 2:
            pytest.skip("sketch compressed to a single bucket")
        sketch._buckets[-1].newest_ts = sketch._buckets[0].newest_ts
        with pytest.raises(SanitizeError, match="increasing"):
            _sanitize.check_eh_sketch(sketch)

    def test_negative_m2_raises(self, rng):
        sketch = self.make_sketch(rng)
        sketch._buckets[-1].m2 = -1.0
        with pytest.raises(SanitizeError, match="m2"):
            _sanitize.check_eh_sketch(sketch)


class TestCodecChecks:
    def test_roundtrip_passes_with_checks_live(self, rng):
        sample = rng.uniform(size=(32, 2))
        stddev = rng.uniform(0.01, 0.1, size=2)
        with _sanitize.enabled():
            payload = encode_model_state(sample, stddev, 4096)
        decoded, _, _ = decode_model_state(payload)
        assert decoded.shape == sample.shape

    def test_broken_decoder_raises(self, rng):
        sample = rng.uniform(size=(8, 1))
        stddev = np.array([0.05])
        payload = encode_model_state(sample, stddev, 100)

        def bad_decoder(_payload):
            return sample + 0.25, stddev, 100

        with pytest.raises(SanitizeError, match="round-trip"):
            _sanitize.check_codec_roundtrip(
                payload, sample, stddev, 100, bad_decoder,
                step=quantization_step())

    def test_wrong_window_raises(self, rng):
        sample = rng.uniform(size=(8, 1))
        stddev = np.array([0.05])
        payload = encode_model_state(sample, stddev, 100)

        def bad_decoder(_payload):
            return sample, stddev, 99

        with pytest.raises(SanitizeError, match="window_size"):
            _sanitize.check_codec_roundtrip(
                payload, sample, stddev, 100, bad_decoder,
                step=quantization_step())


class TestEstimatorIntegration:
    def test_queries_pass_with_checks_live(self, gaussian_window):
        with _sanitize.enabled():
            model = KernelDensityEstimator.from_window(gaussian_window)
            assert 0.0 <= model.range_probability(0.35, 0.45) <= 1.0
            assert model.interval_probabilities(
                np.linspace(0.0, 1.0, 9)).shape == (8,)
            assert model.grid_probabilities(16).shape == (16,)

    def test_degenerate_bandwidth_caught_at_construction(self):
        # A constant window has zero deviation; Scott's rule floors the
        # bandwidth, so construction must still yield a positive width
        # under the sanitizer rather than dividing by zero later.
        with _sanitize.enabled():
            model = KernelDensityEstimator(np.full((50, 1), 0.5))
            assert float(model.bandwidths[0]) > 0.0
