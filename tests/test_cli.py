"""Command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_defaults(self):
        args = build_parser().parse_args(["reproduce"])
        assert args.exhibit == "all"
        assert args.window == 1_500

    def test_reproduce_exhibit_choices(self):
        args = build_parser().parse_args(["reproduce", "figure5"])
        assert args.exhibit == "figure5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "figure99"])

    def test_detect_arguments(self):
        args = build_parser().parse_args(
            ["detect", "readings.txt", "--radius", "0.02"])
        assert args.path == "readings.txt"
        assert args.radius == 0.02

    def test_bench_subcommands_share_run_options(self):
        # Every benchmark-style subcommand exposes the same --seed,
        # --json-out and --metrics-out flags, each with its own default.
        for command, seed, json_out in (
                (["bench-throughput"], 0, "BENCH_throughput.json"),
                (["bench-resilience"], 7, "BENCH_resilience.json"),
                (["trace", "d3"], 7, None),
                (["profile"], 0, None)):
            args = build_parser().parse_args(command)
            assert args.seed == seed, command
            assert args.json_out == json_out, command
            assert args.metrics_out is None, command
            args = build_parser().parse_args(
                command + ["--seed", "99", "--json-out", "out.json",
                           "--metrics-out", "metrics.prom"])
            assert args.seed == 99
            assert args.json_out == "out.json"
            assert args.metrics_out == "metrics.prom"

    def test_export_metrics_arguments(self):
        args = build_parser().parse_args(["export-metrics"])
        assert args.experiment == "d3"
        assert args.out == "metrics.prom"
        assert args.health_every == 25
        args = build_parser().parse_args(
            ["export-metrics", "mgdd", "--dataset", "drift",
             "--format", "jsonl", "--out", "m.jsonl"])
        assert args.experiment == "mgdd"
        assert args.dataset == "drift"
        assert args.format == "jsonl"

    def test_top_arguments(self):
        args = build_parser().parse_args(["top"])
        assert args.refresh == 50
        assert args.clear is True
        args = build_parser().parse_args(
            ["top", "--no-clear", "--interval", "0", "--ticks", "100"])
        assert args.clear is False
        assert args.interval == 0.0
        assert args.ticks == 100

    def test_bench_latency_arguments(self):
        args = build_parser().parse_args(["bench-latency"])
        assert args.seed == 7
        assert args.json_out == "BENCH_latency.json"
        assert args.loss_rates == [0.0, 0.25]
        assert args.staleness_horizons == [30, 90]
        args = build_parser().parse_args(
            ["bench-latency", "--loss-rates", "0.1", "0.2",
             "--staleness-horizons", "40"])
        assert args.loss_rates == [0.1, 0.2]
        assert args.staleness_horizons == [40]

    def test_explain_arguments(self):
        args = build_parser().parse_args(
            ["explain", "--trace", "t.jsonl"])
        assert args.detection == "last"
        assert args.json is False
        args = build_parser().parse_args(
            ["explain", "12:340", "--trace", "t.jsonl", "--json"])
        assert args.detection == "12:340"
        assert args.json is True
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain"])   # --trace is required

    def test_output_is_an_alias_for_json_out(self):
        args = build_parser().parse_args(
            ["bench-throughput", "--output", "custom.json"])
        assert args.json_out == "custom.json"

    def test_trace_arguments(self):
        args = build_parser().parse_args(
            ["trace", "mgdd", "--loss-rate", "0.3", "--crash-fraction", "0"])
        assert args.experiment == "mgdd"
        assert args.loss_rate == 0.3
        assert args.crash_fraction == 0.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "unknown"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "figure11" in out

    def test_reproduce_figure5(self, capsys):
        assert main(["reproduce", "figure5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "Engine" in out

    def test_reproduce_memory(self, capsys):
        assert main(["reproduce", "memory"]) == 0
        assert "variance-sketch memory" in capsys.readouterr().out

    def test_detect_flags_planted_outliers(self, tmp_path, capsys, rng):
        values = rng.normal(0.4, 0.02, 1_500)
        values[1_200] = 0.9
        values[1_300] = 0.95
        path = tmp_path / "readings.txt"
        path.write_text("\n".join(f"{v:.6f}" for v in values))
        assert main(["detect", str(path), "--window", "1000",
                     "--sample", "64", "--threshold", "5"]) == 0
        captured = capsys.readouterr()
        assert "line 1200" in captured.out
        assert "line 1300" in captured.out
        assert "flagged" in captured.err

    def test_detect_handles_csv_and_blank_lines(self, tmp_path, capsys, rng):
        lines = [f"{v:.4f},extra" for v in rng.normal(0.4, 0.02, 50)]
        lines.insert(10, "")
        path = tmp_path / "readings.csv"
        path.write_text("\n".join(lines))
        assert main(["detect", str(path), "--window", "30",
                     "--sample", "8"]) == 0

    def test_trace_writes_valid_jsonl_and_summary(self, tmp_path, capsys):
        import json

        trace_out = tmp_path / "trace.jsonl"
        json_out = tmp_path / "obs.json"
        assert main(["trace", "d3", "--leaves", "4", "--window", "60",
                     "--measure", "40", "--trace-out", str(trace_out),
                     "--json-out", str(json_out)]) == 0
        captured = capsys.readouterr()
        assert "SCHEMA VIOLATION" not in captured.err
        assert "message kind" in captured.out
        events = [json.loads(line)
                  for line in trace_out.read_text().splitlines()]
        assert events
        assert all("event" in event for event in events)
        snapshot = json.loads(json_out.read_text())
        assert snapshot["n_events"] == len(events)

    def test_profile_prints_phase_table(self, tmp_path, capsys):
        import json

        json_out = tmp_path / "profile.json"
        assert main(["profile", "--readings", "2000", "--ticks", "100",
                     "--window", "500", "--sample", "50",
                     "--json-out", str(json_out)]) == 0
        out = capsys.readouterr().out
        assert "simulator.batch_ingest" in out
        doc = json.loads(json_out.read_text())
        assert doc["benchmark"] == "profile"
        assert "simulator.drain" in doc["phases"]

    def test_export_metrics_writes_parseable_prometheus(self, tmp_path,
                                                        capsys):
        from repro.obs.export import parse_prometheus

        out = tmp_path / "metrics.prom"
        assert main(["export-metrics", "d3", "--dataset", "drift",
                     "--leaves", "4", "--window", "120",
                     "--measure", "160", "--health-every", "20",
                     "--out", str(out)]) == 0
        names = parse_prometheus(out.read_text())
        assert any(name.startswith("repro_health_node_") for name in names)
        captured = capsys.readouterr()
        assert "health" in captured.out

    def test_trace_metrics_out(self, tmp_path):
        from repro.obs.export import parse_prometheus

        metrics_out = tmp_path / "trace.prom"
        assert main(["trace", "d3", "--leaves", "4", "--window", "60",
                     "--measure", "40",
                     "--trace-out", str(tmp_path / "trace.jsonl"),
                     "--metrics-out", str(metrics_out)]) == 0
        assert parse_prometheus(metrics_out.read_text())

    def test_bench_recovery_metrics_out(self, tmp_path):
        import json

        from repro.obs.export import parse_prometheus

        json_out = tmp_path / "recovery.json"
        metrics_out = tmp_path / "recovery.prom"
        assert main(["bench-recovery", "--streams", "2", "--ticks", "80",
                     "--crash-rates", "0.02",
                     "--checkpoint-cadences", "16",
                     "--json-out", str(json_out),
                     "--metrics-out", str(metrics_out)]) == 0
        # The full pipeline: the JSON artifact exists and the exported
        # metrics file is parseable Prometheus text exposition.
        assert json.loads(json_out.read_text())["benchmark"] == "recovery"
        names = parse_prometheus(metrics_out.read_text())
        assert names
        assert any("bench_recovery" in name for name in names)

    def test_bench_latency_and_explain_round_trip(self, tmp_path, capsys):
        import json

        json_out = tmp_path / "latency.json"
        assert main(["bench-latency", "--leaves", "4", "--branching", "2",
                     "--window", "60", "--measure", "60",
                     "--loss-rates", "0", "0.25",
                     "--staleness-horizons", "30",
                     "--json-out", str(json_out)]) == 0
        out = capsys.readouterr().out
        assert "words/flag" in out
        doc = json.loads(json_out.read_text())
        assert doc["benchmark"] == "latency"
        assert len(doc["cells"]) == 4   # 2 algorithms x 2 loss rates x 1

        trace_out = tmp_path / "trace.jsonl"
        assert main(["trace", "d3", "--leaves", "4", "--window", "60",
                     "--measure", "60", "--loss-rate", "0.2",
                     "--trace-out", str(trace_out)]) == 0
        capsys.readouterr()
        assert main(["explain", "last", "--trace", str(trace_out)]) == 0
        captured = capsys.readouterr()
        assert "flagged by node" in captured.out
        assert "lineage:      complete" in captured.out
        assert main(["explain", "last", "--trace", str(trace_out),
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["complete"] is True
        assert record["latency"] == record["flag_tick"] \
            - record["reading_tick"]
        assert main(["explain", "nonsense", "--trace",
                     str(trace_out)]) == 2

    def test_top_headless(self, tmp_path, capsys):
        assert main(["top", "--leaves", "2", "--window", "40",
                     "--ticks", "60", "--refresh", "20",
                     "--interval", "0", "--no-clear"]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("repro top") == 3
        assert "frame(s)" in captured.err


class TestFleetParser:
    def test_bench_fleet_arguments(self):
        args = build_parser().parse_args(["bench-fleet"])
        assert args.workers == [2, 4]
        assert args.loss_rates == [0.0, 0.25]
        assert args.seed == 7
        assert args.json_out == "BENCH_fleet.json"
        assert args.processes is True
        args = build_parser().parse_args(
            ["bench-fleet", "--workers", "2", "--loss-rates", "0.1",
             "--in-process", "--run-dir", "runs/x"])
        assert args.workers == [2]
        assert args.processes is False
        assert args.run_dir == "runs/x"

    def test_merge_trace_arguments(self):
        args = build_parser().parse_args(
            ["merge-trace", "a.spool.jsonl", "b.spool.jsonl",
             "--validate"])
        assert args.inputs == ["a.spool.jsonl", "b.spool.jsonl"]
        assert args.out == "TRACE_merged.jsonl"
        assert args.validate is True
        with pytest.raises(SystemExit):
            build_parser().parse_args(["merge-trace"])

    def test_export_metrics_in_snapshots(self):
        args = build_parser().parse_args(
            ["export-metrics", "--in", "a.json", "--in", "b.json"])
        assert args.inputs == ["a.json", "b.json"]
        assert build_parser().parse_args(
            ["export-metrics"]).inputs is None

    def test_top_trace_argument(self):
        args = build_parser().parse_args(["top", "--trace", "run/"])
        assert args.trace == "run/"
        assert build_parser().parse_args(["top"]).trace is None


class TestFleetCommands:
    def test_bench_fleet_merge_explain_export_top_round_trip(
            self, tmp_path, capsys):
        import json

        from repro.obs.export import parse_prometheus

        # One in-process pilot cell with loss, artifacts kept.
        run_dir = tmp_path / "fleet"
        json_out = tmp_path / "fleet.json"
        assert main(["bench-fleet", "--in-process", "--workers", "2",
                     "--loss-rates", "0.25", "--streams", "4",
                     "--ticks", "120", "--window", "60",
                     "--sample", "24", "--batch", "40",
                     "--checkpoint-every", "60",
                     "--run-dir", str(run_dir),
                     "--json-out", str(json_out)]) == 0
        out = capsys.readouterr().out
        assert "xworker" in out
        doc = json.loads(json_out.read_text())
        assert doc["benchmark"] == "fleet"
        cell_dir = run_dir / "cell-0"

        # merge-trace over the spool directory, schema-validated.
        merged = tmp_path / "merged.jsonl"
        assert main(["merge-trace", str(cell_dir), "--out", str(merged),
                     "--validate"]) == 0
        captured = capsys.readouterr()
        assert "schema valid; conservation holds" in captured.err
        assert merged.exists()

        # explain reads the merged trace and the spool dir alike; the
        # lineage must span the worker and the coordinator.
        assert main(["explain", "last", "--trace", str(merged),
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["complete"] is True
        workers = {hop.get("worker_id") for hop in record["hops"]}
        assert len(workers) >= 2
        assert main(["explain", "last", "--trace", str(cell_dir)]) == 0
        assert "flagged by node" in capsys.readouterr().out

        # export-metrics --in merges the per-worker snapshots.
        prom = tmp_path / "fleet.prom"
        assert main(["export-metrics", "--in", str(cell_dir),
                     "--out", str(prom)]) == 0
        capsys.readouterr()
        names = parse_prometheus(prom.read_text())
        assert any("fleet_flags" in name for name in names)

        # top --trace replays the merged trace headless.
        assert main(["top", "--trace", str(cell_dir), "--refresh", "40",
                     "--interval", "0", "--no-clear"]) == 0
        captured = capsys.readouterr()
        assert "repro top (replay)" in captured.out
        assert "workers" in captured.out

    def test_merge_trace_rejects_non_spools(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("{not json}\n")
        assert main(["merge-trace", str(bogus)]) == 2
        assert "merge-trace:" in capsys.readouterr().err
