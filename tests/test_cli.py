"""Command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_defaults(self):
        args = build_parser().parse_args(["reproduce"])
        assert args.exhibit == "all"
        assert args.window == 1_500

    def test_reproduce_exhibit_choices(self):
        args = build_parser().parse_args(["reproduce", "figure5"])
        assert args.exhibit == "figure5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "figure99"])

    def test_detect_arguments(self):
        args = build_parser().parse_args(
            ["detect", "readings.txt", "--radius", "0.02"])
        assert args.path == "readings.txt"
        assert args.radius == 0.02


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "figure11" in out

    def test_reproduce_figure5(self, capsys):
        assert main(["reproduce", "figure5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "Engine" in out

    def test_reproduce_memory(self, capsys):
        assert main(["reproduce", "memory"]) == 0
        assert "variance-sketch memory" in capsys.readouterr().out

    def test_detect_flags_planted_outliers(self, tmp_path, capsys, rng):
        values = rng.normal(0.4, 0.02, 1_500)
        values[1_200] = 0.9
        values[1_300] = 0.95
        path = tmp_path / "readings.txt"
        path.write_text("\n".join(f"{v:.6f}" for v in values))
        assert main(["detect", str(path), "--window", "1000",
                     "--sample", "64", "--threshold", "5"]) == 0
        captured = capsys.readouterr()
        assert "line 1200" in captured.out
        assert "line 1300" in captured.out
        assert "flagged" in captured.err

    def test_detect_handles_csv_and_blank_lines(self, tmp_path, capsys, rng):
        lines = [f"{v:.4f},extra" for v in rng.normal(0.4, 0.02, 50)]
        lines.insert(10, "")
        path = tmp_path / "readings.csv"
        path.write_text("\n".join(lines))
        assert main(["detect", str(path), "--window", "30",
                     "--sample", "8"]) == 0
