"""Synthetic workload generators (paper Section 10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.data.synthetic import (
    DEFAULT_MEANS,
    DriftingGaussianStream,
    DriftSpec,
    MixtureSpec,
    PlateauSpec,
    make_drift_stream,
    make_drift_streams,
    make_mixture_stream,
    make_mixture_streams,
    make_plateau_stream,
    make_plateau_streams,
)


class TestMixture:
    def test_shape_and_domain(self, rng):
        values = make_mixture_stream(5_000, 2, rng=rng)
        assert values.shape == (5_000, 2)
        assert (values >= 0).all() and (values <= 1).all()

    def test_bulk_concentrates_near_component_means(self, rng):
        values = make_mixture_stream(20_000, 1, rng=rng)[:, 0]
        bulk = values[values < 0.5]
        nearest = np.min(np.abs(bulk[:, None] - np.array(DEFAULT_MEANS)), axis=1)
        assert np.quantile(nearest, 0.95) < 0.06   # within ~2 sigma

    def test_noise_fraction(self, rng):
        values = make_mixture_stream(20_000, 1, rng=rng)[:, 0]
        # Count well past the 0.45 cluster's tail; noise is uniform on
        # [0.5, 1], so ~88% of it lies above 0.56.
        noise = np.mean(values >= 0.56)
        assert noise == pytest.approx(0.005 * 0.88, abs=0.003)

    def test_zero_noise(self, rng):
        spec = MixtureSpec(noise_fraction=0.0)
        values = make_mixture_stream(5_000, 1, spec=spec, rng=rng)[:, 0]
        assert (values < 0.6).all()

    def test_streams_differ_per_sensor(self):
        streams = make_mixture_streams(3, 100, seed=5)
        assert len(streams) == 3
        assert not np.allclose(streams[0], streams[1])

    def test_reproducible_with_seed(self):
        a = make_mixture_streams(2, 50, seed=42)
        b = make_mixture_streams(2, 50, seed=42)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    @pytest.mark.parametrize("kwargs", [
        {"means": ()},
        {"cluster_std": 0.0},
        {"noise_fraction": -0.1},
        {"noise_low": 0.9, "noise_high": 0.5},
    ])
    def test_invalid_spec(self, kwargs):
        with pytest.raises(ParameterError):
            MixtureSpec(**kwargs)


class TestPlateau:
    def test_regions(self, rng):
        spec = PlateauSpec()
        values = make_plateau_stream(20_000, 1, spec=spec, rng=rng)[:, 0]
        in_a = (values >= 0.30) & (values <= 0.42)
        in_b = (values >= 0.50) & (values <= 0.58)
        in_gap = (values > 0.42) & (values < 0.50)
        assert in_a.sum() + in_b.sum() + in_gap.sum() == values.shape[0]
        assert in_gap.mean() == pytest.approx(0.005, abs=0.003)

    def test_density_equalised_in_1d(self, rng):
        values = make_plateau_stream(50_000, 1, rng=rng)[:, 0]
        density_a = np.mean((values >= 0.30) & (values <= 0.42)) / 0.12
        density_b = np.mean((values >= 0.50) & (values <= 0.58)) / 0.08
        assert density_a == pytest.approx(density_b, rel=0.05)

    def test_density_equalised_in_2d(self, rng):
        values = make_plateau_stream(50_000, 2, rng=rng)
        in_a = ((values >= 0.30) & (values <= 0.42)).all(axis=1)
        in_b = ((values >= 0.50) & (values <= 0.58)).all(axis=1)
        density_a = in_a.mean() / 0.12**2
        density_b = in_b.mean() / 0.08**2
        assert density_a == pytest.approx(density_b, rel=0.08)

    def test_explicit_weight_respected(self, rng):
        spec = PlateauSpec(weight_a=0.9)
        values = make_plateau_stream(20_000, 1, spec=spec, rng=rng)[:, 0]
        assert np.mean(values <= 0.42) > 0.85

    def test_streams_reproducible(self):
        a = make_plateau_streams(2, 64, seed=3)
        b = make_plateau_streams(2, 64, seed=3)
        np.testing.assert_array_equal(a[1], b[1])

    @pytest.mark.parametrize("kwargs", [
        {"plateau_a": (0.5, 0.4)},
        {"gap": (0.5, 0.5)},
        {"weight_a": 1.0},
        {"noise_fraction": 1.0},
    ])
    def test_invalid_spec(self, kwargs):
        with pytest.raises(ParameterError):
            PlateauSpec(**kwargs)


class TestDriftingStream:
    def test_mean_schedule(self):
        stream = DriftingGaussianStream(means=(0.3, 0.5), shift_every=100)
        assert stream.mean_at(0) == 0.3
        assert stream.mean_at(99) == 0.3
        assert stream.mean_at(100) == 0.5
        assert stream.mean_at(200) == 0.3

    def test_generate_tracks_schedule(self, rng):
        stream = DriftingGaussianStream(means=(0.2, 0.8), std=0.01,
                                        shift_every=500, rng=rng)
        values = stream.generate(1_000)
        assert values[:500].mean() == pytest.approx(0.2, abs=0.01)
        assert values[500:].mean() == pytest.approx(0.8, abs=0.01)

    def test_true_interval_probabilities_sum_to_one(self):
        stream = DriftingGaussianStream()
        edges = np.linspace(-1, 2, 200)
        probs = stream.true_interval_probabilities(0, edges)
        assert probs.sum() == pytest.approx(1.0, abs=1e-6)

    def test_true_pdf_peaks_at_mean(self):
        stream = DriftingGaussianStream(means=(0.3,), std=0.05)
        xs = np.linspace(0, 1, 101)
        pdf = stream.true_pdf(0, xs)
        assert xs[np.argmax(pdf)] == pytest.approx(0.3, abs=0.01)

    def test_generate_with_offset(self, rng):
        stream = DriftingGaussianStream(means=(0.2, 0.8), std=0.01,
                                        shift_every=10, rng=rng)
        values = stream.generate(10, start=10)
        assert values.mean() == pytest.approx(0.8, abs=0.02)

    @pytest.mark.parametrize("kwargs", [
        {"means": ()},
        {"std": 0.0},
        {"shift_every": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            DriftingGaussianStream(**kwargs)


class TestDriftInjection:
    def test_shift_index(self):
        assert DriftSpec().shift_index(400) == 200
        assert DriftSpec(shift_fraction=0.25).shift_index(400) == 100

    def test_means_jump_at_shift(self, rng):
        spec = DriftSpec()
        values = make_drift_stream(4_000, rng=rng)[:, 0]
        shift = spec.shift_index(4_000)
        assert values[:shift].mean() == pytest.approx(spec.mean_before,
                                                      abs=0.01)
        assert values[shift:].mean() == pytest.approx(spec.mean_after,
                                                      abs=0.01)

    def test_domain_and_shape(self, rng):
        values = make_drift_stream(500, 2, rng=rng)
        assert values.shape == (500, 2)
        assert (values >= 0).all() and (values <= 1).all()

    def test_streams_share_shift_but_not_draws(self):
        streams = make_drift_streams(3, 1_000, seed=11)
        assert len(streams) == 3
        shift = DriftSpec().shift_index(1_000)
        for values in streams:
            assert values[:shift].mean() < 0.5 < values[shift:].mean()
        assert not np.array_equal(streams[0], streams[1])

    def test_seed_reproducible(self):
        first = make_drift_streams(2, 200, seed=3)
        second = make_drift_streams(2, 200, seed=3)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("kwargs", [
        {"mean_before": -0.1},
        {"mean_after": 1.5},
        {"std": 0.0},
        {"shift_fraction": 0.0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            DriftSpec(**kwargs)
