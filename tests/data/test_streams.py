"""Stream plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.data.streams import StreamSet


class TestStreamSet:
    def test_properties(self, rng):
        streams = StreamSet.from_arrays([rng.uniform(size=(10, 2))
                                         for _ in range(3)])
        assert streams.n_sensors == 3
        assert streams.length == 10
        assert streams.n_dims == 2

    def test_1d_arrays_normalised(self, rng):
        streams = StreamSet.from_arrays([rng.uniform(size=10)])
        assert streams.n_dims == 1
        assert streams.streams[0].shape == (10, 1)

    def test_reading_lookup(self):
        streams = StreamSet.from_arrays([np.array([[1.0], [2.0]]),
                                         np.array([[3.0], [4.0]])])
        assert streams.reading(1, 0).tolist() == [3.0]
        assert streams.reading(0, 1).tolist() == [2.0]

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            StreamSet.from_arrays([])

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ParameterError, match="length"):
            StreamSet.from_arrays([rng.uniform(size=5), rng.uniform(size=6)])

    def test_dims_mismatch_rejected(self, rng):
        with pytest.raises(ParameterError, match="dimensionality"):
            StreamSet.from_arrays([rng.uniform(size=(5, 1)),
                                   rng.uniform(size=(5, 2))])
