"""Synthetic engine dataset (Figure 5 stand-in)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.data.engine import (
    ENGINE_FIGURE5_ROW,
    FAILURE_FRACTION,
    make_engine_stream,
    make_engine_streams,
)
from repro.streams.stats import summarize


class TestFigure5Match:
    @pytest.fixture(scope="class")
    def stream(self):
        return make_engine_stream(rng=np.random.default_rng(42))[:, 0]

    def test_min_max(self, stream):
        target_min, target_max = ENGINE_FIGURE5_ROW[0], ENGINE_FIGURE5_ROW[1]
        assert stream.min() == pytest.approx(target_min, abs=0.01)
        assert stream.max() == pytest.approx(target_max, abs=0.005)

    def test_mean_median(self, stream):
        summary = summarize(stream)
        assert summary.mean == pytest.approx(ENGINE_FIGURE5_ROW[2], abs=0.01)
        assert summary.median == pytest.approx(ENGINE_FIGURE5_ROW[3], abs=0.005)

    def test_stddev(self, stream):
        assert summarize(stream).stddev == pytest.approx(
            ENGINE_FIGURE5_ROW[4], abs=0.012)

    def test_strong_negative_skew(self, stream):
        skew = summarize(stream).skew
        assert skew == pytest.approx(ENGINE_FIGURE5_ROW[5], abs=1.5)
        assert skew < -5


class TestFailureWindow:
    def test_failure_is_contiguous_and_low(self):
        stream = make_engine_stream(10_000, rng=np.random.default_rng(1))[:, 0]
        low = np.flatnonzero(stream < 0.3)
        assert low.size == pytest.approx(FAILURE_FRACTION * 10_000, rel=0.3)
        # Contiguity: the low block spans a compact index range.
        assert low[-1] - low[0] < 2 * low.size

    def test_failure_position_configurable(self):
        stream = make_engine_stream(
            10_000, failure_start_fraction=0.2,
            rng=np.random.default_rng(1))[:, 0]
        low = np.flatnonzero(stream < 0.3)
        assert 1_500 < low[0] < 2_500

    def test_no_failure(self):
        stream = make_engine_stream(5_000, failure_fraction=0.0,
                                    rng=np.random.default_rng(1))[:, 0]
        assert (stream > 0.35).all()

    @pytest.mark.parametrize("kwargs", [
        {"n": 0},
        {"failure_fraction": 1.0},
        {"failure_start_fraction": 1.5},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            make_engine_stream(**{"n": 100, **kwargs})


class TestStreams:
    def test_fifteen_sensors_share_the_event(self):
        streams = make_engine_streams(n_sensors=5, n=8_000, seed=11)
        assert len(streams) == 5
        starts = []
        for stream in streams:
            low = np.flatnonzero(stream[:, 0] < 0.3)
            assert low.size > 0
            starts.append(low[0])
        # A machine-level failure: every sensor sees it at the same time.
        assert max(starts) - min(starts) < 50

    def test_sensors_observe_independent_noise(self):
        streams = make_engine_streams(n_sensors=2, n=2_000, seed=11)
        assert not np.allclose(streams[0], streams[1])

    def test_reproducible(self):
        a = make_engine_streams(n_sensors=2, n=500, seed=3)
        b = make_engine_streams(n_sensors=2, n=500, seed=3)
        np.testing.assert_array_equal(a[0], b[0])
