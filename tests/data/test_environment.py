"""Synthetic environmental dataset (Figure 5 stand-in)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.environment import (
    DEWPOINT_FIGURE5_ROW,
    PRESSURE_FIGURE5_ROW,
    make_environment_stream,
    make_environment_streams,
)
from repro.streams.stats import summarize


class TestFigure5Match:
    @pytest.fixture(scope="class")
    def stream(self):
        return make_environment_stream(rng=np.random.default_rng(2))

    def test_shape(self, stream):
        assert stream.shape == (35_000, 2)

    def test_pressure_moments(self, stream):
        summary = summarize(stream[:, 0])
        assert summary.mean == pytest.approx(PRESSURE_FIGURE5_ROW[2], abs=0.03)
        assert summary.median == pytest.approx(PRESSURE_FIGURE5_ROW[3], abs=0.03)
        assert summary.stddev == pytest.approx(PRESSURE_FIGURE5_ROW[4], abs=0.02)

    def test_dewpoint_moments(self, stream):
        summary = summarize(stream[:, 1])
        assert summary.mean == pytest.approx(DEWPOINT_FIGURE5_ROW[2], abs=0.015)
        assert summary.median == pytest.approx(DEWPOINT_FIGURE5_ROW[3], abs=0.015)
        assert summary.stddev == pytest.approx(DEWPOINT_FIGURE5_ROW[4], abs=0.01)

    def test_bounds_respected(self, stream):
        assert stream[:, 0].min() >= PRESSURE_FIGURE5_ROW[0]
        assert stream[:, 0].max() <= PRESSURE_FIGURE5_ROW[1]
        assert stream[:, 1].min() >= DEWPOINT_FIGURE5_ROW[0]
        assert stream[:, 1].max() <= DEWPOINT_FIGURE5_ROW[1]

    def test_attributes_positively_correlated(self, stream):
        # Storms depress both pressure and dew-point.
        assert np.corrcoef(stream[:, 0], stream[:, 1])[0, 1] > 0.3

    def test_temporal_smoothness(self, stream):
        # Weather drifts: consecutive readings are close.
        steps = np.abs(np.diff(stream[:, 0]))
        assert np.median(steps) < 0.05


class TestStreams:
    def test_per_sensor_independence(self):
        streams = make_environment_streams(3, n=2_000, seed=8)
        assert len(streams) == 3
        assert not np.allclose(streams[0], streams[1])

    def test_reproducible(self):
        a = make_environment_streams(2, n=500, seed=4)
        b = make_environment_streams(2, n=500, seed=4)
        np.testing.assert_array_equal(a[1], b[1])
