"""Spatio-temporal query answering (paper Section 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.apps.range_queries import Region, SpatioTemporalQueryEngine


POSITIONS = {0: (0.1, 0.1), 1: (0.9, 0.1), 2: (0.1, 0.9), 3: (0.9, 0.9)}


def feed(engine, data, sensors=POSITIONS):
    """data[sensor] is an array of readings, one per tick."""
    for tick in range(len(next(iter(data.values())))):
        for sensor in sensors:
            engine.observe(sensor, [data[sensor][tick]], tick)


class TestRegion:
    def test_contains(self):
        region = Region(0.0, 0.5, 0.0, 0.5)
        assert region.contains((0.1, 0.1))
        assert not region.contains((0.9, 0.1))

    def test_invalid_bounds(self):
        with pytest.raises(ParameterError):
            Region(0.5, 0.0, 0.0, 1.0)


class TestAverageQueries:
    def test_average_per_region(self, rng):
        engine = SpatioTemporalQueryEngine(POSITIONS, epoch_length=64,
                                           rng=rng)
        data = {0: np.full(256, 0.2), 1: np.full(256, 0.8),
                2: np.full(256, 0.2), 3: np.full(256, 0.8)}
        feed(engine, data)
        left = Region(0.0, 0.5, 0.0, 1.0)
        right = Region(0.5, 1.0, 0.0, 1.0)
        assert engine.average(left, 0, 191)[0] == pytest.approx(0.2, abs=0.01)
        assert engine.average(right, 0, 191)[0] == pytest.approx(0.8, abs=0.01)

    def test_average_over_time_slice(self, rng):
        engine = SpatioTemporalQueryEngine(POSITIONS, epoch_length=32, rng=rng)
        series = np.concatenate([np.full(96, 0.1), np.full(96, 0.9)])
        feed(engine, {s: series for s in POSITIONS})
        everywhere = Region(0.0, 1.0, 0.0, 1.0)
        early = engine.average(everywhere, 0, 63)[0]
        late = engine.average(everywhere, 96, 159)[0]
        assert early == pytest.approx(0.1, abs=0.02)
        assert late == pytest.approx(0.9, abs=0.02)

    def test_no_overlapping_epoch_rejected(self, rng):
        engine = SpatioTemporalQueryEngine(POSITIONS, epoch_length=64, rng=rng)
        feed(engine, {s: np.full(32, 0.5) for s in POSITIONS})  # epoch open
        with pytest.raises(ParameterError, match="no closed epoch"):
            engine.average(Region(0, 1, 0, 1), 0, 31)

    def test_inverted_time_interval_rejected(self, rng):
        engine = SpatioTemporalQueryEngine(POSITIONS, rng=rng)
        with pytest.raises(ParameterError):
            engine.average(Region(0, 1, 0, 1), 10, 5)


class TestCountQueries:
    def test_range_count_approximates_truth(self, rng):
        engine = SpatioTemporalQueryEngine(POSITIONS, epoch_length=128,
                                           sample_size=128, rng=rng)
        data = {s: rng.normal(0.5, 0.05, 512) for s in POSITIONS}
        feed(engine, data)
        everywhere = Region(0.0, 1.0, 0.0, 1.0)
        estimate = engine.range_count(everywhere, 0, 383, [0.45], [0.55])
        truth = sum(np.sum((data[s][:384] >= 0.45) & (data[s][:384] <= 0.55))
                    for s in POSITIONS)
        assert estimate == pytest.approx(truth, rel=0.2)

    def test_selectivity_bounded(self, rng):
        engine = SpatioTemporalQueryEngine(POSITIONS, epoch_length=64, rng=rng)
        feed(engine, {s: rng.uniform(size=256) for s in POSITIONS})
        sel = engine.selectivity(Region(0, 1, 0, 1), 0, 191, [0.0], [0.3])
        assert 0.0 <= sel <= 1.0
        assert sel == pytest.approx(0.3, abs=0.12)

    def test_merged_model_answers_queries(self, rng):
        engine = SpatioTemporalQueryEngine(POSITIONS, epoch_length=64, rng=rng)
        feed(engine, {s: rng.normal(0.4, 0.03, 192) for s in POSITIONS})
        model = engine.merged_model(Region(0, 1, 0, 1), 0, 127)
        assert model.range_probability(0.3, 0.5) > 0.9


class TestLifecycle:
    def test_old_epochs_discarded(self, rng):
        engine = SpatioTemporalQueryEngine(POSITIONS, epoch_length=16,
                                           n_epochs_retained=2, rng=rng)
        feed(engine, {s: np.full(160, 0.5) for s in POSITIONS})
        with pytest.raises(ParameterError, match="no closed epoch"):
            engine.average(Region(0, 1, 0, 1), 0, 15)   # evicted epoch

    def test_unknown_sensor_rejected(self, rng):
        engine = SpatioTemporalQueryEngine(POSITIONS, rng=rng)
        with pytest.raises(ParameterError, match="unknown sensor"):
            engine.observe(99, [0.5], 0)

    def test_time_must_not_go_backwards(self, rng):
        engine = SpatioTemporalQueryEngine(POSITIONS, epoch_length=4, rng=rng)
        engine.observe(0, [0.5], 10)
        with pytest.raises(ParameterError):
            engine.observe(0, [0.5], 1)

    def test_invalid_construction(self):
        with pytest.raises(ParameterError):
            SpatioTemporalQueryEngine({})
        with pytest.raises(ParameterError):
            SpatioTemporalQueryEngine(POSITIONS, epoch_length=0)
