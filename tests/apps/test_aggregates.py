"""Order statistics and aggregates from density models."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.apps.aggregates import (
    conditional_mean,
    estimate_cdf,
    estimate_iqr,
    estimate_median,
    estimate_quantile,
)
from repro.core.estimator import KernelDensityEstimator
from repro.core.histogram import EquiDepthHistogram


@pytest.fixture
def model(gaussian_window):
    return KernelDensityEstimator.from_window(
        gaussian_window, 300, rng=np.random.default_rng(99))


class TestCdf:
    def test_monotone_and_normalised(self, model):
        points, cdf = estimate_cdf(model)
        assert (np.diff(cdf) >= -1e-12).all()
        assert cdf[-1] == pytest.approx(1.0)
        assert points.shape == cdf.shape

    def test_matches_empirical_cdf(self, model, gaussian_window):
        points, cdf = estimate_cdf(model, grid_size=128)
        for x in (0.35, 0.40, 0.45):
            # Compare at the grid point itself; near the cluster core one
            # grid cell carries several percent of mass, hence the band.
            index = int(np.searchsorted(points, x))
            empirical = np.mean(gaussian_window <= points[index])
            # Sampling noise of a 300-point subsample is ~1/sqrt(300)
            # per CDF value; allow two sigma.
            assert cdf[index] == pytest.approx(empirical, abs=0.12)

    def test_requires_1d(self, rng):
        model_2d = KernelDensityEstimator(rng.uniform(size=(50, 2)))
        with pytest.raises(ParameterError):
            estimate_cdf(model_2d)

    def test_empty_domain_rejected(self, model):
        # Beyond every kernel's reach (isolated values stop at 0.9 and
        # the bandwidth is ~0.04).
        with pytest.raises(ParameterError):
            estimate_cdf(model, low=0.96, high=0.99)


class TestQuantiles:
    def test_median_matches_empirical(self, model, gaussian_window):
        assert estimate_median(model) == pytest.approx(
            np.median(gaussian_window), abs=0.01)

    @pytest.mark.parametrize("q", [0.1, 0.25, 0.75, 0.9])
    def test_quantiles_match_empirical(self, model, gaussian_window, q):
        assert estimate_quantile(model, q) == pytest.approx(
            np.quantile(gaussian_window, q), abs=0.02)

    def test_quantiles_monotone_in_q(self, model):
        values = [estimate_quantile(model, q)
                  for q in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)

    def test_iqr_positive_and_close(self, model, gaussian_window):
        expected = (np.quantile(gaussian_window, 0.75)
                    - np.quantile(gaussian_window, 0.25))
        assert estimate_iqr(model) == pytest.approx(expected, abs=0.02)

    def test_extreme_quantiles(self, model):
        assert estimate_quantile(model, 0.0) <= estimate_quantile(model, 1.0)

    def test_invalid_q(self, model):
        with pytest.raises(ParameterError):
            estimate_quantile(model, 1.5)

    def test_histogram_model_supported(self, gaussian_window):
        hist = EquiDepthHistogram.from_values(gaussian_window, 64)
        assert estimate_median(hist) == pytest.approx(
            np.median(gaussian_window), abs=0.02)


class TestConditionalMean:
    def test_matches_empirical(self, model, gaussian_window):
        low, high = 0.35, 0.45
        values = gaussian_window[(gaussian_window >= low)
                                 & (gaussian_window <= high)]
        assert conditional_mean(model, low, high) == pytest.approx(
            values.mean(), abs=0.01)

    def test_requires_mass(self, model):
        with pytest.raises(ParameterError):
            conditional_mean(model, 0.97, 0.99)

    def test_invalid_interval(self, model):
        with pytest.raises(ParameterError):
            conditional_mean(model, 0.5, 0.4)
