"""Faulty-sensor detection (paper Section 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.apps.faulty_sensors import FaultySensorMonitor, RegionOutlierAlarm
from repro.core.estimator import KernelDensityEstimator
from repro.network.node import Detection


def models_for(rng, shifts):
    """One kernel model per child; child i's data is shifted by shifts[i]."""
    return {i: KernelDensityEstimator(rng.normal(0.4 + shift, 0.03, 300))
            for i, shift in enumerate(shifts)}


class TestFaultySensorMonitor:
    def test_healthy_peers_not_flagged(self, rng):
        monitor = FaultySensorMonitor(threshold=0.35)
        reports = monitor.check(models_for(rng, [0.0, 0.0, 0.0, 0.0]))
        assert reports == []

    def test_shifted_sensor_flagged(self, rng):
        monitor = FaultySensorMonitor(threshold=0.35)
        reports = monitor.check(models_for(rng, [0.0, 0.0, 0.0, 0.4]))
        assert [r.sensor for r in reports] == [3]
        assert reports[0].divergence > 0.35

    def test_divergences_returned_for_all_children(self, rng):
        monitor = FaultySensorMonitor()
        divergences = monitor.divergences(models_for(rng, [0.0, 0.0, 0.3]))
        assert set(divergences) == {0, 1, 2}
        assert divergences[2] > divergences[0]

    def test_stuck_sensor_flagged(self, rng):
        models = models_for(rng, [0.0, 0.0, 0.0])
        models[3] = KernelDensityEstimator(np.full(300, 0.4))   # stuck reading
        monitor = FaultySensorMonitor(threshold=0.35)
        assert [r.sensor for r in monitor.check(models)] == [3]

    def test_needs_two_children(self, rng):
        monitor = FaultySensorMonitor()
        with pytest.raises(ParameterError):
            monitor.check({0: KernelDensityEstimator(rng.uniform(size=10))})

    def test_invalid_threshold(self):
        with pytest.raises(ParameterError):
            FaultySensorMonitor(threshold=0.0)


def detection(tick, origin):
    return Detection(tick=tick, node_id=origin, level=1, origin=origin,
                     value=np.array([0.9]))


class TestRegionOutlierAlarm:
    def test_fires_when_count_exceeded(self):
        alarm = RegionOutlierAlarm(region_leaves=[0, 1], count_threshold=2,
                                   time_window=100)
        assert not alarm.observe(detection(1, 0))
        assert not alarm.observe(detection(2, 1))
        assert alarm.observe(detection(3, 0))

    def test_out_of_region_detections_ignored(self):
        alarm = RegionOutlierAlarm(region_leaves=[0], count_threshold=1,
                                   time_window=100)
        assert not alarm.observe(detection(1, 5))
        assert not alarm.observe(detection(2, 5))
        assert alarm.current_count == 0

    def test_expiry_resets_count(self):
        alarm = RegionOutlierAlarm(region_leaves=[0], count_threshold=2,
                                   time_window=10)
        alarm.observe(detection(0, 0))
        alarm.observe(detection(1, 0))
        assert alarm.current_count == 2
        assert not alarm.observe(detection(50, 0))
        assert alarm.current_count == 1

    def test_invalid_construction(self):
        with pytest.raises(ParameterError):
            RegionOutlierAlarm(region_leaves=[], count_threshold=1,
                               time_window=10)
        with pytest.raises(ParameterError):
            RegionOutlierAlarm(region_leaves=[0], count_threshold=0,
                               time_window=10)
