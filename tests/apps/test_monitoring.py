"""In-network fault monitoring inside the simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.apps.monitoring import FaultLog, attach_fault_monitoring
from repro.core.outliers import DistanceOutlierSpec
from repro.data.streams import StreamSet
from repro.detectors.d3 import D3Config, build_d3_network
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy


def run_monitored(offset_sensor=None, offset=0.25, n_ticks=2_000, seed=0,
                  threshold=0.35):
    hierarchy = build_hierarchy(8, 4)
    config = D3Config(
        spec=DistanceOutlierSpec(radius=0.01, count_threshold=5),
        window_size=400, sample_size=60, sample_fraction=1.0, warmup=10_000)
    network = build_d3_network(hierarchy, config, 1,
                               rng=np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    arrays = []
    for sensor in range(8):
        base = np.clip(rng.normal(0.4, 0.03, (n_ticks, 1)), 0, 1)
        if sensor == offset_sensor:
            base = np.clip(base + offset, 0, 1)
        arrays.append(base)
    from repro.apps.faulty_sensors import FaultySensorMonitor
    log = attach_fault_monitoring(
        network.nodes, hierarchy, level=2,
        monitor=FaultySensorMonitor(threshold=threshold, grid_size=32),
        check_every=256, rng=np.random.default_rng(seed + 2))
    sim = NetworkSimulator(hierarchy, network.nodes,
                           StreamSet.from_arrays(arrays))
    sim.run()
    return log


class TestMonitoring:
    def test_healthy_network_stays_quiet(self):
        log = run_monitored(offset_sensor=None, seed=3)
        assert log.flagged_sensors() == set()

    def test_miscalibrated_sensor_flagged(self):
        log = run_monitored(offset_sensor=2, offset=0.3, seed=3)
        assert 2 in log.flagged_sensors()
        # Only the drifted sensor is implicated.
        assert log.flagged_sensors() == {2}

    def test_events_carry_location(self):
        log = run_monitored(offset_sensor=5, offset=0.3, seed=4)
        assert len(log) > 0
        hierarchy = build_hierarchy(8, 4)
        for event in log.events:
            assert event.report.sensor == 5
            assert event.leader == hierarchy.parent_of(5)

    def test_wrapping_preserves_leader_function(self):
        """Escalated traffic still flows through wrapped leaders."""
        hierarchy = build_hierarchy(8, 4)
        config = D3Config(
            spec=DistanceOutlierSpec(radius=0.01, count_threshold=5),
            window_size=300, sample_size=30, sample_fraction=0.5,
            warmup=300)
        network = build_d3_network(hierarchy, config, 1,
                                   rng=np.random.default_rng(7))
        attach_fault_monitoring(network.nodes, hierarchy, level=2,
                                rng=np.random.default_rng(8))
        rng = np.random.default_rng(9)
        arrays = [np.clip(rng.normal(0.4, 0.02, (400, 1)), 0, 1)
                  for _ in range(8)]
        arrays[0][350] = 0.9
        sim = NetworkSimulator(hierarchy, network.nodes,
                               StreamSet.from_arrays(arrays))
        sim.run()
        assert any(d.level == 2 and d.tick == 350
                   for d in network.log.detections)

    def test_invalid_level(self):
        hierarchy = build_hierarchy(8, 4)
        with pytest.raises(ParameterError):
            attach_fault_monitoring({}, hierarchy, level=1)
        with pytest.raises(ParameterError):
            attach_fault_monitoring({}, hierarchy, level=9)
