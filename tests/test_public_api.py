"""The package's public surface stays importable and coherent."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = ["repro.core", "repro.streams", "repro.network",
               "repro.detectors", "repro.data", "repro.apps", "repro.eval",
               "repro.obs"]


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_all_resolvable():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolvable(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__")
    for name in module.__all__:
        assert getattr(module, name, None) is not None, f"{module_name}.{name}"


def test_quickstart_from_docstring():
    """The usage example in the package docstring actually runs."""
    import numpy as np

    window = np.random.default_rng(0).normal(0.4, 0.03, 5_000)
    model = repro.KernelDensityEstimator.from_window(window, sample_size=250)
    spec = repro.DistanceOutlierSpec(radius=0.01, count_threshold=20)
    assert model.neighborhood_count(0.7, spec.radius) < spec.count_threshold
    assert model.neighborhood_count(0.4, spec.radius) >= spec.count_threshold


def test_errors_form_one_hierarchy():
    assert issubclass(repro.ParameterError, repro.ReproError)
    assert issubclass(repro.EmptyModelError, repro.ReproError)
    assert issubclass(repro.TopologyError, repro.ReproError)
    assert issubclass(repro.SimulationError, repro.ReproError)
    assert issubclass(repro.ParameterError, ValueError)
