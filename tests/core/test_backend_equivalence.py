"""Backend kernels vs the frozen pre-backend implementations.

The numpy backend claims *bit identity* with the historical estimator
expressions (``repro.core._kernels_numpy`` docstring lists the exact
IEEE-754-preserving rewrites); the numba backend claims 1e-9 relative
agreement.  This suite pins both claims against the frozen references
in :mod:`repro.eval.kernels_bench`, exercises the sorted-index fast
paths against brute force, and covers the backend selection machinery
itself (env resolution, strict failures, context restoration).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import ParameterError
from repro.core import backend as backend_mod
from repro.core.backend import (
    available_backends,
    backend_name,
    block_cells,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.core.estimator import KernelDensityEstimator
from repro.core.indexes import SortedSampleIndex
from repro.core.kernels import EPANECHNIKOV, GAUSSIAN
from repro.eval.kernels_bench import reference_pdf, reference_range_batch

HAVE_NUMBA = "numba" in available_backends()

ALL_KERNELS = [EPANECHNIKOV, GAUSSIAN]


def make_case(seed: int, n: int, m: int, d: int, bw: float):
    rng = np.random.default_rng(seed)
    centers = rng.random((n, d))
    queries = rng.random((m, d))
    bandwidths = np.full(d, bw)
    est = KernelDensityEstimator(centers, bandwidths=bandwidths)
    return rng, centers, queries, bandwidths, est


# ---------------------------------------------------------------------------
# numpy backend: bit identity with the frozen references
# ---------------------------------------------------------------------------

class TestNumpyBitIdentity:
    @pytest.mark.parametrize("d", [1, 2, 3])
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_range_probability_identical(self, kernel, d):
        rng = np.random.default_rng(10 + d)
        centers = rng.random((57, d))
        queries = rng.random((33, d))
        bandwidths = np.full(d, 0.07)
        est = KernelDensityEstimator(centers, bandwidths=bandwidths,
                                     kernel=kernel)
        got = np.asarray(est.range_probability(queries - 0.03, queries + 0.03))
        want = reference_range_batch(kernel, queries - 0.03, queries + 0.03,
                                     centers, bandwidths)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("d", [1, 2, 3])
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_pdf_identical(self, kernel, d):
        rng = np.random.default_rng(20 + d)
        centers = rng.random((41, d))
        queries = rng.random((29, d))
        bandwidths = np.full(d, 0.11)
        est = KernelDensityEstimator(centers, bandwidths=bandwidths,
                                     kernel=kernel)
        assert np.array_equal(est.pdf(queries),
                              reference_pdf(kernel, queries, centers,
                                            bandwidths))

    @pytest.mark.parametrize("bw", [1e-12, 1e12])
    def test_degenerate_bandwidths_identical(self, bw):
        # Near-delta and near-flat models must follow the references
        # through the same under/overflow, not around it.
        rng, centers, queries, bandwidths, est = make_case(3, 40, 16, 2, bw)
        got = np.asarray(est.range_probability(queries - 0.1, queries + 0.1))
        want = reference_range_batch(est.kernel, queries - 0.1, queries + 0.1,
                                     centers, bandwidths)
        assert np.array_equal(got, want)
        assert np.array_equal(est.pdf(queries),
                              reference_pdf(est.kernel, queries, centers,
                                            bandwidths))

    def test_interval_probabilities_identical(self):
        rng, centers, _, bandwidths, est = make_case(4, 64, 0, 1, 0.05)
        edges = np.linspace(0.0, 1.0, 21)
        got = est.interval_probabilities(edges)
        z = (edges[None, :] - centers[:, None, 0]) / bandwidths[0]
        want = np.diff(est.kernel.cdf(z), axis=1).mean(axis=0)
        assert np.array_equal(got, np.clip(want, 0.0, 1.0))

    def test_empty_query_batch(self):
        _, _, _, _, est = make_case(5, 30, 0, 2, 0.05)
        empty = np.empty((0, 2))
        assert est.range_probability(empty, empty).shape == (0,)
        assert est.pdf(empty).shape == (0,)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=1, max_value=25),
           st.integers(min_value=1, max_value=3),
           st.floats(min_value=1e-6, max_value=10.0,
                     allow_nan=False, allow_infinity=False),
           st.integers(min_value=0, max_value=2 ** 16),
           st.booleans())
    def test_property_identical(self, n, m, d, bw, seed, gaussian):
        kernel = GAUSSIAN if gaussian else EPANECHNIKOV
        rng = np.random.default_rng(seed)
        centers = rng.random((n, d))
        queries = rng.random((m, d))
        bandwidths = np.full(d, bw)
        est = KernelDensityEstimator(centers, bandwidths=bandwidths,
                                     kernel=kernel)
        widths = rng.uniform(0.0, 0.2, size=(m, d))
        got = np.asarray(est.range_probability(queries - widths,
                                               queries + widths))
        want = reference_range_batch(kernel, queries - widths,
                                     queries + widths, centers, bandwidths)
        assert np.array_equal(got, want)
        assert np.array_equal(est.pdf(queries),
                              reference_pdf(kernel, queries, centers,
                                            bandwidths))


# ---------------------------------------------------------------------------
# sorted-index fast paths vs brute force
# ---------------------------------------------------------------------------

class TestSortedIndexFastPath:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=80),
           st.integers(min_value=2, max_value=3),
           st.integers(min_value=0, max_value=2 ** 16))
    def test_candidates_match_brute_force(self, n, d, seed):
        rng = np.random.default_rng(seed)
        points = rng.random((n, d))
        index = SortedSampleIndex(points)
        low = rng.uniform(-0.2, 0.8, d)
        high = low + rng.uniform(0.0, 0.5, d)
        candidates = index.candidates(low, high)
        brute = np.nonzero(
            np.all((points >= low) & (points <= high), axis=1))[0]
        if candidates is None:
            # Dense fallback is only allowed when the best per-axis
            # slice really is unselective.
            counts = [np.count_nonzero((points[:, j] >= low[j])
                                       & (points[:, j] <= high[j]))
                      for j in range(d)]
            assert min(counts) > index._dense_limit
        else:
            assert np.array_equal(candidates, brute)

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_single_nd_query_matches_dense(self, kernel):
        rng = np.random.default_rng(77)
        centers = rng.random((120, 2))
        est = KernelDensityEstimator(centers, bandwidths=np.full(2, 0.02),
                                     kernel=kernel)
        dense = KernelDensityEstimator(centers, bandwidths=np.full(2, 0.02),
                                       kernel=kernel)
        for low, high in [((0.3, 0.3), (0.35, 0.4)),
                          ((0.0, 0.0), (0.05, 0.05)),
                          ((0.9, 0.1), (0.95, 0.2))]:
            lo, hi = np.asarray(low), np.asarray(high)
            got = est.range_probability(lo, hi)
            want = float(dense.range_probability(lo[None, :], hi[None, :])[0])
            assert got == pytest.approx(want, rel=1e-9, abs=1e-15)


# ---------------------------------------------------------------------------
# numba backend (skipped when the extra is not installed)
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaEquivalence:
    @pytest.mark.parametrize("d", [1, 2, 3])
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_range_probability_close(self, kernel, d):
        rng = np.random.default_rng(30 + d)
        centers = rng.random((64, d))
        queries = rng.random((32, d))
        bandwidths = np.full(d, 0.06)
        est = KernelDensityEstimator(centers, bandwidths=bandwidths,
                                     kernel=kernel)
        want = reference_range_batch(kernel, queries - 0.03, queries + 0.03,
                                     centers, bandwidths)
        with use_backend("numba"):
            got = np.asarray(est.range_probability(queries - 0.03,
                                                   queries + 0.03))
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
    def test_pdf_close(self, kernel):
        rng = np.random.default_rng(40)
        centers = rng.random((64, 1))
        queries = rng.random((32, 1))
        bandwidths = np.full(1, 0.06)
        est = KernelDensityEstimator(centers, bandwidths=bandwidths,
                                     kernel=kernel)
        want = reference_pdf(kernel, queries, centers, bandwidths)
        with use_backend("numba"):
            got = est.pdf(queries)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)

    def test_eh_sketch_identical(self):
        # The compiled compressor is a literal transcription of the
        # Python one, so the resulting bucket lists must match exactly.
        from repro.streams.variance import EHVarianceSketch

        values = np.random.default_rng(50).uniform(size=400)
        with use_backend("numpy"):
            plain = EHVarianceSketch(128)
            plain.insert_many(values)
        with use_backend("numba"):
            compiled = EHVarianceSketch(128)
            compiled.insert_many(values)
        assert plain.variance() == compiled.variance()
        assert plain._buckets == compiled._buckets


# ---------------------------------------------------------------------------
# backend selection machinery
# ---------------------------------------------------------------------------

@pytest.fixture
def restore_backend():
    yield
    set_backend("numpy")


class TestBackendSelection:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError, match="backend"):
            resolve_backend("cuda")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed")
    def test_strict_numba_raises_when_missing(self):
        with pytest.raises(ParameterError, match="numba"):
            set_backend("numba", strict=True)

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed")
    def test_env_numba_falls_back_silently(self, monkeypatch,
                                           restore_backend):
        monkeypatch.setenv("REPRO_BACKEND", "numba")
        set_backend(None)
        assert backend_name() == "numpy"

    def test_env_unknown_value_rejected(self, monkeypatch, restore_backend):
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        with pytest.raises(ParameterError, match="REPRO_BACKEND"):
            set_backend(None)

    def test_use_backend_restores_active(self, restore_backend):
        set_backend("numpy")
        before = get_backend()
        with use_backend("numpy"):
            assert backend_name() == "numpy"
        assert get_backend() is before

    def test_block_cells_default_and_env(self, monkeypatch):
        assert block_cells() == 262_144
        monkeypatch.setenv("REPRO_KERNEL_BLOCK", "4096")
        assert block_cells() == 4096

    @pytest.mark.parametrize("bad", ["zero", "0", "-5", "1.5"])
    def test_block_cells_rejects_bad_values(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_KERNEL_BLOCK", bad)
        with pytest.raises(ParameterError, match="REPRO_KERNEL_BLOCK"):
            block_cells()

    def test_backend_module_consistency(self):
        assert get_backend().name == backend_name()
        assert backend_mod.resolve_backend().name in available_backends()
