"""Equi-depth histogram baseline (paper Section 10 comparisons)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import EmptyModelError, ParameterError
from repro.core.histogram import EquiDepthHistogram


class TestConstruction:
    def test_bucket_count_close_to_budget(self, rng):
        hist = EquiDepthHistogram.from_values(rng.uniform(size=1000), 50)
        assert 40 <= hist.n_buckets <= 50

    def test_empty_window_rejected(self):
        with pytest.raises(EmptyModelError):
            EquiDepthHistogram.from_values(np.empty((0, 1)), 10)

    def test_invalid_bucket_budget_rejected(self, rng):
        with pytest.raises(ParameterError):
            EquiDepthHistogram.from_values(rng.uniform(size=10), 0)

    def test_degenerate_constant_data(self):
        hist = EquiDepthHistogram.from_values(np.full(100, 0.5), 10)
        assert hist.range_probability(0.4, 0.6) == pytest.approx(1.0)

    def test_window_size_default(self, rng):
        hist = EquiDepthHistogram.from_values(rng.uniform(size=123), 8)
        assert hist.window_size == 123

    def test_2d_bucket_budget_split(self, rng):
        hist = EquiDepthHistogram.from_values(rng.uniform(size=(500, 2)), 49)
        assert hist.n_dims == 2
        assert hist.n_buckets <= 49


class TestRangeProbability:
    def test_total_mass_one(self, rng):
        hist = EquiDepthHistogram.from_values(rng.uniform(size=2000), 64)
        assert hist.range_probability(-1.0, 2.0) == pytest.approx(1.0)

    def test_equi_depth_buckets_have_equal_mass(self, rng):
        values = rng.uniform(size=10_000)
        hist = EquiDepthHistogram.from_values(values, 10)
        # Uniform data: each decile holds ~10% of the mass.
        assert hist.range_probability(0.0, np.quantile(values, 0.1)) \
            == pytest.approx(0.1, abs=0.02)

    def test_matches_empirical_mass(self, gaussian_window):
        hist = EquiDepthHistogram.from_values(gaussian_window, 100)
        empirical = np.mean((gaussian_window >= 0.35) & (gaussian_window <= 0.45))
        assert hist.range_probability(0.35, 0.45) == pytest.approx(
            empirical, abs=0.03)

    def test_batch_matches_scalar(self, gaussian_window):
        hist = EquiDepthHistogram.from_values(gaussian_window, 50)
        lows = np.array([[0.3], [0.7]])
        highs = np.array([[0.5], [0.9]])
        batch = hist.range_probability(lows, highs)
        for i in range(2):
            assert batch[i] == pytest.approx(
                hist.range_probability(lows[i], highs[i]))

    def test_inverted_interval_rejected(self, gaussian_window):
        hist = EquiDepthHistogram.from_values(gaussian_window, 20)
        with pytest.raises(ParameterError):
            hist.range_probability(0.6, 0.4)

    def test_2d_box_mass(self, rng):
        values = rng.uniform(size=(5_000, 2))
        hist = EquiDepthHistogram.from_values(values, 100)
        quarter = hist.range_probability([0.0, 0.0], [0.5, 0.5])
        assert quarter == pytest.approx(0.25, abs=0.05)


class TestNeighborhoodCount:
    def test_matches_exact_count(self, gaussian_window):
        hist = EquiDepthHistogram.from_values(gaussian_window, 150)
        estimated = hist.neighborhood_count(0.4, 0.02)
        exact = np.sum(np.abs(gaussian_window - 0.4) <= 0.02)
        assert estimated == pytest.approx(exact, rel=0.25)

    def test_invalid_radius_rejected(self, gaussian_window):
        hist = EquiDepthHistogram.from_values(gaussian_window, 20)
        with pytest.raises(ParameterError):
            hist.neighborhood_count(0.4, -0.1)


class TestGridProbabilities:
    def test_sums_to_one_for_interior_data(self, rng):
        hist = EquiDepthHistogram.from_values(rng.uniform(0.2, 0.8, 1000), 32)
        grid = hist.grid_probabilities(16)
        assert grid.sum() == pytest.approx(1.0, abs=1e-9)

    def test_2d_grid_shape(self, rng):
        hist = EquiDepthHistogram.from_values(rng.uniform(size=(500, 2)), 36)
        assert hist.grid_probabilities(8).shape == (8, 8)

    def test_invalid_arguments(self, rng):
        hist = EquiDepthHistogram.from_values(rng.uniform(size=50), 8)
        with pytest.raises(ParameterError):
            hist.grid_probabilities(0)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=60),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0))
def test_histogram_probability_axioms(values, a, b):
    hist = EquiDepthHistogram.from_values(np.array(values), 8)
    lo, hi = min(a, b), max(a, b)
    inner = hist.range_probability(lo, hi)
    assert 0.0 <= inner <= 1.0
    assert inner <= hist.range_probability(lo - 0.2, hi + 0.2) + 1e-12


class TestOnlineHistogram:
    """The dynamic (GK-summary-driven) equi-depth histogram."""

    def test_close_to_offline_upper_bound(self, gaussian_window):
        from repro.streams.quantiles import GKQuantileSummary
        summary = GKQuantileSummary(0.01)
        for value in gaussian_window:
            summary.insert(float(value))
        online = EquiDepthHistogram.from_quantile_summary(
            summary, 64, window_size=gaussian_window.shape[0])
        offline = EquiDepthHistogram.from_values(gaussian_window, 64)
        for low, high in ((0.35, 0.45), (0.3, 0.5), (0.0, 0.41)):
            assert online.range_probability(low, high) == pytest.approx(
                offline.range_probability(low, high), abs=0.05)

    def test_neighborhood_counts_usable(self, gaussian_window):
        from repro.streams.quantiles import GKQuantileSummary
        summary = GKQuantileSummary(0.01)
        for value in gaussian_window:
            summary.insert(float(value))
        online = EquiDepthHistogram.from_quantile_summary(
            summary, 100, window_size=gaussian_window.shape[0])
        exact = np.sum(np.abs(gaussian_window - 0.4) <= 0.02)
        assert online.neighborhood_count(0.4, 0.02) == pytest.approx(
            exact, rel=0.35)

    def test_degenerate_summary(self):
        from repro.streams.quantiles import GKQuantileSummary
        summary = GKQuantileSummary(0.1)
        summary.insert(0.5)
        online = EquiDepthHistogram.from_quantile_summary(
            summary, 8, window_size=1)
        assert online.range_probability(0.4, 0.6) == pytest.approx(1.0)

    def test_invalid_bucket_budget(self, gaussian_window):
        from repro.streams.quantiles import GKQuantileSummary
        summary = GKQuantileSummary(0.1)
        summary.insert(0.5)
        with pytest.raises(ParameterError):
            EquiDepthHistogram.from_quantile_summary(summary, 0,
                                                     window_size=1)
