"""Bandwidth rules (paper Section 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._exceptions import ParameterError
from repro.core.bandwidth import (
    MIN_BANDWIDTH,
    scott_bandwidths,
    silverman_bandwidths,
)


class TestScott:
    def test_matches_paper_formula_1d(self):
        # B = sqrt(5) * sigma * |R|^(-1/5) for d = 1.
        expected = np.sqrt(5) * 0.05 * 500 ** (-0.2)
        assert scott_bandwidths(0.05, 500)[0] == pytest.approx(expected)

    def test_matches_paper_formula_2d(self):
        sigma = np.array([0.05, 0.1])
        expected = np.sqrt(5) * sigma * 500 ** (-1 / 6)
        np.testing.assert_allclose(scott_bandwidths(sigma, 500), expected)

    def test_scalar_stddev_accepted(self):
        assert scott_bandwidths(0.1, 100).shape == (1,)

    def test_shrinks_with_sample_size(self):
        small = scott_bandwidths(0.1, 100)[0]
        large = scott_bandwidths(0.1, 10_000)[0]
        assert large < small

    def test_zero_stddev_floors_at_minimum(self):
        assert scott_bandwidths(0.0, 100)[0] == MIN_BANDWIDTH

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="dimension"):
            scott_bandwidths(np.array([0.1, 0.2]), 100, n_dims=3)

    def test_negative_stddev_rejected(self):
        with pytest.raises(ParameterError):
            scott_bandwidths(-0.1, 100)

    def test_nonpositive_sample_size_rejected(self):
        with pytest.raises(ParameterError):
            scott_bandwidths(0.1, 0)

    def test_matrix_stddev_rejected(self):
        with pytest.raises(ParameterError):
            scott_bandwidths(np.ones((2, 2)), 100)


class TestSilverman:
    def test_narrower_than_paper_scott_in_1d(self):
        # Silverman's (4/3)^(1/5) factor is far below sqrt(5).
        assert silverman_bandwidths(0.1, 500)[0] < scott_bandwidths(0.1, 500)[0]

    def test_positive_and_floored(self):
        assert silverman_bandwidths(0.0, 10)[0] == MIN_BANDWIDTH


@given(st.floats(min_value=0.0, max_value=10.0),
       st.integers(min_value=1, max_value=10**6))
def test_scott_always_positive(sigma, n):
    values = scott_bandwidths(sigma, n)
    assert (values >= MIN_BANDWIDTH).all()
    assert np.isfinite(values).all()


@given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=4),
       st.integers(min_value=2, max_value=10**5))
def test_scott_monotone_in_sigma(sigmas, n):
    sigma = np.array(sigmas)
    one = scott_bandwidths(sigma, n)
    two = scott_bandwidths(sigma * 2, n)
    assert (two >= one - 1e-12).all()
