"""Brute-force ground-truth detectors (paper Section 10, Comparisons)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import ParameterError
from repro.core.baselines import (
    brute_force_distance_outliers,
    brute_force_distance_outliers_naive,
    brute_force_mdef_outliers,
    chebyshev_neighbor_counts,
)
from repro.core.mdef import MDEFSpec
from repro.core.outliers import DistanceOutlierSpec


class TestChebyshevCounts:
    def test_counts_include_self(self):
        values = np.array([[0.1], [0.1], [0.5]])
        counts = chebyshev_neighbor_counts(values, values, 0.01)
        assert counts.tolist() == [2, 2, 1]

    def test_matches_direct_computation_2d(self, rng):
        values = rng.uniform(size=(200, 2))
        counts = chebyshev_neighbor_counts(values, values, 0.05)
        direct = (np.abs(values[:, None, :] - values[None, :, :])
                  .max(axis=2) <= 0.05).sum(axis=1)
        np.testing.assert_array_equal(counts, direct)

    def test_boundary_inclusive(self):
        values = np.array([[0.0], [0.1]])
        counts = chebyshev_neighbor_counts(values, values, 0.1)
        assert counts.tolist() == [2, 2]

    def test_invalid_radius(self):
        with pytest.raises(ParameterError):
            chebyshev_neighbor_counts(np.zeros((3, 1)), np.zeros((3, 1)), 0.0)


class TestBruteForceD:
    SPEC = DistanceOutlierSpec(radius=0.01, count_threshold=10)

    def test_isolated_points_flagged(self, gaussian_window):
        mask = brute_force_distance_outliers(gaussian_window, self.SPEC)
        isolated = gaussian_window > 0.6
        assert mask[isolated].all()
        # The bulk of the cluster is never flagged.
        assert mask[~isolated].mean() < 0.02

    def test_kdtree_equals_naive(self, gaussian_window):
        fast = brute_force_distance_outliers(gaussian_window, self.SPEC)
        naive = brute_force_distance_outliers_naive(gaussian_window, self.SPEC)
        np.testing.assert_array_equal(fast, naive)

    def test_kdtree_equals_naive_2d(self, rng):
        values = np.concatenate([
            rng.normal(0.4, 0.02, size=(500, 2)),
            rng.uniform(0.7, 0.9, size=(5, 2)),
        ])
        spec = DistanceOutlierSpec(radius=0.02, count_threshold=5)
        np.testing.assert_array_equal(
            brute_force_distance_outliers(values, spec),
            brute_force_distance_outliers_naive(values, spec))

    def test_naive_chunking_boundaries(self, rng):
        values = rng.uniform(size=700)
        spec = DistanceOutlierSpec(radius=0.005, count_threshold=4)
        a = brute_force_distance_outliers_naive(values, spec, chunk_size=64)
        b = brute_force_distance_outliers_naive(values, spec, chunk_size=512)
        np.testing.assert_array_equal(a, b)

    def test_everything_outlier_with_huge_threshold(self, rng):
        values = rng.uniform(size=100)
        spec = DistanceOutlierSpec(radius=0.001, count_threshold=1e9)
        assert brute_force_distance_outliers(values, spec).all()

    def test_nothing_outlier_with_tiny_threshold(self, rng):
        values = rng.uniform(size=100)
        spec = DistanceOutlierSpec(radius=0.001, count_threshold=0.5)
        assert not brute_force_distance_outliers(values, spec).any()


class TestBruteForceM:
    SPEC = MDEFSpec(sampling_radius=0.08, counting_radius=0.01, min_mdef=0.8)

    def test_gap_points_flagged(self, plateau_window):
        mask = brute_force_mdef_outliers(plateau_window, self.SPEC)
        gap = (plateau_window > 0.43) & (plateau_window < 0.49)
        assert mask[gap].mean() > 0.9
        assert mask[~gap].mean() < 0.01

    def test_min_mdef_floor_removes_plateau_edges(self, plateau_window):
        permissive = MDEFSpec(sampling_radius=0.08, counting_radius=0.01)
        loose = brute_force_mdef_outliers(plateau_window, permissive)
        strict = brute_force_mdef_outliers(plateau_window, self.SPEC)
        assert strict.sum() <= loose.sum()

    def test_gaussian_mixture_yields_nearly_no_outliers(self, rng):
        # The analysis behind PlateauSpec: steep Gaussian tails keep
        # sigma_MDEF above MDEF/3 nearly everywhere.
        from repro.data import make_mixture_stream
        values = make_mixture_stream(4_000, 1, rng=rng)
        mask = brute_force_mdef_outliers(values, self.SPEC)
        assert mask.mean() < 0.005

    def test_decisions_align_with_mask(self, plateau_window):
        mask, decisions = brute_force_mdef_outliers(
            plateau_window[:500], self.SPEC, return_decisions=True)
        assert len(decisions) == 500
        for flag, decision in zip(mask, decisions):
            assert flag == decision.is_outlier

    def test_2d_gap_detection(self, rng):
        # Density-equalised plateaus (0.12^2 : 0.08^2 = 9 : 4) and a few
        # well-separated gap points that are not each other's neighbours.
        values = np.concatenate([
            rng.uniform(0.30, 0.42, size=(6300, 2)),
            rng.uniform(0.50, 0.58, size=(2800, 2)),
            np.array([[0.45, 0.45], [0.47, 0.47], [0.45, 0.47], [0.47, 0.45]]),
        ])
        mask = brute_force_mdef_outliers(values, self.SPEC)
        gap = (values[:, 0] > 0.43) & (values[:, 0] < 0.49) \
            & (values[:, 1] > 0.43) & (values[:, 1] < 0.49)
        assert mask[gap].mean() > 0.5
        assert mask[~gap].mean() < 0.01


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0),
                min_size=5, max_size=80),
       st.floats(min_value=0.005, max_value=0.2),
       st.integers(min_value=1, max_value=20))
def test_bruteforce_d_implementations_agree(values, radius, threshold):
    spec = DistanceOutlierSpec(radius=radius, count_threshold=threshold)
    arr = np.array(values)
    np.testing.assert_array_equal(
        brute_force_distance_outliers(arr, spec),
        brute_force_distance_outliers_naive(arr, spec, chunk_size=7))
