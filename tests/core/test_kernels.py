"""Kernel function properties (paper Section 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.kernels import (
    EPANECHNIKOV,
    GAUSSIAN,
    EpanechnikovKernel,
    GaussianKernel,
    kernel_by_name,
)

ALL_KERNELS = [EPANECHNIKOV, GAUSSIAN]


class TestEpanechnikov:
    def test_profile_peak_at_zero(self):
        assert EPANECHNIKOV.profile(np.array(0.0)) == pytest.approx(0.75)

    def test_profile_vanishes_outside_support(self):
        assert EPANECHNIKOV.profile(np.array([-1.5, 1.01, 2.0])).tolist() == [0, 0, 0]

    def test_profile_matches_paper_formula(self):
        u = np.linspace(-1, 1, 21)
        np.testing.assert_allclose(EPANECHNIKOV.profile(u), 0.75 * (1 - u**2))

    def test_cdf_endpoints(self):
        assert EPANECHNIKOV.cdf(np.array(-1.0)) == pytest.approx(0.0)
        assert EPANECHNIKOV.cdf(np.array(1.0)) == pytest.approx(1.0)
        assert EPANECHNIKOV.cdf(np.array(0.0)) == pytest.approx(0.5)

    def test_cdf_clamps_beyond_support(self):
        # Exact equality is intentional: beyond the support the CDF is
        # *clamped* to the constants 0 and 1, not computed.
        assert EPANECHNIKOV.cdf(np.array(-9.0)) == 0.0  # repro-lint: disable=RL002
        assert EPANECHNIKOV.cdf(np.array(9.0)) == 1.0  # repro-lint: disable=RL002

    def test_support_radius(self):
        assert EPANECHNIKOV.support_radius == 1.0

    def test_cdf_is_antiderivative_of_profile(self):
        u = np.linspace(-1, 1, 2001)
        numeric = np.cumsum(EPANECHNIKOV.profile(u)) * (u[1] - u[0])
        np.testing.assert_allclose(EPANECHNIKOV.cdf(u), numeric, atol=2e-3)


class TestGaussian:
    def test_profile_peak(self):
        assert GAUSSIAN.profile(np.array(0.0)) == pytest.approx(
            1 / np.sqrt(2 * np.pi))

    def test_cdf_midpoint(self):
        assert GAUSSIAN.cdf(np.array(0.0)) == pytest.approx(0.5)

    def test_practical_support_contains_nearly_all_mass(self):
        s = GAUSSIAN.support_radius
        assert GAUSSIAN.cdf(np.array(s)) - GAUSSIAN.cdf(np.array(-s)) \
            == pytest.approx(1.0, abs=1e-12)


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
class TestCommonProperties:
    def test_profile_nonnegative(self, kernel):
        u = np.linspace(-3, 3, 101)
        assert (kernel.profile(u) >= 0).all()

    def test_profile_symmetric(self, kernel):
        u = np.linspace(0, 2, 41)
        np.testing.assert_allclose(kernel.profile(u), kernel.profile(-u))

    def test_profile_integrates_to_one(self, kernel):
        u = np.linspace(-10, 10, 20001)
        integral = np.trapezoid(kernel.profile(u), u)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_cdf_monotone(self, kernel):
        u = np.linspace(-3, 3, 301)
        assert (np.diff(kernel.cdf(u)) >= -1e-15).all()

    def test_cdf_bounded(self, kernel):
        u = np.linspace(-20, 20, 101)
        c = kernel.cdf(u)
        assert (c >= 0).all() and (c <= 1).all()


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(kernel_by_name("epanechnikov"), EpanechnikovKernel)
        assert isinstance(kernel_by_name("gaussian"), GaussianKernel)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            kernel_by_name("uniform")


@given(st.floats(min_value=-5, max_value=5))
def test_epanechnikov_cdf_in_unit_interval(u):
    value = float(EPANECHNIKOV.cdf(np.array(u)))
    assert 0.0 <= value <= 1.0


@given(st.floats(min_value=-5, max_value=5),
       st.floats(min_value=-5, max_value=5))
def test_epanechnikov_cdf_monotone_pairwise(a, b):
    lo, hi = min(a, b), max(a, b)
    assert EPANECHNIKOV.cdf(np.array(lo)) <= EPANECHNIKOV.cdf(np.array(hi)) + 1e-15
