"""KL / Jensen-Shannon divergences (paper Section 6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import ParameterError
from repro.core.divergence import (
    jensen_shannon_divergence,
    kl_divergence,
    model_js_divergence,
)
from repro.core.estimator import KernelDensityEstimator
from repro.core.histogram import EquiDepthHistogram


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.25, 0.25, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        expected = 0.5 * np.log2(2) + 0.5 * np.log2(0.5 / 0.75)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_infinite_when_q_lacks_support(self):
        # Exactly the failure mode Section 6 cites for kernel models.
        assert kl_divergence([0.5, 0.5], [1.0, 0.0]) == float("inf")

    def test_asymmetric(self):
        p = np.array([0.8, 0.2])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_requires_normalised_input(self):
        with pytest.raises(ParameterError, match="sum to 1"):
            kl_divergence([0.5, 0.4], [0.5, 0.5])

    def test_normalize_flag(self):
        assert kl_divergence([5, 5], [5, 5], normalize=True) == pytest.approx(0.0)

    def test_negative_mass_rejected(self):
        with pytest.raises(ParameterError):
            kl_divergence([-0.5, 1.5], [0.5, 0.5])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            kl_divergence([1.0], [0.5, 0.5])

    def test_zero_total_mass_rejected(self):
        with pytest.raises(ParameterError):
            kl_divergence([0.0, 0.0], [0.5, 0.5], normalize=True)


class TestJensenShannon:
    def test_zero_for_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0)

    def test_symmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.2, 0.8])
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p))

    def test_finite_on_disjoint_support(self):
        # Disjoint distributions are maximally distant: JS = 1 bit.
        assert jensen_shannon_divergence([1.0, 0.0], [0.0, 1.0]) \
            == pytest.approx(1.0)

    def test_bounded_by_one(self):
        p = np.array([0.99, 0.01])
        q = np.array([0.01, 0.99])
        assert 0.0 <= jensen_shannon_divergence(p, q) <= 1.0

    def test_normalize_flag(self):
        value = jensen_shannon_divergence([3, 1], [1, 3], normalize=True)
        assert 0.0 < value < 1.0


class TestModelJS:
    def test_same_model_near_zero(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 100)
        assert model_js_divergence(kde, kde) == pytest.approx(0.0, abs=1e-9)

    def test_close_models_small_distance(self, gaussian_window, rng):
        a = KernelDensityEstimator.from_window(gaussian_window, 150, rng=rng)
        b = KernelDensityEstimator.from_window(gaussian_window, 150, rng=rng)
        assert model_js_divergence(a, b) < 0.05

    def test_shifted_models_larger_distance(self, rng):
        a = KernelDensityEstimator(rng.normal(0.3, 0.05, 200))
        b = KernelDensityEstimator(rng.normal(0.6, 0.05, 200))
        c = KernelDensityEstimator(rng.normal(0.3, 0.05, 200))
        assert model_js_divergence(a, b) > 5 * model_js_divergence(a, c)

    def test_kernel_vs_histogram_comparable(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 100)
        hist = EquiDepthHistogram.from_values(gaussian_window, 100)
        assert model_js_divergence(kde, hist) < 0.1

    def test_dimension_mismatch_rejected(self, rng):
        a = KernelDensityEstimator(rng.uniform(size=20))
        b = KernelDensityEstimator(rng.uniform(size=(20, 2)))
        with pytest.raises(ParameterError):
            model_js_divergence(a, b)

    def test_2d_models(self, rng):
        a = KernelDensityEstimator(rng.uniform(0.2, 0.5, size=(100, 2)))
        b = KernelDensityEstimator(rng.uniform(0.5, 0.8, size=(100, 2)))
        assert model_js_divergence(a, b, grid_size=16) > 0.3


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=2, max_size=16),
       st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=2, max_size=16))
def test_js_properties(p_raw, q_raw):
    """JS is symmetric, bounded in [0, 1] bits, zero iff p == q."""
    size = min(len(p_raw), len(q_raw))
    p = np.array(p_raw[:size])
    q = np.array(q_raw[:size])
    forward = jensen_shannon_divergence(p, q, normalize=True)
    backward = jensen_shannon_divergence(q, p, normalize=True)
    assert forward == pytest.approx(backward, abs=1e-9)
    assert 0.0 <= forward <= 1.0
    assert jensen_shannon_divergence(p, p, normalize=True) == pytest.approx(0.0)
