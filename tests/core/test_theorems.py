"""Direct checks of the paper's theorems.

* Theorem 2's fast path is covered in ``test_estimator.py``
  (sorted-path equivalence) and timed in ``benchmarks``.
* Theorem 3 -- a parent's distance-based outliers (over the union of its
  children's windows, same (D, r)) are a subset of the union of the
  children's outliers -- is checked here on exact detectors, including
  as a hypothesis property.
* Theorem 1/4 resource bounds are asserted in ``test_variance.py`` and
  the memory benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baselines import brute_force_distance_outliers
from repro.core.mdef import MDEFSpec
from repro.core.baselines import brute_force_mdef_outliers
from repro.core.outliers import DistanceOutlierSpec


def outlier_values(values: np.ndarray, spec: DistanceOutlierSpec) -> set:
    mask = brute_force_distance_outliers(values, spec)
    return {tuple(np.round(row, 12)) for row in np.atleast_2d(
        values.reshape(len(mask), -1))[mask]}


class TestTheorem3:
    SPEC = DistanceOutlierSpec(radius=0.02, count_threshold=6)

    def test_union_outliers_subset_of_children(self, rng):
        children = [np.concatenate([rng.normal(m, 0.03, 400),
                                    rng.uniform(0.7, 1.0, 3)])
                    for m in (0.3, 0.4, 0.45)]
        union = np.concatenate(children)
        union_outliers = outlier_values(union, self.SPEC)
        child_outliers = set().union(
            *(outlier_values(child, self.SPEC) for child in children))
        assert union_outliers <= child_outliers

    def test_value_can_stop_being_outlier_at_parent(self, rng):
        """The converse does not hold: a value rare in one child's window
        can be common in the union."""
        a = np.concatenate([rng.normal(0.3, 0.01, 300), [0.6]])
        b = rng.normal(0.6, 0.01, 300)
        spec = DistanceOutlierSpec(radius=0.02, count_threshold=5)
        assert (0.6,) in outlier_values(a, spec)
        assert (0.6,) not in outlier_values(np.concatenate([a, b]), spec)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.floats(min_value=0, max_value=1),
                             min_size=1, max_size=40),
                    min_size=2, max_size=4),
           st.floats(min_value=0.01, max_value=0.3),
           st.integers(min_value=1, max_value=10))
    def test_theorem3_property(self, children_raw, radius, threshold):
        spec = DistanceOutlierSpec(radius=radius, count_threshold=threshold)
        children = [np.array(child) for child in children_raw]
        union = np.concatenate(children)
        union_outliers = outlier_values(union, spec)
        child_outliers = set().union(
            *(outlier_values(child, spec) for child in children))
        assert union_outliers <= child_outliers


class TestMDEFNonDecomposability:
    """Section 8's justification for MGDD: Theorem 3 fails for MDEF."""

    def test_parent_mdef_outlier_need_not_be_child_outlier(self, rng):
        spec = MDEFSpec(sampling_radius=0.08, counting_radius=0.01,
                        min_mdef=0.5)
        # Child A: only the sparse gap region -- locally uniform, so its
        # points are unremarkable within A alone.
        child_a = rng.uniform(0.44, 0.48, 60)
        # Child B: a dense plateau next to the gap.
        child_b = rng.uniform(0.30, 0.42, 4_000)
        union = np.concatenate([child_a, child_b])

        outliers_a = brute_force_mdef_outliers(child_a, spec)
        outliers_union = brute_force_mdef_outliers(union, spec)
        gap_in_union = outliers_union[:60]
        # In the union, A's values sit in a void beside B's plateau...
        assert gap_in_union.mean() > 0.5
        # ...while within A alone almost none of them were outliers.
        assert outliers_a.mean() < 0.1
