"""Every density model honours the same DensityModel contract.

The outlier tests are written against the protocol; this suite runs one
battery of contract checks across all implementations (kernel models,
both histogram variants, and a codec round-tripped model) so they stay
interchangeable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import KernelDensityEstimator
from repro.core.histogram import EquiDepthHistogram
from repro.core.model import DensityModel
from repro.network.codec import decode_model_state, encode_model_state
from repro.streams.quantiles import GKQuantileSummary


def _kernel_model(window):
    return KernelDensityEstimator.from_window(window, 150,
                                              rng=np.random.default_rng(0))


def _offline_histogram(window):
    return EquiDepthHistogram.from_values(window, 150)


def _online_histogram(window):
    summary = GKQuantileSummary(0.01)
    for value in window:
        summary.insert(float(value))
    return EquiDepthHistogram.from_quantile_summary(
        summary, 150, window_size=window.shape[0])


def _roundtripped_kernel(window):
    model = _kernel_model(window)
    payload = encode_model_state(model.sample, window.std(keepdims=True),
                                 model.window_size)
    sample, stddev, size = decode_model_state(payload)
    return KernelDensityEstimator(sample, stddev=stddev, window_size=size)


MAKERS = {
    "kernel": _kernel_model,
    "histogram-offline": _offline_histogram,
    "histogram-online": _online_histogram,
    "kernel-roundtripped": _roundtripped_kernel,
}


@pytest.fixture(params=sorted(MAKERS), scope="module")
def model(request):
    rng = np.random.default_rng(42)
    window = np.concatenate([rng.normal(0.4, 0.03, 3_000),
                             rng.uniform(0.7, 0.9, 10)])
    return MAKERS[request.param](window)


class TestProtocolContract:
    def test_satisfies_runtime_protocol(self, model):
        assert isinstance(model, DensityModel)

    def test_dimensions_and_window(self, model):
        assert model.n_dims == 1
        assert model.window_size >= 3_000

    def test_probability_axioms(self, model):
        total = float(np.asarray(model.range_probability(-1.0, 2.0)))
        assert total == pytest.approx(1.0, abs=0.02)
        narrow = float(np.asarray(model.range_probability(0.39, 0.41)))
        wide = float(np.asarray(model.range_probability(0.3, 0.5)))
        assert 0.0 <= narrow <= wide <= 1.0

    def test_neighborhood_count_scales(self, model):
        dense = float(np.asarray(model.neighborhood_count(0.40, 0.02)))
        sparse = float(np.asarray(model.neighborhood_count(0.95, 0.02)))
        assert dense > 100
        assert sparse < dense / 10

    def test_grid_probabilities_normalise(self, model):
        grid = model.grid_probabilities(32)
        assert grid.shape == (32,)
        assert grid.sum() == pytest.approx(1.0, abs=0.05)
        assert (grid >= 0).all()

    def test_count_estimates_agree_across_models(self, model):
        """Every implementation lands in the same ballpark on the bulk."""
        rng = np.random.default_rng(42)
        window = np.concatenate([rng.normal(0.4, 0.03, 3_000),
                                 rng.uniform(0.7, 0.9, 10)])
        exact = int(np.sum(np.abs(window - 0.4) <= 0.02))
        estimate = float(np.asarray(model.neighborhood_count(0.40, 0.02)))
        assert estimate == pytest.approx(exact, rel=0.35)
