"""MDEF / aLOCI statistics and detector (paper Sections 3, 8, Figure 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.core.estimator import KernelDensityEstimator
from repro.core.mdef import (
    MDEFOutlierDetector,
    MDEFSpec,
    cell_grid_centers,
    mdef_statistic,
    sampling_cell_centers,
)

SPEC = MDEFSpec(sampling_radius=0.08, counting_radius=0.01)


class TestSpec:
    def test_paper_parameters(self):
        assert SPEC.alpha == pytest.approx(1 / 8)
        assert SPEC.cell_width == pytest.approx(0.02)
        assert SPEC.k_sigma == 3.0
        assert SPEC.min_mdef == 0.0

    def test_counting_must_be_smaller_than_sampling(self):
        with pytest.raises(ParameterError):
            MDEFSpec(sampling_radius=0.01, counting_radius=0.05)

    @pytest.mark.parametrize("kwargs", [
        {"sampling_radius": -1.0, "counting_radius": 0.01},
        {"sampling_radius": 0.08, "counting_radius": 0.0},
        {"sampling_radius": 0.08, "counting_radius": 0.01, "k_sigma": 0.0},
        {"sampling_radius": 0.08, "counting_radius": 0.01, "min_mdef": 1.0},
        {"sampling_radius": 0.08, "counting_radius": 0.01, "min_mdef": -0.1},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            MDEFSpec(**kwargs)


class TestCellGrid:
    def test_centers_cover_unit_interval(self):
        centers = cell_grid_centers(SPEC)
        assert centers.shape == (50,)
        assert centers[0] == pytest.approx(0.01)
        assert centers[-1] == pytest.approx(0.99)

    def test_centers_are_odd_multiples_of_counting_radius(self):
        # Figure 3's grid: centres at alpha*r*(2i - 1) for i = 1..k.
        centers = cell_grid_centers(SPEC)
        i = np.arange(1, centers.shape[0] + 1)
        np.testing.assert_allclose(centers, SPEC.counting_radius * (2 * i - 1))

    def test_sampling_cells_within_radius(self):
        cells = sampling_cell_centers(np.array([0.46]), SPEC)
        assert (np.abs(cells[:, 0] - 0.46) <= SPEC.sampling_radius).all()
        assert cells.shape[0] == 8   # 2 * 0.08 / 0.02

    def test_sampling_cells_at_domain_edge(self):
        cells = sampling_cell_centers(np.array([0.0]), SPEC)
        assert cells.shape[0] >= 1
        assert (cells >= 0).all()

    def test_sampling_cells_beyond_grid_falls_back_to_nearest(self):
        cells = sampling_cell_centers(np.array([2.0]), SPEC)
        assert cells.shape[0] == 1
        assert cells[0, 0] == pytest.approx(0.99)

    def test_2d_cells_are_cartesian_product(self):
        cells = sampling_cell_centers(np.array([0.46, 0.46]), SPEC)
        assert cells.shape == (64, 2)


class TestStatistic:
    def test_weighted_moments(self):
        # Two cells of 10 objects each seeing 10; one singleton seeing 1.
        counts = np.array([10.0, 10.0, 1.0])
        decision = mdef_statistic(1.0, counts, k_sigma=3.0)
        expected_nhat = (100 + 100 + 1) / 21
        assert decision.cell_mean == pytest.approx(expected_nhat)
        assert decision.mdef == pytest.approx(1 - 1 / expected_nhat)

    def test_void_point_next_to_uniform_mass_is_outlier(self):
        counts = np.array([100.0, 100.0, 100.0, 0.0, 0.0])
        decision = mdef_statistic(1.0, counts, k_sigma=3.0)
        assert decision.is_outlier
        assert decision.sigma_mdef == pytest.approx(0.0)

    def test_typical_point_is_not_outlier(self):
        counts = np.array([100.0, 95.0, 105.0, 98.0])
        decision = mdef_statistic(99.0, counts, k_sigma=3.0)
        assert not decision.is_outlier
        assert abs(decision.mdef) < 0.1

    def test_empty_neighbourhood_gives_no_evidence(self):
        decision = mdef_statistic(0.0, np.zeros(8), k_sigma=3.0)
        assert not decision.is_outlier
        assert decision.mdef == 0.0

    def test_min_mdef_guard_suppresses_edges(self):
        # A uniform-block edge: half the typical count, zero spread.
        counts = np.array([100.0, 100.0, 100.0])
        edge = mdef_statistic(50.0, counts, k_sigma=3.0)
        assert edge.is_outlier   # plain LOCI flags it...
        guarded = mdef_statistic(50.0, counts, k_sigma=3.0, min_mdef=0.8)
        assert not guarded.is_outlier   # ...the floor suppresses it.

    def test_variance_correction_unmasks_deviation(self):
        # Noisy estimated cells around a true mean of ~100.
        counts = np.array([200.0, 20.0, 150.0, 40.0])
        raw = mdef_statistic(2.0, counts, k_sigma=3.0)
        assert not raw.is_outlier   # estimation noise masks the void
        corrected = mdef_statistic(2.0, counts, k_sigma=3.0,
                                   estimation_variance_per_unit=18.0)
        assert corrected.is_outlier

    def test_correction_keeps_poisson_floor(self):
        counts = np.array([100.0, 100.0])
        decision = mdef_statistic(99.0, counts, k_sigma=3.0,
                                  estimation_variance_per_unit=50.0)
        assert decision.sigma_mdef > 0.0   # floored, not zeroed

    def test_negative_estimated_cells_clipped(self):
        decision = mdef_statistic(1.0, np.array([-0.5, 10.0]), k_sigma=3.0)
        assert decision.cell_mean == pytest.approx(10.0)

    def test_empty_cells_rejected(self):
        with pytest.raises(ParameterError):
            mdef_statistic(1.0, np.array([]), k_sigma=3.0)


class TestDetector:
    def test_gap_value_flagged_on_plateau_window(self, plateau_window):
        model = KernelDensityEstimator.from_window(
            plateau_window, 400, rng=np.random.default_rng(0))
        # Cap the bandwidth as the MGDD detector does.
        model = KernelDensityEstimator(
            model.sample, bandwidths=np.array([0.02]),
            window_size=plateau_window.shape[0])
        detector = MDEFOutlierDetector(model, MDEFSpec(
            sampling_radius=0.08, counting_radius=0.01, min_mdef=0.8))
        assert detector.check([0.46]).is_outlier

    def test_plateau_interior_not_flagged(self, plateau_window):
        model = KernelDensityEstimator(
            plateau_window.reshape(-1, 1)[::10], bandwidths=np.array([0.02]),
            window_size=plateau_window.shape[0])
        detector = MDEFOutlierDetector(model, MDEFSpec(
            sampling_radius=0.08, counting_radius=0.01, min_mdef=0.8))
        assert not detector.check([0.35]).is_outlier
        assert not detector.check([0.54]).is_outlier

    def test_exposes_model_and_spec(self, plateau_window):
        model = KernelDensityEstimator.from_window(plateau_window, 50)
        detector = MDEFOutlierDetector(model, SPEC)
        assert detector.model is model
        assert detector.spec is SPEC

    def test_variance_correction_can_be_disabled(self, plateau_window):
        model = KernelDensityEstimator.from_window(plateau_window, 50)
        detector = MDEFOutlierDetector(model, SPEC, variance_correction=False)
        assert detector._evpu == 0.0

    def test_2d_check_runs(self, rng):
        values = np.concatenate([
            rng.uniform(0.3, 0.42, size=(2000, 2)),
            rng.uniform(0.5, 0.58, size=(2000, 2)),
        ])
        model = KernelDensityEstimator(
            values[::10], bandwidths=np.array([0.02, 0.02]),
            window_size=values.shape[0])
        detector = MDEFOutlierDetector(model, MDEFSpec(
            sampling_radius=0.08, counting_radius=0.01, min_mdef=0.8))
        decision = detector.check([0.46, 0.46])
        assert decision.mdef > 0.8
