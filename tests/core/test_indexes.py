"""Incremental exact neighbour-count indexes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import ParameterError
from repro.core.indexes import (
    GridCountIndex,
    SortedWindowIndex1D,
    WindowedNeighborIndex,
)


class TestSortedWindowIndex:
    def test_counts_match_reference(self, rng):
        index = SortedWindowIndex1D(window_size=50)
        window: "list[float]" = []
        for value in rng.uniform(size=200):
            index.insert(float(value))
            window.append(float(value))
            window = window[-50:]
            assert len(index) == len(window)
            lo, hi = 0.25, 0.4
            expected = sum(1 for v in window if lo <= v <= hi)
            assert index.count_in(lo, hi) == expected

    def test_expiry_returns_oldest(self):
        index = SortedWindowIndex1D(window_size=2)
        assert index.insert(1.0) is None
        assert index.insert(2.0) is None
        assert index.insert(3.0) == 1.0

    def test_neighbor_count_inclusive(self):
        index = SortedWindowIndex1D(window_size=5)
        for value in (0.1, 0.2, 0.3):
            index.insert(value)
        assert index.neighbor_count(0.2, 0.1) == 3

    def test_duplicates_supported(self):
        index = SortedWindowIndex1D(window_size=4)
        for value in (0.5, 0.5, 0.5):
            index.insert(value)
        assert index.count_in(0.5, 0.5) == 3
        index.insert(0.5)
        index.insert(0.5)   # expires one duplicate
        assert index.count_in(0.5, 0.5) == 4

    def test_values_sorted(self, rng):
        index = SortedWindowIndex1D(window_size=10)
        for value in rng.uniform(size=10):
            index.insert(float(value))
        values = index.values()
        assert (np.diff(values) >= 0).all()

    def test_invalid_inputs(self):
        index = SortedWindowIndex1D(window_size=3)
        with pytest.raises(ParameterError):
            index.insert(float("nan"))
        with pytest.raises(ParameterError):
            index.count_in(0.5, 0.4)
        with pytest.raises(ParameterError):
            index.neighbor_count(0.5, 0.0)


class TestGridCountIndex:
    def test_counts_match_brute_force_1d(self, rng):
        index = GridCountIndex(cell_width=0.05)
        points = rng.uniform(size=300)
        for p in points:
            index.insert([p])
        for query in (0.1, 0.5, 0.93):
            expected = int(np.sum(np.abs(points - query) <= 0.03))
            assert index.neighbor_count([query], 0.03) == expected

    def test_counts_match_brute_force_2d(self, rng):
        index = GridCountIndex(cell_width=0.1, n_dims=2)
        points = rng.uniform(size=(400, 2))
        for p in points:
            index.insert(p)
        query = np.array([0.4, 0.6])
        expected = int(np.sum(
            (np.abs(points - query) <= 0.07).all(axis=1)))
        assert index.neighbor_count(query, 0.07) == expected

    def test_remove(self, rng):
        index = GridCountIndex(cell_width=0.1)
        index.insert([0.5])
        index.insert([0.5])
        index.remove([0.5])
        assert index.neighbor_count([0.5], 0.01) == 1
        index.remove([0.5])
        assert len(index) == 0

    def test_remove_absent_rejected(self):
        index = GridCountIndex(cell_width=0.1)
        with pytest.raises(ParameterError, match="not in the index"):
            index.remove([0.5])

    def test_negative_coordinates_supported(self):
        index = GridCountIndex(cell_width=0.1)
        index.insert([-0.25])
        assert index.neighbor_count([-0.3], 0.1) == 1

    def test_3d_path(self, rng):
        index = GridCountIndex(cell_width=0.2, n_dims=3)
        points = rng.uniform(size=(100, 3))
        for p in points:
            index.insert(p)
        expected = int(np.sum(
            (np.abs(points - 0.5) <= 0.15).all(axis=1)))
        assert index.neighbor_count([0.5, 0.5, 0.5], 0.15) == expected

    def test_dimension_mismatch_rejected(self):
        index = GridCountIndex(cell_width=0.1, n_dims=2)
        with pytest.raises(ParameterError):
            index.insert([0.5])


class TestWindowedNeighborIndex:
    def test_tracks_window_exactly(self, rng):
        index = WindowedNeighborIndex(window_size=40, cell_width=0.05)
        stream = rng.uniform(size=150)
        for i, value in enumerate(stream):
            index.insert([value])
            window = stream[max(0, i - 39):i + 1]
            expected = int(np.sum(np.abs(window - 0.5) <= 0.04))
            assert index.neighbor_count([0.5], 0.04) == expected

    def test_expired_point_returned(self):
        index = WindowedNeighborIndex(window_size=1, cell_width=0.1)
        index.insert([0.3])
        expired = index.insert([0.7])
        assert expired.tolist() == [0.3]
        assert index.neighbor_count([0.3], 0.05) == 0

    def test_2d_window(self, rng):
        index = WindowedNeighborIndex(window_size=30, cell_width=0.1,
                                      n_dims=2)
        stream = rng.uniform(size=(80, 2))
        for p in stream:
            index.insert(p)
        window = stream[-30:]
        expected = int(np.sum(
            (np.abs(window - 0.5) <= 0.1).all(axis=1)))
        assert index.neighbor_count([0.5, 0.5], 0.1) == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=80),
       st.integers(min_value=1, max_value=30),
       st.floats(min_value=0.01, max_value=0.3))
def test_sorted_and_grid_agree(values, window_size, radius):
    """Two independent exact implementations must agree everywhere."""
    sorted_index = SortedWindowIndex1D(window_size)
    grid_index = WindowedNeighborIndex(window_size, cell_width=radius)
    for value in values:
        sorted_index.insert(value)
        grid_index.insert([value])
    for query in (0.0, 0.25, 0.5, 0.99):
        assert sorted_index.neighbor_count(query, radius) == \
            grid_index.neighbor_count([query], radius)
