"""Kernel density estimator behaviour (paper Sections 4-5, Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._exceptions import EmptyModelError, ParameterError
from repro.core.estimator import KernelDensityEstimator, merge_estimators
from repro.core.kernels import GAUSSIAN


def make_kde(values, **kwargs):
    return KernelDensityEstimator(np.asarray(values), **kwargs)


class TestConstruction:
    def test_1d_list_accepted(self):
        kde = make_kde([0.1, 0.2, 0.3])
        assert kde.n_dims == 1
        assert kde.sample_size == 3

    def test_2d_shape(self, rng):
        kde = make_kde(rng.uniform(size=(50, 2)))
        assert kde.n_dims == 2
        assert kde.bandwidths.shape == (2,)

    def test_empty_sample_rejected(self):
        with pytest.raises(EmptyModelError):
            make_kde(np.empty((0, 1)))

    def test_nan_sample_rejected(self):
        with pytest.raises(ParameterError):
            make_kde([0.1, float("nan")])

    def test_window_size_default_is_sample_size(self):
        assert make_kde([0.1, 0.2]).window_size == 2

    def test_invalid_window_size_rejected(self):
        with pytest.raises(ParameterError):
            make_kde([0.1], window_size=0)

    def test_explicit_bandwidths_used(self):
        kde = make_kde([0.5], bandwidths=0.07)
        assert kde.bandwidths[0] == pytest.approx(0.07)

    def test_bandwidth_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            make_kde(np.zeros((5, 2)), bandwidths=np.array([0.1]))

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ParameterError):
            make_kde([0.5], bandwidths=-0.1)

    def test_sample_is_read_only(self):
        kde = make_kde([0.1, 0.2])
        with pytest.raises(ValueError):
            kde.sample[0, 0] = 9.0

    def test_distinct_sample_size_counts_duplicates_once(self):
        kde = make_kde([0.1, 0.1, 0.2])
        assert kde.sample_size == 3
        assert kde.distinct_sample_size == 2


class TestFromWindow:
    def test_full_window_used_when_sample_size_omitted(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window)
        assert kde.sample_size == gaussian_window.shape[0]
        assert kde.window_size == gaussian_window.shape[0]

    def test_subsample_drawn(self, gaussian_window, rng):
        kde = KernelDensityEstimator.from_window(gaussian_window, 100, rng=rng)
        assert kde.sample_size == 100
        assert kde.window_size == gaussian_window.shape[0]

    def test_empty_window_rejected(self):
        with pytest.raises(EmptyModelError):
            KernelDensityEstimator.from_window(np.empty((0, 1)))


class TestPdf:
    def test_integrates_to_one(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 200)
        xs = np.linspace(-0.2, 1.2, 4001)
        integral = np.trapezoid(kde.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_nonnegative(self, gaussian_window, rng):
        kde = KernelDensityEstimator.from_window(gaussian_window, 100, rng=rng)
        assert (kde.pdf(np.linspace(0, 1, 200)) >= 0).all()

    def test_peaks_near_cluster(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 300)
        assert kde.pdf([0.4])[0] > 10 * kde.pdf([0.8])[0]

    def test_2d_pdf_shape(self, rng):
        kde = make_kde(rng.uniform(size=(100, 2)))
        assert kde.pdf(rng.uniform(size=(7, 2))).shape == (7,)


class TestRangeProbability:
    def test_total_mass_for_interior_data(self, rng):
        kde = make_kde(rng.uniform(0.3, 0.7, 500))
        assert kde.range_probability(-1.0, 2.0) == pytest.approx(1.0)

    def test_empty_interval_zero(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 100)
        assert kde.range_probability(0.95, 0.99) == pytest.approx(0.0, abs=1e-6)

    def test_monotone_in_interval_width(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 100)
        narrow = kde.range_probability(0.38, 0.42)
        wide = kde.range_probability(0.30, 0.50)
        assert wide >= narrow

    def test_additive_over_partition(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 100)
        whole = kde.range_probability(0.2, 0.6)
        parts = kde.range_probability(0.2, 0.4) + kde.range_probability(0.4, 0.6)
        assert whole == pytest.approx(parts, abs=1e-9)

    def test_batch_matches_scalar(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 150)
        lows = np.array([[0.35], [0.2], [0.7]])
        highs = np.array([[0.45], [0.3], [0.9]])
        batch = kde.range_probability(lows, highs)
        for i in range(3):
            assert batch[i] == pytest.approx(
                kde.range_probability(lows[i], highs[i]), abs=1e-12)

    def test_inverted_interval_rejected(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 50)
        with pytest.raises(ParameterError):
            kde.range_probability(0.5, 0.4)

    def test_mismatched_batch_shapes_rejected(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 50)
        with pytest.raises(ParameterError):
            kde.range_probability(np.zeros((2, 1)), np.ones((3, 1)))

    def test_2d_box_probability(self, rng):
        kde = make_kde(rng.uniform(size=(400, 2)))
        inside = kde.range_probability([0.0, 0.0], [1.0, 1.0])
        assert 0.8 < inside <= 1.0

    def test_gaussian_kernel_also_supported(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 100,
                                                 kernel=GAUSSIAN)
        assert 0.0 <= kde.range_probability(0.3, 0.5) <= 1.0


class TestSorted1DFastPath:
    """The scalar 1-d path must agree exactly with the dense path."""

    @pytest.mark.parametrize("low,high", [
        (0.0, 1.0), (0.39, 0.41), (0.7, 0.72), (-0.5, 0.2), (0.405, 0.405),
        (0.9, 1.5),
    ])
    def test_agrees_with_dense(self, gaussian_window, low, high):
        kde = KernelDensityEstimator.from_window(gaussian_window, 128)
        fast = kde.range_probability(low, high)
        dense = float(kde._range_probability_batch(
            np.array([[low]]), np.array([[high]]))[0])
        assert fast == pytest.approx(dense, abs=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=-0.5, max_value=1.5),
           st.floats(min_value=0.0, max_value=1.0))
    def test_property_agreement(self, low, width):
        rng = np.random.default_rng(7)
        kde = make_kde(rng.normal(0.5, 0.1, 64))
        high = low + width
        fast = kde.range_probability(low, high)
        dense = float(kde._range_probability_batch(
            np.array([[low]]), np.array([[high]]))[0])
        assert fast == pytest.approx(dense, abs=1e-10)


class TestNeighborhoodCount:
    def test_matches_exact_count_on_dense_sample(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window)
        estimated = kde.neighborhood_count(0.4, 0.02)
        exact = np.sum(np.abs(gaussian_window - 0.4) <= 0.02)
        assert estimated == pytest.approx(exact, rel=0.2)

    def test_scales_with_window_size(self, rng):
        sample = rng.normal(0.5, 0.05, 200)
        small = make_kde(sample, window_size=1_000)
        large = make_kde(sample, window_size=10_000)
        ratio = large.neighborhood_count(0.5, 0.01) / \
            small.neighborhood_count(0.5, 0.01)
        assert ratio == pytest.approx(10.0)

    def test_batch_points(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 100)
        counts = kde.neighborhood_count(np.array([[0.4], [0.8]]), 0.01)
        assert counts.shape == (2,)
        assert counts[0] > counts[1]

    def test_invalid_radius_rejected(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 50)
        with pytest.raises(ParameterError):
            kde.neighborhood_count(0.4, 0.0)


class TestGridSummaries:
    def test_interval_probabilities_sum_to_total(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 100)
        edges = np.linspace(0, 1, 65)
        masses = kde.interval_probabilities(edges)
        assert masses.shape == (64,)
        assert masses.sum() == pytest.approx(
            kde.range_probability(0.0, 1.0), abs=1e-9)

    def test_interval_probabilities_rejects_2d_model(self, rng):
        kde = make_kde(rng.uniform(size=(20, 2)))
        with pytest.raises(ParameterError):
            kde.interval_probabilities(np.linspace(0, 1, 5))

    def test_interval_probabilities_requires_increasing_edges(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 20)
        with pytest.raises(ParameterError):
            kde.interval_probabilities(np.array([0.5, 0.5]))

    def test_grid_probabilities_1d_matches_intervals(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 64)
        grid = kde.grid_probabilities(32)
        intervals = kde.interval_probabilities(np.linspace(0, 1, 33))
        np.testing.assert_allclose(grid, intervals, atol=1e-12)

    def test_grid_probabilities_2d_total_mass(self, rng):
        kde = make_kde(rng.uniform(0.2, 0.8, size=(300, 2)))
        grid = kde.grid_probabilities(16)
        assert grid.shape == (16, 16)
        assert grid.sum() == pytest.approx(1.0, abs=0.02)

    def test_grid_probabilities_3d_shape(self, rng):
        kde = make_kde(rng.uniform(0.3, 0.7, size=(50, 3)))
        assert kde.grid_probabilities(4).shape == (4, 4, 4)

    def test_grid_probabilities_4d_generic_path(self, rng):
        kde = make_kde(rng.uniform(0.3, 0.7, size=(10, 4)))
        grid = kde.grid_probabilities(3)
        assert grid.shape == (3, 3, 3, 3)
        assert grid.sum() == pytest.approx(1.0, abs=0.05)

    def test_invalid_grid_arguments(self, gaussian_window):
        kde = KernelDensityEstimator.from_window(gaussian_window, 20)
        with pytest.raises(ParameterError):
            kde.grid_probabilities(0)
        with pytest.raises(ParameterError):
            kde.grid_probabilities(8, low=1.0, high=0.0)


class TestMean:
    def test_mean_equals_sample_mean(self, rng):
        sample = rng.uniform(size=(100, 2))
        kde = make_kde(sample)
        np.testing.assert_allclose(kde.mean(), sample.mean(axis=0))


class TestMerge:
    def test_merged_sample_is_concatenation(self, rng):
        a = make_kde(rng.normal(0.3, 0.02, 50))
        b = make_kde(rng.normal(0.6, 0.02, 70))
        merged = merge_estimators([a, b])
        assert merged.sample_size == 120
        assert merged.window_size == a.window_size + b.window_size

    def test_merged_mass_covers_both_modes(self, rng):
        a = make_kde(rng.normal(0.3, 0.02, 200), window_size=1000)
        b = make_kde(rng.normal(0.6, 0.02, 200), window_size=1000)
        merged = merge_estimators([a, b])
        assert merged.range_probability(0.25, 0.35) > 0.3
        assert merged.range_probability(0.55, 0.65) > 0.3

    def test_explicit_window_size(self, rng):
        a = make_kde(rng.uniform(size=10))
        merged = merge_estimators([a, a], window_size=77)
        assert merged.window_size == 77

    def test_empty_merge_rejected(self):
        with pytest.raises(EmptyModelError):
            merge_estimators([])

    def test_dimension_mismatch_rejected(self, rng):
        a = make_kde(rng.uniform(size=10))
        b = make_kde(rng.uniform(size=(10, 2)))
        with pytest.raises(ParameterError):
            merge_estimators([a, b])

    def test_kernel_mismatch_rejected(self, rng):
        a = make_kde(rng.uniform(size=10))
        b = make_kde(rng.uniform(size=10), kernel=GAUSSIAN)
        with pytest.raises(ParameterError):
            merge_estimators([a, b])


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=40),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0))
def test_range_probability_axioms(sample, a, b):
    """P is a measure: within [0, 1] and monotone under containment."""
    kde = KernelDensityEstimator(np.array(sample))
    lo, hi = min(a, b), max(a, b)
    inner = kde.range_probability(lo, hi)
    outer = kde.range_probability(lo - 0.1, hi + 0.1)
    assert 0.0 <= inner <= 1.0
    assert inner <= outer + 1e-12


class TestMergePooledDeviation:
    def test_disjoint_windows_recover_exact_union_std(self, rng):
        """Full-sample models of two disjoint windows merge to the exact
        deviation of the concatenated window (law of total variance)."""
        window_a = rng.normal(0.3, 0.02, 400)
        window_b = rng.normal(0.7, 0.05, 600)
        a = KernelDensityEstimator.from_window(window_a)
        b = KernelDensityEstimator.from_window(window_b)
        merged = merge_estimators([a, b])
        union = np.concatenate([window_a, window_b])
        np.testing.assert_allclose(merged.stddev[0], union.std(), rtol=1e-12)
        assert merged.window_size == 1_000

    def test_pooling_beats_concatenated_sample_std(self, rng):
        """The size-biased concatenated sample gets the union deviation
        wrong whenever the member windows are unequally represented."""
        window_a = rng.normal(0.2, 0.01, 2_000)
        window_b = rng.normal(0.8, 0.01, 2_000)
        a = KernelDensityEstimator.from_window(window_a, sample_size=10,
                                               rng=rng)
        b = KernelDensityEstimator.from_window(window_b, sample_size=90,
                                               rng=rng)
        merged = merge_estimators([a, b])
        union_std = np.concatenate([window_a, window_b]).std()
        naive_std = merged.sample.std()
        assert abs(merged.stddev[0] - union_std) < abs(naive_std - union_std)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0),
                min_size=2, max_size=50),
       st.floats(min_value=1e-4, max_value=0.5),
       st.floats(min_value=-0.3, max_value=1.3),
       st.floats(min_value=0.0, max_value=0.8))
def test_sorted_1d_agrees_with_batch_path(sample, bandwidth, low, width):
    """The two 1-d range-query implementations agree to 1e-12: boxes
    inside, straddling and completely missing the sample alike."""
    kde = KernelDensityEstimator(np.array(sample),
                                 bandwidths=np.array([bandwidth]))
    high = low + width
    fast = kde._range_probability_sorted_1d(low, high)
    batch = kde._range_probability_batch(np.array([[low]]),
                                         np.array([[high]]))
    assert batch.shape == (1,)
    assert fast == pytest.approx(batch[0], abs=1e-12)
