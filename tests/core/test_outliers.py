"""Distance-based outlier tests (paper Sections 3 and 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro.core.estimator import KernelDensityEstimator
from repro.core.outliers import (
    DistanceOutlierDetector,
    DistanceOutlierSpec,
    is_distance_outlier,
)


class TestSpec:
    def test_valid(self):
        spec = DistanceOutlierSpec(radius=0.01, count_threshold=45)
        assert spec.radius == 0.01
        assert spec.count_threshold == 45

    @pytest.mark.parametrize("radius", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_radius(self, radius):
        with pytest.raises(ParameterError):
            DistanceOutlierSpec(radius=radius, count_threshold=10)

    @pytest.mark.parametrize("threshold", [0.0, -5.0, float("nan")])
    def test_invalid_threshold(self, threshold):
        with pytest.raises(ParameterError):
            DistanceOutlierSpec(radius=0.01, count_threshold=threshold)

    def test_frozen(self):
        spec = DistanceOutlierSpec(radius=0.01, count_threshold=5)
        with pytest.raises(AttributeError):
            spec.radius = 0.02


class TestIsOutlier:
    @pytest.fixture
    def model(self, gaussian_window):
        return KernelDensityEstimator.from_window(gaussian_window)

    def test_isolated_value_flagged(self, model):
        spec = DistanceOutlierSpec(radius=0.01, count_threshold=20)
        decision = is_distance_outlier(model, [0.95], spec)
        assert decision.is_outlier
        assert decision.neighbor_count < 20

    def test_cluster_value_not_flagged(self, model):
        spec = DistanceOutlierSpec(radius=0.01, count_threshold=20)
        decision = is_distance_outlier(model, [0.40], spec)
        assert not decision.is_outlier
        assert decision.neighbor_count > 20

    def test_threshold_boundary_is_strict_less(self, gaussian_window):
        model = KernelDensityEstimator.from_window(gaussian_window)
        count = float(np.asarray(model.neighborhood_count([0.4], 0.01)).reshape(()))
        exactly = DistanceOutlierSpec(radius=0.01, count_threshold=count)
        decision = is_distance_outlier(model, [0.4], exactly)
        assert not decision.is_outlier   # N(p, r) < t, not <=


class TestDetector:
    def test_check_and_batch_agree(self, gaussian_window):
        model = KernelDensityEstimator.from_window(gaussian_window, 200)
        spec = DistanceOutlierSpec(radius=0.01, count_threshold=15)
        detector = DistanceOutlierDetector(model, spec)
        points = np.array([[0.4], [0.8], [0.39]])
        mask, counts = detector.check_batch(points)
        for i, point in enumerate(points):
            single = detector.check(point)
            assert mask[i] == single.is_outlier
            assert counts[i] == pytest.approx(single.neighbor_count)

    def test_batch_accepts_flat_1d(self, gaussian_window):
        model = KernelDensityEstimator.from_window(gaussian_window, 100)
        detector = DistanceOutlierDetector(
            model, DistanceOutlierSpec(radius=0.01, count_threshold=15))
        mask, counts = detector.check_batch(np.array([0.4, 0.9]))
        assert mask.shape == (2,)
        assert not mask[0] and mask[1]

    def test_exposes_model_and_spec(self, gaussian_window):
        model = KernelDensityEstimator.from_window(gaussian_window, 50)
        spec = DistanceOutlierSpec(radius=0.02, count_threshold=9)
        detector = DistanceOutlierDetector(model, spec)
        assert detector.model is model
        assert detector.spec is spec

    def test_2d_detection(self, rng):
        cluster = rng.normal(0.4, 0.02, size=(2000, 2))
        model = KernelDensityEstimator.from_window(cluster)
        detector = DistanceOutlierDetector(
            model, DistanceOutlierSpec(radius=0.02, count_threshold=10))
        assert detector.check([0.9, 0.9]).is_outlier
        assert not detector.check([0.4, 0.4]).is_outlier
