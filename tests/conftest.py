"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator; re-seeded per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_window(rng) -> np.ndarray:
    """A 1-d window: one Gaussian cluster plus a few isolated values."""
    bulk = rng.normal(0.4, 0.03, 3_000)
    isolated = rng.uniform(0.7, 0.9, 8)
    values = np.concatenate([bulk, isolated])
    rng.shuffle(values)
    return values


@pytest.fixture
def plateau_window(rng) -> np.ndarray:
    """A 1-d window with two uniform plateaus and a sparse gap."""
    a = rng.uniform(0.30, 0.42, 3_000)
    b = rng.uniform(0.50, 0.58, 2_000)
    gap = rng.uniform(0.43, 0.49, 25)
    values = np.concatenate([a, b, gap])
    rng.shuffle(values)
    return values
