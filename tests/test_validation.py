"""Argument-validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._exceptions import ParameterError
from repro._validation import (
    as_point,
    as_points,
    require_fraction,
    require_nonnegative_int,
    require_positive,
    require_positive_int,
)


class TestScalars:
    def test_require_positive(self):
        assert require_positive("x", 0.5) == 0.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ParameterError, match="x"):
                require_positive("x", bad)

    def test_require_positive_int(self):
        assert require_positive_int("n", 3) == 3
        assert require_positive_int("n", np.int64(3)) == 3
        for bad in (0, -1):
            with pytest.raises(ParameterError):
                require_positive_int("n", bad)
        with pytest.raises(ParameterError):
            require_positive_int("n", 3.0)
        with pytest.raises(ParameterError):
            require_positive_int("n", True)

    def test_require_nonnegative_int(self):
        assert require_nonnegative_int("n", 0) == 0
        with pytest.raises(ParameterError):
            require_nonnegative_int("n", -1)

    def test_require_fraction_bounds(self):
        assert require_fraction("f", 0.5) == 0.5
        assert require_fraction("f", 1.0) == 1.0
        with pytest.raises(ParameterError):
            require_fraction("f", 0.0)
        assert require_fraction("f", 0.0, inclusive_low=True) == 0.0
        with pytest.raises(ParameterError):
            require_fraction("f", 1.0, inclusive_high=False)
        with pytest.raises(ParameterError):
            require_fraction("f", float("nan"))


class TestArrays:
    def test_as_points_shapes(self):
        assert as_points("v", [1.0, 2.0]).shape == (2, 1)
        assert as_points("v", 3.0).shape == (1, 1)
        assert as_points("v", [[1.0, 2.0]]).shape == (1, 2)

    def test_as_points_dimension_pin(self):
        with pytest.raises(ParameterError, match="column"):
            as_points("v", [[1.0, 2.0]], n_dims=3)

    def test_as_points_rejects_3d_and_nonfinite(self):
        with pytest.raises(ParameterError):
            as_points("v", np.zeros((2, 2, 2)))
        with pytest.raises(ParameterError):
            as_points("v", [float("nan")])

    def test_as_point(self):
        assert as_point("p", 0.5, 1).tolist() == [0.5]
        assert as_point("p", [0.1, 0.2], 2).shape == (2,)
        with pytest.raises(ParameterError):
            as_point("p", [0.1], 2)
        with pytest.raises(ParameterError):
            as_point("p", [float("inf")], 1)
