"""A batteries-included single-sensor online detector.

The distributed algorithms (D3/MGDD) compose chain samples, variance
sketches and kernel models per node; embedding the same loop on a single
device keeps coming up (the quickstart, the CLI, unit deployments), so
this module packages it behind one call:

    detector = OnlineOutlierDetector(
        window_size=2_000, sample_size=100,
        spec=DistanceOutlierSpec(radius=0.01, count_threshold=9))
    for value in readings:                       # readings in [0, 1]
        decision = detector.process(value)
        if decision is not None and decision.is_outlier:
            ...

``spec`` may be a :class:`~repro.core.outliers.DistanceOutlierSpec` or a
:class:`~repro.core.mdef.MDEFSpec`; the detector picks the matching test.
``process`` returns ``None`` during the warm-up period (before the first
window fills), after which it returns the decision object of the
underlying test.

When readings arrive in blocks, :meth:`OnlineOutlierDetector.process_many`
ingests them through the vectorised chain-sample/sketch fast path and
scores whole chunks with one batched range query per cached model --
producing the same decisions as the loop above (see ``repro bench-
throughput`` for the speedup).  Model refresh is change-driven: the
kernel model is rebuilt only when the chain sample's active elements
actually changed or the bandwidths drifted, not on a bare arrival
counter (see :meth:`repro.detectors._state.StreamModelState.model`).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Sequence

import numpy as np

from repro._exceptions import ParameterError, SnapshotError
from repro._validation import require_positive_int
from repro.core.estimator import KernelDensityEstimator
from repro.core.kernels import EPANECHNIKOV, Kernel
from repro.core.mdef import MDEFDecision, MDEFOutlierDetector, MDEFSpec
from repro.core.outliers import (
    DistanceOutlierDecision,
    DistanceOutlierSpec,
    is_distance_outlier,
)
from repro.detectors._state import StreamModelState

__all__ = ["OnlineOutlierDetector"]


# repro-lint: shard-state
class OnlineOutlierDetector:
    """Online outlier detection for one sensor stream.

    Parameters
    ----------
    window_size:
        Sliding-window length ``|W|``.
    sample_size:
        Kernel sample slots ``|R|`` (the paper uses ``0.05 |W|``).
    spec:
        The outlier definition: distance-based or MDEF-based.
    warmup:
        Readings to observe before flagging; defaults to one window.
    model_refresh / epsilon / kernel / rng:
        Passed through to the underlying components.
    """

    def __init__(self, window_size: int, sample_size: int,
                 spec: "DistanceOutlierSpec | MDEFSpec", *,
                 n_dims: int = 1, warmup: int | None = None,
                 model_refresh: int = 32, epsilon: float = 0.2,
                 kernel: Kernel = EPANECHNIKOV,
                 bandwidth_basis: str = "window",
                 rng: np.random.Generator | None = None) -> None:
        require_positive_int("window_size", window_size)
        require_positive_int("sample_size", sample_size)
        if sample_size > window_size:
            raise ParameterError("sample_size cannot exceed window_size")
        if not isinstance(spec, (DistanceOutlierSpec, MDEFSpec)):
            raise ParameterError(
                "spec must be a DistanceOutlierSpec or an MDEFSpec, "
                f"got {type(spec).__name__}")
        if warmup is None:
            warmup = window_size
        elif warmup < 0:
            raise ParameterError(f"warmup must be >= 0, got {warmup}")
        self._spec = spec
        self._warmup = warmup
        self._window_size = window_size
        # MDEF probes density contrast at the counting-radius scale, so
        # cap the bandwidth there (see MGDDConfig.bandwidth_cap).
        cap = 2.0 * spec.counting_radius if isinstance(spec, MDEFSpec) \
            else None
        self._state = StreamModelState(
            window_size, sample_size, n_dims, epsilon=epsilon,
            model_refresh=model_refresh, kernel=kernel,
            bandwidth_cap=cap, bandwidth_basis=bandwidth_basis, rng=rng)
        self._seen = 0
        self._flagged = 0

    # ------------------------------------------------------------------

    @property
    def spec(self) -> "DistanceOutlierSpec | MDEFSpec":
        """The outlier definition in use."""
        return self._spec

    @property
    def readings_seen(self) -> int:
        """Total readings processed."""
        return self._seen

    @property
    def readings_flagged(self) -> int:
        """Total readings flagged as outliers."""
        return self._flagged

    @property
    def model_seq(self) -> int:
        """Version of the cached estimator (PR-9 lineage observational).

        Delegates to :attr:`repro.detectors._state.StreamModelState
        .model_seq`; never consulted by the decision path.
        """
        return self._state.model_seq

    @property
    def is_warm(self) -> bool:
        """Whether the warm-up period has completed."""
        return self._seen > self._warmup

    def model(self) -> "KernelDensityEstimator | None":
        """The current density model (None before enough data)."""
        self._state.count_window_size = min(self._seen, self._window_size)
        return self._state.model()

    def memory_words(self) -> int:
        """Logical footprint of all retained state, in 16-bit words."""
        return self._state.memory_words()

    # ------------------------------------------------------------------

    def process(self, value: "np.ndarray | Sequence[float] | float") -> "DistanceOutlierDecision | MDEFDecision | None":
        """Observe one reading; return a decision once warmed up."""
        point = np.asarray(value, dtype=float).reshape(-1)
        self._state.observe(point)
        self._seen += 1
        if self._seen <= self._warmup:
            return None
        model = self.model()
        if model is None:
            return None
        if isinstance(self._spec, DistanceOutlierSpec):
            decision = is_distance_outlier(model, point, self._spec)
        else:
            decision = MDEFOutlierDetector(model, self._spec).check(point)
        if decision.is_outlier:
            self._flagged += 1
        return decision

    def process_many(self, values: "np.ndarray | Sequence[Sequence[float]] | Sequence[float]") -> "list[DistanceOutlierDecision | MDEFDecision | None]":
        """Observe a block of readings; return one decision per reading.

        Equivalent to calling :meth:`process` on each reading in order
        (same chain-sample RNG consumption, same model refresh schedule,
        same decisions), but ingestion is vectorised and all readings
        that share a cached model are scored with a single batched range
        query.  Readings inside the warm-up period map to ``None``.
        """
        vals = np.asarray(values, dtype=float)
        n_dims = self._state.sample.n_dims
        if vals.ndim == 1:
            if n_dims != 1:
                raise ParameterError(
                    f"values must have shape (m, {n_dims}), got {vals.shape}")
            vals = vals.reshape(-1, 1)
        if vals.ndim != 2 or vals.shape[1] != n_dims:
            raise ParameterError(
                f"values must have shape (m, {n_dims}), got {vals.shape}")
        m = vals.shape[0]
        decisions: "list[DistanceOutlierDecision | MDEFDecision | None]" = [None] * m
        i = 0
        while i < m:
            if self._seen < self._warmup:
                # No decisions (and no model checks) before warm-up ends.
                k = min(self._warmup - self._seen, m - i)
                self._state.observe_many(vals[i:i + k])
                self._seen += k
                i += k
                continue
            # Observe up to (and including) the next possible model
            # refresh; every reading before it sees the current cache.
            until = self._state.arrivals_until_check()
            k = min(m - i, until)
            check_hit = k == until
            self._state.observe_many(vals[i:i + k])
            self._seen += k
            cached = self._state.cached_model
            if not check_hit:
                if cached is not None:
                    self._decide_batch(cached, vals[i:i + k], decisions, i)
            else:
                model = self.model()
                if model is cached and model is not None:
                    # Clean check: the whole chunk shares one model.
                    self._decide_batch(model, vals[i:i + k], decisions, i)
                else:
                    if k > 1 and cached is not None:
                        self._decide_batch(cached, vals[i:i + k - 1],
                                           decisions, i)
                    if model is not None:
                        self._decide_batch(model, vals[i + k - 1:i + k],
                                           decisions, i + k - 1)
            i += k
        return decisions

    def _decide_batch(self, model: KernelDensityEstimator, points: np.ndarray,
                      decisions: list, offset: int) -> None:
        """Score ``points`` against one model via the vectorised range path."""
        if isinstance(self._spec, DistanceOutlierSpec):
            radius = self._spec.radius
            threshold = self._spec.count_threshold
            counts = model._range_probability_batch(
                points - radius, points + radius) * model.window_size
            flagged = 0
            # tolist() unboxes the whole batch at once; per-element
            # float()/bool() on numpy scalars costs ~10x more.
            for j, count in enumerate(counts.tolist()):
                outlier = count < threshold
                decisions[offset + j] = DistanceOutlierDecision(outlier, count)
                if outlier:
                    flagged += 1
            self._flagged += flagged
        else:
            detector = MDEFOutlierDetector(model, self._spec)
            for j, decision in enumerate(detector.check_many(points)):
                decisions[offset + j] = decision
                if decision.is_outlier:
                    self._flagged += 1

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.engine.snapshot)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> "dict[str, Any]":
        """Plain-data snapshot for the :mod:`repro.engine.snapshot` codec.

        The spec travels as a tagged field dict so the codec payload
        stays plain data (no pickled spec classes).
        """
        kind = "distance" if isinstance(self._spec, DistanceOutlierSpec) \
            else "mdef"
        return {
            "spec": {"kind": kind, **asdict(self._spec)},
            "warmup": self._warmup,
            "window_size": self._window_size,
            "state": self._state.snapshot_state(),
            "seen": self._seen,
            "flagged": self._flagged,
        }

    @classmethod
    def restore_state(cls, state: "dict[str, Any]") -> "OnlineOutlierDetector":
        """Rebuild a detector from a :meth:`snapshot_state` dict."""
        spec_state = dict(state["spec"])
        kind = spec_state.pop("kind")
        if kind == "distance":
            spec: "DistanceOutlierSpec | MDEFSpec" = \
                DistanceOutlierSpec(**spec_state)
        elif kind == "mdef":
            spec = MDEFSpec(**spec_state)
        else:
            raise SnapshotError(f"unknown outlier-spec kind {kind!r}")
        detector = cls.__new__(cls)
        detector._spec = spec
        detector._warmup = int(state["warmup"])
        detector._window_size = int(state["window_size"])
        detector._state = StreamModelState.restore_state(state["state"])
        detector._seen = int(state["seen"])
        detector._flagged = int(state["flagged"])
        return detector
