"""The paper's distributed detection algorithms: D3 (Section 7),
MGDD (Section 8) and the centralized baseline (Figure 11).
"""

from repro.detectors.centralized import (
    CentralizedLeafNode,
    CentralizedRelayNode,
    build_centralized_network,
)
from repro.detectors.d3 import (
    D3Config,
    D3LeafNode,
    D3ParentNode,
    build_d3_network,
    expected_parent_arrival_window,
)
from repro.detectors._state import ChildStalenessTracker
from repro.detectors.single import OnlineOutlierDetector
from repro.detectors.mgdd import (
    MGDDConfig,
    MGDDLeaderNode,
    MGDDLeafNode,
    build_mgdd_network,
)

__all__ = [
    "OnlineOutlierDetector",
    "D3Config",
    "D3LeafNode",
    "D3ParentNode",
    "build_d3_network",
    "expected_parent_arrival_window",
    "MGDDConfig",
    "MGDDLeafNode",
    "MGDDLeaderNode",
    "build_mgdd_network",
    "CentralizedLeafNode",
    "CentralizedRelayNode",
    "build_centralized_network",
    "ChildStalenessTracker",
]
