"""The centralized baseline (paper Sections 8.1 and 10.3, Figure 11).

Every sensor ships every reading up the hierarchy to the top-level
leader, which therefore sees the exact union of all streams.  This is
the accuracy gold standard (the leader can run the offline brute-force
detectors on complete data) and the communication worst case the paper's
Figure 11 compares D3 and MGDD against.

Detection at the root is optional: the Figure 11 experiment only counts
messages, while the accuracy harness uses the brute-force detectors
directly on window contents instead of paying for a full simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.messages import Message, ValueForward
from repro.network.node import DetectionLog, Outgoing
from repro.network.topology import Hierarchy

__all__ = ["CentralizedLeafNode", "CentralizedRelayNode",
           "build_centralized_network"]


class CentralizedLeafNode:
    """Ships every reading to its parent, unconditionally."""

    def __init__(self, node_id: int, parent: "int | None") -> None:
        self.node_id = node_id
        self._parent = parent

    def on_reading(self, value: np.ndarray, tick: int) -> "list[Outgoing]":
        """Forward the reading up (one message per reading per hop)."""
        if self._parent is None:
            return []
        return [(self._parent, ValueForward(value=np.array(value, dtype=float)))]

    def on_message(self, message: Message, sender: int,
                   tick: int) -> "list[Outgoing]":
        """Leaves receive nothing in the centralized scheme."""
        return []


class CentralizedRelayNode:
    """Relays every received value toward the root; the root absorbs them."""

    def __init__(self, node_id: int, parent: "int | None",
                 collect: bool = False) -> None:
        self.node_id = node_id
        self._parent = parent
        self._collect = collect
        #: Values absorbed at the root (only when ``collect`` is set).
        self.received: "list[np.ndarray]" = []

    def on_reading(self, value: np.ndarray, tick: int) -> "list[Outgoing]":
        """Relays have no sensor stream of their own in this deployment."""
        return []

    def on_message(self, message: Message, sender: int,
                   tick: int) -> "list[Outgoing]":
        """Pass values upward; the root optionally records them."""
        if not isinstance(message, ValueForward):
            return []
        if self._parent is not None:
            return [(self._parent, message)]
        if self._collect:
            self.received.append(message.value)
        return []


@dataclass
class CentralizedNetwork:
    """Node behaviours of a centralized deployment."""

    nodes: "dict[int, CentralizedLeafNode | CentralizedRelayNode]"
    log: DetectionLog = field(default_factory=DetectionLog)


def build_centralized_network(hierarchy: Hierarchy, *,
                              collect_at_root: bool = False) -> CentralizedNetwork:
    """Instantiate centralized behaviours for every node of ``hierarchy``."""
    nodes: "dict[int, CentralizedLeafNode | CentralizedRelayNode]" = {}
    for level_idx, tier in enumerate(hierarchy.levels):
        for node_id in tier:
            parent = hierarchy.parent_of(node_id)
            if level_idx == 0:
                nodes[node_id] = CentralizedLeafNode(node_id, parent)
            else:
                nodes[node_id] = CentralizedRelayNode(
                    node_id, parent,
                    collect=collect_at_root and parent is None)
    return CentralizedNetwork(nodes=nodes)
