"""D3 -- Distributed Deviation Detection (paper Section 7, Figure 4).

Leaves maintain the Section 5 estimator state over their own stream and
check *every* reading against their local model (``IsOutlier``).  Values
that enter the local sample are forwarded to the parent with probability
``f``; flagged values are always escalated.  Parents maintain the same
estimator state over the forwarded stream -- which approximates a uniform
sample of the union of their children's windows -- and re-check only the
escalated candidates (Theorem 3: a parent-level outlier must be an
outlier at some child), escalating again on confirmation.

Scaling note: a node's neighbourhood counts are scaled by the number of
values its conceptual window holds (``|W|`` under the default "fixed"
semantics, ``l x |W|`` under "union"; see :class:`D3Config`), while its
chain sample stays uniform over its own *arrival* stream, whose
per-window volume is derived in :func:`expected_parent_arrival_window`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro import obs
from repro._exceptions import ParameterError
from repro._rng import resolve_rng
from repro._validation import (
    require_fraction,
    require_positive_int,
)
from repro.core.kernels import EPANECHNIKOV, Kernel
from repro.core.outliers import DistanceOutlierSpec
from repro.detectors._state import ChildStalenessTracker, StreamModelState
from repro.network.messages import Message, OutlierReport, ValueForward
from repro.network.node import Detection, DetectionLog, Outgoing
from repro.network.topology import Hierarchy

__all__ = ["D3Config", "D3LeafNode", "D3ParentNode", "build_d3_network",
           "expected_parent_arrival_window"]


@dataclass(frozen=True)
class D3Config:
    """Parameters of a D3 deployment (defaults follow Section 10.2).

    ``parent_window`` selects the semantics of a leader's sliding window:

    * ``"fixed"`` (default): every leader keeps the most recent ``|W|``
      values of its children's combined stream, so the outlier threshold
      ``t`` means the same density at every level.  This matches the
      paper's reported behaviour (outlier populations of 40-80 at every
      level, precision improving up the hierarchy).
    * ``"union"``: a leader's window is the union of its children's full
      windows (``l x |W|`` values), the literal ``W_p`` of Theorem 3.
    """

    spec: DistanceOutlierSpec
    window_size: int = 10_000
    sample_size: int = 500           # |R| = 0.05 |W| by default
    sample_fraction: float = 0.5     # f
    epsilon: float = 0.2             # variance-sketch accuracy
    warmup: int | None = None        # ticks before nodes start flagging
    model_refresh: int = 16
    kernel: Kernel = EPANECHNIKOV
    parent_window: str = "fixed"
    #: Fault tolerance (docs/FAULT_MODEL.md): parents exclude children
    #: silent for more than this many ticks from their window-size
    #: scaling, so survivors' counts stay calibrated while crashed
    #: subtrees are down.  None (default) disables the exclusion --
    #: behaviour is then identical to a fault-free deployment.
    staleness_horizon: "int | None" = None

    def __post_init__(self) -> None:
        require_positive_int("window_size", self.window_size)
        require_positive_int("sample_size", self.sample_size)
        require_fraction("sample_fraction", self.sample_fraction)
        if self.sample_size > self.window_size:
            raise ParameterError("sample_size cannot exceed window_size")
        if self.parent_window not in ("fixed", "union"):
            raise ParameterError(
                f"parent_window must be 'fixed' or 'union', "
                f"got {self.parent_window!r}")
        if self.staleness_horizon is not None:
            require_positive_int("staleness_horizon", self.staleness_horizon)

    @property
    def effective_warmup(self) -> int:
        """Ticks before detection starts (defaults to a full window)."""
        return self.window_size if self.warmup is None else self.warmup


def expected_parent_arrival_window(n_children: int, config: D3Config) -> int:
    """A parent's window length measured in forwarded arrivals.

    Every node replaces sample slots and forwards each replacement
    upward with probability ``f``.  Under ``"fixed"`` parent windows the
    forwarding rates telescope so that any leader's window period spans
    about ``f * |R|`` of its arrivals, independent of fan-out; under
    ``"union"`` windows the span is ``c * f * |R|`` for ``c`` children.
    """
    if config.parent_window == "fixed":
        expected = int(round(config.sample_fraction * config.sample_size))
    else:
        expected = int(round(
            n_children * config.sample_fraction * config.sample_size))
    # Never let the chain window drop below the slot count: a window
    # shorter than |R| degenerates the sample into duplicates of a few
    # recent values.  Trading a slightly longer effective window for a
    # well-conditioned sample is the right call on near-stationary data.
    return max(2, config.sample_size, expected)


class D3LeafNode:
    """LeafProcess of Figure 4 (lines 11-20)."""

    def __init__(self, node_id: int, parent: "int | None", level: int,
                 config: D3Config, n_dims: int, log: DetectionLog,
                 rng: np.random.Generator) -> None:
        self.node_id = node_id
        self._parent = parent
        self._level = level
        self._config = config
        self._log = log
        self._rng = rng
        # Forward gates draw from a dedicated substream so the batched
        # and per-tick ingestion paths consume it in the same order
        # (spawned, so the node's own generator is not advanced).
        try:
            self._forward_rng = rng.spawn(1)[0]
        except (AttributeError, TypeError):
            self._forward_rng = np.random.default_rng(
                int(rng.integers(2**63)))
        self._state = StreamModelState(
            config.window_size, config.sample_size, n_dims,
            epsilon=config.epsilon, model_refresh=config.model_refresh,
            kernel=config.kernel, rng=rng)
        #: Detections computed by a batched epoch, awaiting their tick:
        #: tick -> (value, neighbourhood count, model_seq consulted).
        self._pending: "dict[int, tuple[np.ndarray, float, int]]" = {}
        #: Ticks of readings this leaf flagged (inspection/testing aid).
        self.flagged_ticks: "list[int]" = []

    @property
    def state(self) -> StreamModelState:
        """The node's estimator state (for memory accounting)."""
        return self._state

    def on_reading(self, value: np.ndarray, tick: int) -> "list[Outgoing]":
        """Process one sensor reading (Figure 4, lines 12-19)."""
        out: "list[Outgoing]" = []
        changed = self._state.observe(value)
        # The window fills over the first |W| ticks.
        self._state.count_window_size = min(tick + 1, self._config.window_size)
        if changed and self._parent is not None \
                and self._forward_rng.random() < self._config.sample_fraction:
            out.append((self._parent, ValueForward(value=np.array(value, dtype=float))))
        if tick >= self._config.effective_warmup:
            model = self._state.model()
            if model is not None:
                count = float(np.asarray(
                    model.neighborhood_count(value, self._config.spec.radius)).reshape(()))
                if count < self._config.spec.count_threshold:
                    self._log.record(
                        Detection(
                            tick=tick, node_id=self.node_id,
                            level=self._level, origin=self.node_id,
                            value=np.array(value, dtype=float)),
                        prob=count,
                        threshold=float(self._config.spec.count_threshold),
                        model_seq=self._state.model_seq)
                    self.flagged_ticks.append(tick)
                    if self._parent is not None:
                        out.append((self._parent, OutlierReport(
                            value=np.array(value, dtype=float),
                            origin=self.node_id, flagged_level=self._level,
                            tick=tick)))
        return out

    def on_readings(self, values: np.ndarray,
                    start_tick: int) -> "list[list[Outgoing]]":
        """Ingest an epoch of readings at once; return outgoing per tick.

        Produces the same chain sample, forwards and detections as
        calling :meth:`on_reading` for each tick in order (ingestion and
        detection are vectorised; see
        :meth:`repro.detectors._state.StreamModelState.observe_many`).
        Detections are staged in ``_pending`` and emitted -- logged, in
        tick order -- by :meth:`on_tick_start`.
        """
        vals = np.asarray(values, dtype=float)
        if vals.ndim == 1:
            vals = vals.reshape(-1, 1)
        n = vals.shape[0]
        per_tick: "list[list[Outgoing]]" = [[] for _ in range(n)]
        warmup = self._config.effective_warmup
        window = self._config.window_size
        i = 0
        while i < n:
            tick = start_tick + i
            if tick < warmup:
                # No detection before warm-up: ingest straight through.
                k = min(warmup - tick, n - i)
                changed = self._state.observe_many(vals[i:i + k])
                self._queue_forwards(changed, vals, per_tick, i)
                self._state.count_window_size = min(start_tick + i + k, window)
                i += k
                continue
            until = self._state.arrivals_until_check()
            k = min(n - i, until)
            check_hit = k == until
            changed = self._state.observe_many(vals[i:i + k])
            self._queue_forwards(changed, vals, per_tick, i)
            self._state.count_window_size = min(start_tick + i + k, window)
            cached = self._state.cached_model
            cached_seq = self._state.model_seq
            if not check_hit:
                if cached is not None:
                    self._flag_batch(cached, vals, start_tick, i, k,
                                     cached_seq)
            else:
                model = self._state.model()
                if model is cached and model is not None:
                    self._flag_batch(model, vals, start_tick, i, k,
                                     cached_seq)
                else:
                    if k > 1 and cached is not None:
                        self._flag_batch(cached, vals, start_tick, i, k - 1,
                                         cached_seq)
                    if model is not None:
                        self._flag_batch(model, vals, start_tick, i + k - 1,
                                         1, self._state.model_seq)
            i += k
        return per_tick

    def on_tick_start(self, tick: int) -> "list[Outgoing]":
        """Emit (and log) any detection staged for ``tick`` by a batch."""
        staged = self._pending.pop(tick, None)
        if staged is None:
            return []
        value, count, model_seq = staged
        self._log.record(
            Detection(tick=tick, node_id=self.node_id, level=self._level,
                      origin=self.node_id, value=value),
            prob=count,
            threshold=float(self._config.spec.count_threshold),
            model_seq=model_seq)
        self.flagged_ticks.append(tick)
        if self._parent is not None:
            return [(self._parent, OutlierReport(
                value=np.array(value, dtype=float), origin=self.node_id,
                flagged_level=self._level, tick=tick))]
        return []

    def _queue_forwards(self, changed: "list[tuple[int, ...]]",
                        vals: np.ndarray, per_tick: "list[list[Outgoing]]",
                        offset: int) -> None:
        """Stage sample forwards for each arrival that replaced a slot."""
        if self._parent is None:
            return
        fraction = self._config.sample_fraction
        for j, slots in enumerate(changed):
            if slots and self._forward_rng.random() < fraction:
                per_tick[offset + j].append((self._parent, ValueForward(
                    value=vals[offset + j].copy())))

    def _flag_batch(self, model, vals: np.ndarray, start_tick: int,
                    offset: int, count: int, model_seq: int) -> None:
        """Run the distance test on a chunk sharing one model."""
        points = vals[offset:offset + count]
        radius = self._config.spec.radius
        counts = model._range_probability_batch(
            points - radius, points + radius) * model.window_size
        threshold = self._config.spec.count_threshold
        for j in range(count):
            if counts[j] < threshold:
                self._pending[start_tick + offset + j] = (
                    points[j].copy(), float(counts[j]), model_seq)

    def on_message(self, message: Message, sender: int,
                   tick: int) -> "list[Outgoing]":
        """Leaves receive no messages under D3."""
        return []


class D3ParentNode:
    """ParentProcess of Figure 4 (lines 21-31)."""

    def __init__(self, node_id: int, parent: "int | None", level: int,
                 n_children: int, n_leaves_under: int,
                 config: D3Config, n_dims: int, log: DetectionLog,
                 rng: np.random.Generator, *,
                 children_leaf_counts: "Mapping[int, int] | None" = None) -> None:
        self.node_id = node_id
        self._parent = parent
        self._level = level
        self._n_leaves_under = n_leaves_under
        self._config = config
        self._log = log
        self._rng = rng
        arrival_window = expected_parent_arrival_window(n_children, config)
        self._state = StreamModelState(
            arrival_window, config.sample_size, n_dims,
            epsilon=config.epsilon, model_refresh=config.model_refresh,
            kernel=config.kernel, rng=rng)
        self._staleness = ChildStalenessTracker(children_leaf_counts)

    @property
    def state(self) -> StreamModelState:
        """The node's estimator state (for memory accounting)."""
        return self._state

    def child_staleness(self, tick: int) -> "dict[int, int]":
        """Ticks since each direct child was last heard from."""
        return self._staleness.staleness(tick)

    def _active_leaves(self, tick: int) -> int:
        """Leaves feeding this node's window, per the staleness horizon."""
        horizon = self._config.staleness_horizon
        if horizon is None:
            return self._n_leaves_under
        return max(1, self._staleness.active_leaf_count(tick, horizon))

    def on_reading(self, value: np.ndarray, tick: int) -> "list[Outgoing]":
        """Leaders have no sensor stream of their own in this deployment."""
        return []

    def on_message(self, message: Message, sender: int,
                   tick: int) -> "list[Outgoing]":
        """Handle forwarded samples and escalated outliers (lines 22-30)."""
        out: "list[Outgoing]" = []
        self._staleness.mark(sender, tick)   # any upward traffic = alive
        if isinstance(message, ValueForward):
            changed = self._state.observe(message.value)
            leaves = self._active_leaves(tick)
            if self._config.parent_window == "fixed":
                # Most recent |W| values of the combined children stream.
                self._state.count_window_size = min(
                    (tick + 1) * leaves, self._config.window_size)
            else:
                # Union of the full leaf windows below (Theorem 3's W_p).
                self._state.count_window_size = (
                    min(tick + 1, self._config.window_size) * leaves)
            if changed and self._parent is not None \
                    and self._rng.random() < self._config.sample_fraction:
                out.append((self._parent, message))
        elif isinstance(message, OutlierReport):
            if tick >= self._config.effective_warmup:
                model = self._state.model()
                if model is not None:
                    count = float(np.asarray(model.neighborhood_count(
                        message.value, self._config.spec.radius)).reshape(()))
                    flagged = count < self._config.spec.count_threshold
                    if obs.ACTIVE:
                        obs.emit("detector.check", node=self.node_id,
                                 level=self._level, origin=message.origin,
                                 flagged=flagged, tick=tick,
                                 reading_tick=message.tick)
                    if flagged:
                        self._log.record(
                            Detection(
                                tick=message.tick, node_id=self.node_id,
                                level=self._level, origin=message.origin,
                                value=message.value),
                            flag_tick=tick,
                            prob=count,
                            threshold=float(
                                self._config.spec.count_threshold),
                            model_seq=self._state.model_seq)
                        if self._parent is not None:
                            out.append((self._parent, OutlierReport(
                                value=message.value, origin=message.origin,
                                flagged_level=self._level, tick=message.tick)))
        return out


@dataclass
class D3Network:
    """The node behaviours plus the shared detection log of a D3 deployment."""

    nodes: "dict[int, D3LeafNode | D3ParentNode]"
    log: DetectionLog = field(default_factory=DetectionLog)


def build_d3_network(hierarchy: Hierarchy, config: D3Config, n_dims: int, *,
                     rng: np.random.Generator | None = None) -> D3Network:
    """Instantiate D3 behaviours for every node of ``hierarchy``.

    Per-node RNGs are derived from ``rng`` so runs are reproducible.
    """
    root = resolve_rng(rng)
    log = DetectionLog(n_levels=len(hierarchy.levels))
    nodes: "dict[int, D3LeafNode | D3ParentNode]" = {}
    for level_idx, tier in enumerate(hierarchy.levels):
        for node_id in tier:
            child_rng = np.random.default_rng(root.integers(2**63))
            parent = hierarchy.parent_of(node_id)
            if level_idx == 0:
                nodes[node_id] = D3LeafNode(
                    node_id, parent, level_idx + 1, config, n_dims, log, child_rng)
            else:
                children = hierarchy.children_of(node_id)
                nodes[node_id] = D3ParentNode(
                    node_id, parent, level_idx + 1,
                    n_children=len(children),
                    n_leaves_under=len(hierarchy.leaves_under(node_id)),
                    config=config, n_dims=n_dims, log=log, rng=child_rng,
                    children_leaf_counts={
                        child: len(hierarchy.leaves_under(child))
                        for child in children})
    return D3Network(nodes=nodes, log=log)
