"""Shared per-node estimator state for the distributed detectors.

Every node that approximates a distribution -- D3 leaves and parents,
MGDD leaves (their local sample) and leaders -- carries the same trio of
Section 5 components: a chain sample of its arrival stream, per-dimension
variance sketches, and a cached kernel model rebuilt at a bounded rate.
This module factors that trio out of the algorithm classes.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import numpy as np

from repro import obs
from repro._exceptions import ParameterError
from repro.core.bandwidth import scott_bandwidths
from repro.core.estimator import KernelDensityEstimator
from repro.core.kernels import EPANECHNIKOV, Kernel, kernel_by_name
from repro.streams.sampling import ChainSample
from repro.streams.variance import MultiDimVarianceSketch

__all__ = ["StreamModelState", "ChildStalenessTracker"]

#: Check whether the cached kernel model is stale at most once per this
#: many arrivals (callers may override).  A due check rebuilds only when
#: the chain sample's active elements actually changed, the sketched
#: deviation drifted beyond ``bandwidth_tol``, or the count window was
#: resized; otherwise the previous estimator is reused as-is.
DEFAULT_MODEL_REFRESH = 16

#: Relative deviation drift that forces a rebuild at a due check even
#: when no sample slot changed (Scott bandwidths scale linearly with the
#: deviation, so this bounds the bandwidth staleness of a reused model).
DEFAULT_BANDWIDTH_TOL = 0.05


# repro-lint: shard-state
class StreamModelState:
    """Chain sample + variance sketches + cached kernel model for one node.

    Parameters
    ----------
    arrival_window:
        The node's window length measured in *its own arrivals* -- the
        stream length over which the chain sample stays uniform.  For a
        leaf this is ``|W|``; for a parent it is the expected number of
        forwarded values per window period (see the D3/MGDD builders).
    sample_size:
        Kernel sample slots ``|R|``.
    n_dims:
        Reading dimensionality.
    epsilon:
        Variance-sketch accuracy.
    min_arrivals:
        Arrivals required before :meth:`model` returns anything; guards
        against degenerate single-value models.
    model_refresh:
        Run the staleness check at most once per this many arrivals; the
        cached model is rebuilt only when the check finds an actual
        change (see :meth:`model`).
    bandwidth_tol:
        Relative drift of the sketched deviation that forces a rebuild
        at a due check even when no sample slot changed.
    bandwidth_cap:
        Optional upper bound on the kernel bandwidths (the MDEF test
        needs resolution at its counting-radius scale; see
        :class:`~repro.detectors.mgdd.MGDDConfig.bandwidth_cap`).
    bandwidth_basis:
        The ``n`` in Scott's rule: ``"window"`` (default -- the
        observation count the estimate represents, which reproduces the
        paper's reported accuracy) or ``"sample"`` (the formula as
        printed, ``|R|``).  See EXPERIMENTS.md.
    """

    def __init__(self, arrival_window: int, sample_size: int, n_dims: int, *,
                 epsilon: float = 0.2,
                 min_arrivals: int | None = None,
                 model_refresh: int = DEFAULT_MODEL_REFRESH,
                 bandwidth_tol: float = DEFAULT_BANDWIDTH_TOL,
                 kernel: Kernel = EPANECHNIKOV,
                 bandwidth_cap: "float | None" = None,
                 bandwidth_basis: str = "window",
                 rng: np.random.Generator | None = None) -> None:
        if model_refresh < 1:
            raise ParameterError(f"model_refresh must be >= 1, got {model_refresh}")
        if bandwidth_tol < 0:
            raise ParameterError(
                f"bandwidth_tol must be >= 0, got {bandwidth_tol!r}")
        if bandwidth_cap is not None and bandwidth_cap <= 0:
            raise ParameterError(
                f"bandwidth_cap must be positive, got {bandwidth_cap!r}")
        if bandwidth_basis not in ("window", "sample"):
            raise ParameterError(
                f"bandwidth_basis must be 'window' or 'sample', "
                f"got {bandwidth_basis!r}")
        self._bandwidth_basis = bandwidth_basis
        self._sample = ChainSample(arrival_window, sample_size, n_dims, rng=rng)
        self._sketch = MultiDimVarianceSketch(arrival_window, n_dims, epsilon)
        self._kernel = kernel
        self._bandwidth_cap = bandwidth_cap
        self._model_refresh = model_refresh
        self._bandwidth_tol = bandwidth_tol
        if min_arrivals is None:
            min_arrivals = max(2, sample_size // 8)
        self._min_arrivals = min_arrivals
        self._arrivals = 0
        self._last_check = -1
        self._cached: KernelDensityEstimator | None = None
        self._built_std: "np.ndarray | None" = None
        self._built_window_size = -1
        self._built_mutations = -1
        self._model_seq = 0
        #: |W| used to scale neighbourhood counts; set by the owner
        #: (leaf window, or the union-window size for leaders).
        self.count_window_size = arrival_window

    # ------------------------------------------------------------------

    @property
    def arrivals(self) -> int:
        """Number of values observed so far."""
        return self._arrivals

    @property
    def sample(self) -> ChainSample:
        """The chain sample (exposed for memory accounting)."""
        return self._sample

    @property
    def sketch(self) -> MultiDimVarianceSketch:
        """The variance sketches (exposed for memory accounting)."""
        return self._sketch

    def observe(self, value: np.ndarray) -> "tuple[int, ...]":
        """Feed one arrival; return the sample slots it replaced."""
        changed = self._sample.offer_detailed(value)
        self._sketch.insert(value)
        self._arrivals += 1
        return changed

    def observe_many(self, values: np.ndarray) -> "list[tuple[int, ...]]":
        """Feed a block of arrivals; return the replaced slots per arrival.

        Bit-identical to the equivalent sequence of :meth:`observe` calls
        (see :meth:`repro.streams.sampling.ChainSample.offer_many`), at a
        fraction of the per-arrival cost.
        """
        changed = self._sample.offer_many(values)
        self._sketch.insert_many(values)
        self._arrivals += len(changed)
        return changed

    @property
    def model_seq(self) -> int:
        """Monotone rebuild counter: the version of :attr:`cached_model`.

        Bumps exactly when a :meth:`model` call constructs a new
        estimator, so a detection can cite the model version it
        consulted.  Never read by the decision path -- lineage is
        observational, so traced and untraced runs stay bit-identical.
        """
        return self._model_seq

    @property
    def cached_model(self) -> "KernelDensityEstimator | None":
        """The cached estimator as-is -- no staleness check, no rebuild.

        Batched callers evaluate whole chunks of readings against this
        between due checks (see :meth:`arrivals_until_check`).
        """
        return self._cached

    def arrivals_until_check(self) -> int:
        """Arrivals after which a :meth:`model` call may rebuild (>= 1).

        Until that many further arrivals have been observed, every
        :meth:`model` call is a pure read of :attr:`cached_model` (or of
        ``None`` before ``min_arrivals``), so a batched caller can
        observe a chunk of that size and score all but its last reading
        against the current cache -- reproducing the one-at-a-time
        schedule exactly.
        """
        if self._cached is None:
            return max(1, self._min_arrivals - self._arrivals)
        return max(1, self._model_refresh - (self._arrivals - self._last_check))

    def model(self) -> "KernelDensityEstimator | None":
        """The current kernel model, or None before ``min_arrivals``.

        Change-driven refresh: at most once per ``model_refresh``
        arrivals the cache is *checked*, and rebuilt only when the chain
        sample actually changed since the last build (any active element
        replaced, promoted or expired -- see
        :attr:`~repro.streams.sampling.ChainSample.mutation_count`), the
        sketched deviation drifted beyond ``bandwidth_tol``, or the owner
        resized ``count_window_size``.  A clean check reuses the previous
        estimator object and defers the next check by a full interval.
        """
        if self._arrivals < self._min_arrivals:
            return None
        if (self._cached is not None
                and self._arrivals - self._last_check < self._model_refresh):
            return self._cached
        if not self._sample.has_active():
            return None
        self._last_check = self._arrivals
        std = self._sketch.std()
        window_size = max(1, int(self.count_window_size))
        if (self._cached is not None
                and self._sample.mutation_count == self._built_mutations
                and window_size == self._built_window_size
                and np.allclose(std, self._built_std,
                                rtol=self._bandwidth_tol, atol=1e-12)):
            return self._cached
        sample = self._sample.values()
        if self._bandwidth_basis == "window":
            n_basis = max(sample.shape[0], window_size)
        else:
            n_basis = sample.shape[0]
        bandwidths = scott_bandwidths(std, n_basis, sample.shape[1])
        if self._bandwidth_cap is not None:
            bandwidths = np.minimum(bandwidths, self._bandwidth_cap)
        if obs.ACTIVE:
            # finally: a constructor that raises must still charge the
            # rebuild phase, or the profile shows 0 ns for failed builds.
            t0 = time.perf_counter()
            try:
                self._cached = KernelDensityEstimator(
                    sample, stddev=std, bandwidths=bandwidths,
                    kernel=self._kernel, window_size=window_size)
            finally:
                elapsed = time.perf_counter() - t0
                obs.profiler().record("estimator.rebuild", elapsed)
                obs.emit("estimator.rebuild",
                         sample_size=int(sample.shape[0]), dur_s=elapsed)
        else:
            self._cached = KernelDensityEstimator(
                sample, stddev=std, bandwidths=bandwidths,
                kernel=self._kernel, window_size=window_size)
        self._built_std = std
        self._built_window_size = window_size
        self._built_mutations = self._sample.mutation_count
        self._model_seq += 1
        return self._cached

    def memory_words(self) -> int:
        """Logical footprint of the sample and sketches, in words."""
        return self._sample.memory_words() + self._sketch.memory_words()

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.engine.snapshot)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> "dict[str, Any]":
        """Plain-data snapshot for the :mod:`repro.engine.snapshot` codec.

        The cached estimator and the ``_built_*`` staleness fingerprints
        travel too: a restore must neither force a rebuild the original
        would not have run nor skip one it would, or the estimator cache
        schedule (and hence the detections) could diverge.
        """
        return {
            "bandwidth_basis": self._bandwidth_basis,
            "sample": self._sample.snapshot_state(),
            "sketch": self._sketch.snapshot_state(),
            "kernel": self._kernel.name,
            "bandwidth_cap": self._bandwidth_cap,
            "model_refresh": self._model_refresh,
            "bandwidth_tol": self._bandwidth_tol,
            "min_arrivals": self._min_arrivals,
            "arrivals": self._arrivals,
            "last_check": self._last_check,
            "cached": None if self._cached is None
            else self._cached.snapshot_state(),
            "built_std": None if self._built_std is None
            else self._built_std.copy(),
            "built_window_size": self._built_window_size,
            "built_mutations": self._built_mutations,
            "model_seq": self._model_seq,
            "count_window_size": self.count_window_size,
        }

    @classmethod
    def restore_state(cls, state: "dict[str, Any]") -> "StreamModelState":
        """Rebuild the state trio from a :meth:`snapshot_state` dict."""
        model_state = cls.__new__(cls)
        model_state._bandwidth_basis = str(state["bandwidth_basis"])
        model_state._sample = ChainSample.restore_state(state["sample"])
        model_state._sketch = \
            MultiDimVarianceSketch.restore_state(state["sketch"])
        model_state._kernel = kernel_by_name(str(state["kernel"]))
        cap = state["bandwidth_cap"]
        model_state._bandwidth_cap = None if cap is None else float(cap)
        model_state._model_refresh = int(state["model_refresh"])
        model_state._bandwidth_tol = float(state["bandwidth_tol"])
        model_state._min_arrivals = int(state["min_arrivals"])
        model_state._arrivals = int(state["arrivals"])
        model_state._last_check = int(state["last_check"])
        cached = state["cached"]
        model_state._cached = None if cached is None \
            else KernelDensityEstimator.restore_state(cached)
        built_std = state["built_std"]
        model_state._built_std = None if built_std is None \
            else np.asarray(built_std, dtype=float).copy()
        model_state._built_window_size = int(state["built_window_size"])
        model_state._built_mutations = int(state["built_mutations"])
        # Pre-lineage snapshots lack the rebuild counter; restart at 0.
        model_state._model_seq = int(state.get("model_seq", 0))
        model_state.count_window_size = int(state["count_window_size"])
        return model_state


# repro-lint: shard-state
class ChildStalenessTracker:
    """Last-heard bookkeeping for a parent's direct children.

    Under faults (docs/FAULT_MODEL.md) a parent keeps its last-known
    estimator state built from child contributions, but must know how
    *stale* each child's contribution is: a child silent beyond the
    configured horizon is excluded from window-size scaling so the
    survivors' density estimate is normalised over the leaves actually
    reporting, instead of diluting counts by dead subtrees.

    Staleness of a child at ``tick`` is ``tick - last_heard``; a child
    never heard from counts as ``tick + 1`` (stale since before the
    run), so fresh deployments exclude a silent child once the horizon
    passes, exactly like a mid-run crash.
    """

    def __init__(self,
                 leaf_counts: "Mapping[int, int] | None" = None) -> None:
        #: child id -> number of leaf sensors in its subtree (1 for a
        #: leaf child); drives :meth:`active_leaf_count`.
        self._leaf_counts: "dict[int, int]" = \
            dict(leaf_counts) if leaf_counts else {}
        self._last_heard: "dict[int, int]" = {}

    def mark(self, child: int, tick: int) -> None:
        """Record that ``child`` was heard from at ``tick``."""
        self._last_heard[child] = tick

    def staleness(self, tick: int) -> "dict[int, int]":
        """Ticks since each child was last heard (never = ``tick + 1``)."""
        children = sorted(set(self._leaf_counts) | set(self._last_heard))
        return {child: tick - self._last_heard[child]
                if child in self._last_heard else tick + 1
                for child in children}

    def active_leaf_count(self, tick: int, horizon: int) -> int:
        """Leaf sensors under children whose staleness is <= ``horizon``."""
        total = 0
        for child, leaves in self._leaf_counts.items():
            last = self._last_heard.get(child)
            stale = tick - last if last is not None else tick + 1
            if stale <= horizon:
                total += leaves
        return total

    def snapshot_state(self) -> "dict[str, Any]":
        """Plain-data snapshot for the :mod:`repro.engine.snapshot` codec."""
        return {
            "leaf_counts": dict(self._leaf_counts),
            "last_heard": dict(self._last_heard),
        }

    @classmethod
    def restore_state(cls, state: "dict[str, Any]") -> "ChildStalenessTracker":
        """Rebuild a tracker from a :meth:`snapshot_state` dict."""
        tracker = cls(leaf_counts=state["leaf_counts"])
        tracker._last_heard = {int(child): int(tick)
                               for child, tick in state["last_heard"].items()}
        return tracker
