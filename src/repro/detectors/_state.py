"""Shared per-node estimator state for the distributed detectors.

Every node that approximates a distribution -- D3 leaves and parents,
MGDD leaves (their local sample) and leaders -- carries the same trio of
Section 5 components: a chain sample of its arrival stream, per-dimension
variance sketches, and a cached kernel model rebuilt at a bounded rate.
This module factors that trio out of the algorithm classes.
"""

from __future__ import annotations

import numpy as np

from repro._exceptions import ParameterError
from repro.core.bandwidth import scott_bandwidths
from repro.core.estimator import KernelDensityEstimator
from repro.core.kernels import EPANECHNIKOV, Kernel
from repro.streams.sampling import ChainSample
from repro.streams.variance import MultiDimVarianceSketch

__all__ = ["StreamModelState"]

#: Rebuilding the kernel model on every arrival would be wasteful; the
#: sample changes only ~|R|/|W| of the time anyway.  Rebuild at most once
#: per this many arrivals (callers may override).
DEFAULT_MODEL_REFRESH = 16


class StreamModelState:
    """Chain sample + variance sketches + cached kernel model for one node.

    Parameters
    ----------
    arrival_window:
        The node's window length measured in *its own arrivals* -- the
        stream length over which the chain sample stays uniform.  For a
        leaf this is ``|W|``; for a parent it is the expected number of
        forwarded values per window period (see the D3/MGDD builders).
    sample_size:
        Kernel sample slots ``|R|``.
    n_dims:
        Reading dimensionality.
    epsilon:
        Variance-sketch accuracy.
    min_arrivals:
        Arrivals required before :meth:`model` returns anything; guards
        against degenerate single-value models.
    model_refresh:
        Rebuild the cached model at most once per this many arrivals.
    bandwidth_cap:
        Optional upper bound on the kernel bandwidths (the MDEF test
        needs resolution at its counting-radius scale; see
        :class:`~repro.detectors.mgdd.MGDDConfig.bandwidth_cap`).
    bandwidth_basis:
        The ``n`` in Scott's rule: ``"window"`` (default -- the
        observation count the estimate represents, which reproduces the
        paper's reported accuracy) or ``"sample"`` (the formula as
        printed, ``|R|``).  See EXPERIMENTS.md.
    """

    def __init__(self, arrival_window: int, sample_size: int, n_dims: int, *,
                 epsilon: float = 0.2,
                 min_arrivals: int | None = None,
                 model_refresh: int = DEFAULT_MODEL_REFRESH,
                 kernel: Kernel = EPANECHNIKOV,
                 bandwidth_cap: "float | None" = None,
                 bandwidth_basis: str = "window",
                 rng: np.random.Generator | None = None) -> None:
        if model_refresh < 1:
            raise ParameterError(f"model_refresh must be >= 1, got {model_refresh}")
        if bandwidth_cap is not None and bandwidth_cap <= 0:
            raise ParameterError(
                f"bandwidth_cap must be positive, got {bandwidth_cap!r}")
        if bandwidth_basis not in ("window", "sample"):
            raise ParameterError(
                f"bandwidth_basis must be 'window' or 'sample', "
                f"got {bandwidth_basis!r}")
        self._bandwidth_basis = bandwidth_basis
        self._sample = ChainSample(arrival_window, sample_size, n_dims, rng=rng)
        self._sketch = MultiDimVarianceSketch(arrival_window, n_dims, epsilon)
        self._kernel = kernel
        self._bandwidth_cap = bandwidth_cap
        self._model_refresh = model_refresh
        if min_arrivals is None:
            min_arrivals = max(2, sample_size // 8)
        self._min_arrivals = min_arrivals
        self._arrivals = 0
        self._arrivals_at_build = -1
        self._cached: KernelDensityEstimator | None = None
        #: |W| used to scale neighbourhood counts; set by the owner
        #: (leaf window, or the union-window size for leaders).
        self.count_window_size = arrival_window

    # ------------------------------------------------------------------

    @property
    def arrivals(self) -> int:
        """Number of values observed so far."""
        return self._arrivals

    @property
    def sample(self) -> ChainSample:
        """The chain sample (exposed for memory accounting)."""
        return self._sample

    @property
    def sketch(self) -> MultiDimVarianceSketch:
        """The variance sketches (exposed for memory accounting)."""
        return self._sketch

    def observe(self, value: np.ndarray) -> "tuple[int, ...]":
        """Feed one arrival; return the sample slots it replaced."""
        changed = self._sample.offer_detailed(value)
        self._sketch.insert(value)
        self._arrivals += 1
        return changed

    def model(self) -> "KernelDensityEstimator | None":
        """The current kernel model, or None before ``min_arrivals``.

        The cached model is rebuilt lazily, at most once per
        ``model_refresh`` arrivals.
        """
        if self._arrivals < self._min_arrivals:
            return None
        if (self._cached is None
                or self._arrivals - self._arrivals_at_build >= self._model_refresh):
            sample = self._sample.values()
            if sample.shape[0] == 0:
                return None
            std = self._sketch.std()
            if self._bandwidth_basis == "window":
                n_basis = max(sample.shape[0], int(self.count_window_size))
            else:
                n_basis = sample.shape[0]
            bandwidths = scott_bandwidths(std, n_basis, sample.shape[1])
            if self._bandwidth_cap is not None:
                bandwidths = np.minimum(bandwidths, self._bandwidth_cap)
            self._cached = KernelDensityEstimator(
                sample, bandwidths=bandwidths, kernel=self._kernel,
                window_size=max(1, int(self.count_window_size)))
            self._arrivals_at_build = self._arrivals
        return self._cached

    def memory_words(self) -> int:
        """Logical footprint of the sample and sketches, in words."""
        return self._sample.memory_words() + self._sketch.memory_words()
