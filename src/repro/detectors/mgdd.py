"""MGDD -- Multi Granular Deviation Detection (paper Section 8, Figure 4).

MDEF-based outliers are non-decomposable (an outlier at a parent need not
be one at any child), so Theorem 3 does not apply and only leaf sensors
detect.  To judge deviations against an entire region's data, every leaf
keeps a copy of the region's *reference* estimator model: samples flow
up the hierarchy with probability ``f`` per hop, and whenever a
forwarded value enters the model-owning leader's kernel sample, the
change is flooded back down to that leader's leaves (Section 8.1).  By
default the single top-level leader owns one global model;
``MGDDConfig.model_level`` instead makes every leader of a chosen tier
own a regional model for its subtree (Example 1's "outliers at any
level of detail").

Two update policies are implemented:

* ``"incremental"`` (the default scheme of Section 8.1's first part):
  every change to the root's sample travels down as a small
  slot-replacement message;
* ``"lazy"`` (the Section 8.1 optimisation): the root re-broadcasts the
  *full* model only when its Jensen-Shannon distance from the last
  broadcast model exceeds a threshold, which saves messages while the
  underlying distribution is stationary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Mapping

import numpy as np

from repro import obs
from repro._exceptions import ParameterError
from repro._rng import resolve_rng
from repro._validation import require_fraction, require_positive_int
from repro.core.bandwidth import scott_bandwidths
from repro.core.divergence import model_js_divergence
from repro.core.estimator import KernelDensityEstimator
from repro.core.kernels import EPANECHNIKOV, Kernel
from repro.core.mdef import MDEFOutlierDetector, MDEFSpec
from repro.detectors._state import ChildStalenessTracker, StreamModelState
from repro.detectors.d3 import expected_parent_arrival_window
from repro.network.messages import Message, ModelUpdate, ValueForward
from repro.network.node import Detection, DetectionLog, Outgoing
from repro.network.topology import Hierarchy

__all__ = ["MGDDConfig", "MGDDLeafNode", "MGDDLeaderNode", "build_mgdd_network"]


@dataclass(frozen=True)
class MGDDConfig:
    """Parameters of an MGDD deployment (defaults follow Section 10.2)."""

    spec: MDEFSpec
    window_size: int = 10_000
    sample_size: int = 500           # |R| = 0.05 |W| by default
    sample_fraction: float = 0.5     # f
    epsilon: float = 0.2
    warmup: int | None = None
    model_refresh: int = 16
    kernel: Kernel = EPANECHNIKOV
    update_policy: "Literal['incremental', 'lazy']" = "incremental"
    #: Lazy policy: re-broadcast when JS(current, last broadcast) exceeds this.
    lazy_threshold: float = 0.05
    #: Lazy policy: check the divergence once per this many sample changes.
    lazy_check_every: int = 16
    #: Global-window semantics, as in :class:`~repro.detectors.d3.D3Config`:
    #: "fixed" = the most recent |W| values across all sensors;
    #: "union" = the union of all leaf windows.
    parent_window: str = "fixed"
    #: Cap on the global model's kernel bandwidth.  MDEF probes density
    #: contrast at the counting-radius scale; Scott's rule driven by the
    #: *global* sigma oversmooths multimodal data far beyond that scale
    #: and erases exactly the voids MDEF looks for.  None = auto
    #: (2 x counting_radius); pass math.inf to disable.
    bandwidth_cap: "float | None" = None
    #: How intermediate leaders forward received samples upward:
    #: "bernoulli" -- with probability f, unconditionally (matches the
    #: paper's Section 8.1 description and its (f l)^n update
    #: accounting, and reproduces Figure 11's MGDD curve);
    #: "inclusion" -- only when the value also enters the leader's own
    #: chain sample (the literal reading of Figure 4's pseudocode).
    relay_policy: "Literal['bernoulli', 'inclusion']" = "bernoulli"
    #: The hierarchy level whose leaders own the reference model
    #: (Example 1: "we can choose to identify outliers at any level of
    #: detail").  None (default) = the top-level leader, i.e. one global
    #: model for the whole network; a smaller level makes each leader of
    #: that tier broadcast a *regional* model to its own subtree, so
    #: leaves judge deviations against their region instead.
    model_level: "int | None" = None
    #: Fault tolerance (docs/FAULT_MODEL.md): leaders exclude children
    #: silent for more than this many ticks from the global window-size
    #: scaling, and leaves stop trusting a mirrored global model whose
    #: last update is older than this (detection pauses rather than
    #: flagging against a reference the network can no longer refresh).
    #: None (default) disables both -- fault-free behaviour is identical.
    staleness_horizon: "int | None" = None

    def __post_init__(self) -> None:
        require_positive_int("window_size", self.window_size)
        require_positive_int("sample_size", self.sample_size)
        require_fraction("sample_fraction", self.sample_fraction)
        if self.sample_size > self.window_size:
            raise ParameterError("sample_size cannot exceed window_size")
        if self.update_policy not in ("incremental", "lazy"):
            raise ParameterError(
                f"update_policy must be 'incremental' or 'lazy', "
                f"got {self.update_policy!r}")
        require_fraction("lazy_threshold", self.lazy_threshold)
        require_positive_int("lazy_check_every", self.lazy_check_every)
        if self.parent_window not in ("fixed", "union"):
            raise ParameterError(
                f"parent_window must be 'fixed' or 'union', "
                f"got {self.parent_window!r}")
        if self.relay_policy not in ("bernoulli", "inclusion"):
            raise ParameterError(
                f"relay_policy must be 'bernoulli' or 'inclusion', "
                f"got {self.relay_policy!r}")
        if self.staleness_horizon is not None:
            require_positive_int("staleness_horizon", self.staleness_horizon)

    @property
    def effective_warmup(self) -> int:
        """Ticks before leaves start flagging (defaults to a full window)."""
        return self.window_size if self.warmup is None else self.warmup

    @property
    def effective_bandwidth_cap(self) -> float:
        """The bandwidth cap actually applied to the global model."""
        if self.bandwidth_cap is None:
            return 2.0 * self.spec.counting_radius
        return self.bandwidth_cap


class _GlobalModelCopy:
    """A leaf's mirror of the root's kernel sample and stddev (R_g, sigma_g)."""

    def __init__(self, sample_size: int, n_dims: int, kernel: Kernel,
                 bandwidth_cap: float) -> None:
        self._values = np.zeros((sample_size, n_dims))
        self._filled = np.zeros(sample_size, dtype=bool)
        self._stddev = np.zeros(n_dims)
        self._window_size = 1
        self._kernel = kernel
        self._bandwidth_cap = bandwidth_cap
        self._cached: KernelDensityEstimator | None = None
        self._model_seq = 0

    @property
    def model_seq(self) -> int:
        """Monotone merge counter: updates applied to this mirror.

        Observational only (never read by the decision path) -- it lets
        a detection cite which model version it was judged against.
        """
        return self._model_seq

    def apply(self, update: ModelUpdate) -> None:
        """Apply an incremental or full update; invalidate the cache."""
        if update.full_sample is not None:
            full = np.asarray(update.full_sample, dtype=float)
            n = min(full.shape[0], self._values.shape[0])
            self._values[:n] = full[:n]
            self._filled[:n] = True
        if update.value is not None:
            for slot in update.slots:
                if 0 <= slot < self._values.shape[0]:
                    self._values[slot] = update.value
                    self._filled[slot] = True
        self._stddev = np.asarray(update.stddev, dtype=float)
        if update.window_size > 0:
            self._window_size = update.window_size
        self._cached = None
        self._model_seq += 1

    def model(self) -> "KernelDensityEstimator | None":
        """The mirrored global model, or None while too sparse."""
        n_filled = int(self._filled.sum())
        if n_filled < max(2, self._values.shape[0] // 2):
            return None
        if self._cached is None:
            sample = self._values[self._filled]
            bandwidths = np.minimum(
                scott_bandwidths(self._stddev, sample.shape[0], sample.shape[1]),
                self._bandwidth_cap)
            self._cached = KernelDensityEstimator(
                sample, bandwidths=bandwidths,
                kernel=self._kernel, window_size=self._window_size)
        return self._cached

    def memory_words(self) -> int:
        """Footprint of the mirrored sample + stddev, in words."""
        return int(self._values.size) + int(self._stddev.size)


class MGDDLeafNode:
    """LeafProcess of the MGDD algorithm (Figure 4, right column)."""

    def __init__(self, node_id: int, parent: "int | None",
                 config: MGDDConfig, n_dims: int, log: DetectionLog,
                 rng: np.random.Generator) -> None:
        self.node_id = node_id
        self._parent = parent
        self._config = config
        self._log = log
        self._rng = rng
        # Forward gates draw from a dedicated substream so the batched
        # and per-tick ingestion paths consume it in the same order
        # (spawned, so the node's own generator is not advanced).
        try:
            self._forward_rng = rng.spawn(1)[0]
        except (AttributeError, TypeError):
            self._forward_rng = np.random.default_rng(
                int(rng.integers(2**63)))
        # Local sample/sketch: maintained for upward propagation (and for
        # the faulty-sensor application), not for local detection.
        self._state = StreamModelState(
            config.window_size, config.sample_size, n_dims,
            epsilon=config.epsilon, model_refresh=config.model_refresh,
            kernel=config.kernel, rng=rng)
        self._global = _GlobalModelCopy(config.sample_size, n_dims, config.kernel,
                                        config.effective_bandwidth_cap)
        # Epoch readings staged by on_readings, consumed by on_tick_start
        # (MGDD detection must stay per-tick: the global-model copy
        # changes under mid-epoch ModelUpdate messages).
        self._epoch_values: "np.ndarray | None" = None
        self._epoch_start = 0
        self._last_update_tick: "int | None" = None
        self.flagged_ticks: "list[int]" = []

    @property
    def state(self) -> StreamModelState:
        """Local estimator state (for memory accounting / faulty-sensor app)."""
        return self._state

    @property
    def global_copy(self) -> _GlobalModelCopy:
        """The leaf's mirror of the global model."""
        return self._global

    def on_reading(self, value: np.ndarray, tick: int) -> "list[Outgoing]":
        """MGDD LeafProcess lines 10-14: propagate up, detect globally."""
        out: "list[Outgoing]" = []
        changed = self._state.observe(value)
        if changed and self._parent is not None \
                and self._forward_rng.random() < self._config.sample_fraction:
            out.append((self._parent, ValueForward(value=np.array(value, dtype=float))))
        if tick >= self._config.effective_warmup:
            self._detect(value, tick)
        return out

    def on_readings(self, values: np.ndarray,
                    start_tick: int) -> "list[list[Outgoing]]":
        """Ingest an epoch at once; stage detection for :meth:`on_tick_start`.

        The local sample/sketch are fed through the vectorised batch path
        (bit-identical to per-tick :meth:`on_reading` ingestion) and the
        upward forwards are returned per tick.  Detection itself cannot
        be batched here: each tick's check runs against the global-model
        copy *as of that tick*, which mid-epoch ``ModelUpdate`` floods
        keep changing -- so the readings are staged and checked one tick
        at a time by :meth:`on_tick_start`.
        """
        vals = np.asarray(values, dtype=float)
        if vals.ndim == 1:
            vals = vals.reshape(-1, 1)
        n = vals.shape[0]
        per_tick: "list[list[Outgoing]]" = [[] for _ in range(n)]
        changed = self._state.observe_many(vals)
        if self._parent is not None:
            fraction = self._config.sample_fraction
            for j, slots in enumerate(changed):
                if slots and self._forward_rng.random() < fraction:
                    per_tick[j].append((self._parent, ValueForward(
                        value=vals[j].copy())))
        self._epoch_values = vals
        self._epoch_start = start_tick
        return per_tick

    def on_tick_start(self, tick: int) -> "list[Outgoing]":
        """Run the staged detection for ``tick`` against the current copy."""
        if self._epoch_values is None or tick < self._config.effective_warmup:
            return []
        idx = tick - self._epoch_start
        if 0 <= idx < self._epoch_values.shape[0]:
            self._detect(self._epoch_values[idx], tick)
        return []

    def model_staleness(self, tick: int) -> int:
        """Ticks since the last ModelUpdate (never = ``tick + 1``)."""
        if self._last_update_tick is None:
            return tick + 1
        return tick - self._last_update_tick

    def _detect(self, value: np.ndarray, tick: int) -> None:
        """Check one reading against the global-model copy; log on flag."""
        horizon = self._config.staleness_horizon
        if horizon is not None and self.model_staleness(tick) > horizon:
            # The mirrored reference is too old to trust: the path to
            # the model source has been down longer than the horizon.
            # Pausing beats flagging against a frozen distribution.
            if obs.ACTIVE:
                obs.emit("detector.pause", node=self.node_id, tick=tick)
            return
        model = self._global.model()
        if model is not None:
            detector = MDEFOutlierDetector(model, self._config.spec)
            decision = detector.check(value)
            if decision.is_outlier:
                self._log.record(
                    Detection(
                        tick=tick, node_id=self.node_id, level=1,
                        origin=self.node_id,
                        value=np.array(value, dtype=float)),
                    prob=float(decision.mdef),
                    threshold=float(
                        self._config.spec.k_sigma * decision.sigma_mdef),
                    model_seq=self._global.model_seq,
                    staleness=self.model_staleness(tick))
                self.flagged_ticks.append(tick)

    def on_message(self, message: Message, sender: int,
                   tick: int) -> "list[Outgoing]":
        """MGDD LeafProcess lines 15-16: apply global-model updates."""
        if isinstance(message, ModelUpdate):
            self._global.apply(message)
            self._last_update_tick = tick
            if obs.ACTIVE:
                obs.emit("lineage.model_merge", node=self.node_id,
                         tick=tick, model_seq=self._global.model_seq)
        return []


class MGDDLeaderNode:
    """ParentProcess of the MGDD algorithm (Figure 4, lines 18-24).

    Intermediate leaders relay samples up and updates down; the leader
    owning the reference model for its subtree (the top-level leader by
    default, or every leader of ``config.model_level`` for regional
    models) additionally maintains that model's sample and decides when
    to send updates.
    """

    def __init__(self, node_id: int, parent: "int | None",
                 children: "tuple[int, ...]", n_children: int,
                 n_leaves_region: int, config: MGDDConfig, n_dims: int,
                 rng: np.random.Generator,
                 is_model_source: "bool | None" = None,
                 children_leaf_counts: "Mapping[int, int] | None" = None) -> None:
        self.node_id = node_id
        self._parent = parent
        self._children = children
        self._config = config
        self._rng = rng
        self._n_leaves_region = n_leaves_region
        self._staleness = ChildStalenessTracker(children_leaf_counts)
        arrival_window = expected_parent_arrival_window(n_children, _as_d3_like(config))
        self._state = StreamModelState(
            arrival_window, config.sample_size, n_dims,
            epsilon=config.epsilon, model_refresh=config.model_refresh,
            kernel=config.kernel, rng=rng)
        if is_model_source is None:
            is_model_source = parent is None
        self._is_model_source = is_model_source
        # Lazy policy bookkeeping (model sources only).
        self._changes_since_check = 0
        self._last_broadcast: KernelDensityEstimator | None = None
        #: Count of model-update floods initiated (sources only).
        self.updates_sent = 0

    @property
    def state(self) -> StreamModelState:
        """The leader's estimator state."""
        return self._state

    def on_reading(self, value: np.ndarray, tick: int) -> "list[Outgoing]":
        """Leaders have no sensor stream of their own in this deployment."""
        return []

    # ------------------------------------------------------------------

    def child_staleness(self, tick: int) -> "dict[int, int]":
        """Ticks since each direct child was last heard from."""
        return self._staleness.staleness(tick)

    def _active_leaves(self, tick: int) -> int:
        """Leaves feeding this region, per the staleness horizon."""
        horizon = self._config.staleness_horizon
        if horizon is None:
            return self._n_leaves_region
        return max(1, self._staleness.active_leaf_count(tick, horizon))

    def _global_window_size(self, tick: int) -> int:
        leaves = self._active_leaves(tick)
        if self._config.parent_window == "fixed":
            return min((tick + 1) * leaves, self._config.window_size)
        return min(tick + 1, self._config.window_size) * leaves

    def _broadcast_incremental(self, changed: "tuple[int, ...]",
                               value: np.ndarray, tick: int) -> "list[Outgoing]":
        update = ModelUpdate(
            stddev=self._state.sketch.std(), slots=changed,
            value=np.array(value, dtype=float),
            window_size=self._global_window_size(tick))
        self.updates_sent += 1
        if obs.ACTIVE:
            obs.emit("detector.model_update", node=self.node_id,
                     policy="incremental", full=False, tick=tick)
        return [(child, update) for child in self._children]

    def _maybe_broadcast_lazy(self, tick: int) -> "list[Outgoing]":
        self._changes_since_check += 1
        if self._changes_since_check < self._config.lazy_check_every:
            return []
        self._changes_since_check = 0
        current = self._state.model()
        if current is None:
            return []
        if self._last_broadcast is not None:
            distance = model_js_divergence(current, self._last_broadcast)
            if distance <= self._config.lazy_threshold:
                return []
        self._last_broadcast = current
        update = ModelUpdate(
            stddev=self._state.sketch.std(),
            full_sample=current.sample.copy(),
            window_size=self._global_window_size(tick))
        self.updates_sent += 1
        if obs.ACTIVE:
            obs.emit("detector.model_update", node=self.node_id,
                     policy="lazy", full=True, tick=tick)
        return [(child, update) for child in self._children]

    def on_message(self, message: Message, sender: int,
                   tick: int) -> "list[Outgoing]":
        """Relay samples upward; originate/relay model updates downward."""
        out: "list[Outgoing]" = []
        if isinstance(message, ValueForward):
            self._staleness.mark(sender, tick)   # upward traffic = alive
            changed = self._state.observe(message.value)
            if self._is_model_source:
                self._state.count_window_size = self._global_window_size(tick)
                if changed:
                    if self._config.update_policy == "incremental":
                        out.extend(self._broadcast_incremental(
                            changed, message.value, tick))
                    else:
                        out.extend(self._maybe_broadcast_lazy(tick))
            elif self._parent is not None:
                gate = True if self._config.relay_policy == "bernoulli" \
                    else bool(changed)
                if gate and self._rng.random() < self._config.sample_fraction:
                    out.append((self._parent, message))
        elif isinstance(message, ModelUpdate):
            # Flood the update toward the leaves.
            out.extend((child, message) for child in self._children)
        return out


def _as_d3_like(config: MGDDConfig):
    """Adapter: reuse the D3 arrival-rate derivation for MGDD leaders."""
    from repro.core.outliers import DistanceOutlierSpec
    from repro.detectors.d3 import D3Config
    return D3Config(
        spec=DistanceOutlierSpec(radius=1e-3, count_threshold=1.0),
        window_size=config.window_size, sample_size=config.sample_size,
        sample_fraction=config.sample_fraction,
        parent_window=config.parent_window)


@dataclass
class MGDDNetwork:
    """The node behaviours plus the shared detection log of an MGDD deployment."""

    nodes: "dict[int, MGDDLeafNode | MGDDLeaderNode]"
    log: DetectionLog = field(default_factory=DetectionLog)

    @property
    def root(self) -> MGDDLeaderNode:
        """The top-level leader."""
        for node in self.nodes.values():
            if isinstance(node, MGDDLeaderNode) and node._parent is None:
                return node
        raise ParameterError("network has no root leader")

    @property
    def model_sources(self) -> "list[MGDDLeaderNode]":
        """The leaders that own and broadcast a reference model."""
        return [node for node in self.nodes.values()
                if isinstance(node, MGDDLeaderNode) and node._is_model_source]


def build_mgdd_network(hierarchy: Hierarchy, config: MGDDConfig, n_dims: int, *,
                       rng: np.random.Generator | None = None) -> MGDDNetwork:
    """Instantiate MGDD behaviours for every node of ``hierarchy``.

    With ``config.model_level`` set, every leader of that tier owns the
    reference model for its subtree (regional detection); by default the
    single top-level leader owns one global model.
    """
    root_rng = resolve_rng(rng)
    log = DetectionLog(n_levels=hierarchy.n_levels)
    source_level = config.model_level if config.model_level is not None \
        else hierarchy.n_levels
    if not 2 <= source_level <= hierarchy.n_levels:
        raise ParameterError(
            f"model_level must be a leader tier in "
            f"[2, {hierarchy.n_levels}], got {source_level}")
    nodes: "dict[int, MGDDLeafNode | MGDDLeaderNode]" = {}
    for level_idx, tier in enumerate(hierarchy.levels):
        for node_id in tier:
            child_rng = np.random.default_rng(root_rng.integers(2**63))
            parent = hierarchy.parent_of(node_id)
            if level_idx == 0:
                nodes[node_id] = MGDDLeafNode(
                    node_id, parent, config, n_dims, log, child_rng)
            else:
                children = hierarchy.children_of(node_id)
                nodes[node_id] = MGDDLeaderNode(
                    node_id, parent, children,
                    n_children=len(children),
                    n_leaves_region=len(hierarchy.leaves_under(node_id)),
                    config=config, n_dims=n_dims, rng=child_rng,
                    is_model_source=(level_idx + 1 == source_level),
                    children_leaf_counts={
                        child: len(hierarchy.leaves_under(child))
                        for child in children})
    return MGDDNetwork(nodes=nodes, log=log)
