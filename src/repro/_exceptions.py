"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ParameterError(ReproError, ValueError):
    """An argument value is outside its documented domain.

    Raised eagerly at construction/call time so that misconfigured
    experiments fail before any (potentially long) simulation starts.
    """


class EmptyModelError(ReproError, ValueError):
    """A density model was requested from zero observations.

    Kernel estimators and histograms refuse to silently return NaN
    densities; callers must wait until at least one value has been seen.
    """


class TopologyError(ReproError, ValueError):
    """A sensor-network hierarchy specification is inconsistent."""


class SimulationError(ReproError, RuntimeError):
    """The network simulator reached an inconsistent state."""
