"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ParameterError(ReproError, ValueError):
    """An argument value is outside its documented domain.

    Raised eagerly at construction/call time so that misconfigured
    experiments fail before any (potentially long) simulation starts.
    """


class EmptyModelError(ReproError, ValueError):
    """A density model was requested from zero observations.

    Kernel estimators and histograms refuse to silently return NaN
    densities; callers must wait until at least one value has been seen.
    """


class TopologyError(ReproError, ValueError):
    """A sensor-network hierarchy specification is inconsistent."""


class SimulationError(ReproError, RuntimeError):
    """The network simulator reached an inconsistent state."""


class SnapshotError(ReproError, ValueError):
    """A state snapshot could not be encoded, decoded or verified.

    Raised by the :mod:`repro.engine.snapshot` codec on schema-version
    mismatches, checksum failures, truncated payloads and attempts to
    snapshot or restore an unregistered class.
    """


class RecoveryError(ReproError, RuntimeError):
    """Crash recovery failed after exhausting its retry budget.

    Raised by :class:`repro.engine.supervisor.SupervisedEngine` when no
    checkpoint (including the empty-state fallback) yields a live engine
    within the configured ``max_restarts``.
    """
