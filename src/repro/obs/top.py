"""``repro top``: a periodically-refreshing per-node live view.

Runs a simulation in refresh-sized steps (``NetworkSimulator.run`` is
incremental) with tracing on, and after each step renders a table with
one row per node: current tick, window fill, health score, probe drift,
message send/deliver counters, and flag count plus worst event-time ->
flag latency.  The message counters come from an
*incremental* scan of the tracer ring -- only events with ``seq`` beyond
the last frame's high-water mark are folded in, so a frame costs O(new
events), not O(trace).

Everything here is presentation: the numbers are exactly the ones
:class:`~repro.obs.health.HealthMonitor` and the ``message.*`` trace
events already expose.  The renderer writes plain text frames to any
file object, so tests drive it headless with ``io.StringIO``.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

import numpy as np

from repro import obs
from repro.core.outliers import DistanceOutlierSpec
from repro.data.streams import StreamSet
from repro.data.synthetic import make_drift_streams, make_mixture_streams
from repro.detectors.d3 import D3Config, build_d3_network
from repro.network.simulator import NetworkSimulator
from repro.network.topology import build_hierarchy
from repro.obs.health import HealthMonitor
from repro._exceptions import ParameterError

__all__ = ["build_workload", "TopView", "replay_top", "run_top"]

#: ANSI clear-screen + cursor-home, used between interactive frames.
_CLEAR = "\x1b[2J\x1b[H"


def build_workload(*, n_leaves: int = 8, branching: int = 4,
                   window_size: int = 300, n_ticks: int = 600,
                   seed: int = 7, dataset: str = "synthetic",
                   ) -> "tuple[NetworkSimulator, dict[int, object], object]":
    """A D3 deployment for the live view: (simulator, nodes, hierarchy).

    Mirrors the ``repro profile`` workload so ``repro top`` watches the
    same kind of run the other tooling measures.  ``dataset`` is
    ``"synthetic"`` (stationary mixture) or ``"drift"`` (mean shift at
    mid-stream, so drift scores visibly move).
    """
    if dataset == "synthetic":
        arrays = make_mixture_streams(n_leaves, n_ticks, seed=seed)
    elif dataset == "drift":
        arrays = make_drift_streams(n_leaves, n_ticks, seed=seed)
    else:
        raise ParameterError(
            f"dataset must be 'synthetic' or 'drift', got {dataset!r}")
    hierarchy = build_hierarchy(n_leaves, min(branching, n_leaves))
    config = D3Config(
        spec=DistanceOutlierSpec(radius=0.01, count_threshold=5),
        window_size=window_size, sample_size=max(10, window_size // 10),
        sample_fraction=0.5, warmup=window_size)
    streams = StreamSet.from_arrays(arrays)
    network = build_d3_network(hierarchy, config, 1,
                               rng=np.random.default_rng(seed))
    simulator = NetworkSimulator(hierarchy, network.nodes, streams)
    return simulator, network.nodes, hierarchy


class TopView:
    """Incremental per-node table renderer over the tracer ring."""

    def __init__(self, nodes: "dict[int, object]",
                 monitor: HealthMonitor) -> None:
        self._nodes = nodes
        self._monitor = monitor
        self._last_seq = -1
        self._sent: "dict[int, int]" = {}
        self._received: "dict[int, int]" = {}
        self._flags: "dict[int, int]" = {}
        self._latency_max: "dict[int, int]" = {}
        self._frames = 0

    @property
    def n_frames(self) -> int:
        """Frames rendered so far."""
        return self._frames

    def absorb_events(self) -> int:
        """Fold tracer events newer than the last frame; returns count."""
        absorbed = 0
        for record in obs.tracer().events():
            seq = record["seq"]
            assert isinstance(seq, int)
            if seq <= self._last_seq:
                continue
            self._last_seq = seq
            absorbed += 1
            kind = record.get("event")
            if kind == "message.send":
                sender = record.get("sender")
                if isinstance(sender, int):
                    self._sent[sender] = self._sent.get(sender, 0) + 1
            elif kind == "message.deliver":
                dest = record.get("dest")
                if isinstance(dest, int):
                    self._received[dest] = self._received.get(dest, 0) + 1
            elif kind == "detector.flag":
                node = record.get("node")
                if isinstance(node, int):
                    self._flags[node] = self._flags.get(node, 0) + 1
                    latency = record.get("latency")
                    if isinstance(latency, int) and not isinstance(
                            latency, bool):
                        previous = self._latency_max.get(node)
                        if previous is None or latency > previous:
                            self._latency_max[node] = latency
        return absorbed

    def render(self, tick: int) -> str:
        """One table frame: header line + one row per monitored node."""
        self.absorb_events()
        reports = self._monitor.last_reports()
        rows = [("node", "fill", "score", "drift", "sent", "recv",
                 "flags", "lat", "violations")]
        for node_id in sorted(self._nodes):
            report = reports.get(node_id)
            if report is None:
                continue
            drift = "-" if report.drift_linf is None \
                else f"{report.drift_linf:.3f}"
            latency = self._latency_max.get(node_id)
            rows.append((
                str(node_id), f"{report.sample_fill:.2f}",
                f"{report.score:.2f}", drift,
                str(self._sent.get(node_id, 0)),
                str(self._received.get(node_id, 0)),
                str(self._flags.get(node_id, 0)),
                "-" if latency is None else str(latency),
                ",".join(report.violations) or "-"))
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(rows[0]))]
        lines = [f"repro top  tick={tick}  nodes={len(rows) - 1}  "
                 f"events={obs.tracer().n_emitted}"]
        for j, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(widths[i]) if i else
                                   cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
            if j == 0:
                lines.append("  ".join("-" * w for w in widths))
        self._frames += 1
        return "\n".join(lines)


class _TraceTopView:
    """Per-node roll-up folded from recorded (possibly merged) events."""

    def __init__(self) -> None:
        self.sent: "dict[int, int]" = {}
        self.received: "dict[int, int]" = {}
        self.flags: "dict[int, int]" = {}
        self.latency_max: "dict[int, int]" = {}
        self.workers: "dict[int, set[int]]" = {}
        self.n_events = 0

    def absorb(self, record: "dict[str, object]") -> None:
        self.n_events += 1
        kind = record.get("event")
        node: "object | None" = None
        if kind == "message.send":
            node = record.get("sender")
            if isinstance(node, int) and not isinstance(node, bool):
                self.sent[node] = self.sent.get(node, 0) + 1
        elif kind == "message.deliver":
            node = record.get("dest")
            if isinstance(node, int) and not isinstance(node, bool):
                self.received[node] = self.received.get(node, 0) + 1
        elif kind == "detector.flag":
            node = record.get("node")
            if isinstance(node, int) and not isinstance(node, bool):
                self.flags[node] = self.flags.get(node, 0) + 1
                latency = record.get("latency")
                if isinstance(latency, int) and not isinstance(
                        latency, bool):
                    previous = self.latency_max.get(node)
                    if previous is None or latency > previous:
                        self.latency_max[node] = latency
        if isinstance(node, int) and not isinstance(node, bool):
            worker = record.get("worker_id")
            if isinstance(worker, int) and not isinstance(worker, bool):
                self.workers.setdefault(node, set()).add(worker)

    def render(self, tick: int, *, title: str) -> str:
        rows = [("node", "workers", "sent", "recv", "flags", "lat")]
        nodes = sorted(set(self.sent) | set(self.received)
                       | set(self.flags))
        for node_id in nodes:
            latency = self.latency_max.get(node_id)
            workers = self.workers.get(node_id)
            rows.append((
                str(node_id),
                ",".join(str(w) for w in sorted(workers))
                if workers else "-",
                str(self.sent.get(node_id, 0)),
                str(self.received.get(node_id, 0)),
                str(self.flags.get(node_id, 0)),
                "-" if latency is None else str(latency)))
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(rows[0]))]
        lines = [f"{title}  tick={tick}  nodes={len(rows) - 1}  "
                 f"events={self.n_events}"]
        for j, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(widths[i]) if i else
                                   cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
            if j == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


def replay_top(trace: str, *, refresh_every: int = 50,
               interval_s: float = 0.0, out: "TextIO | None" = None,
               clear: bool = False) -> "dict[str, object]":
    """``repro top --trace``: replay a recorded trace as fleet frames.

    ``trace`` is anything :func:`repro.obs.distributed.load_trace`
    accepts -- a plain JSONL trace, one worker spool, or a run
    directory of spools (merged on the fly).  Events are folded in
    order and a frame is rendered whenever the high-water tick crosses
    the next ``refresh_every`` boundary, so the replay paces like the
    live view did; a ``workers`` column shows which worker ids each
    node's events came from (merged multi-worker traces only).  The
    summary dict carries the distributed meta -- worker ids, per-worker
    ring drops, torn spools -- alongside frames/final tick.
    """
    from repro.obs.distributed import load_trace_meta

    if refresh_every < 1:
        raise ParameterError(
            f"refresh_every must be >= 1, got {refresh_every}")
    sink = out if out is not None else sys.stdout
    events, meta = load_trace_meta(trace)
    view = _TraceTopView()
    frames = 0
    high_water = -1
    boundary = refresh_every

    def flush_frame(tick: int) -> None:
        nonlocal frames
        frame = view.render(tick, title="repro top (replay)")
        if clear:
            sink.write(_CLEAR)
        sink.write(frame + "\n")
        if not clear:
            sink.write("\n")
        sink.flush()
        frames += 1
        if interval_s > 0:
            time.sleep(interval_s)

    for record in events:
        tick = record.get("tick")
        if isinstance(tick, int) and not isinstance(tick, bool) \
                and tick > high_water:
            high_water = tick
            while high_water >= boundary:
                flush_frame(boundary - 1)
                boundary += refresh_every
        view.absorb(record)
    flush_frame(max(high_water, 0))
    return {
        "frames": frames,
        "final_tick": max(high_water, 0),
        "n_events": len(events),
        "meta": meta,
    }


def run_top(*, n_leaves: int = 8, window_size: int = 300,
            n_ticks: int = 600, refresh_every: int = 50,
            interval_s: float = 0.0, seed: int = 7,
            dataset: str = "synthetic",
            out: "TextIO | None" = None, clear: bool = False,
            ) -> "dict[str, object]":
    """Drive a traced run, rendering a frame every ``refresh_every`` ticks.

    ``interval_s`` sleeps between frames (0 for tests/CI); ``clear``
    prepends an ANSI clear-screen so an interactive terminal shows a
    refreshing dashboard rather than a scroll.  Returns a summary dict
    (frames rendered, final tick, health roll-up).
    """
    if refresh_every < 1:
        raise ParameterError(
            f"refresh_every must be >= 1, got {refresh_every}")
    sink = out if out is not None else sys.stdout
    simulator, nodes, hierarchy = build_workload(
        n_leaves=n_leaves, window_size=window_size, n_ticks=n_ticks,
        seed=seed, dataset=dataset)
    obs.reset()
    with obs.enabled():
        monitor = HealthMonitor(nodes, hierarchy, probe_seed=seed)
        view = TopView(nodes, monitor)
        done = 0
        while done < n_ticks:
            chunk = min(refresh_every, n_ticks - done)
            simulator.run(chunk)
            done += chunk
            monitor.check(done - 1)
            frame = view.render(done - 1)
            if clear:
                sink.write(_CLEAR)
            sink.write(frame + "\n")
            if not clear:
                sink.write("\n")
            sink.flush()
            if interval_s > 0:
                time.sleep(interval_s)
        summary = {
            "frames": view.n_frames,
            "final_tick": done - 1,
            "n_events": obs.tracer().n_emitted,
            "health": monitor.summary(),
        }
    obs.reset()
    return summary
