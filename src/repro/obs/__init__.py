"""Opt-in observability: tracing, metrics and profiling (``repro.obs``).

Mirrors the :mod:`repro._sanitize` pattern: a module-level ``ACTIVE``
flag, initialised from the ``REPRO_TRACE`` environment variable, gates
every instrumentation site behind a single attribute check::

    from repro import obs
    ...
    if obs.ACTIVE:
        obs.emit("message.send", kind=kind, sender=s, dest=d, words=w)

With the flag off (the default) instrumented code pays one boolean
check per site and allocates nothing, so production benchmarks are
unaffected.  With it on, three singletons collect everything:

* :class:`repro.obs.trace.Tracer` -- hierarchical ``run > tick > node >
  phase`` spans and JSONL events, ring-buffered and optionally streamed
  to a file sink (``REPRO_TRACE_FILE`` or ``activate(trace_path=...)``).
* :class:`repro.obs.metrics.MetricsRegistry` -- named counters, gauges
  and histograms unifying the legacy ``MessageCounter`` /
  ``network_stats`` accounting.
* :class:`repro.obs.profile.PhaseProfiler` -- ``perf_counter`` timers
  over the PR-1 hot paths (batched ingestion, estimator cache rebuilds,
  Theorem 2 sorted-path queries).

Activation, like sanitization, is either ambient (``REPRO_TRACE=1``),
imperative (:func:`activate` / :func:`deactivate`) or scoped
(:func:`enabled`).  :func:`reset` discards all collected state.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               merge_snapshots)
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import DEFAULT_CAPACITY, Tracer

__all__ = [
    "ACTIVE",
    "Counter",
    "DEFAULT_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "Tracer",
    "activate",
    "deactivate",
    "emit",
    "enabled",
    "merge_snapshots",
    "metrics",
    "profiler",
    "reset",
    "snapshot",
    "span",
    "tracer",
]

_ENV_FLAG = "REPRO_TRACE"
_ENV_FILE = "REPRO_TRACE_FILE"
_FALSEY = frozenset({"", "0", "false", "no", "off"})


def _env_active() -> bool:
    """True when ``REPRO_TRACE`` requests ambient tracing."""
    return os.environ.get(_ENV_FLAG, "").strip().lower() not in _FALSEY


#: Module-level switch consulted by every instrumentation site.
ACTIVE: bool = _env_active()

_tracer = Tracer()
_metrics = MetricsRegistry()
_profiler = PhaseProfiler()


def tracer() -> Tracer:
    """The process-wide tracer singleton."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry singleton."""
    return _metrics


def profiler() -> PhaseProfiler:
    """The process-wide phase profiler singleton."""
    return _profiler


def reset() -> None:
    """Discard all collected events, metrics and phase timings."""
    global _tracer, _metrics, _profiler
    _tracer.close_sink()
    _tracer = Tracer()
    _metrics = MetricsRegistry()
    _profiler = PhaseProfiler()


def activate(trace_path: "str | None" = None) -> None:
    """Turn instrumentation on; optionally open a JSONL file sink."""
    global ACTIVE
    if trace_path is not None:
        _tracer.open_sink(trace_path)
    ACTIVE = True


def deactivate() -> None:
    """Turn instrumentation off and close any open file sink."""
    global ACTIVE
    ACTIVE = False
    _tracer.close_sink()


@contextlib.contextmanager
def enabled(trace_path: "str | None" = None) -> "Iterator[None]":
    """Scope with instrumentation on; restores the previous state."""
    global ACTIVE
    previous = ACTIVE
    if trace_path is not None:
        _tracer.open_sink(trace_path)
    ACTIVE = True
    try:
        yield
    finally:
        ACTIVE = previous
        if trace_path is not None:
            _tracer.close_sink()


def emit(event: str, **fields: object) -> "dict[str, object]":
    """Emit one trace event on the singleton tracer."""
    return _tracer.emit(event, **fields)


def span(name: str, **fields: object) -> "contextlib.AbstractContextManager[int]":
    """Open a span on the singleton tracer (context manager)."""
    return _tracer.span(name, **fields)


def snapshot() -> "dict[str, object]":
    """Everything collected so far, as plain data for embedding in JSON."""
    return {
        "n_events": _tracer.n_emitted,
        "n_buffered": len(_tracer.events()),
        "events_by_kind": _tracer.counts_by_kind(),
        "n_ring_dropped": _tracer.n_dropped,
        "ring_dropped_by_kind": _tracer.dropped_by_kind(),
        "metrics": _metrics.snapshot(),
        "profile": _profiler.summary(),
    }


def _open_ambient_sink(path: str) -> None:
    """Open the ``REPRO_TRACE_FILE`` sink; warn instead of failing import.

    A bad ambient path must not make ``import repro`` raise -- the run
    proceeds with in-memory tracing only and a clear warning naming the
    path.
    """
    from repro._exceptions import ParameterError
    try:
        _tracer.open_sink(path)
    except ParameterError as exc:
        import warnings
        warnings.warn(f"{_ENV_FILE}: {exc}; tracing continues in memory "
                      "without a file sink", RuntimeWarning, stacklevel=2)


# Ambient activation may also name a sink file up front.
if ACTIVE:  # pragma: no cover - exercised via subprocess in CI smoke
    _ambient_path = os.environ.get(_ENV_FILE, "").strip()
    if _ambient_path:
        _open_ambient_sink(_ambient_path)
