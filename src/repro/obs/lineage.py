"""Detection lineage: per-reading causal context and provenance records.

A reading is identified by its *origin* (the leaf id that produced it)
and its *reading tick* (the simulator tick it was sampled at) -- both
already exist on :class:`repro.network.messages.OutlierReport`, so no
new ids are minted and nothing perturbs the simulation.
:func:`lineage_fields` extracts that pair from any message that carries
it; the simulator and transport splice the result into their
``message.*`` / ``transport.*`` events so every hop an escalated report
takes is attributable to the reading that caused it.

:func:`reconstruct` inverts the process: given a raw event stream (from
the in-memory ring or a JSONL sink) it rebuilds one
:class:`LineageRecord` per ``detector.flag`` event -- the decision
inputs (estimated probability vs. threshold, model sequence number,
staleness), the event-time -> flag-time latency, the message hops
(including retransmits and parked intervals) and the model merges that
preceded the decision.  ``repro explain`` renders these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["LineageRecord", "lineage_fields", "reading_id",
           "reconstruct"]

#: Event kinds that describe one hop of a message through the network.
_HOP_KINDS = frozenset({"message.send", "message.deliver", "message.drop"})

#: Reliable-transport lifecycle kinds attached to a hop's envelope.
_TRANSPORT_KINDS = frozenset({
    "transport.retransmit", "transport.expire", "transport.park",
    "transport.park_evict", "transport.flush", "transport.sender_crash"})


def reading_id(origin: int, tick: int) -> str:
    """Stable human-readable id for the reading ``(origin, tick)``."""
    return f"r{origin}@{tick}"


def lineage_fields(message: object) -> "dict[str, int]":
    """Causal-context fields for a message, or ``{}``.

    Only :class:`~repro.network.messages.OutlierReport` carries both an
    ``origin`` and a ``tick``; every other message kind has no single
    originating reading and contributes no lineage context.
    """
    origin = getattr(message, "origin", None)
    tick = getattr(message, "tick", None)
    if (isinstance(origin, int) and not isinstance(origin, bool)
            and isinstance(tick, int) and not isinstance(tick, bool)):
        return {"origin": origin, "reading_tick": tick}
    return {}


@dataclass
class LineageRecord:
    """Everything known about one flagged detection."""

    node: int                      # node that recorded the detection
    level: int                     # hierarchy level of that node
    origin: int                    # leaf that produced the reading
    reading_tick: int              # tick the reading was sampled at
    flag_tick: int                 # tick the detection was recorded at
    latency: int                   # flag_tick - reading_tick
    prob: "float | None" = None    # estimated P / MDEF at decision time
    threshold: "float | None" = None
    model_seq: "int | None" = None  # model version used for the decision
    staleness: "int | None" = None  # ticks since last model update
    ingested: bool = False         # lineage.ingest seen for the reading
    hops: "list[dict[str, Any]]" = field(default_factory=list)
    transport: "list[dict[str, Any]]" = field(default_factory=list)
    model_merges: "list[dict[str, Any]]" = field(default_factory=list)

    @property
    def reading(self) -> str:
        return reading_id(self.origin, self.reading_tick)

    @property
    def complete(self) -> bool:
        """True when every decision input the tentpole promises is set."""
        return (self.prob is not None and self.threshold is not None
                and self.model_seq is not None and self.latency >= 0)

    @property
    def n_delivered(self) -> int:
        return sum(1 for hop in self.hops
                   if hop.get("event") == "message.deliver")

    @property
    def n_retransmits(self) -> int:
        return sum(1 for ev in self.transport
                   if ev.get("event") == "transport.retransmit")

    @property
    def parked_ticks(self) -> "int | None":
        """Ticks a hop spent parked for a crashed receiver, if any."""
        parked = [ev.get("tick") for ev in self.transport
                  if ev.get("event") == "transport.park"]
        flushed = [ev.get("tick") for ev in self.transport
                   if ev.get("event") == "transport.flush"]
        if not parked or not flushed:
            return None
        pairs = [(p, f) for p in parked for f in flushed
                 if isinstance(p, int) and isinstance(f, int) and f >= p]
        if not pairs:
            return None
        return max(f - p for p, f in pairs)


def _record_for_flag(flag: "Mapping[str, Any]") -> LineageRecord:
    reading_tick = flag.get("reading_tick", flag.get("tick"))
    flag_tick = flag.get("flag_tick", reading_tick)
    latency = flag.get("latency")
    if not isinstance(latency, int) or isinstance(latency, bool):
        latency = int(flag_tick) - int(reading_tick)
    prob = flag.get("prob")
    threshold = flag.get("threshold")
    return LineageRecord(
        node=int(flag["node"]), level=int(flag["level"]),
        origin=int(flag["origin"]), reading_tick=int(reading_tick),
        flag_tick=int(flag_tick), latency=latency,
        prob=float(prob) if prob is not None else None,
        threshold=float(threshold) if threshold is not None else None,
        model_seq=flag.get("model_seq"), staleness=flag.get("staleness"))


def reconstruct(
        events: "list[Mapping[str, Any]]") -> "list[LineageRecord]":
    """One :class:`LineageRecord` per ``detector.flag`` event, in order.

    Hops and transport events are matched to a record by the
    ``(origin, reading_tick)`` context the emitters attached, and only
    events that precede the flag (by ``seq``) are included -- the
    lineage of a decision cannot reference the future.  Model merges
    are matched by the flagging node.
    """
    flags: "list[Mapping[str, Any]]" = []
    hops: "dict[tuple[int, int], list[dict[str, Any]]]" = {}
    transport: "dict[tuple[int, int], list[dict[str, Any]]]" = {}
    merges: "dict[int, list[dict[str, Any]]]" = {}
    ingests: "set[tuple[int, int]]" = set()
    for event in events:
        kind = event.get("event")
        if kind == "detector.flag":
            flags.append(event)
        elif kind == "lineage.ingest":
            ingests.add((int(event["node"]), int(event["tick"])))
        elif kind == "lineage.model_merge":
            merges.setdefault(int(event["node"]), []).append(dict(event))
        elif kind in _HOP_KINDS or kind in _TRANSPORT_KINDS:
            origin = event.get("origin")
            reading_tick = event.get("reading_tick")
            if isinstance(origin, int) and isinstance(reading_tick, int):
                bucket = hops if kind in _HOP_KINDS else transport
                bucket.setdefault((origin, reading_tick), []) \
                    .append(dict(event))

    records: "list[LineageRecord]" = []
    for flag in flags:
        record = _record_for_flag(flag)
        key = (record.origin, record.reading_tick)
        flag_seq = flag.get("seq")
        horizon = flag_seq if isinstance(flag_seq, int) else None

        def _before(ev: "Mapping[str, Any]") -> bool:
            seq = ev.get("seq")
            return (horizon is None or not isinstance(seq, int)
                    or seq < horizon)

        record.ingested = key in ingests
        record.hops = [ev for ev in hops.get(key, []) if _before(ev)]
        record.transport = [ev for ev in transport.get(key, [])
                            if _before(ev)]
        record.model_merges = [ev for ev in merges.get(record.node, [])
                               if _before(ev)]
        records.append(record)
    return records
