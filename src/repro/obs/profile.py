"""Profiling hooks: named-phase wall-clock accumulation.

``perf_counter``-based timers over the hot paths PR 1 optimized --
batched ingestion, estimator cache rebuilds, Theorem 2 sorted-path
range queries -- so a bench regression is attributable to a named phase
rather than "somewhere in the run".  Call sites pay one ``ACTIVE``
check when profiling is off; a :class:`PhaseProfiler` only ever holds
four numbers per phase.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator

__all__ = ["PhaseProfiler"]


class _PhaseStat:
    __slots__ = ("calls", "total_s", "max_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0


class PhaseProfiler:
    """Accumulates call counts and wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self._stats: "dict[str, _PhaseStat]" = {}

    def record(self, phase: str, seconds: float) -> None:
        """Fold one timed call of ``phase`` into its running totals."""
        stat = self._stats.get(phase)
        if stat is None:
            stat = self._stats[phase] = _PhaseStat()
        stat.calls += 1
        stat.total_s += seconds
        if seconds > stat.max_s:
            stat.max_s = seconds

    @contextlib.contextmanager
    def phase(self, name: str) -> "Iterator[None]":
        """Time the enclosed block and record it under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def summary(self) -> "dict[str, dict[str, float]]":
        """Per-phase ``{calls,total_s,mean_s,max_s}``, hottest first."""
        out: "dict[str, dict[str, float]]" = {}
        for name, stat in sorted(self._stats.items(),
                                 key=lambda kv: kv[1].total_s, reverse=True):
            out[name] = {"calls": stat.calls, "total_s": stat.total_s,
                         "mean_s": stat.total_s / stat.calls,
                         "max_s": stat.max_s}
        return out
