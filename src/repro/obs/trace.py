"""Structured tracing: hierarchical spans and JSONL events.

A :class:`Tracer` accumulates event records -- plain dicts -- in a
bounded in-memory ring buffer and, when a file sink is open, appends
each record to a JSONL file as it is emitted.  Spans impose the
``run > tick > node > phase`` hierarchy of docs/OBSERVABILITY.md: every
event carries the id of the innermost open span, so a trace consumer can
attribute any message send or detection decision to the exact tick and
node that produced it.

This module holds mechanism only; the event vocabulary lives in
:mod:`repro.obs.schema` and the module-level on/off switch in
:mod:`repro.obs` itself.  Nothing here imports from the rest of the
package (beyond :mod:`repro._exceptions`), so instrumented modules can
import :mod:`repro.obs` without cycles.
"""

from __future__ import annotations

import contextlib
import json
import time
import warnings
from collections import deque
from typing import Deque, Iterator, TextIO

import numpy as np

from repro._exceptions import ParameterError

__all__ = ["DEFAULT_CAPACITY", "Tracer"]

#: Ring-buffer capacity: old events are discarded past this many.  The
#: file sink, when open, still receives every event.
DEFAULT_CAPACITY = 65_536


def _jsonable(value: object) -> object:
    """JSON fallback for numpy scalars/arrays slipping into event fields."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


class Tracer:
    """Span-structured event recorder with a ring buffer and file sink.

    Events are dicts with four common fields -- ``event`` (kind),
    ``seq`` (monotone emission index), ``t`` (wall-clock seconds) and
    ``span`` (innermost open span id, or None) -- plus the kind-specific
    fields of :mod:`repro.obs.schema`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self._ring: "Deque[dict[str, object]]" = deque(maxlen=capacity)
        self._seq = 0
        self._next_span = 0
        self._stack: "list[int]" = []
        self._sink: "TextIO | None" = None
        self._sink_path: "str | None" = None
        self._dropped_by_kind: "dict[str, int]" = {}

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Ring-buffer capacity in events."""
        return int(self._ring.maxlen or 0)

    @property
    def n_emitted(self) -> int:
        """Events emitted over the tracer's lifetime (sink-complete)."""
        return self._seq

    @property
    def n_dropped(self) -> int:
        """Events the ring buffer has discarded (0 unless it overflowed)."""
        return max(0, self._seq - len(self._ring))

    def dropped_by_kind(self) -> "dict[str, int]":
        """Ring-evicted event counts per ``event`` kind.

        A wrapped ring is a *counted* gap, never a silent one: the kind
        of every evicted record is tallied here, so a trace consumer can
        distinguish "no ``message.send`` events happened" from
        "``message.send`` events were evicted".  The file sink, when
        open, still holds every event regardless.
        """
        return dict(self._dropped_by_kind)

    @property
    def sink_path(self) -> "str | None":
        """Path of the open JSONL sink, or None."""
        return self._sink_path

    def events(self) -> "list[dict[str, object]]":
        """The buffered events, oldest first."""
        return list(self._ring)

    def counts_by_kind(self) -> "dict[str, int]":
        """Buffered event counts per ``event`` kind."""
        counts: "dict[str, int]" = {}
        for record in self._ring:
            kind = str(record["event"])
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    # -- sink ----------------------------------------------------------

    def open_sink(self, path: str, append: bool = False) -> None:
        """Start appending every emitted event to ``path`` as JSONL.

        An unwritable path raises :class:`ParameterError` up front with
        the OS error attached, so a bad ``REPRO_TRACE_FILE`` or
        ``--trace-out`` fails at activation time with a clear message
        instead of crashing mid-run on the first emit.  ``append=True``
        preserves existing content -- the spooled sinks of
        :mod:`repro.obs.distributed` write a provenance header line
        before handing the file to the tracer.
        """
        self.close_sink()
        try:
            self._sink = open(path, "a" if append else "w", encoding="utf-8")
        except OSError as exc:
            raise ParameterError(
                f"cannot open trace sink {path!r}: {exc}") from exc
        self._sink_path = str(path)

    def close_sink(self) -> None:
        """Flush and close the JSONL sink (no-op when none is open)."""
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:
                pass    # the stream is gone either way; tracing goes on
            self._sink = None
            self._sink_path = None

    # -- events and spans ----------------------------------------------

    def current_span(self) -> "int | None":
        """Id of the innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def emit(self, event: str, **fields: object) -> "dict[str, object]":
        """Record one event; returns the stored record."""
        record: "dict[str, object]" = {
            "event": event, "seq": self._seq, "t": time.time(),
            "span": self.current_span()}
        record.update(fields)
        self._seq += 1
        if len(self._ring) == self._ring.maxlen:
            evicted = str(self._ring[0]["event"])
            self._dropped_by_kind[evicted] = (
                self._dropped_by_kind.get(evicted, 0) + 1)
        self._ring.append(record)
        if self._sink is not None:
            try:
                self._sink.write(json.dumps(record, default=_jsonable) + "\n")
            except OSError as exc:
                # A sink dying mid-run (disk full, pipe closed) must not
                # take the traced computation down: drop the sink, keep
                # the ring, warn once.
                path = self._sink_path
                self.close_sink()
                warnings.warn(
                    f"trace sink {path!r} failed mid-run ({exc}); "
                    "sink closed, in-memory tracing continues",
                    RuntimeWarning, stacklevel=2)
        return record

    def open_span(self, name: str, **fields: object) -> int:
        """Open a span; emits ``span_open`` and returns the span id."""
        span_id = self._next_span
        self._next_span += 1
        self.emit("span_open", id=span_id, name=name,
                  parent=self.current_span(), **fields)
        self._stack.append(span_id)
        return span_id

    def close_span(self, span_id: int, **fields: object) -> None:
        """Close a span (and any unclosed children); emits ``span_close``."""
        if span_id in self._stack:
            while self._stack and self._stack[-1] != span_id:
                self._stack.pop()
            self._stack.pop()
        self.emit("span_close", id=span_id, **fields)

    @contextlib.contextmanager
    def span(self, name: str, **fields: object) -> "Iterator[int]":
        """Context manager opening ``name`` and closing it with ``dur_s``."""
        span_id = self.open_span(name, **fields)
        start = time.perf_counter()
        try:
            yield span_id
        finally:
            self.close_span(span_id, dur_s=time.perf_counter() - start)
