"""Metrics registry: counters, gauges and histograms.

One queryable surface unifying the repo's ad-hoc accounting --
``MessageCounter`` per-kind word costs, ``ReliableTransport.stats()``
and the ``network_stats`` dicts the eval harness assembles -- without
changing any of their semantics.  Instrumented code increments named
metrics; :meth:`MetricsRegistry.absorb_message_counter` and
:meth:`MetricsRegistry.absorb_mapping` copy the legacy accounting in at
the end of a run so a single :meth:`MetricsRegistry.snapshot` answers
"what happened".

Snapshots are **mergeable**: :meth:`MetricsRegistry.merge` folds a
snapshot produced in another process into this registry with
order-insensitive, associative rules (counter addition, gauge
last-writer-by-tick, histogram bucket-wise addition), so a fleet of
workers can each ship one snapshot and a coordinator can export the
union -- the per-site-summary/coordinator shape of the Papapetrou et
al. sketch paper, applied to telemetry.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Mapping, TYPE_CHECKING

from repro._exceptions import ParameterError

__all__ = ["BUCKET_BOUNDS", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "merge_snapshots"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.network.messages import MessageCounter

#: Fixed histogram bucket upper bounds (log-spaced, seconds-friendly).
#: Every histogram shares them, which is what makes two histograms'
#: bucket counts addable without resampling; the implicit final bucket
#: is ``+Inf``.
BUCKET_BOUNDS: "tuple[float, ...]" = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


def _number(mapping: "Mapping[str, object]", key: str) -> float:
    """A required numeric field of a snapshot fragment, as float."""
    value = mapping.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ParameterError(
            f"metrics snapshot: field {key!r} must be numeric, "
            f"got {value!r}")
    return float(value)


class Counter:
    """Monotone integer counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n


class Gauge:
    """Last-value-wins float gauge.

    A gauge may optionally carry the simulation ``tick`` at which it was
    last set.  Ticks exist for *merging*: two processes observing the
    same quantity resolve "which writer was last" by tick, not by the
    accident of merge order, so fleet-wide exports are deterministic.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.tick: "int | None" = None

    def set(self, value: float, tick: "int | None" = None) -> None:
        """Record the current level of the tracked quantity."""
        self.value = float(value)
        if tick is not None:
            self.tick = int(tick)

    def merge(self, value: float, tick: "int | None") -> None:
        """Fold another process's last write in: last-writer-by-tick.

        The write with the larger tick wins; an untick'd write never
        beats a tick'd one.  Ties (equal ticks, or both untick'd) keep
        the larger value -- an arbitrary but *order-insensitive* rule,
        so merging N snapshots yields the same gauge whatever the order.
        """
        ours = (-1 if self.tick is None else self.tick, self.value)
        theirs = (-1 if tick is None else int(tick), float(value))
        if theirs > ours:
            self.value = float(value)
            self.tick = None if tick is None else int(tick)


class Histogram:
    """Streaming summary of observed values (count/total/min/max/buckets).

    Deliberately O(1) memory: the hot paths observing into a histogram
    (e.g. ``estimator.range_query.latency``) run millions of times and
    must not accumulate per-observation state.  The fixed
    :data:`BUCKET_BOUNDS` grid (plus an implicit ``+Inf`` overflow
    bucket) adds a constant-size tail distribution that two histograms
    can merge by element-wise addition.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bucket_counts: "list[int]" = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect.bisect_left(BUCKET_BOUNDS, value)] += 1

    def merge_summary(self, summary: "Mapping[str, object]") -> None:
        """Fold another histogram's :meth:`summary` in (bucket-wise add).

        Summaries from an older snapshot without bucket counts merge
        their whole count into the overflow bucket -- lossy on shape but
        conservation-exact on ``count``/``total``.
        """
        count = int(_number(summary, "count"))
        if count == 0:
            return
        self.count += count
        self.total += _number(summary, "total")
        self.min = min(self.min, _number(summary, "min"))
        self.max = max(self.max, _number(summary, "max"))
        theirs = summary.get("bucket_counts")
        if theirs is None:
            self.bucket_counts[-1] += count
            return
        if list(summary.get("bucket_bounds", ())) != list(BUCKET_BOUNDS):
            raise ParameterError(
                f"histogram {self.name!r}: incompatible bucket bounds "
                f"{summary.get('bucket_bounds')!r}")
        if not isinstance(theirs, (list, tuple)) \
                or len(theirs) != len(self.bucket_counts):
            raise ParameterError(
                f"histogram {self.name!r}: malformed bucket_counts")
        for i, n in enumerate(theirs):
            self.bucket_counts[i] += int(n)

    def summary(self) -> "dict[str, object]":
        """count/total/mean/min/max/buckets as a plain dict."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0,
                    "bucket_bounds": list(BUCKET_BOUNDS),
                    "bucket_counts": list(self.bucket_counts)}
        return {"count": self.count, "total": self.total,
                "mean": self.total / self.count,
                "min": self.min, "max": self.max,
                "bucket_bounds": list(BUCKET_BOUNDS),
                "bucket_counts": list(self.bucket_counts)}


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, Histogram]" = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name``, creating it if needed."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name``, creating it if needed."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name``, creating it if needed."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- legacy-accounting absorption ----------------------------------

    def absorb_message_counter(self, counter: "MessageCounter",
                               prefix: str = "messages") -> None:
        """Mirror a ``MessageCounter``'s per-kind totals as counters.

        Word-cost semantics are untouched: the counter object stays the
        source of truth, this copies its totals under
        ``{prefix}.{kind}.{sent,delivered,dropped,words}``.
        """
        for kind, n in counter.counts.items():
            self.counter(f"{prefix}.{kind}.sent").value = int(n)
        for kind, n in counter.delivered.items():
            self.counter(f"{prefix}.{kind}.delivered").value = int(n)
        for kind, n in counter.dropped.items():
            self.counter(f"{prefix}.{kind}.dropped").value = int(n)
        for kind, n in counter.words.items():
            self.counter(f"{prefix}.{kind}.words").value = int(n)

    def absorb_mapping(self, mapping: "Mapping[str, object]",
                       prefix: str) -> None:
        """Mirror numeric leaves of a stats dict as gauges.

        Nested mappings recurse with dotted names; lists recurse with
        their index as the name segment (``name.0``, ``name.1``, ...);
        other non-numeric leaves are skipped.  Used for
        ``ReliableTransport.stats()`` and the harness ``network_stats``
        dicts.
        """
        for key, value in mapping.items():
            self._absorb_value(value, f"{prefix}.{key}")

    def _absorb_value(self, value: object, name: str) -> None:
        if isinstance(value, Mapping):
            self.absorb_mapping(value, name)
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                self._absorb_value(item, f"{name}.{i}")
        elif isinstance(value, bool):
            self.gauge(name).set(1.0 if value else 0.0)
        elif isinstance(value, (int, float)):
            self.gauge(name).set(float(value))

    # -- merge ---------------------------------------------------------

    def merge(self, snapshot: "Mapping[str, object]") -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Merge rules -- each associative and commutative, so N worker
        snapshots produce the same fleet registry in any merge order:

        * counters add;
        * gauges resolve last-writer-by-tick (see :meth:`Gauge.merge`),
          reading per-gauge ticks from the snapshot's ``gauge_ticks``
          side table when present;
        * histograms add bucket-wise (see :meth:`Histogram.merge_summary`).
        """
        counters = snapshot.get("counters", {})
        if isinstance(counters, Mapping):
            for name in counters:
                self.counter(str(name)).inc(int(_number(counters, name)))
        ticks_obj = snapshot.get("gauge_ticks", {})
        ticks: "Mapping[str, object]" = (
            ticks_obj if isinstance(ticks_obj, Mapping) else {})
        gauges = snapshot.get("gauges", {})
        if isinstance(gauges, Mapping):
            for name in gauges:
                tick_value = ticks.get(str(name))
                tick = (int(tick_value)
                        if isinstance(tick_value, int)
                        and not isinstance(tick_value, bool) else None)
                existing = self._gauges.get(str(name))
                if existing is None:
                    # First write for this name: adopt it verbatim.  (A
                    # get-or-create gauge starts at 0.0, which must not
                    # out-compete a real negative write in the merge.)
                    self.gauge(str(name)).set(
                        _number(gauges, str(name)), tick)
                else:
                    existing.merge(_number(gauges, str(name)), tick)
        histograms = snapshot.get("histograms", {})
        if isinstance(histograms, Mapping):
            for name, summary in histograms.items():
                if not isinstance(summary, Mapping):
                    raise ParameterError(
                        f"metrics snapshot: histogram {name!r} summary "
                        "must be a mapping")
                self.histogram(str(name)).merge_summary(summary)

    # -- export --------------------------------------------------------

    def snapshot(self) -> "dict[str, dict[str, object]]":
        """All metrics as plain data: counters, gauges, histograms.

        The optional ``gauge_ticks`` side table (gauge name -> tick of
        its last write) appears only when at least one gauge carries a
        tick, keeping the empty-registry snapshot shape identical to
        what pre-distributed consumers expect.
        """
        snap: "dict[str, dict[str, object]]" = {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self._histograms.items())},
        }
        ticks = {n: g.tick for n, g in sorted(self._gauges.items())
                 if g.tick is not None}
        if ticks:
            snap["gauge_ticks"] = dict(ticks)
        return snap


def merge_snapshots(
        snapshots: "Iterable[Mapping[str, object]]",
) -> "dict[str, dict[str, object]]":
    """Merge N metrics snapshots into one fleet-wide snapshot."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge(snap)
    return registry.snapshot()
