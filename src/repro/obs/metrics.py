"""Metrics registry: counters, gauges and histograms.

One queryable surface unifying the repo's ad-hoc accounting --
``MessageCounter`` per-kind word costs, ``ReliableTransport.stats()``
and the ``network_stats`` dicts the eval harness assembles -- without
changing any of their semantics.  Instrumented code increments named
metrics; :meth:`MetricsRegistry.absorb_message_counter` and
:meth:`MetricsRegistry.absorb_mapping` copy the legacy accounting in at
the end of a run so a single :meth:`MetricsRegistry.snapshot` answers
"what happened".
"""

from __future__ import annotations

from typing import Mapping, TYPE_CHECKING

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.network.messages import MessageCounter


class Counter:
    """Monotone integer counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n


class Gauge:
    """Last-value-wins float gauge."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values (count/total/min/max).

    Deliberately O(1) memory: the hot paths observing into a histogram
    (e.g. ``estimator.range_query.latency``) run millions of times and
    must not accumulate per-observation state.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> "dict[str, float]":
        """count/total/mean/min/max as a plain dict (zeros when empty)."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0}
        return {"count": self.count, "total": self.total,
                "mean": self.total / self.count,
                "min": self.min, "max": self.max}


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, Histogram]" = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name``, creating it if needed."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name``, creating it if needed."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name``, creating it if needed."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- legacy-accounting absorption ----------------------------------

    def absorb_message_counter(self, counter: "MessageCounter",
                               prefix: str = "messages") -> None:
        """Mirror a ``MessageCounter``'s per-kind totals as counters.

        Word-cost semantics are untouched: the counter object stays the
        source of truth, this copies its totals under
        ``{prefix}.{kind}.{sent,delivered,dropped,words}``.
        """
        for kind, n in counter.counts.items():
            self.counter(f"{prefix}.{kind}.sent").value = int(n)
        for kind, n in counter.delivered.items():
            self.counter(f"{prefix}.{kind}.delivered").value = int(n)
        for kind, n in counter.dropped.items():
            self.counter(f"{prefix}.{kind}.dropped").value = int(n)
        for kind, n in counter.words.items():
            self.counter(f"{prefix}.{kind}.words").value = int(n)

    def absorb_mapping(self, mapping: "Mapping[str, object]",
                       prefix: str) -> None:
        """Mirror numeric leaves of a stats dict as gauges.

        Nested mappings recurse with dotted names; lists recurse with
        their index as the name segment (``name.0``, ``name.1``, ...);
        other non-numeric leaves are skipped.  Used for
        ``ReliableTransport.stats()`` and the harness ``network_stats``
        dicts.
        """
        for key, value in mapping.items():
            self._absorb_value(value, f"{prefix}.{key}")

    def _absorb_value(self, value: object, name: str) -> None:
        if isinstance(value, Mapping):
            self.absorb_mapping(value, name)
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                self._absorb_value(item, f"{name}.{i}")
        elif isinstance(value, bool):
            self.gauge(name).set(1.0 if value else 0.0)
        elif isinstance(value, (int, float)):
            self.gauge(name).set(float(value))

    # -- export --------------------------------------------------------

    def snapshot(self) -> "dict[str, dict[str, object]]":
        """All metrics as plain data: counters, gauges, histograms."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self._histograms.items())},
        }
