"""Trace summarization: turn a JSONL trace into a readable report.

Backs ``tools/trace_report.py`` and the ``repro trace`` subcommand.
Only depends on the trace format itself (plus :mod:`repro.obs.schema`
for the validation hook), so it can digest traces produced by any run.
"""

from __future__ import annotations

import json
from typing import Mapping

__all__ = ["load_events", "summarize", "format_report"]


def load_events(path: str) -> "list[dict[str, object]]":
    """Parse a JSONL trace file into a list of event records."""
    events: "list[dict[str, object]]" = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _as_int(value: object) -> int:
    return int(value) if isinstance(value, (int, float)) else 0


def summarize(
        events: "list[Mapping[str, object]]") -> "dict[str, object]":
    """Top-line rollup of a trace: events, messages, spans, detections."""
    by_event: "dict[str, int]" = {}
    messages: "dict[str, dict[str, int]]" = {}
    span_names: "dict[int, str]" = {}
    span_time: "dict[str, dict[str, float]]" = {}
    n_detections = 0
    n_evictions = 0
    latencies: "list[int]" = []
    for record in events:
        kind = str(record.get("event"))
        by_event[kind] = by_event.get(kind, 0) + 1
        if kind.startswith("message."):
            mkind = str(record.get("kind"))
            row = messages.setdefault(
                mkind, {"send": 0, "deliver": 0, "drop": 0, "words": 0})
            verb = kind.split(".", 1)[1]
            row[verb] += 1
            if verb == "send":
                row["words"] += _as_int(record.get("words"))
        elif kind == "span_open":
            span_names[_as_int(record.get("id"))] = str(record.get("name"))
        elif kind == "span_close":
            name = span_names.get(_as_int(record.get("id")), "?")
            dur = record.get("dur_s")
            if isinstance(dur, (int, float)):
                row_t = span_time.setdefault(
                    name, {"count": 0, "total_s": 0.0})
                row_t["count"] += 1
                row_t["total_s"] += float(dur)
        elif kind == "detector.flag":
            n_detections += 1
            latency = record.get("latency")
            if not isinstance(latency, int) or isinstance(latency, bool):
                flag_tick = record.get("flag_tick")
                reading = record.get("reading_tick", record.get("tick"))
                latency = flag_tick - reading \
                    if isinstance(flag_tick, int) and isinstance(reading, int) \
                    else None
            if latency is not None:
                latencies.append(latency)
        elif kind == "sample.evict":
            n_evictions += _as_int(record.get("count"))
    return {
        "n_events": len(events),
        "by_event": dict(sorted(by_event.items())),
        "messages": dict(sorted(messages.items())),
        "spans": dict(sorted(span_time.items())),
        "n_detections": n_detections,
        "n_evictions": n_evictions,
        "flag_latency": _latency_stats(latencies),
    }


def _latency_stats(latencies: "list[int]") -> "dict[str, int] | None":
    """Nearest-rank latency roll-up; None for pre-lineage traces."""
    if not latencies:
        return None
    ordered = sorted(latencies)
    def rank(q: float) -> int:
        return ordered[min(len(ordered) - 1,
                           max(0, int(q * len(ordered) + 0.999999) - 1))]
    return {"count": len(ordered), "p50": rank(0.50),
            "p99": rank(0.99), "max": ordered[-1]}


def _table(headers: "list[str]",
           rows: "list[list[str]]") -> "list[str]":
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: "list[str]") -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def format_report(summary: "Mapping[str, object]") -> str:
    """Render :func:`summarize` output as an aligned plain-text report."""
    lines: "list[str]" = []
    lines.append(f"events: {summary['n_events']}"
                 f"  detections: {summary['n_detections']}"
                 f"  sample evictions: {summary['n_evictions']}")
    flag_latency = summary.get("flag_latency")
    if isinstance(flag_latency, Mapping):
        lines.append(
            f"flag latency (ticks): p50={flag_latency['p50']}"
            f"  p99={flag_latency['p99']}  max={flag_latency['max']}"
            f"  over {flag_latency['count']} flag(s)")
    by_event = summary["by_event"]
    assert isinstance(by_event, Mapping)
    lines.append("")
    lines.extend(_table(
        ["event", "count"],
        [[kind, str(count)] for kind, count in by_event.items()]))
    messages = summary["messages"]
    assert isinstance(messages, Mapping)
    if messages:
        lines.append("")
        rows = []
        for kind, row in messages.items():
            assert isinstance(row, Mapping)
            rows.append([kind, str(row["send"]), str(row["deliver"]),
                         str(row["drop"]), str(row["words"])])
        lines.extend(_table(
            ["message kind", "send", "deliver", "drop", "words"], rows))
    spans = summary["spans"]
    assert isinstance(spans, Mapping)
    if spans:
        lines.append("")
        rows = []
        for name, row in spans.items():
            assert isinstance(row, Mapping)
            rows.append([name, str(row["count"]),
                         f"{float(row['total_s']):.6f}"])
        lines.extend(_table(["span", "count", "total_s"], rows))
    return "\n".join(lines)
