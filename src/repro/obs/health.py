"""Online model-health monitoring (docs/OBSERVABILITY.md, §health).

The mechanical observability of :mod:`repro.obs` (spans, counters,
phase timings) says what the system *did*; this module watches whether
each node's kernel estimator is still a faithful model of its window --
the statistical health the paper actually cares about (Eq. 4-6, Scott
bandwidths).  A :class:`HealthMonitor` computes a per-node
:class:`ModelHealth` report incrementally from state the nodes already
maintain, so a check is a pure read: no shared RNG is consumed, no
cached model is rebuilt (:attr:`StreamModelState.cached_model` is read
as-is), and attaching a monitor never changes detection results.

Signals, all derived from existing machinery:

* **bandwidth collapse / zero-sigma** -- the variance sketch's
  :meth:`~repro.streams.variance.MultiDimVarianceSketch.std`; a
  (near-)zero deviation in any dimension collapses the Scott bandwidths
  and degenerates the kernel model to spikes.
* **chain-sample staleness and eviction rate** -- from
  :attr:`~repro.streams.sampling.ChainSample.mutation_count`,
  :attr:`~repro.streams.sampling.ChainSample.eviction_count` and
  :meth:`~repro.streams.sampling.ChainSample.newest_active_timestamp`.
* **model drift** -- a seeded, fixed set of probe boxes evaluated
  through the existing range-query machinery
  (:meth:`~repro.core.estimator.KernelDensityEstimator.range_probability`);
  the L1/L-inf distance between successive models' probe vectors is the
  drift estimate.  A distribution shift mid-stream provably raises it.
* **codec quantization error** -- the round-trip error a shipped model
  would incur through :mod:`repro.network.codec`'s 16-bit fixed-point
  encoding.
* **parent-vs-aggregated-children divergence** -- JS divergence
  (:func:`~repro.core.divergence.model_js_divergence`) between a
  parent's model and the law-of-total-variance merge
  (:func:`~repro.core.estimator.merge_estimators`) of its children's
  cached models.

Each report rolls into a score in ``[0, 1]`` via per-violation
penalties; SLO thresholds are configurable through
:class:`HealthThresholds`.  When :data:`repro.obs.ACTIVE` is on, checks
emit schema-validated ``health.*`` trace events and publish
``health.node.<id>.*`` gauges; with it off the monitor stays a pure
in-memory computation (and nobody constructs one unless asked -- the
zero-overhead-when-disabled contract of the rest of the layer).

The ``on_violation`` callback is the bridge to the PR-3 degradation
hooks: callers may wire it to pause detection, shrink the staleness
horizon, or force a model broadcast when a node goes unhealthy.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

from repro import obs
from repro._exceptions import ParameterError
from repro.core.divergence import model_js_divergence
from repro.core.estimator import KernelDensityEstimator, merge_estimators
from repro.network.codec import decode_model_state, encode_model_state
from repro.network.topology import Hierarchy

if TYPE_CHECKING:    # pragma: no cover - import cycle guard only
    from repro.network.node import DetectionLog

__all__ = ["HealthThresholds", "ModelHealth", "HealthMonitor"]

#: Score deduction per violated SLO; the score is ``1 - sum(penalties)``
#: clamped to ``[0, 1]``.  Bandwidth collapse dominates because the
#: model is not merely stale but structurally degenerate.
PENALTIES: "Mapping[str, float]" = MappingProxyType({
    "bandwidth-collapse": 0.40,
    "drift": 0.30,
    "sample-stale": 0.20,
    "child-divergence": 0.20,
    "child-stale": 0.20,
    "sample-underfull": 0.10,
    "eviction-rate": 0.10,
    "codec-error": 0.10,
    "latency": 0.20,
})


# repro-lint: shard-state
@dataclass(frozen=True)
class HealthThresholds:
    """SLO knobs: when does a signal count as a violation.

    Every threshold gates one named violation (see :data:`PENALTIES`);
    ``None`` disables the corresponding check.
    """

    #: Any sketched per-dimension deviation below this is a bandwidth
    #: collapse (Scott bandwidths scale linearly with the deviation).
    min_sigma: float = 1e-6
    #: Minimum fraction of sample slots that must be active once the
    #: node has seen a full sample's worth of arrivals.
    min_sample_fill: float = 0.25
    #: Sample staleness (arrivals since the newest active element) above
    #: this fraction of the node's arrival window is a violation.
    max_staleness_ratio: float = 0.75
    #: Evictions per arrival between checks above this is churn.  A
    #: healthy steady state runs near 1 for parents (every forwarded
    #: arrival eventually expires one active element), so the default
    #: only fires on mass expiry -- e.g. a burst after a long silence.
    max_eviction_rate: float = 2.5
    #: L-inf probe drift between successive models at or above this
    #: emits ``health.drift`` and counts as a violation.
    drift_tol: float = 0.15
    #: Maximum tolerated codec round-trip error (absolute, the 16-bit
    #: grid step is ~1.5e-5; this leaves an order of magnitude slack).
    max_codec_error: "float | None" = 1e-4
    #: Parent-vs-merged-children JS divergence above this is a violation.
    divergence_tol: "float | None" = 0.25
    #: Children staler than this many ticks (per the node's own
    #: ``child_staleness`` report, the PR-3 hook) are violations.
    max_child_staleness: "int | None" = None
    #: Event-time -> flag latency (ticks) above this is an SLO
    #: violation; needs a :class:`~repro.network.node.DetectionLog`
    #: wired into the monitor (``detections=``).  ``None`` disables.
    max_flag_latency: "float | None" = 200.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_sample_fill <= 1.0:
            raise ParameterError(
                f"min_sample_fill must lie in [0, 1], "
                f"got {self.min_sample_fill!r}")
        if self.drift_tol <= 0.0:
            raise ParameterError(
                f"drift_tol must be positive, got {self.drift_tol!r}")
        if self.max_staleness_ratio <= 0.0:
            raise ParameterError(
                f"max_staleness_ratio must be positive, "
                f"got {self.max_staleness_ratio!r}")

    def snapshot_state(self) -> "dict[str, Any]":
        """Plain-data snapshot for the :mod:`repro.engine.snapshot` codec."""
        return asdict(self)

    @classmethod
    def restore_state(cls, state: "dict[str, Any]") -> "HealthThresholds":
        """Rebuild thresholds from a :meth:`snapshot_state` dict."""
        return cls(**state)


# repro-lint: shard-state
@dataclass(frozen=True)
class ModelHealth:
    """One node's health report at one check."""

    node: int
    tick: int
    arrivals: int
    #: Active sample slots / ``|R|``.
    sample_fill: float
    #: Arrivals since the chain sample last accepted a value.
    sample_staleness: int
    #: Evictions per arrival since the previous check.
    eviction_rate: float
    #: Smallest sketched per-dimension deviation (NaN before data).
    sigma_min: float
    bandwidth_collapsed: bool
    #: Mean / max absolute probe-mass change vs the previous model
    #: (None until two distinct models have been probed).
    drift_l1: "float | None"
    drift_linf: "float | None"
    #: Codec round-trip error of the current model (None when unchecked).
    codec_error: "float | None"
    #: JS divergence parent vs merged children (None for leaves or when
    #: no child model is available).
    child_divergence: "float | None"
    #: Worst event-time -> flag latency (ticks) among this node's
    #: detections since the previous check (None without a wired
    #: :class:`~repro.network.node.DetectionLog` or without new flags).
    flag_latency_max: "int | None" = None
    #: Children beyond the ``max_child_staleness`` horizon.
    stale_children: "tuple[int, ...]" = ()
    violations: "tuple[str, ...]" = ()
    score: float = 1.0

    def as_dict(self) -> "dict[str, object]":
        """The report as JSON-ready plain data."""
        return {
            "node": self.node, "tick": self.tick,
            "arrivals": self.arrivals,
            "sample_fill": self.sample_fill,
            "sample_staleness": self.sample_staleness,
            "eviction_rate": self.eviction_rate,
            "sigma_min": self.sigma_min,
            "bandwidth_collapsed": self.bandwidth_collapsed,
            "drift_l1": self.drift_l1, "drift_linf": self.drift_linf,
            "codec_error": self.codec_error,
            "child_divergence": self.child_divergence,
            "flag_latency_max": self.flag_latency_max,
            "stale_children": list(self.stale_children),
            "violations": list(self.violations),
            "score": self.score,
        }

    def snapshot_state(self) -> "dict[str, Any]":
        """Plain-data snapshot for the :mod:`repro.engine.snapshot` codec."""
        return asdict(self)

    @classmethod
    def restore_state(cls, state: "dict[str, Any]") -> "ModelHealth":
        """Rebuild a report from a :meth:`snapshot_state` dict."""
        restored = dict(state)
        restored["stale_children"] = tuple(restored["stale_children"])
        restored["violations"] = tuple(restored["violations"])
        return cls(**restored)


@dataclass
class _NodeProbeState:
    """Per-node incremental bookkeeping between checks."""

    arrivals: int = 0
    evictions: int = 0
    #: The last model whose probe vector was taken (identity compared,
    #: so an unchanged cache is never re-probed).
    model: "KernelDensityEstimator | None" = None
    vector: "np.ndarray | None" = None
    drift_l1: "float | None" = None
    drift_linf: "float | None" = None
    #: Largest L-inf drift seen over the monitor's lifetime.
    peak_drift: "float | None" = None
    drift_fresh: bool = False
    violation_counts: "dict[str, int]" = field(default_factory=dict)


def _score(violations: "tuple[str, ...]") -> float:
    penalty = sum(PENALTIES.get(v, 0.1) for v in violations)
    return max(0.0, min(1.0, 1.0 - penalty))


class HealthMonitor:
    """Per-node model-health checks over a running detector network.

    Parameters
    ----------
    nodes:
        ``node id -> behaviour`` as built by ``build_d3_network`` /
        ``build_mgdd_network``; any node exposing a ``state``
        (:class:`~repro.detectors._state.StreamModelState`) is
        monitored, others are skipped.
    hierarchy:
        Enables the parent-vs-aggregated-children divergence signal;
        omit it (None) to skip that check.
    thresholds:
        The SLO knobs (defaults: :class:`HealthThresholds`).
    n_probes / probe_radius / probe_seed:
        The fixed probe boxes for drift estimation: ``n_probes`` box
        centres drawn once from ``default_rng(probe_seed)`` per
        dimensionality, each extended by ``probe_radius`` and clipped to
        ``[0, 1]``.  Seeded and private, so monitoring perturbs nothing.
    on_violation:
        Optional callback ``(node_id, report)`` fired for every report
        with violations -- the hook point for the PR-3
        staleness/degradation machinery.
    detections:
        The network's shared :class:`~repro.network.node.DetectionLog`.
        When wired, each check drains the flags recorded since the
        previous one and gates their event-time -> flag latency against
        :attr:`HealthThresholds.max_flag_latency` (violation
        ``"latency"``).  Reading the log consumes nothing -- detection
        results are unchanged.
    """

    def __init__(self, nodes: "Mapping[int, object]",
                 hierarchy: "Hierarchy | None" = None, *,
                 thresholds: "HealthThresholds | None" = None,
                 n_probes: int = 16,
                 probe_radius: float = 0.05,
                 probe_seed: int = 0,
                 check_codec: bool = True,
                 on_violation: "Callable[[int, ModelHealth], None] | None" = None,
                 detections: "DetectionLog | None" = None,
                 ) -> None:
        if n_probes < 1:
            raise ParameterError(f"n_probes must be >= 1, got {n_probes}")
        if not 0.0 < probe_radius <= 0.5:
            raise ParameterError(
                f"probe_radius must lie in (0, 0.5], got {probe_radius!r}")
        self._nodes = dict(nodes)
        self._hierarchy = hierarchy
        self._thresholds = thresholds if thresholds is not None \
            else HealthThresholds()
        self._n_probes = n_probes
        self._probe_radius = probe_radius
        self._probe_seed = probe_seed
        self._check_codec = check_codec
        self._on_violation = on_violation
        self._detections = detections
        self._drained = 0
        self._probes: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
        self._state: "dict[int, _NodeProbeState]" = {}
        self._last: "dict[int, ModelHealth]" = {}
        self._n_checks = 0

    # ------------------------------------------------------------------

    @property
    def thresholds(self) -> HealthThresholds:
        """The SLO thresholds in force."""
        return self._thresholds

    @property
    def n_checks(self) -> int:
        """Completed :meth:`check` sweeps."""
        return self._n_checks

    def last_reports(self) -> "dict[int, ModelHealth]":
        """The most recent per-node reports (empty before any check)."""
        return dict(self._last)

    def _probe_boxes(self, n_dims: int) -> "tuple[np.ndarray, np.ndarray]":
        boxes = self._probes.get(n_dims)
        if boxes is None:
            rng = np.random.default_rng(self._probe_seed + n_dims)
            centers = rng.uniform(0.0, 1.0, size=(self._n_probes, n_dims))
            lows = np.clip(centers - self._probe_radius, 0.0, 1.0)
            highs = np.clip(centers + self._probe_radius, 0.0, 1.0)
            boxes = self._probes[n_dims] = (lows, highs)
        return boxes

    def probe_vector(self, model: KernelDensityEstimator) -> np.ndarray:
        """Probe-box masses of ``model`` (the drift fingerprint)."""
        lows, highs = self._probe_boxes(model.n_dims)
        return np.asarray(model.range_probability(lows, highs), dtype=float)

    # ------------------------------------------------------------------

    def check(self, tick: int) -> "dict[int, ModelHealth]":
        """One health sweep over every monitored node at ``tick``."""
        latency_max = self._drain_latencies()
        reports: "dict[int, ModelHealth]" = {}
        for node_id in sorted(self._nodes):
            state = getattr(self._nodes[node_id], "state", None)
            if state is None:
                continue
            report = self._check_node(node_id, state, tick,
                                      flag_latency=latency_max.get(node_id))
            reports[node_id] = report
            if report.violations and self._on_violation is not None:
                self._on_violation(node_id, report)
        self._last = reports
        self._n_checks += 1
        if obs.ACTIVE:
            obs.emit("health.check", tick=tick, n_nodes=len(reports))
        return reports

    def _drain_latencies(self) -> "dict[int, int]":
        """Worst per-node flag latency among detections since last check."""
        log = self._detections
        if log is None:
            return {}
        worst: "dict[int, int]" = {}
        detections = log.detections[self._drained:]
        latencies = log.latencies[self._drained:]
        self._drained += len(detections)
        for detection, latency in zip(detections, latencies):
            node = detection.node_id
            if node not in worst or latency > worst[node]:
                worst[node] = latency
        return worst

    def _check_node(self, node_id: int, state: object, tick: int, *,
                    flag_latency: "int | None" = None) -> ModelHealth:
        thresholds = self._thresholds
        probe = self._state.setdefault(node_id, _NodeProbeState())
        sample = state.sample                       # type: ignore[attr-defined]
        arrivals = int(state.arrivals)              # type: ignore[attr-defined]
        fill = len(sample) / sample.sample_size
        newest = sample.newest_active_timestamp()
        staleness = max(0, sample.timestamp - newest) \
            if sample.timestamp >= 0 and newest >= 0 else 0

        d_arrivals = arrivals - probe.arrivals
        d_evictions = int(sample.eviction_count) - probe.evictions
        eviction_rate = d_evictions / d_arrivals if d_arrivals > 0 else 0.0
        probe.arrivals = arrivals
        probe.evictions = int(sample.eviction_count)

        if arrivals > 1:
            sigma_min = float(np.min(
                state.sketch.std()))                # type: ignore[attr-defined]
        else:
            sigma_min = float("nan")
        collapsed = arrivals > 1 and sigma_min < thresholds.min_sigma

        # Drift: probe the cached model (a pure read -- model() could
        # rebuild and would perturb the run's rebuild schedule).
        model = state.cached_model                  # type: ignore[attr-defined]
        codec_error: "float | None" = None
        if model is not None:
            if model is not probe.model:
                vector = self.probe_vector(model)
                if probe.vector is not None:
                    delta = np.abs(vector - probe.vector)
                    probe.drift_l1 = float(delta.mean())
                    probe.drift_linf = float(delta.max())
                    if probe.peak_drift is None \
                            or probe.drift_linf > probe.peak_drift:
                        probe.peak_drift = probe.drift_linf
                    probe.drift_fresh = True
                probe.model = model
                probe.vector = vector
            else:
                probe.drift_fresh = False
            if self._check_codec:
                codec_error = self._codec_error(model)
        else:
            probe.drift_fresh = False

        child_divergence, stale_children = self._parent_signals(
            node_id, model, tick)

        violations: "list[str]" = []
        if collapsed:
            violations.append("bandwidth-collapse")
        if arrivals >= sample.sample_size and fill < thresholds.min_sample_fill:
            violations.append("sample-underfull")
        if staleness > thresholds.max_staleness_ratio * sample.window_size:
            violations.append("sample-stale")
        if eviction_rate > thresholds.max_eviction_rate:
            violations.append("eviction-rate")
        drifted = probe.drift_linf is not None \
            and probe.drift_linf >= thresholds.drift_tol
        if drifted:
            violations.append("drift")
        if (codec_error is not None
                and thresholds.max_codec_error is not None
                and codec_error > thresholds.max_codec_error):
            violations.append("codec-error")
        if (child_divergence is not None
                and thresholds.divergence_tol is not None
                and child_divergence > thresholds.divergence_tol):
            violations.append("child-divergence")
        if stale_children:
            violations.append("child-stale")
        if (flag_latency is not None
                and thresholds.max_flag_latency is not None
                and flag_latency > thresholds.max_flag_latency):
            violations.append("latency")

        report = ModelHealth(
            node=node_id, tick=tick, arrivals=arrivals,
            sample_fill=fill, sample_staleness=staleness,
            eviction_rate=eviction_rate, sigma_min=sigma_min,
            bandwidth_collapsed=collapsed,
            drift_l1=probe.drift_l1, drift_linf=probe.drift_linf,
            codec_error=codec_error, child_divergence=child_divergence,
            flag_latency_max=flag_latency,
            stale_children=tuple(stale_children),
            violations=tuple(violations),
            score=_score(tuple(violations)))
        for violation in violations:
            probe.violation_counts[violation] = \
                probe.violation_counts.get(violation, 0) + 1
        if obs.ACTIVE:
            self._publish(report, drift_fresh=probe.drift_fresh and drifted)
        return report

    def _codec_error(self, model: KernelDensityEstimator) -> "float | None":
        """Round-trip error the 16-bit codec would add to this model."""
        sample = np.clip(model.sample, 0.0, 1.0)
        stddev = model.stddev
        if stddev is None:
            return None     # bandwidth-only model; the codec ships sigma
        if np.any(stddev < 0.0) or np.any(stddev > 1.0):
            return None     # out of the codec's fixed-point range
        try:
            payload = encode_model_state(sample, stddev, model.window_size)
            decoded_sample, decoded_std, _ = decode_model_state(payload)
        except ParameterError:
            return None     # model shape the radio codec cannot carry
        return float(max(np.abs(decoded_sample - sample).max(initial=0.0),
                         np.abs(decoded_std - stddev).max(initial=0.0)))

    def _parent_signals(self, node_id: int,
                        model: "KernelDensityEstimator | None",
                        tick: int) -> "tuple[float | None, list[int]]":
        """Child-model divergence and stale children for a parent node."""
        stale_children: "list[int]" = []
        node = self._nodes[node_id]
        horizon = self._thresholds.max_child_staleness
        staleness_report = getattr(node, "child_staleness", None)
        if horizon is not None and callable(staleness_report):
            stale_children = [child for child, stale
                              in staleness_report(tick).items()
                              if stale > horizon]
        if self._hierarchy is None or model is None:
            return None, stale_children
        children = self._hierarchy.children_of(node_id)
        child_models = []
        for child in children:
            child_state = getattr(self._nodes.get(child), "state", None)
            child_model = getattr(child_state, "cached_model", None)
            if child_model is not None:
                child_models.append(child_model)
        if not child_models:
            return None, stale_children
        merged = merge_estimators(child_models) if len(child_models) > 1 \
            else child_models[0]
        if merged.n_dims != model.n_dims:
            return None, stale_children
        return float(model_js_divergence(model, merged, grid_size=32)), \
            stale_children

    def _publish(self, report: ModelHealth, *, drift_fresh: bool) -> None:
        """Emit ``health.*`` events and gauges for one report."""
        obs.emit("health.node", node=report.node, tick=report.tick,
                 score=report.score, sample_fill=report.sample_fill,
                 drift_linf=report.drift_linf,
                 n_violations=len(report.violations))
        if drift_fresh and report.drift_l1 is not None \
                and report.drift_linf is not None:
            obs.emit("health.drift", node=report.node, tick=report.tick,
                     l1=report.drift_l1, linf=report.drift_linf)
        for violation in report.violations:
            obs.emit("health.slo_violation", node=report.node,
                     tick=report.tick, rule=violation)
        registry = obs.metrics()
        prefix = f"health.node.{report.node}"
        registry.gauge(f"{prefix}.score").set(report.score)
        registry.gauge(f"{prefix}.sample_fill").set(report.sample_fill)
        if report.drift_linf is not None:
            registry.gauge(f"{prefix}.drift_linf").set(report.drift_linf)
        if report.flag_latency_max is not None:
            registry.gauge(f"{prefix}.latency_max").set(
                float(report.flag_latency_max))
        if not np.isnan(report.sigma_min):
            registry.gauge(f"{prefix}.sigma_min").set(report.sigma_min)
        registry.counter("health.checks").inc()
        if report.violations:
            registry.counter("health.violations").inc(len(report.violations))

    # ------------------------------------------------------------------

    def summary(self) -> "dict[str, object]":
        """JSON-ready roll-up for ``network_stats['health']``."""
        per_node: "dict[str, object]" = {}
        for node_id, report in sorted(self._last.items()):
            probe = self._state.get(node_id, _NodeProbeState())
            per_node[str(node_id)] = {
                "score": report.score,
                "drift_linf": report.drift_linf,
                "peak_drift": probe.peak_drift,
                "violations": dict(sorted(
                    probe.violation_counts.items())),
            }
        scores = [report.score for report in self._last.values()]
        return {
            "n_checks": self._n_checks,
            "n_nodes": len(self._last),
            "min_score": min(scores) if scores else None,
            "mean_score": float(np.mean(scores)) if scores else None,
            "nodes": per_node,
        }
