"""``repro explain``: reconstruct one detection decision from a trace.

Given the raw event stream of a traced run (the in-memory ring via
:func:`repro.obs.tracer`, or a JSONL sink loaded with
:func:`repro.obs.report.load_events`), :func:`explain` selects one
``detector.flag`` and renders everything the lineage layer recorded
about it: the model sequence number and staleness at decision time, the
estimated probability (or MDEF) against the threshold, the message hops
that carried the escalated report (including retransmits and parked
intervals) and the reading's age when the flag finally landed.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Mapping

from repro._exceptions import ParameterError
from repro.obs.lineage import LineageRecord, reconstruct

__all__ = ["explain", "format_explanation", "select_record"]


def select_record(records: "list[LineageRecord]",
                  selector: "str | int") -> LineageRecord:
    """Pick one record: ``"last"``, a 0-based index, or ``"NODE:TICK"``.

    ``"NODE:TICK"`` matches the flagging node id and the *reading* tick
    (the identity a detection is reported under).
    """
    if not records:
        raise ParameterError("trace contains no detector.flag events")
    if isinstance(selector, int):
        index = selector
        if not -len(records) <= index < len(records):
            raise ParameterError(
                f"detection index {index} out of range "
                f"(trace has {len(records)} detections)")
        return records[index]
    if selector == "last":
        return records[-1]
    if selector == "first":
        return records[0]
    if ":" in selector:
        node_part, _, tick_part = selector.partition(":")
        try:
            node, tick = int(node_part), int(tick_part)
        except ValueError:
            raise ParameterError(
                f"bad detection selector {selector!r}; expected "
                f"'last', 'first', an index, or NODE:TICK") from None
        for record in records:
            if record.node == node and record.reading_tick == tick:
                return record
        raise ParameterError(
            f"no detection by node {node} for reading tick {tick} "
            f"(trace has {len(records)} detections)")
    try:
        return select_record(records, int(selector))
    except ValueError:
        raise ParameterError(
            f"bad detection selector {selector!r}; expected 'last', "
            f"'first', an index, or NODE:TICK") from None


def explain(events: "list[Mapping[str, Any]]",
            selector: "str | int" = "last") -> LineageRecord:
    """Reconstruct the lineage of one detection from raw events."""
    return select_record(reconstruct(events), selector)


def explanation_dict(record: LineageRecord) -> "dict[str, Any]":
    """The record as plain data (for ``repro explain --json``)."""
    doc = asdict(record)
    doc["reading"] = record.reading
    doc["complete"] = record.complete
    doc["n_delivered_hops"] = record.n_delivered
    doc["n_retransmits"] = record.n_retransmits
    doc["parked_ticks"] = record.parked_ticks
    return doc


def _hop_line(hop: "Mapping[str, Any]") -> str:
    kind = str(hop.get("event", "")).split(".", 1)[-1]
    tick = hop.get("tick")
    where = f"-> node {hop.get('dest')}" if "dest" in hop else ""
    extra = ""
    if hop.get("duplicate"):
        extra = " (duplicate)"
    elif "reason" in hop:
        extra = f" ({hop['reason']})"
    seq_no = hop.get("seq_no")
    seq_txt = f" seq_no={seq_no}" if seq_no is not None else ""
    return f"    tick {tick}: {kind} {where}{seq_txt}{extra}".rstrip()


def format_explanation(record: LineageRecord) -> str:
    """Human-readable multi-line rendering of one lineage record."""
    lines = [
        f"detection {record.reading} "
        f"flagged by node {record.node} (level {record.level})",
        f"  reading tick: {record.reading_tick}"
        + ("  (ingest event seen)" if record.ingested else ""),
        f"  flag tick:    {record.flag_tick}",
        f"  latency:      {record.latency} tick(s) event-time -> flag",
    ]
    if record.prob is not None or record.threshold is not None:
        lines.append(
            f"  decision:     estimate {record.prob!r} "
            f"vs threshold {record.threshold!r}")
    if record.model_seq is not None:
        staleness = ("" if record.staleness is None
                     else f", {record.staleness} tick(s) stale")
        lines.append(f"  model:        seq {record.model_seq}{staleness}")
    if record.model_merges:
        last = record.model_merges[-1]
        lines.append(
            f"  model merges: {len(record.model_merges)} "
            f"(last at tick {last.get('tick')}, "
            f"seq {last.get('model_seq')})")
    if record.hops:
        lines.append(f"  message hops ({record.n_delivered} delivered):")
        lines.extend(_hop_line(hop) for hop in record.hops)
    else:
        lines.append("  message hops: none (flagged at the origin leaf)")
    if record.transport:
        parked = record.parked_ticks
        parked_txt = "" if parked is None else f", parked {parked} tick(s)"
        lines.append(
            f"  transport:    {record.n_retransmits} retransmit(s)"
            f"{parked_txt}")
    lines.append(
        "  lineage:      complete" if record.complete
        else "  lineage:      INCOMPLETE (decision inputs missing)")
    return "\n".join(lines)
