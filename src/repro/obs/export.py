"""Metric snapshot exporters: Prometheus text format and JSON lines.

Turns a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (plus the
health gauges :mod:`repro.obs.health` publishes into the same registry)
into artefacts other tooling can scrape:

* :func:`prometheus_text` -- the Prometheus text exposition format
  (`# HELP`/`# TYPE` comments, counters suffixed ``_total``, histograms
  flattened to ``_count``/``_sum``/``_min``/``_max``).  Dotted repro
  metric names are mangled to legal Prometheus names and the original
  dotted name is preserved as a ``metric`` label.
* :func:`json_lines` -- one self-describing JSON object per metric, the
  JSONL twin for log shippers.
* :func:`parse_prometheus` -- a small strict parser used by the CI lint
  step (``tools/prom_lint.py``) and tests to prove exported text is
  well-formed; it accepts exactly what :func:`prometheus_text` claims
  to produce.
* :func:`write_metrics` -- suffix-dispatched file writer backing the
  ``repro export-metrics`` subcommand and the ``--metrics-out`` knobs.
"""

from __future__ import annotations

import json
import math
import re
from typing import Mapping

from repro._artifacts import atomic_write_text
from repro._exceptions import ParameterError

__all__ = ["prometheus_text", "json_lines", "parse_prometheus",
           "write_metrics"]

#: Legal Prometheus metric name (also used by :func:`parse_prometheus`).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$")
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _mangle(name: str) -> str:
    """A dotted repro metric name as a legal Prometheus name."""
    mangled = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_RE.match(mangled):
        mangled = "_" + mangled
    return mangled


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def _label_block(labels: "Mapping[str, str] | None",
                 extra: "Mapping[str, str] | None" = None) -> str:
    merged: "dict[str, str]" = {}
    if labels:
        merged.update(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key, value in sorted(merged.items()):
        escaped = str(value).replace("\\", r"\\").replace(
            '"', r'\"').replace("\n", r"\n")
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def prometheus_text(snapshot: "Mapping[str, Mapping[str, object]]", *,
                    prefix: str = "repro",
                    labels: "Mapping[str, str] | None" = None) -> str:
    """A metrics snapshot in Prometheus text exposition format.

    ``snapshot`` is the dict :meth:`MetricsRegistry.snapshot` returns.
    Every metric keeps its original dotted name as a ``metric`` label so
    the mangling stays lossless.
    """
    if not _NAME_RE.match(prefix):
        raise ParameterError(
            f"prefix must be a legal Prometheus name, got {prefix!r}")
    lines: "list[str]" = []

    counters = snapshot.get("counters", {})
    for name, value in sorted(counters.items()):
        metric = f"{prefix}_{_mangle(name)}_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        block = _label_block(labels, {"metric": name})
        lines.append(f"{metric}{block} {_format_value(int(value))}")

    gauges = snapshot.get("gauges", {})
    for name, value in sorted(gauges.items()):
        metric = f"{prefix}_{_mangle(name)}"
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        block = _label_block(labels, {"metric": name})
        lines.append(f"{metric}{block} {_format_value(float(value))}")

    histograms = snapshot.get("histograms", {})
    for name, summary in sorted(histograms.items()):
        base = f"{prefix}_{_mangle(name)}"
        lines.append(f"# HELP {base} repro histogram {name}")
        lines.append(f"# TYPE {base} summary")
        block = _label_block(labels, {"metric": name})
        assert isinstance(summary, Mapping)
        lines.append(
            f"{base}_count{block} {_format_value(int(summary['count']))}")
        lines.append(
            f"{base}_sum{block} {_format_value(float(summary['total']))}")
        lines.append(
            f"{base}_min{block} {_format_value(float(summary['min']))}")
        lines.append(
            f"{base}_max{block} {_format_value(float(summary['max']))}")

    return "\n".join(lines) + "\n" if lines else ""


def json_lines(snapshot: "Mapping[str, Mapping[str, object]]") -> str:
    """The snapshot as JSONL: one ``{"type","name",...}`` object per line."""
    lines: "list[str]" = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(json.dumps(
            {"type": "counter", "name": name, "value": int(value)},
            sort_keys=True))
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(json.dumps(
            {"type": "gauge", "name": name, "value": float(value)},
            sort_keys=True))
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        assert isinstance(summary, Mapping)
        lines.append(json.dumps(
            {"type": "histogram", "name": name, **dict(summary)},
            sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> "list[str]":
    """Metric names found in well-formed Prometheus exposition text.

    Raises :class:`ParameterError` on the first malformed line -- this
    is the validator behind the CI prom-lint step, deliberately strict:
    every sample line must parse, every ``# TYPE`` must name a known
    type, and every sample must follow a ``# TYPE`` for its metric
    family.
    """
    names: "list[str]" = []
    typed: "set[str]" = set()
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_RE.match(parts[2]):
                raise ParameterError(f"line {i}: malformed HELP: {line!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]) \
                    or parts[3] not in _TYPES:
                raise ParameterError(f"line {i}: malformed TYPE: {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ParameterError(f"line {i}: malformed sample: {line!r}")
        name = match.group("name")
        label_block = match.group("labels")
        if label_block is not None:
            body = label_block[1:-1]
            for part in body.split(","):
                if part and not _LABEL_RE.match(part):
                    raise ParameterError(
                        f"line {i}: malformed label {part!r}")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ParameterError(
                    f"line {i}: non-numeric value {value!r}") from None
        family = name
        for suffix in ("_count", "_sum", "_min", "_max",
                       "_bucket", "_total"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        if family not in typed and name not in typed:
            raise ParameterError(
                f"line {i}: sample {name!r} precedes its # TYPE")
        names.append(name)
    return names


def write_metrics(snapshot: "Mapping[str, Mapping[str, object]]",
                  path: str, fmt: "str | None" = None, *,
                  labels: "Mapping[str, str] | None" = None) -> str:
    """Write the snapshot to ``path``; returns the format used.

    ``fmt`` is ``"prom"`` or ``"jsonl"``; when None it is inferred from
    the path suffix (``.prom``/``.txt`` -> Prometheus, ``.jsonl``/
    ``.json`` -> JSON lines).
    """
    if fmt is None:
        lowered = path.lower()
        if lowered.endswith((".prom", ".txt")):
            fmt = "prom"
        elif lowered.endswith((".jsonl", ".json")):
            fmt = "jsonl"
        else:
            raise ParameterError(
                f"cannot infer metrics format from {path!r}; "
                "pass fmt='prom' or fmt='jsonl'")
    if fmt == "prom":
        payload = prometheus_text(snapshot, labels=labels)
    elif fmt == "jsonl":
        payload = json_lines(snapshot)
    else:
        raise ParameterError(
            f"unknown metrics format {fmt!r} (expected 'prom' or 'jsonl')")
    # Exporters are scrape targets: a kill mid-write must leave the
    # previous scrape intact, never a truncated exposition.
    atomic_write_text(path, payload)
    return fmt
