"""Trace event schema: the vocabulary every JSONL trace must speak.

Every record a :class:`repro.obs.trace.Tracer` emits carries the common
fields ``event`` (kind), ``seq`` (monotone int), ``t`` (wall-clock
float) and ``span`` (innermost open span id or None), plus kind-specific
required fields listed in :data:`EVENT_FIELDS`.  Extra fields are always
allowed (emitters attach context like ``tick`` freely); unknown event
kinds and missing or mistyped required fields are errors.

The CI obs-smoke job and ``tools/trace_report.py --validate`` run every
emitted event through :func:`validate_event`.

Schema versioning of enrichments: fields added to an *existing* kind
after its first release go into :data:`EVENT_OPTIONAL_FIELDS`, not
:data:`EVENT_FIELDS` -- they are type-checked only when present, so
traces recorded before the enrichment stay ``--validate``-green.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

__all__ = ["EVENT_FIELDS", "EVENT_KINDS", "EVENT_OPTIONAL_FIELDS",
           "SPAN_NAMES", "validate_event", "validate_events"]

#: The span hierarchy (outermost to innermost): a run contains ticks,
#: a tick contains per-node delivery spans and drain/ingest phases.
SPAN_NAMES = ("run", "tick", "node", "phase")

_INT = "int"
_OPT_INT = "int|none"
_FLOAT = "float"
_STR = "str"
_BOOL = "bool"

#: event kind -> {required field: type tag}.  Common fields are checked
#: separately and omitted here.
EVENT_FIELDS: "Mapping[str, Mapping[str, str]]" = MappingProxyType({
    # span structure
    "span_open": {"id": _INT, "name": _STR, "parent": _OPT_INT},
    "span_close": {"id": _INT},
    # message plane (mirrors MessageCounter record sites exactly)
    "message.send": {"kind": _STR, "sender": _INT, "dest": _INT,
                     "words": _INT},
    "message.deliver": {"kind": _STR, "dest": _INT},
    "message.drop": {"kind": _STR, "reason": _STR},
    # reliable-transport lifecycle
    "transport.retransmit": {"seq_no": _INT, "attempt": _INT},
    "transport.expire": {"seq_no": _INT},
    "transport.park": {"seq_no": _INT, "dest": _INT},
    "transport.park_evict": {"seq_no": _INT, "dest": _INT},
    "transport.flush": {"seq_no": _INT, "dest": _INT},
    "transport.sender_crash": {"seq_no": _INT, "sender": _INT},
    # election / bearer repair
    "election.handoff": {"leader": _INT, "new_bearer": _INT,
                         "reason": _STR},
    # chain-sample maintenance
    "sample.evict": {"count": _INT},
    # estimator lifecycle
    "estimator.rebuild": {"sample_size": _INT, "dur_s": _FLOAT},
    # detection decisions
    "detector.flag": {"node": _INT, "level": _INT, "origin": _INT,
                      "tick": _INT},
    "detector.check": {"node": _INT, "level": _INT, "origin": _INT,
                       "flagged": _BOOL},
    "detector.model_update": {"node": _INT, "policy": _STR,
                              "full": _BOOL},
    "detector.pause": {"node": _INT, "tick": _INT},
    # model-health monitoring (repro.obs.health)
    "health.check": {"tick": _INT, "n_nodes": _INT},
    "health.node": {"node": _INT, "tick": _INT, "score": _FLOAT},
    "health.drift": {"node": _INT, "tick": _INT, "l1": _FLOAT,
                     "linf": _FLOAT},
    "health.slo_violation": {"node": _INT, "tick": _INT, "rule": _STR},
    # supervised engine checkpoint/recovery (repro.engine)
    "engine.checkpoint": {"tick": _INT, "n_bytes": _INT, "dur_s": _FLOAT},
    "engine.restore": {"tick": _INT, "checkpoint_tick": _INT,
                       "dur_s": _FLOAT},
    "engine.replay": {"tick": _INT, "n_ticks": _INT, "dur_s": _FLOAT},
    # detection lineage (repro.obs.lineage)
    "lineage.ingest": {"node": _INT, "tick": _INT},
    "lineage.model_merge": {"node": _INT, "tick": _INT,
                            "model_seq": _INT},
    "lineage.detect": {"node": _INT, "level": _INT, "origin": _INT,
                       "reading_tick": _INT, "flag_tick": _INT,
                       "latency": _INT},
})

EVENT_KINDS = frozenset(EVENT_FIELDS)

#: event kind -> {optional field: type tag}.  These are enrichments
#: added after the kind first shipped; validation type-checks them only
#: when present so pre-enrichment traces keep validating.
EVENT_OPTIONAL_FIELDS: "Mapping[str, Mapping[str, str]]" = \
    MappingProxyType({
        # Lineage enrichment (PR 9): the decision inputs and the
        # event-time -> flag-time latency of each flag.
        "detector.flag": {"prob": _FLOAT, "threshold": _FLOAT,
                          "model_seq": _INT, "reading_tick": _INT,
                          "flag_tick": _INT, "latency": _INT,
                          "staleness": _INT},
        "lineage.detect": {"prob": _FLOAT, "threshold": _FLOAT,
                           "model_seq": _INT, "staleness": _INT},
        # Causal context threaded onto the message plane for
        # OutlierReport-bearing envelopes.
        "message.send": {"seq_no": _INT, "origin": _INT,
                         "reading_tick": _INT},
        "message.deliver": {"seq_no": _INT, "origin": _INT,
                            "reading_tick": _INT},
        "message.drop": {"seq_no": _INT, "origin": _INT,
                         "reading_tick": _INT},
        "transport.retransmit": {"origin": _INT, "reading_tick": _INT},
        "transport.expire": {"origin": _INT, "reading_tick": _INT},
        "transport.park": {"origin": _INT, "reading_tick": _INT},
        "transport.park_evict": {"origin": _INT, "reading_tick": _INT},
        "transport.flush": {"origin": _INT, "reading_tick": _INT},
        "transport.sender_crash": {"origin": _INT, "reading_tick": _INT},
    })


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_type(value: object, tag: str) -> bool:
    if tag == _INT:
        return _is_int(value)
    if tag == _OPT_INT:
        return value is None or _is_int(value)
    if tag == _FLOAT:
        return (isinstance(value, float)
                or (_is_int(value)))
    if tag == _STR:
        return isinstance(value, str)
    if tag == _BOOL:
        return isinstance(value, bool)
    raise AssertionError(f"unknown type tag {tag!r}")  # pragma: no cover


def validate_event(record: "Mapping[str, object]") -> "list[str]":
    """Problems with one event record; empty list means valid."""
    problems: "list[str]" = []
    kind = record.get("event")
    if not isinstance(kind, str):
        return [f"event kind missing or not a string: {kind!r}"]
    if kind not in EVENT_KINDS:
        return [f"unknown event kind {kind!r}"]
    if not _is_int(record.get("seq")):
        problems.append(f"{kind}: 'seq' missing or not an int")
    t = record.get("t")
    if not (isinstance(t, float) or _is_int(t)):
        problems.append(f"{kind}: 't' missing or not a number")
    span = record.get("span", "missing")
    if not (span is None or _is_int(span)):
        problems.append(f"{kind}: 'span' must be an int or None")
    for field, tag in EVENT_FIELDS[kind].items():
        if field not in record:
            problems.append(f"{kind}: required field {field!r} missing")
        elif not _check_type(record[field], tag):
            problems.append(
                f"{kind}: field {field!r} has wrong type "
                f"({type(record[field]).__name__}, wanted {tag})")
    for field, tag in EVENT_OPTIONAL_FIELDS.get(kind, {}).items():
        if field in record and not _check_type(record[field], tag):
            problems.append(
                f"{kind}: optional field {field!r} has wrong type "
                f"({type(record[field]).__name__}, wanted {tag})")
    if kind == "span_open" and record.get("name") not in SPAN_NAMES:
        problems.append(
            f"span_open: name {record.get('name')!r} not in {SPAN_NAMES}")
    return problems


def validate_events(
        records: "list[Mapping[str, object]]") -> "list[str]":
    """Problems across a whole trace, each prefixed with its index."""
    problems: "list[str]" = []
    for i, record in enumerate(records):
        for problem in validate_event(record):
            problems.append(f"[{i}] {problem}")
    return problems
