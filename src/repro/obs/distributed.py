"""Distributed telemetry: per-worker trace spools and deterministic merge.

The single-process observability stack (:mod:`repro.obs.trace`,
:mod:`repro.obs.metrics`) assumes one ring, one registry, one sink.
This module makes it span processes, following the per-site-summary /
coordinator shape of the Papapetrou et al. sketch paper (PAPERS.md):

* **Spools** -- each worker writes its own JSONL spool file under a run
  directory: a provenance *header* line (worker id, pid, host, python),
  then schema-valid event lines streamed by the worker's
  :class:`~repro.obs.trace.Tracer` sink, then a *footer* line recording
  emission totals, per-kind ring-overflow drops and the worker's
  :class:`~repro.network.messages.MessageCounter` totals.  A spool with
  a torn final line (the worker died mid-write) is recovered up to the
  tear -- tolerated and counted, mirroring the PR-8 journal discipline;
  corruption *before* the tail is fatal.

* **Merge** -- :func:`merge_spools` stitches N spools into one coherent
  trace under a stable total order on ``(tick, worker_id, seq)``, where
  ``tick`` is each worker's monotone high-water tick at emission time
  (so a worker's own ``seq`` order is never reordered, and workers
  interleave by simulation progress, not wall clock).  Per-worker span
  ids are offset into disjoint ranges, global ``seq`` is renumbered in
  merge order, and every event gains ``worker_id``/``worker_seq``
  provenance.  The output is plain event JSONL: schema validation,
  ``tools/trace_report.py`` and ``repro explain`` all consume it
  unchanged.  Merging the same spools in any input order is
  byte-identical.

* **Global conservation** -- :func:`conservation_failures` checks the
  PR-4 identity fleet-wide: per-kind ``message.send`` / ``.deliver`` /
  ``.drop`` events in the merged trace must equal the *sum* of all
  workers' MessageCounter totals exactly, and ``sent == delivered +
  dropped`` must hold on the summed totals.
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import socket
import time
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro._artifacts import atomic_write_text
from repro._exceptions import ParameterError, SnapshotError

__all__ = [
    "MergedTrace",
    "SPOOL_MAGIC",
    "SPOOL_VERSION",
    "Spool",
    "append_spool_footer",
    "conservation_failures",
    "counter_totals",
    "is_spool_file",
    "load_metrics_snapshots",
    "load_spool",
    "load_spools",
    "load_trace",
    "load_trace_meta",
    "merge_spools",
    "spool_path",
    "sum_counter_totals",
    "worker_trace_sink",
    "write_merged",
    "write_spool_header",
]

#: Spool format marker + version, stamped into every header line.
SPOOL_MAGIC = "repro-spool"
SPOOL_VERSION = 1

#: The counter-totals dict shape shared by footers and metrics files.
_COUNTER_KEYS = ("counts", "delivered", "dropped", "words")


def spool_path(run_dir: "str | Path", worker_id: int) -> Path:
    """Canonical spool file path for ``worker_id`` under ``run_dir``."""
    return Path(run_dir) / f"worker-{int(worker_id):04d}.spool.jsonl"


def counter_totals(counter: object) -> "dict[str, dict[str, int]]":
    """A MessageCounter's per-kind totals as a plain JSON-able dict."""
    totals: "dict[str, dict[str, int]]" = {}
    for key in _COUNTER_KEYS:
        table = getattr(counter, key, None)
        if not isinstance(table, Mapping):
            raise ParameterError(
                f"counter object lacks mapping attribute {key!r}")
        totals[key] = {str(kind): int(n) for kind, n in sorted(table.items())}
    return totals


def sum_counter_totals(
        totals: "Iterable[Mapping[str, Mapping[str, int]]]",
) -> "dict[str, dict[str, int]]":
    """Element-wise sum of per-worker counter totals (fleet totals)."""
    out: "dict[str, dict[str, int]]" = {key: {} for key in _COUNTER_KEYS}
    for table in totals:
        for key in _COUNTER_KEYS:
            for kind, n in table.get(key, {}).items():
                out[key][str(kind)] = out[key].get(str(kind), 0) + int(n)
    return out


# ----------------------------------------------------------------------
# spool writing


def write_spool_header(path: "str | Path", worker_id: int,
                       **extra: object) -> Path:
    """Create a spool file holding just the provenance header line."""
    header: "dict[str, object]" = {
        "spool": SPOOL_MAGIC,
        "version": SPOOL_VERSION,
        "worker_id": int(worker_id),
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "python": platform.python_version(),
        "created_t": time.time(),
    }
    header.update(extra)
    target = Path(path)
    target.write_text(
        json.dumps({"spool_header": header}, sort_keys=True) + "\n",
        encoding="utf-8")
    return target


def append_spool_footer(path: "str | Path", worker_id: int, *,
                        n_emitted: int,
                        ring_dropped_by_kind: "Mapping[str, int]",
                        counter: "Mapping[str, Mapping[str, int]] | None",
                        ) -> None:
    """Append the closing footer line to a finished spool."""
    footer: "dict[str, object]" = {
        "worker_id": int(worker_id),
        "n_emitted": int(n_emitted),
        "ring_dropped": int(sum(ring_dropped_by_kind.values())),
        "ring_dropped_by_kind": dict(sorted(ring_dropped_by_kind.items())),
        "counter": dict(counter) if counter is not None else None,
    }
    with open(path, "a", encoding="utf-8") as sink:
        sink.write(json.dumps({"spool_footer": footer}, sort_keys=True) + "\n")


@contextlib.contextmanager
def worker_trace_sink(run_dir: "str | Path", worker_id: int, *,
                      counter: "object | None" = None,
                      ) -> "Iterator[Path]":
    """Scoped spooled tracing for one worker process.

    Resets the process-local :mod:`repro.obs` singletons (each worker
    owns its telemetry -- no state leaks in from a previous run in the
    same process), writes the spool header, opens the tracer sink in
    append mode behind it, activates tracing for the scope, and on exit
    closes the sink and appends the footer (emission totals, per-kind
    ring drops, and ``counter``'s totals when one is given).
    """
    from repro import obs

    run = Path(run_dir)
    run.mkdir(parents=True, exist_ok=True)
    path = spool_path(run, worker_id)
    write_spool_header(path, worker_id)
    obs.reset()
    with obs.enabled():
        obs.tracer().open_sink(str(path), append=True)
        try:
            yield path
        finally:
            tracer = obs.tracer()
            n_emitted = tracer.n_emitted
            dropped = tracer.dropped_by_kind()
            tracer.close_sink()
            append_spool_footer(
                path, worker_id, n_emitted=n_emitted,
                ring_dropped_by_kind=dropped,
                counter=counter_totals(counter)
                if counter is not None else None)


# ----------------------------------------------------------------------
# spool reading


class Spool:
    """One worker's recovered spool: header, events, optional footer."""

    def __init__(self, worker_id: int, header: "dict[str, object]",
                 events: "list[dict[str, object]]",
                 footer: "dict[str, object] | None",
                 n_torn: int = 0,
                 path: "Path | None" = None) -> None:
        self.worker_id = int(worker_id)
        self.header = header
        self.events = events
        self.footer = footer
        self.n_torn = int(n_torn)
        self.path = path

    @property
    def clean(self) -> bool:
        """True when the spool closed properly: footer present, no tear."""
        return self.footer is not None and self.n_torn == 0

    @property
    def counter(self) -> "dict[str, dict[str, int]] | None":
        """The worker's MessageCounter totals from the footer, if any."""
        if self.footer is None:
            return None
        totals = self.footer.get("counter")
        if not isinstance(totals, Mapping):
            return None
        return {str(key): {str(k): int(v) for k, v in table.items()}
                for key, table in totals.items()
                if isinstance(table, Mapping)}

    @property
    def ring_dropped_by_kind(self) -> "dict[str, int]":
        """Per-kind ring-overflow drops the worker reported, if any."""
        if self.footer is None:
            return {}
        table = self.footer.get("ring_dropped_by_kind")
        if not isinstance(table, Mapping):
            return {}
        return {str(k): int(v) for k, v in table.items()}


def is_spool_file(path: "str | Path") -> bool:
    """True when ``path``'s first line is a spool header."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
    except OSError:
        return False
    try:
        record = json.loads(first)
    except json.JSONDecodeError:
        return False
    return isinstance(record, dict) and "spool_header" in record


def load_spool(path: "str | Path") -> Spool:
    """Parse one spool file, recovering a torn tail.

    The journal discipline of :mod:`repro.engine.journal`, applied to
    JSONL: a final line that fails to parse is a *tear* (the worker
    died mid-write) -- dropped and counted in ``n_torn``, never
    propagated.  A line that fails to parse *before* the tail means the
    file was corrupted, not torn, and raises :class:`SnapshotError`.
    A missing footer (worker never closed the spool) leaves
    ``footer=None`` and ``clean=False``.
    """
    target = Path(path)
    raw_lines = target.read_text(encoding="utf-8").splitlines()
    lines = [line for line in raw_lines if line.strip()]
    if not lines:
        raise ParameterError(f"{target}: empty file is not a spool")

    def parse(i: int, line: str) -> "dict[str, object] | None":
        """The parsed record, or None for a tolerated torn tail."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                return None
            raise SnapshotError(
                f"{target}: corrupt spool line {i + 1} "
                "(interior damage, not a torn tail)") from None
        if not isinstance(record, dict):
            raise SnapshotError(
                f"{target}: spool line {i + 1} is not a JSON object")
        return record

    head = parse(0, lines[0])
    if head is None or "spool_header" not in head:
        raise ParameterError(f"{target}: missing spool header line")
    header = head["spool_header"]
    if not isinstance(header, dict) or header.get("spool") != SPOOL_MAGIC:
        raise ParameterError(f"{target}: malformed spool header")
    version = header.get("version")
    if version != SPOOL_VERSION:
        raise ParameterError(
            f"{target}: unsupported spool version {version!r} "
            f"(this reader speaks {SPOOL_VERSION})")
    worker_id = header.get("worker_id")
    if not isinstance(worker_id, int) or isinstance(worker_id, bool):
        raise ParameterError(f"{target}: spool header lacks a worker_id")

    events: "list[dict[str, object]]" = []
    footer: "dict[str, object] | None" = None
    n_torn = 0
    for i, line in enumerate(lines[1:], start=1):
        record = parse(i, line)
        if record is None:
            n_torn += 1
            break
        if footer is not None:
            raise SnapshotError(
                f"{target}: data after spool footer (line {i + 1})")
        if "spool_footer" in record:
            body = record["spool_footer"]
            if not isinstance(body, dict):
                raise SnapshotError(f"{target}: malformed spool footer")
            footer = body
        elif "spool_header" in record:
            raise SnapshotError(
                f"{target}: second spool header at line {i + 1}")
        elif isinstance(record.get("event"), str):
            events.append(record)
        else:
            raise SnapshotError(
                f"{target}: line {i + 1} is neither an event nor a footer")
    return Spool(worker_id, header, events, footer,
                 n_torn=n_torn, path=target)


def load_spools(run_dir: "str | Path") -> "list[Spool]":
    """All spools under a run directory, ordered by worker id."""
    run = Path(run_dir)
    paths = sorted(run.glob("worker-*.spool.jsonl"))
    if not paths:
        raise ParameterError(f"{run}: no worker-*.spool.jsonl spools found")
    spools = [load_spool(path) for path in paths]
    seen: "dict[int, Path]" = {}
    for spool in spools:
        if spool.worker_id in seen:
            raise ParameterError(
                f"duplicate worker_id {spool.worker_id} in "
                f"{seen[spool.worker_id]} and {spool.path}")
        assert spool.path is not None
        seen[spool.worker_id] = spool.path
    return sorted(spools, key=lambda s: s.worker_id)


# ----------------------------------------------------------------------
# merge


class MergedTrace:
    """The result of merging worker spools into one coherent trace."""

    def __init__(self, events: "list[dict[str, object]]",
                 worker_ids: "list[int]",
                 ring_dropped_by_worker: "dict[int, dict[str, int]]",
                 torn_by_worker: "dict[int, int]",
                 counter_totals_summed:
                 "dict[str, dict[str, int]] | None") -> None:
        self.events = events
        self.worker_ids = worker_ids
        self.ring_dropped_by_worker = ring_dropped_by_worker
        self.torn_by_worker = torn_by_worker
        self.counter_totals = counter_totals_summed

    @property
    def clean(self) -> bool:
        """True when no contributing spool was torn."""
        return not any(self.torn_by_worker.values())

    @property
    def n_ring_dropped(self) -> int:
        """Total ring-evicted events across all workers."""
        return sum(sum(table.values())
                   for table in self.ring_dropped_by_worker.values())


def _event_tick(record: "Mapping[str, object]") -> "int | None":
    tick = record.get("tick")
    if isinstance(tick, int) and not isinstance(tick, bool):
        return tick
    return None


def merge_spools(spools: "Sequence[Spool]") -> MergedTrace:
    """Stitch N worker spools into one deterministically ordered trace.

    Ordering key per event: ``(tick, worker_id, seq)`` where ``tick``
    is the worker's monotone *high-water* tick at emission time (the
    max ``tick`` field seen so far in that worker's spool; -1 before
    any).  The high-water carry -- rather than each event's own tick --
    matters because late events legitimately reference old ticks (a
    coordinator delivering a reading flagged long ago): sorting on raw
    ticks would reorder a worker's own sequence and break the lineage
    reconstruction's "no hops from the future" ``seq`` horizon.  With
    the carry, each worker's ``seq`` order is preserved exactly and
    workers interleave by simulation progress.

    The merged events are renumbered: ``seq`` becomes the global merge
    order (so downstream consumers keep their monotone-``seq``
    assumption), the original per-worker value moves to ``worker_seq``,
    ``worker_id`` is stamped on every event, and span ids are offset
    into per-worker disjoint ranges so ``span_open``/``span_close``
    pairs stay unambiguous.  Input order is irrelevant: spools are
    sorted by worker id first, so the output is byte-identical for any
    permutation of the same spools.
    """
    ordered = sorted(spools, key=lambda s: s.worker_id)
    seen_ids = [s.worker_id for s in ordered]
    if len(set(seen_ids)) != len(seen_ids):
        raise ParameterError(
            f"duplicate worker ids in spools: {seen_ids}")

    # Disjoint span-id ranges: worker w's span ids shift by the total
    # span-id space of all lower-numbered workers.
    span_base: "dict[int, int]" = {}
    base = 0
    for spool in ordered:
        span_base[spool.worker_id] = base
        max_span = -1
        for record in spool.events:
            if record.get("event") == "span_open":
                span_id = record.get("id")
                if isinstance(span_id, int) and not isinstance(span_id, bool):
                    max_span = max(max_span, span_id)
        base += max_span + 1

    keyed: "list[tuple[int, int, int, dict[str, object]]]" = []
    for spool in ordered:
        high_water = -1
        for record in spool.events:
            tick = _event_tick(record)
            if tick is not None and tick > high_water:
                high_water = tick
            seq = record.get("seq")
            if not isinstance(seq, int) or isinstance(seq, bool):
                raise ParameterError(
                    f"spool worker {spool.worker_id}: event without an "
                    f"int 'seq': {record.get('event')!r}")
            keyed.append((high_water, spool.worker_id, seq, record))
    keyed.sort(key=lambda item: item[:3])

    events: "list[dict[str, object]]" = []
    for global_seq, (_, worker_id, worker_seq, record) in enumerate(keyed):
        merged = dict(record)
        merged["seq"] = global_seq
        merged["worker_id"] = worker_id
        merged["worker_seq"] = worker_seq
        offset = span_base[worker_id]
        if offset:
            span = merged.get("span")
            if isinstance(span, int) and not isinstance(span, bool):
                merged["span"] = span + offset
            if merged.get("event") in ("span_open", "span_close"):
                span_id = merged.get("id")
                if isinstance(span_id, int) and not isinstance(span_id, bool):
                    merged["id"] = span_id + offset
            if merged.get("event") == "span_open":
                parent = merged.get("parent")
                if isinstance(parent, int) and not isinstance(parent, bool):
                    merged["parent"] = parent + offset
        events.append(merged)

    counters = [s.counter for s in ordered]
    present = [c for c in counters if c is not None]
    return MergedTrace(
        events=events,
        worker_ids=seen_ids,
        ring_dropped_by_worker={s.worker_id: s.ring_dropped_by_kind
                                for s in ordered},
        torn_by_worker={s.worker_id: s.n_torn for s in ordered},
        counter_totals_summed=sum_counter_totals(present)
        if len(present) == len(ordered) and present else None)


def write_merged(events: "Sequence[Mapping[str, object]]",
                 path: "str | Path") -> Path:
    """Write merged events as plain JSONL (sorted keys -> stable bytes)."""
    payload = "".join(json.dumps(dict(record), sort_keys=True) + "\n"
                      for record in events)
    return atomic_write_text(path, payload)


# ----------------------------------------------------------------------
# global conservation


def conservation_failures(
        events: "Sequence[Mapping[str, object]]",
        totals: "Mapping[str, Mapping[str, int]]") -> "list[str]":
    """Violations of the global per-kind conservation identity.

    Checks, per message kind, that the merged trace's ``message.send``
    / ``message.deliver`` / ``message.drop`` event counts (and summed
    send words) equal the fleet-summed MessageCounter ``totals``
    *exactly*, and that ``sent == delivered + dropped`` holds on the
    totals.  Empty list means the books balance.
    """
    observed: "dict[str, dict[str, int]]" = {}
    for record in events:
        kind = record.get("event")
        if kind not in ("message.send", "message.deliver", "message.drop"):
            continue
        mkind = str(record.get("kind"))
        row = observed.setdefault(
            mkind, {"send": 0, "deliver": 0, "drop": 0, "words": 0})
        verb = str(kind).split(".", 1)[1]
        row[verb] += 1
        if verb == "send":
            words = record.get("words")
            if isinstance(words, int) and not isinstance(words, bool):
                row["words"] += words

    failures: "list[str]" = []
    kinds = sorted(set(observed)
                   | set(totals.get("counts", {}))
                   | set(totals.get("delivered", {}))
                   | set(totals.get("dropped", {})))
    for mkind in kinds:
        row = observed.get(
            mkind, {"send": 0, "deliver": 0, "drop": 0, "words": 0})
        sent = int(totals.get("counts", {}).get(mkind, 0))
        delivered = int(totals.get("delivered", {}).get(mkind, 0))
        dropped = int(totals.get("dropped", {}).get(mkind, 0))
        words = int(totals.get("words", {}).get(mkind, 0))
        if row["send"] != sent:
            failures.append(
                f"{mkind}: trace has {row['send']} send event(s) but "
                f"counters say {sent}")
        if row["deliver"] != delivered:
            failures.append(
                f"{mkind}: trace has {row['deliver']} deliver event(s) "
                f"but counters say {delivered}")
        if row["drop"] != dropped:
            failures.append(
                f"{mkind}: trace has {row['drop']} drop event(s) but "
                f"counters say {dropped}")
        if row["words"] != words:
            failures.append(
                f"{mkind}: trace send words {row['words']} != counter "
                f"words {words}")
        if sent != delivered + dropped:
            failures.append(
                f"{mkind}: sent {sent} != delivered {delivered} + "
                f"dropped {dropped}")
    return failures


# ----------------------------------------------------------------------
# unified loading (file | spool | run directory)


def load_trace_meta(
        path: "str | Path",
) -> "tuple[list[dict[str, object]], dict[str, object]]":
    """Events plus distributed-telemetry meta for any trace source.

    ``path`` may be a plain JSONL trace file, a single worker spool, or
    a run directory of spools (merged on the fly).  The meta dict is
    empty for plain traces; for spool sources it carries worker ids,
    per-worker ring drops, torn-tail counts and (when every footer is
    present) the fleet-summed counter totals.
    """
    target = Path(path)
    if target.is_dir():
        merged = merge_spools(load_spools(target))
        return merged.events, _merged_meta(merged)
    if is_spool_file(target):
        merged = merge_spools([load_spool(target)])
        return merged.events, _merged_meta(merged)
    from repro.obs import report
    return report.load_events(str(target)), {}


def _merged_meta(merged: MergedTrace) -> "dict[str, object]":
    return {
        "worker_ids": list(merged.worker_ids),
        "ring_dropped_by_worker": {
            str(w): dict(table)
            for w, table in merged.ring_dropped_by_worker.items()},
        "n_ring_dropped": merged.n_ring_dropped,
        "torn_by_worker": {str(w): n
                           for w, n in merged.torn_by_worker.items()},
        "clean": merged.clean,
        "counter_totals": merged.counter_totals,
    }


def load_trace(path: "str | Path") -> "list[dict[str, object]]":
    """Events for any trace source (plain file, spool, or run dir)."""
    events, _ = load_trace_meta(path)
    return events


def load_metrics_snapshots(
        paths: "Sequence[str | Path]",
) -> "list[dict[str, object]]":
    """Metrics snapshots from files and/or directories, merge-ready.

    Accepts, per path: a metrics snapshot JSON file (the
    ``MetricsRegistry.snapshot()`` shape), a worker metrics document
    wrapping one under a ``"metrics"`` key (what the fleet pilot
    writes), or a directory -- scanned for ``*.metrics.json`` files.
    """
    snapshots: "list[dict[str, object]]" = []
    for entry in paths:
        target = Path(entry)
        if target.is_dir():
            files = sorted(target.glob("*.metrics.json"))
            if not files:
                raise ParameterError(
                    f"{target}: no *.metrics.json files found")
            snapshots.extend(load_metrics_snapshots(files))
            continue
        try:
            document = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ParameterError(
                f"cannot read metrics snapshot {target}: {exc}") from exc
        if not isinstance(document, dict):
            raise ParameterError(
                f"{target}: metrics snapshot must be a JSON object")
        inner = document.get("metrics", document)
        if not isinstance(inner, dict) or not (
                "counters" in inner or "gauges" in inner
                or "histograms" in inner):
            raise ParameterError(
                f"{target}: no metrics snapshot found "
                "(expected counters/gauges/histograms)")
        snapshots.append(inner)
    return snapshots
