"""Radio energy accounting for simulated deployments.

The paper motivates everything by energy: "it is important to process as
much of the data as possible in a decentralized fashion, so as to avoid
unnecessary communication ... costs".  Figure 11 counts messages; this
module extends the accounting to Joules with the standard first-order
radio model (Heinzelman et al.):

    E_tx(k bits over distance d) = E_elec * k + eps_amp * k * d^2
    E_rx(k bits)                 = E_elec * k

Distances come from the deployment positions of
:class:`~repro.network.topology.Hierarchy`; message sizes from each
message's :meth:`~repro.network.messages.Message.size_words` (16-bit
words).  Pass an :class:`EnergyAccountant` to the
:class:`~repro.network.simulator.NetworkSimulator` to accumulate
per-node energy alongside the message counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._exceptions import ParameterError
from repro._validation import require_positive
from repro.network.messages import Message
from repro.network.topology import Hierarchy

__all__ = ["RadioModel", "EnergyAccountant"]

#: Bits per machine word (the paper's 16-bit architecture).
BITS_PER_WORD = 16


@dataclass(frozen=True)
class RadioModel:
    """First-order radio energy parameters.

    Defaults are the classic LEACH-era constants: 50 nJ/bit electronics,
    100 pJ/bit/m^2 amplifier.  ``range_scale`` converts the unit-square
    deployment coordinates into metres (default: a 100 m field).
    """

    electronics_j_per_bit: float = 50e-9
    amplifier_j_per_bit_m2: float = 100e-12
    range_scale_m: float = 100.0

    def __post_init__(self) -> None:
        require_positive("electronics_j_per_bit", self.electronics_j_per_bit)
        require_positive("amplifier_j_per_bit_m2", self.amplifier_j_per_bit_m2)
        require_positive("range_scale_m", self.range_scale_m)

    def transmit_energy(self, bits: int, distance_m: float) -> float:
        """Energy to transmit ``bits`` over ``distance_m`` metres."""
        if bits < 0 or distance_m < 0:
            raise ParameterError("bits and distance must be non-negative")
        return (self.electronics_j_per_bit * bits
                + self.amplifier_j_per_bit_m2 * bits * distance_m**2)

    def receive_energy(self, bits: int) -> float:
        """Energy to receive ``bits``."""
        if bits < 0:
            raise ParameterError("bits must be non-negative")
        return self.electronics_j_per_bit * bits


class EnergyAccountant:
    """Accumulates per-node radio energy over a simulated run."""

    def __init__(self, hierarchy: Hierarchy,
                 radio: RadioModel | None = None) -> None:
        self._radio = radio if radio is not None else RadioModel()
        self._positions = hierarchy.positions
        self._spent: "dict[int, float]" = {node: 0.0
                                           for node in hierarchy.parents}

    @property
    def radio(self) -> RadioModel:
        """The radio parameters in use."""
        return self._radio

    def distance_m(self, sender: int, receiver: int) -> float:
        """Physical distance between two nodes, in metres."""
        sx, sy = self._positions[sender]
        rx, ry = self._positions[receiver]
        return math.hypot(sx - rx, sy - ry) * self._radio.range_scale_m

    def record(self, sender: int, receiver: int, message: Message,
               delivered: bool = True) -> None:
        """Account one transmission: tx cost at the sender, and -- when
        the message actually arrived -- rx cost at the receiver."""
        bits = message.size_words() * BITS_PER_WORD
        distance = self.distance_m(sender, receiver)
        self._spent[sender] = self._spent.get(sender, 0.0) \
            + self._radio.transmit_energy(bits, distance)
        if delivered:
            self._spent[receiver] = self._spent.get(receiver, 0.0) \
                + self._radio.receive_energy(bits)

    def spent(self, node: int) -> float:
        """Joules spent by one node so far."""
        return self._spent.get(node, 0.0)

    def total_joules(self) -> float:
        """Network-wide energy spent."""
        return sum(self._spent.values())

    def max_joules(self) -> float:
        """The hottest node's spend -- the network-lifetime bottleneck."""
        return max(self._spent.values(), default=0.0)

    def per_node(self) -> "dict[int, float]":
        """A copy of the per-node energy map."""
        return dict(self._spent)
