"""Reliable per-hop transport: acks, bounded retransmission, parking.

The sketch-based distributed-streams literature (PAPERS.md,
arXiv:1207.0139) costs communication protocols *under retransmission*;
the paper's own Figure 11 message curves are only honest under loss if
every retry and acknowledgement is charged.  This module provides the
ack/retransmit shim the :class:`~repro.network.simulator.NetworkSimulator`
inserts between node behaviours and its ``_drain`` loop when given a
:class:`TransportConfig`:

* every data message gets a sequence number and is tracked until a
  per-hop :class:`~repro.network.messages.Ack` returns;
* a missing ack triggers retransmission after a tick-based exponential
  backoff, up to ``max_retries`` retransmissions, after which the
  message is given up on ("expired");
* the receiver side deduplicates by sequence number, so a retransmitted
  message whose first copy *did* arrive (only the ack was lost) is
  re-acked but not re-processed -- behaviours see exactly-once delivery
  while the counters see every physical attempt;
* messages addressed to a crashed node are *parked* (buffered at the
  sender, costing nothing) and flushed when the node recovers -- the
  Section 2 leaves buffering for a dead parent.  The park buffer is
  bounded by ``TransportConfig.max_parked``: overflow evicts the oldest
  parked message, charged honestly as a drop (reason ``park-evict``).

Every attempt, ack and retransmission is charged to the simulator's
:class:`~repro.network.messages.MessageCounter` and (when configured)
:class:`~repro.network.energy.EnergyAccountant` by the simulator itself;
this module only keeps the protocol state.  All state transitions are
driven by the simulator's deterministic tick loop, so fault runs replay
bit for bit.  See docs/FAULT_MODEL.md for the full protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro._exceptions import ParameterError
from repro._validation import require_positive_int
from repro.network.messages import Message
from repro.obs.lineage import lineage_fields

__all__ = ["TransportConfig", "PendingMessage", "ReliableTransport"]


@dataclass(frozen=True)
class TransportConfig:
    """Parameters of the ack/retransmit protocol.

    ``max_retries`` counts *re*transmissions: a message is attempted at
    most ``1 + max_retries`` times.  The ``k``-th retransmission waits
    ``backoff_base * backoff_factor**(k-1)`` ticks after the failed
    attempt.  ``park_when_crashed`` buffers messages for crashed
    destinations instead of burning retries against a dead radio;
    ``max_parked`` bounds that buffer across all destinations (a real
    sender has finite memory) -- parking beyond the bound evicts the
    *oldest* parked message, which is charged as a drop.  ``None``
    leaves the buffer unbounded.
    """

    max_retries: int = 3
    backoff_base: int = 1
    backoff_factor: int = 2
    park_when_crashed: bool = True
    max_parked: "int | None" = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be >= 0, got {self.max_retries}")
        require_positive_int("backoff_base", self.backoff_base)
        require_positive_int("backoff_factor", self.backoff_factor)
        if self.max_parked is not None:
            require_positive_int("max_parked", self.max_parked)

    def backoff_ticks(self, attempts: int) -> int:
        """Ticks to wait after the ``attempts``-th transmission failed."""
        return self.backoff_base * self.backoff_factor ** max(0, attempts - 1)


@dataclass
class PendingMessage:
    """One tracked data message awaiting acknowledgement."""

    seq: int
    sender: int
    dest: int
    message: Message
    submitted_tick: int
    attempts: int = 0            # transmissions so far
    next_attempt: int = 0        # tick of the next (re)transmission
    parked: bool = False         # buffered while the destination is down
    delivered_to_app: bool = False   # receiver-side dedup flag
    acked: bool = False


@dataclass
class ReliableTransport:
    """Protocol state: the pending table plus lifetime statistics."""

    config: TransportConfig
    _pending: "dict[int, PendingMessage]" = field(default_factory=dict)
    _next_seq: int = 0
    #: Retransmissions performed (attempts beyond each message's first).
    n_retransmissions: int = 0
    #: Messages given up on after exhausting their retry budget.
    n_expired: int = 0
    #: Messages dropped because their sender crashed while they waited.
    n_sender_crashes: int = 0
    #: Parked messages flushed after their destination recovered.
    n_park_flushes: int = 0
    #: Parked messages evicted because the park buffer hit ``max_parked``.
    n_park_evictions: int = 0

    # ------------------------------------------------------------------

    @property
    def n_pending(self) -> int:
        """Messages currently awaiting acknowledgement or parking."""
        return len(self._pending)

    @property
    def n_parked(self) -> int:
        """Messages currently buffered for a crashed destination."""
        return sum(1 for entry in self._pending.values() if entry.parked)

    def submit(self, sender: int, dest: int, message: Message,
               tick: int) -> PendingMessage:
        """Track a new outgoing message; it is due immediately."""
        entry = PendingMessage(seq=self._next_seq, sender=sender, dest=dest,
                               message=message, submitted_tick=tick,
                               next_attempt=tick)
        self._next_seq += 1
        self._pending[entry.seq] = entry
        return entry

    def collect_due(self, tick: int,
                    is_down: "Callable[[int, int], bool]") -> "list[PendingMessage]":
        """Entries to (re)transmit at ``tick``, in submission order.

        Parked entries whose destination recovered are flushed; entries
        whose *sender* is down are dropped (a crash loses the sender's
        volatile retransmission buffer).  Entries submitted mid-tick by
        behaviours are transmitted inline by the simulator and never
        pass through here.
        """
        due: "list[PendingMessage]" = []
        for seq in list(self._pending):
            entry = self._pending[seq]
            if is_down(entry.sender, tick):
                del self._pending[seq]
                self.n_sender_crashes += 1
                if obs.ACTIVE:
                    obs.emit("transport.sender_crash", seq_no=entry.seq,
                             sender=entry.sender, tick=tick,
                             **lineage_fields(entry.message))
                continue
            if entry.parked:
                if not is_down(entry.dest, tick):
                    entry.parked = False
                    entry.next_attempt = tick
                    self.n_park_flushes += 1
                    if obs.ACTIVE:
                        obs.emit("transport.flush", seq_no=entry.seq,
                                 dest=entry.dest, tick=tick,
                                 **lineage_fields(entry.message))
                    due.append(entry)
                continue
            if entry.next_attempt <= tick:
                due.append(entry)
        return due

    def park(self, entry: PendingMessage) -> "PendingMessage | None":
        """Buffer ``entry`` until its destination recovers.

        When the buffer is bounded (``config.max_parked``) and full, the
        oldest parked message (lowest sequence number) is evicted and
        returned so the caller can charge it as a drop; otherwise
        returns ``None``.
        """
        entry.parked = True
        if obs.ACTIVE:
            obs.emit("transport.park", seq_no=entry.seq, dest=entry.dest,
                     tick=entry.submitted_tick,
                     **lineage_fields(entry.message))
        limit = self.config.max_parked
        if limit is None:
            return None
        parked = sorted(seq for seq, e in self._pending.items() if e.parked)
        if len(parked) <= limit:
            return None
        evicted = self._pending.pop(parked[0])
        self.n_park_evictions += 1
        if obs.ACTIVE:
            obs.emit("transport.park_evict", seq_no=evicted.seq,
                     dest=evicted.dest,
                     **lineage_fields(evicted.message))
        return evicted

    def note_attempt(self, entry: PendingMessage) -> None:
        """Account one physical transmission of ``entry``."""
        entry.attempts += 1
        if entry.attempts > 1:
            self.n_retransmissions += 1
            if obs.ACTIVE:
                obs.emit("transport.retransmit", seq_no=entry.seq,
                         attempt=entry.attempts,
                         **lineage_fields(entry.message))
                obs.metrics().counter("transport.retries").inc()

    def acknowledge(self, entry: PendingMessage) -> None:
        """The sender heard the ack: retire the entry."""
        entry.acked = True
        self._pending.pop(entry.seq, None)

    def schedule_or_expire(self, entry: PendingMessage, tick: int) -> bool:
        """After an unacknowledged attempt: back off, or give up.

        Returns ``True`` when a retransmission was scheduled and
        ``False`` when the entry expired (retry budget exhausted).
        """
        if entry.attempts >= 1 + self.config.max_retries:
            self._pending.pop(entry.seq, None)
            self.n_expired += 1
            if obs.ACTIVE:
                obs.emit("transport.expire", seq_no=entry.seq,
                         attempts=entry.attempts, tick=tick,
                         **lineage_fields(entry.message))
            return False
        entry.next_attempt = tick + self.config.backoff_ticks(entry.attempts)
        return True

    def stats(self) -> "dict[str, int]":
        """Lifetime protocol statistics (for benchmarks and reports)."""
        return {
            "retransmissions": self.n_retransmissions,
            "expired": self.n_expired,
            "sender_crashes": self.n_sender_crashes,
            "park_flushes": self.n_park_flushes,
            "park_evictions": self.n_park_evictions,
            "pending": self.n_pending,
            "parked": self.n_parked,
        }
