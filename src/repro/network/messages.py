"""Message taxonomy and accounting (paper Sections 7, 8.1 and 10.3).

Three message kinds move through the hierarchy:

* :class:`ValueForward` -- a sample-changing observation propagated from
  a child to its parent with probability ``f`` (D3 line 15, MGDD line 14);
* :class:`OutlierReport` -- a value a node flagged, escalated to its
  parent for re-checking (D3 lines 19 and 27);
* :class:`ModelUpdate` -- the global-estimator update MGDD floods from
  the top-level leader down to the leaves (MGDD line 23), either an
  incremental single-sample change or a full model re-broadcast (the
  Section 8.1 lazy scheme).

Two further kinds exist only under fault tolerance (docs/FAULT_MODEL.md):

* :class:`Ack` -- the reliable transport's per-hop acknowledgement;
* :class:`ModelHandoff` -- detector state transferred when a leader role
  moves to a new physical bearer (its size is
  :func:`~repro.network.election.handoff_cost_words`).

Sizes are accounted in machine words (16-bit on the paper's motes): a
d-dimensional value costs ``d`` words, plus bookkeeping fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Message",
    "ValueForward",
    "OutlierReport",
    "ModelUpdate",
    "Ack",
    "ModelHandoff",
    "MessageCounter",
]


@dataclass(frozen=True)
class Message:
    """Base class; concrete messages define their payload and size."""

    def size_words(self) -> int:
        """Logical payload size in machine words."""
        raise NotImplementedError


@dataclass(frozen=True)
class ValueForward(Message):
    """A sample inclusion propagated upward with probability ``f``."""

    value: np.ndarray

    def size_words(self) -> int:
        return int(np.asarray(self.value).size) + 1   # value + timestamp


@dataclass(frozen=True)
class OutlierReport(Message):
    """A flagged value escalated for re-checking at the parent's level."""

    value: np.ndarray
    origin: int            # leaf id that produced the reading
    flagged_level: int     # 1-based level of the node that flagged it
    tick: int

    def size_words(self) -> int:
        return int(np.asarray(self.value).size) + 3


@dataclass(frozen=True)
class ModelUpdate(Message):
    """A global-model update flowing down the hierarchy (MGDD).

    ``slots``/``value`` describe an incremental change (these sample
    slots of the global kernel sample were replaced by ``value``);
    ``full_sample`` carries a complete re-broadcast instead (the lazy
    scheme).  ``stddev`` refreshes the bandwidth input either way.
    """

    stddev: np.ndarray
    slots: "tuple[int, ...]" = ()
    value: "np.ndarray | None" = None
    full_sample: "np.ndarray | None" = None
    window_size: int = 0

    def size_words(self) -> int:
        words = int(np.asarray(self.stddev).size) + 1
        if self.value is not None:
            words += int(np.asarray(self.value).size) + len(self.slots)
        if self.full_sample is not None:
            words += int(np.asarray(self.full_sample).size)
        return words


@dataclass(frozen=True)
class Ack(Message):
    """A per-hop transport acknowledgement (reliable transport only).

    Carries the sequence number of the data message it confirms; two
    words on the paper's 16-bit motes (sequence + sender tag).
    """

    seq: int

    def size_words(self) -> int:
        return 2


@dataclass(frozen=True)
class ModelHandoff(Message):
    """Detector state moved to a leader role's new physical bearer.

    ``words`` is the transfer size computed by
    :func:`~repro.network.election.handoff_cost_words` (kernel sample
    plus variance sketches).
    """

    leader: int
    words: int

    def size_words(self) -> int:
        return self.words


@dataclass
class MessageCounter:
    """Counts messages and payload words by message class.

    ``counts``/``words`` account every transmission attempt ("sent").
    Drivers that also report per-attempt outcomes (the simulator does)
    additionally fill ``delivered`` and ``dropped``, and the
    conservation identity ``sent == delivered + dropped`` holds per
    message kind (:meth:`conservation_failures` checks it).
    """

    counts: "dict[str, int]" = field(default_factory=dict)
    words: "dict[str, int]" = field(default_factory=dict)
    delivered: "dict[str, int]" = field(default_factory=dict)
    dropped: "dict[str, int]" = field(default_factory=dict)

    def record(self, message: Message) -> None:
        """Account one transmitted message (one hop, one attempt)."""
        kind = type(message).__name__
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.words[kind] = self.words.get(kind, 0) + message.size_words()

    def record_delivered(self, message: Message) -> None:
        """Account a transmission attempt that reached its receiver."""
        kind = type(message).__name__
        self.delivered[kind] = self.delivered.get(kind, 0) + 1

    def record_dropped(self, message: Message) -> None:
        """Account a transmission attempt that did not reach its receiver."""
        kind = type(message).__name__
        self.dropped[kind] = self.dropped.get(kind, 0) + 1

    @property
    def total_messages(self) -> int:
        """Total messages across all kinds."""
        return sum(self.counts.values())

    @property
    def total_delivered(self) -> int:
        """Total delivered attempts across all kinds."""
        return sum(self.delivered.values())

    @property
    def total_dropped(self) -> int:
        """Total dropped attempts across all kinds."""
        return sum(self.dropped.values())

    def conservation_failures(self) -> "list[str]":
        """Kinds violating ``sent == delivered + dropped`` (empty = ok).

        Only meaningful when the driver records per-attempt outcomes;
        a counter fed by ``record`` alone reports every kind here.
        """
        return [kind for kind, sent in self.counts.items()
                if sent != self.delivered.get(kind, 0)
                + self.dropped.get(kind, 0)]

    @property
    def total_words(self) -> int:
        """Total payload words across all kinds."""
        return sum(self.words.values())

    def messages_per_tick(self, n_ticks: int) -> float:
        """Average messages per simulator tick (= per second at 1 Hz)."""
        if n_ticks <= 0:
            return 0.0
        return self.total_messages / n_ticks
