"""Hierarchical sensor-network topologies (paper Section 2, Figure 1).

The paper organises the network with overlapping virtual grids: several
tiers of increasing granularity, one leader per cell per tier, each
leader processing the measurements of the leaders of its sub-cells.  The
hierarchical decomposition and leader election themselves are treated as
pluggable (the paper cites [17, 33, 47]); we build the decomposition
deterministically -- leaves are placed on a unit grid, consecutive
spatial blocks of ``branching`` nodes share a leader, recursively up to a
single root.

The accuracy experiments use 32 leaf sensors with two tiers of leaders
above them; with the default ``branching=4`` that yields level sizes
32 / 8 / 2 / 1, matching the four "Level" series of Figures 7 and 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro._exceptions import TopologyError
from repro._validation import require_positive_int

__all__ = ["Hierarchy", "build_hierarchy"]


@dataclass(frozen=True)
class Hierarchy:
    """An immutable rooted tree over sensor-node ids.

    Node ids are dense integers; leaves come first (``0 .. n_leaves-1``),
    then each successive tier of leaders, ending with the root.
    ``levels[0]`` lists the leaves ("level 1" in the paper's figures) and
    ``levels[-1]`` holds the single root.
    """

    parents: "dict[int, int | None]"
    children: "dict[int, tuple[int, ...]]"
    levels: "tuple[tuple[int, ...], ...]"
    positions: "dict[int, tuple[float, float]]" = field(repr=False)

    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total node count across all tiers."""
        return len(self.parents)

    @property
    def n_levels(self) -> int:
        """Number of tiers (leaves = level 1, root = level ``n_levels``)."""
        return len(self.levels)

    @property
    def leaf_ids(self) -> "tuple[int, ...]":
        """Ids of the leaf sensors."""
        return self.levels[0]

    @property
    def root_id(self) -> int:
        """Id of the top-level leader."""
        return self.levels[-1][0]

    def level_of(self, node: int) -> int:
        """1-based level of ``node`` (1 = leaf tier)."""
        for i, tier in enumerate(self.levels):
            if node in tier:
                return i + 1
        raise TopologyError(f"unknown node id {node}")

    def parent_of(self, node: int) -> "int | None":
        """Parent id, or None for the root."""
        return self.parents[node]

    def children_of(self, node: int) -> "tuple[int, ...]":
        """Direct children ids (empty for leaves)."""
        return self.children[node]

    def leaves_under(self, node: int) -> "tuple[int, ...]":
        """All leaf ids in the subtree rooted at ``node``."""
        kids = self.children[node]
        if not kids:
            return (node,)
        out: "list[int]" = []
        for child in kids:
            out.extend(self.leaves_under(child))
        return tuple(out)

    def edges(self) -> "list[tuple[int, int]]":
        """All (child, parent) edges."""
        return [(node, parent) for node, parent in self.parents.items()
                if parent is not None]


def _leaf_positions(n_leaves: int) -> "dict[int, tuple[float, float]]":
    """Leaves on a unit grid, row-major -- the 2-d plane of Section 2."""
    side = int(math.ceil(math.sqrt(n_leaves)))
    positions = {}
    for i in range(n_leaves):
        row, col = divmod(i, side)
        positions[i] = ((col + 0.5) / side, (row + 0.5) / side)
    return positions


def build_hierarchy(n_leaves: int, branching: int = 4) -> Hierarchy:
    """Build the virtual-grid hierarchy over ``n_leaves`` sensors.

    Consecutive groups of ``branching`` nodes at each tier share a
    leader in the next tier, until a single root remains.  Leader
    positions are the centroids of their cells.
    """
    require_positive_int("n_leaves", n_leaves)
    if branching < 2:
        raise TopologyError(f"branching must be >= 2, got {branching}")

    positions = _leaf_positions(n_leaves)
    parents: "dict[int, int | None]" = {}
    children: "dict[int, list[int]]" = {i: [] for i in range(n_leaves)}
    levels: "list[tuple[int, ...]]" = [tuple(range(n_leaves))]
    next_id = n_leaves

    current = list(range(n_leaves))
    while len(current) > 1:
        tier: "list[int]" = []
        for start in range(0, len(current), branching):
            group = current[start:start + branching]
            leader = next_id
            next_id += 1
            tier.append(leader)
            children[leader] = list(group)
            xs = [positions[g][0] for g in group]
            ys = [positions[g][1] for g in group]
            positions[leader] = (float(np.mean(xs)), float(np.mean(ys)))
            for member in group:
                parents[member] = leader
        levels.append(tuple(tier))
        current = tier
    parents[current[0]] = None

    return Hierarchy(
        parents=parents,
        children={k: tuple(v) for k, v in children.items()},
        levels=tuple(levels),
        positions=positions,
    )
