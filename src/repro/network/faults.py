"""Fault injection for simulated deployments (node crashes, link loss,
message duplication).

The paper's hierarchy assumes unreliable hardware -- leaders rotate
precisely because sensors die -- yet a plain
:class:`~repro.network.simulator.NetworkSimulator` models only uniform
silent message loss.  This module makes failure a first-class,
*injectable* and *replayable* condition:

* **crashes** -- per-node down intervals (``[start, end)`` in ticks).  A
  crashed node neither reads its sensor, nor relays, nor receives;
  messages addressed to it are dropped (or parked by the reliable
  transport, see :mod:`repro.network.transport`).  Crash schedules may
  target leaf sensors *and* logical leader nodes.
* **link loss** -- a per-directed-link loss probability generalising the
  simulator's global ``loss_rate`` (which remains the default for links
  without an override).
* **duplication** -- a probability that a delivered message is heard
  twice by its receiver (spurious link-layer retransmission).

A :class:`FaultPlan` is pure data: all randomness used to *generate* one
(:func:`random_crash_plan`) or to *apply* one (the simulator's loss and
duplication draws) comes from seeded :mod:`numpy.random` generators, so
every fault pattern replays bit for bit under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro._exceptions import ParameterError, TopologyError
from repro._rng import resolve_rng
from repro.network.topology import Hierarchy

__all__ = ["CrashWindow", "EngineCrash", "FaultPlan", "random_crash_plan"]


@dataclass(frozen=True)
class CrashWindow:
    """One down interval of one node: crashed during ``[start, end)``.

    ``end is None`` means the node never recovers.
    """

    node: int
    start: int
    end: "int | None" = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ParameterError(
                f"crash start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ParameterError(
                f"crash end must exceed start, got [{self.start}, {self.end})")

    def covers(self, tick: int) -> bool:
        """Whether the node is down at ``tick``."""
        if tick < self.start:
            return False
        return self.end is None or tick < self.end

    def overlaps(self, start: int, end: int) -> bool:
        """Whether the window intersects the tick range ``[start, end)``."""
        if end <= self.start:
            return False
        return self.end is None or self.end > start


@dataclass(frozen=True)
class EngineCrash:
    """One process-level kill of a supervised detector engine.

    The crash fires immediately *before* tick ``tick`` is processed:
    all live state built from earlier ticks is destroyed, and the
    supervisor restores from ``checkpoint`` (a specific stored
    checkpoint tick) or, when ``None``, from the newest checkpoint at
    or before the crash.  Node-level :class:`CrashWindow` entries model
    sensors going dark; this models the *detector process itself*
    dying -- the failure mode :mod:`repro.engine` exists to survive.
    """

    tick: int
    checkpoint: "int | None" = None

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ParameterError(
                f"engine crash tick must be >= 0, got {self.tick}")
        if self.checkpoint is not None and self.checkpoint < 0:
            raise ParameterError(
                f"engine crash checkpoint must be >= 0, "
                f"got {self.checkpoint}")


class FaultPlan:
    """A deterministic schedule of crashes, link loss and duplication.

    Parameters
    ----------
    crashes:
        Down intervals, any number per node (kept sorted per node).
    link_loss:
        Per-directed-link loss probability overrides, keyed by
        ``(sender, receiver)``.  Links without an override fall back to
        ``default_loss_rate`` (or, when that is ``None``, to the
        simulator's global ``loss_rate``).
    default_loss_rate:
        Loss probability for links without an override; ``None`` defers
        to the simulator's ``loss_rate`` argument.
    duplication_rate:
        Probability that a delivered message is delivered a second time
        in the same tick.
    engine_crashes:
        Process-level :class:`EngineCrash` kills of a supervised
        detector engine (consumed by
        :class:`repro.engine.supervisor.SupervisedEngine`); at most one
        per tick, kept sorted by tick.
    """

    def __init__(self, crashes: "Iterable[CrashWindow]" = (),
                 link_loss: "Mapping[tuple[int, int], float] | None" = None,
                 default_loss_rate: "float | None" = None,
                 duplication_rate: float = 0.0,
                 engine_crashes: "Iterable[EngineCrash]" = ()) -> None:
        self._windows: "dict[int, list[CrashWindow]]" = {}
        for window in crashes:
            self._windows.setdefault(window.node, []).append(window)
        for node, windows in self._windows.items():
            windows.sort(key=lambda w: w.start)
            for earlier, later in zip(windows, windows[1:]):
                if earlier.end is None or later.start < earlier.end:
                    raise ParameterError(
                        f"overlapping crash windows for node {node}")
        self._link_loss = dict(link_loss) if link_loss else {}
        for link, rate in self._link_loss.items():
            if not 0.0 <= rate <= 1.0:
                raise ParameterError(
                    f"link loss rate for {link} must lie in [0, 1], "
                    f"got {rate!r}")
        if default_loss_rate is not None \
                and not 0.0 <= default_loss_rate <= 1.0:
            raise ParameterError(
                f"default_loss_rate must lie in [0, 1], "
                f"got {default_loss_rate!r}")
        if not 0.0 <= duplication_rate <= 1.0:
            raise ParameterError(
                f"duplication_rate must lie in [0, 1], "
                f"got {duplication_rate!r}")
        self._default_loss_rate = default_loss_rate
        self._duplication_rate = duplication_rate
        self._engine_crashes = tuple(
            sorted(engine_crashes, key=lambda c: c.tick))
        for earlier, later in zip(self._engine_crashes,
                                  self._engine_crashes[1:]):
            if earlier.tick == later.tick:
                raise ParameterError(
                    f"duplicate engine crash at tick {earlier.tick}")

    # ------------------------------------------------------------------

    @property
    def crash_windows(self) -> "tuple[CrashWindow, ...]":
        """Every scheduled down interval, grouped by node."""
        return tuple(w for windows in self._windows.values()
                     for w in windows)

    @property
    def crashed_node_ids(self) -> "tuple[int, ...]":
        """Ids of every node with at least one crash window."""
        return tuple(sorted(self._windows))

    @property
    def default_loss_rate(self) -> "float | None":
        """Loss rate for links without an override (None = simulator's)."""
        return self._default_loss_rate

    @property
    def duplication_rate(self) -> float:
        """Probability a delivered message is delivered twice."""
        return self._duplication_rate

    @property
    def engine_crashes(self) -> "tuple[EngineCrash, ...]":
        """Scheduled process-level engine kills, sorted by tick."""
        return self._engine_crashes

    def crashed(self, node: int, tick: int) -> bool:
        """Whether ``node`` is down at ``tick``."""
        for window in self._windows.get(node, ()):
            if window.covers(tick):
                return True
            if tick < window.start:
                break
        return False

    def crash_overlaps(self, node: int, start: int, end: int) -> bool:
        """Whether ``node`` is down at any tick of ``[start, end)``.

        The batched simulation path uses this to route leaves with a
        crash inside the epoch through the per-tick fallback.
        """
        return any(w.overlaps(start, end)
                   for w in self._windows.get(node, ()))

    def loss_rate_for(self, sender: int, receiver: int,
                      fallback: float = 0.0) -> float:
        """Loss probability of the directed link ``sender -> receiver``.

        ``fallback`` is the simulator's global ``loss_rate``, used when
        neither a link override nor a plan default applies.
        """
        rate = self._link_loss.get((sender, receiver))
        if rate is not None:
            return rate
        if self._default_loss_rate is not None:
            return self._default_loss_rate
        return fallback

    @property
    def has_link_faults(self) -> bool:
        """Whether any loss or duplication is configured (rng needed)."""
        return (bool(self._link_loss)
                or bool(self._default_loss_rate)
                or self._duplication_rate > 0.0)


def random_crash_plan(hierarchy: Hierarchy, *,
                      crash_fraction: float,
                      first_tick: int, last_tick: int,
                      min_down: int, max_down: int,
                      default_loss_rate: "float | None" = None,
                      duplication_rate: float = 0.0,
                      rng: "np.random.Generator | None" = None) -> FaultPlan:
    """A seedable plan crashing a fraction of the leaf sensors once each.

    ``crash_fraction`` of the leaves (rounded down, chosen uniformly)
    each get one down interval starting uniformly in
    ``[first_tick, last_tick - min_down]`` and lasting uniformly between
    ``min_down`` and ``max_down`` ticks (clipped so recovery lands by
    ``last_tick``, keeping degradation measurable rather than terminal).
    All draws come from ``rng`` (deterministic fallback from
    :mod:`repro._rng` when omitted), so the same seed always yields the
    same plan.
    """
    if not 0.0 <= crash_fraction <= 1.0:
        raise ParameterError(
            f"crash_fraction must lie in [0, 1], got {crash_fraction!r}")
    if first_tick < 0 or last_tick <= first_tick:
        raise TopologyError(
            f"need 0 <= first_tick < last_tick, "
            f"got [{first_tick}, {last_tick})")
    if min_down < 1 or max_down < min_down:
        raise ParameterError(
            f"need 1 <= min_down <= max_down, got {min_down}, {max_down}")
    if first_tick + min_down > last_tick:
        raise ParameterError(
            "crash range too short for min_down ticks of downtime")
    generator = resolve_rng(rng)
    leaves = list(hierarchy.leaf_ids)
    n_crashed = int(crash_fraction * len(leaves))
    chosen = generator.choice(len(leaves), size=n_crashed, replace=False) \
        if n_crashed else np.empty(0, dtype=int)
    crashes = []
    for index in sorted(int(i) for i in chosen):
        start = int(generator.integers(first_tick,
                                       max(first_tick, last_tick - min_down) + 1))
        length = int(generator.integers(min_down, max_down + 1))
        end = min(start + length, last_tick)
        crashes.append(CrashWindow(node=leaves[index], start=start, end=end))
    return FaultPlan(crashes=crashes,
                     default_loss_rate=default_loss_rate,
                     duplication_rate=duplication_rate)
