"""Node protocol and detection logging for the network simulator.

Concrete node behaviours (the D3, MGDD and centralized algorithms) live
in :mod:`repro.detectors`; this module defines the contract the
simulator drives them through, plus the shared detection log that
experiments read back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, Tuple

import numpy as np

from repro import obs
from repro.network.messages import Message

__all__ = ["SimNode", "Outgoing", "Detection", "DetectionLog"]

#: A message addressed to another node: (destination id, message).
Outgoing = Tuple[int, Message]


class SimNode(Protocol):
    """What the simulator requires of every node implementation.

    Leaves may additionally implement the optional *batch* protocol used
    by :meth:`~repro.network.simulator.NetworkSimulator.run_batched`:

    ``on_readings(values, start_tick) -> list[list[Outgoing]]``
        Ingest a whole epoch of readings (shape ``(n, d)``, tick
        ``start_tick + i`` for row ``i``) at once through the vectorised
        fast path, returning the outgoing messages *per tick*.  Must
        produce the same messages as ``n`` successive ``on_reading``
        calls (same RNG consumption included).

    ``on_tick_start(tick) -> list[Outgoing]``
        Called once per tick, in leaf order, before that tick's messages
        drain.  Emits work the batch staged for this tick -- detections
        whose logging must stay in tick order, or checks that depend on
        state that inbound messages update mid-epoch.

    Nodes lacking these methods fall back to per-tick ``on_reading``.
    """

    node_id: int

    def on_reading(self, value: np.ndarray, tick: int) -> "Iterable[Outgoing]":
        """Handle this node's own sensor reading (leaves only)."""
        ...

    def on_message(self, message: Message, sender: int,
                   tick: int) -> "Iterable[Outgoing]":
        """Handle a message from a neighbour; return messages to send."""
        ...


@dataclass(frozen=True)
class Detection:
    """One outlier flagged by some node during the simulation."""

    tick: int
    node_id: int
    level: int          # 1-based hierarchy level of the flagging node
    origin: int         # leaf that produced the reading
    value: np.ndarray


@dataclass
class DetectionLog:
    """Accumulates every outlier flagged anywhere in the network."""

    detections: "list[Detection]" = field(default_factory=list)

    def record(self, detection: Detection) -> None:
        """Append one detection."""
        self.detections.append(detection)
        if obs.ACTIVE:
            obs.emit("detector.flag", node=detection.node_id,
                     level=detection.level, origin=detection.origin,
                     tick=detection.tick)
            obs.metrics().counter("detector.outliers_flagged").inc()

    def at_level(self, level: int) -> "list[Detection]":
        """All detections flagged by nodes of the given 1-based level."""
        return [d for d in self.detections if d.level == level]

    def __len__(self) -> int:
        return len(self.detections)
