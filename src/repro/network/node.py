"""Node protocol and detection logging for the network simulator.

Concrete node behaviours (the D3, MGDD and centralized algorithms) live
in :mod:`repro.detectors`; this module defines the contract the
simulator drives them through, plus the shared detection log that
experiments read back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, Tuple

import numpy as np

from repro import obs
from repro.network.messages import Message

__all__ = ["SimNode", "Outgoing", "Detection", "DetectionLog"]

#: A message addressed to another node: (destination id, message).
Outgoing = Tuple[int, Message]


class SimNode(Protocol):
    """What the simulator requires of every node implementation.

    Leaves may additionally implement the optional *batch* protocol used
    by :meth:`~repro.network.simulator.NetworkSimulator.run_batched`:

    ``on_readings(values, start_tick) -> list[list[Outgoing]]``
        Ingest a whole epoch of readings (shape ``(n, d)``, tick
        ``start_tick + i`` for row ``i``) at once through the vectorised
        fast path, returning the outgoing messages *per tick*.  Must
        produce the same messages as ``n`` successive ``on_reading``
        calls (same RNG consumption included).

    ``on_tick_start(tick) -> list[Outgoing]``
        Called once per tick, in leaf order, before that tick's messages
        drain.  Emits work the batch staged for this tick -- detections
        whose logging must stay in tick order, or checks that depend on
        state that inbound messages update mid-epoch.

    Nodes lacking these methods fall back to per-tick ``on_reading``.
    """

    node_id: int

    def on_reading(self, value: np.ndarray, tick: int) -> "Iterable[Outgoing]":
        """Handle this node's own sensor reading (leaves only)."""
        ...

    def on_message(self, message: Message, sender: int,
                   tick: int) -> "Iterable[Outgoing]":
        """Handle a message from a neighbour; return messages to send."""
        ...


@dataclass(frozen=True)
class Detection:
    """One outlier flagged by some node during the simulation."""

    tick: int
    node_id: int
    level: int          # 1-based hierarchy level of the flagging node
    origin: int         # leaf that produced the reading
    value: np.ndarray


@dataclass
class DetectionLog:
    """Accumulates every outlier flagged anywhere in the network.

    ``latencies[i]`` is the event-time -> flag-time tick delta of
    ``detections[i]`` -- 0 when a node flags a reading the tick it was
    sampled, positive when loss/retransmits/parking delayed the report
    that triggered the flag.  It is maintained unconditionally (pure
    bookkeeping, no RNG or control-flow impact) so latency accounting
    works with observability off; the enriched ``detector.flag`` /
    ``lineage.detect`` events and per-tier histograms are emitted only
    under :data:`repro.obs.ACTIVE`.
    """

    detections: "list[Detection]" = field(default_factory=list)
    latencies: "list[int]" = field(default_factory=list)
    n_levels: "int | None" = None   # hierarchy depth, for tier labels

    def record(self, detection: Detection, *,
               flag_tick: "int | None" = None,
               prob: "float | None" = None,
               threshold: "float | None" = None,
               model_seq: "int | None" = None,
               staleness: "int | None" = None) -> None:
        """Append one detection.

        ``detection.tick`` is the *reading* tick; ``flag_tick`` is the
        tick the flagging node made the decision (defaults to the
        reading tick, i.e. zero latency).  ``prob``/``threshold`` are
        the decision inputs (estimated probability or MDEF vs. the
        spec's cutoff), ``model_seq`` the version of the model
        consulted and ``staleness`` the model's age in ticks.
        """
        flag = detection.tick if flag_tick is None else flag_tick
        latency = flag - detection.tick
        self.detections.append(detection)
        self.latencies.append(latency)
        if obs.ACTIVE:
            extra: "dict[str, float | int]" = {}
            if prob is not None:
                extra["prob"] = prob
            if threshold is not None:
                extra["threshold"] = threshold
            if model_seq is not None:
                extra["model_seq"] = model_seq
            if staleness is not None:
                extra["staleness"] = staleness
            obs.emit("detector.flag", node=detection.node_id,
                     level=detection.level, origin=detection.origin,
                     tick=detection.tick, reading_tick=detection.tick,
                     flag_tick=flag, latency=latency, **extra)
            obs.emit("lineage.detect", node=detection.node_id,
                     level=detection.level, origin=detection.origin,
                     reading_tick=detection.tick, flag_tick=flag,
                     latency=latency, **extra)
            obs.metrics().counter("detector.outliers_flagged").inc()
            obs.metrics().histogram(
                f"detector.latency.{self.tier(detection.level)}") \
                .observe(float(latency))

    def tier(self, level: int) -> str:
        """Tier label for a 1-based hierarchy level."""
        if level <= 1:
            return "leaf"
        if self.n_levels is not None and level >= self.n_levels:
            return "root"
        return "intermediate"

    def at_level(self, level: int) -> "list[Detection]":
        """All detections flagged by nodes of the given 1-based level."""
        return [d for d in self.detections if d.level == level]

    def latency_summary(self) -> "dict[str, object]":
        """Latency and per-tier stats over everything recorded so far."""
        n = len(self.latencies)
        by_tier: "dict[str, list[int]]" = {}
        for detection, latency in zip(self.detections, self.latencies):
            by_tier.setdefault(self.tier(detection.level), []) \
                .append(latency)

        def _stats(values: "list[int]") -> "dict[str, object]":
            ordered = sorted(values)
            count = len(ordered)
            return {
                "count": count,
                "p50": ordered[(count - 1) // 2],
                "p99": ordered[min(count - 1, (99 * count) // 100)],
                "max": ordered[-1],
            }

        summary: "dict[str, object]" = {"n_flags": n}
        summary.update(
            _stats(self.latencies) if n
            else {"count": 0, "p50": None, "p99": None, "max": None})
        summary["by_tier"] = {tier: _stats(values)
                              for tier, values in sorted(by_tier.items())}
        return summary

    def __len__(self) -> int:
        return len(self.detections)
