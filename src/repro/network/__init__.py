"""Sensor-network substrate: topology, messages, simulator, metrics
(paper Sections 2 and 10).
"""

from repro.network.election import (
    EnergyAwareElection,
    LeaderAssignment,
    RoundRobinElection,
    handoff_cost_words,
)
from repro.network.energy import EnergyAccountant, RadioModel
from repro.network.messages import (
    Message,
    MessageCounter,
    ModelUpdate,
    OutlierReport,
    ValueForward,
)
from repro.network.metrics import CommunicationReport, MemoryReport
from repro.network.node import Detection, DetectionLog, Outgoing, SimNode
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Hierarchy, build_hierarchy

__all__ = [
    "Hierarchy",
    "build_hierarchy",
    "Message",
    "ValueForward",
    "OutlierReport",
    "ModelUpdate",
    "MessageCounter",
    "NetworkSimulator",
    "SimNode",
    "Outgoing",
    "Detection",
    "DetectionLog",
    "MemoryReport",
    "CommunicationReport",
    "RadioModel",
    "EnergyAccountant",
    "LeaderAssignment",
    "RoundRobinElection",
    "EnergyAwareElection",
    "handoff_cost_words",
]
