"""Sensor-network substrate: topology, messages, simulator, metrics
(paper Sections 2 and 10), plus fault injection and reliable transport
(docs/FAULT_MODEL.md).
"""

from repro.network.election import (
    BearerChange,
    BearerRepair,
    EnergyAwareElection,
    LeaderAssignment,
    RoundRobinElection,
    handoff_cost_words,
)
from repro.network.energy import EnergyAccountant, RadioModel
from repro.network.faults import CrashWindow, FaultPlan, random_crash_plan
from repro.network.messages import (
    Ack,
    Message,
    MessageCounter,
    ModelHandoff,
    ModelUpdate,
    OutlierReport,
    ValueForward,
)
from repro.network.metrics import CommunicationReport, MemoryReport
from repro.network.node import Detection, DetectionLog, Outgoing, SimNode
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Hierarchy, build_hierarchy
from repro.network.transport import (
    PendingMessage,
    ReliableTransport,
    TransportConfig,
)

__all__ = [
    "Hierarchy",
    "build_hierarchy",
    "Message",
    "ValueForward",
    "OutlierReport",
    "ModelUpdate",
    "Ack",
    "ModelHandoff",
    "MessageCounter",
    "NetworkSimulator",
    "SimNode",
    "Outgoing",
    "Detection",
    "DetectionLog",
    "MemoryReport",
    "CommunicationReport",
    "RadioModel",
    "EnergyAccountant",
    "LeaderAssignment",
    "RoundRobinElection",
    "EnergyAwareElection",
    "handoff_cost_words",
    "BearerChange",
    "BearerRepair",
    "CrashWindow",
    "FaultPlan",
    "random_crash_plan",
    "TransportConfig",
    "ReliableTransport",
    "PendingMessage",
]
