"""A TAG-style tick-driven network simulator (paper Section 10,
"Implementation").

The paper's prototype runs on the TAG simulator: a static topology, a
continuous query installed on every node, and the hierarchy of Section 2
imposed on top.  We reproduce the relevant substrate: at every tick each
leaf consumes one reading from its stream; messages are routed along the
tree edges and processed within the tick (sensor radio latency is far
below the 1-second reading period the paper assumes); every transmitted
message is accounted in a :class:`~repro.network.messages.MessageCounter`.
Radio contention is out of scope -- the paper uses TAG for topology and
message accounting only (see DESIGN.md section 4).

Failure is a first-class condition (docs/FAULT_MODEL.md): a
:class:`~repro.network.faults.FaultPlan` injects node crashes,
per-link loss and message duplication; a
:class:`~repro.network.transport.TransportConfig` inserts the
ack/retransmit shim between node behaviours and the drain loop; a
:class:`~repro.network.election.BearerRepair` keeps leader roles on
living bearers.  Every attempt, retransmission and acknowledgement is
charged to the message counter (and energy accountant), and every
attempt outcome is recorded, so ``sent == delivered + dropped`` holds
per message kind.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro import obs
from repro._exceptions import SimulationError, TopologyError
from repro._rng import resolve_rng
from repro.data.streams import StreamSet
from repro.network.election import BearerRepair
from repro.network.energy import EnergyAccountant
from repro.network.faults import FaultPlan
from repro.network.messages import Ack, Message, MessageCounter
from repro.network.node import SimNode
from repro.network.topology import Hierarchy
from repro.obs.lineage import lineage_fields
from repro.network.transport import (
    PendingMessage,
    ReliableTransport,
    TransportConfig,
)

__all__ = ["NetworkSimulator"]

#: Safety valve: more message deliveries than this within one tick means
#: a routing loop in a node implementation.  Retransmission-heavy
#: scenarios may raise it via ``max_deliveries_per_tick``.
_MAX_DELIVERIES_PER_TICK = 1_000_000


@dataclass
class _Envelope:
    """One transmission attempt queued for this tick's drain."""

    dest: int
    sender: int
    message: Message
    entry: "PendingMessage | None" = None   # reliable-transport tracking


def _lineage_context(message: Message,
                     entry: "PendingMessage | None") -> "dict[str, int]":
    """Causal-context fields for a message-plane event: the reading the
    message carries (OutlierReport only) plus the transport sequence
    number when the reliable shim tracks the envelope."""
    context = lineage_fields(message)
    if entry is not None:
        context["seq_no"] = entry.seq
    return context


class NetworkSimulator:
    """Drives a set of node behaviours over a hierarchy and stream set.

    Parameters
    ----------
    hierarchy:
        The tree topology of Section 2.
    nodes:
        One behaviour object per node id (see
        :class:`~repro.network.node.SimNode`).
    streams:
        Per-leaf reading sequences; stream ``i`` feeds leaf id ``i``.
    counter:
        Message accounting sink (a fresh one is created when omitted).
    energy:
        Optional :class:`~repro.network.energy.EnergyAccountant`; when
        given, every transmission attempt is charged to the sender and
        receiver under the radio model.
    loss_rate:
        Probability that any transmitted message is silently lost
        (failure injection; lost messages are still counted as sent and
        still cost transmit energy, but are never delivered).
        ``1.0`` -- total partition -- is allowed.
    faults:
        Optional :class:`~repro.network.faults.FaultPlan`: node crash
        schedules, per-link loss overrides (falling back to
        ``loss_rate``), and message duplication.  Crashed nodes neither
        read, nor relay, nor receive.
    transport:
        Optional :class:`~repro.network.transport.TransportConfig`:
        inserts the per-hop ack/retransmit shim.  Behaviours then see
        exactly-once delivery (receiver-side dedup) while the counters
        see every physical attempt and ack.
    repair:
        Optional :class:`~repro.network.election.BearerRepair`,
        maintained at every tick start; leaders it reports bearer-less
        count as down for delivery purposes.
    max_deliveries_per_tick:
        The message-storm valve (default unchanged); raise it
        deliberately for retransmission-heavy scenarios.
    rng:
        Randomness source for loss/duplication injection.  When omitted
        (and any loss or duplication is configured) a deterministic
        fallback stream from :mod:`repro._rng` is used, so fault
        patterns replay bit for bit.
    """

    def __init__(self, hierarchy: Hierarchy, nodes: "Mapping[int, SimNode]",
                 streams: StreamSet,
                 counter: "MessageCounter | None" = None,
                 energy: "EnergyAccountant | None" = None,
                 loss_rate: float = 0.0,
                 faults: "FaultPlan | None" = None,
                 transport: "TransportConfig | None" = None,
                 repair: "BearerRepair | None" = None,
                 max_deliveries_per_tick: int = _MAX_DELIVERIES_PER_TICK,
                 rng: "np.random.Generator | None" = None) -> None:
        if streams.n_sensors != len(hierarchy.leaf_ids):
            raise TopologyError(
                f"{len(hierarchy.leaf_ids)} leaves but {streams.n_sensors} streams")
        missing = [nid for nid in hierarchy.parents if nid not in nodes]
        if missing:
            raise TopologyError(f"no behaviour registered for nodes {missing[:5]}")
        if not 0.0 <= loss_rate <= 1.0:
            raise SimulationError(
                f"loss_rate must lie in [0, 1], got {loss_rate!r}")
        if max_deliveries_per_tick < 1:
            raise SimulationError(
                f"max_deliveries_per_tick must be >= 1, "
                f"got {max_deliveries_per_tick}")
        self._hierarchy = hierarchy
        self._nodes = dict(nodes)
        self._streams = streams
        self._counter = counter if counter is not None else MessageCounter()
        self._energy = energy
        self._loss_rate = loss_rate
        self._faults = faults
        self._repair = repair
        self._max_deliveries = max_deliveries_per_tick
        self._transport = ReliableTransport(config=transport) \
            if transport is not None else None
        needs_rng = loss_rate > 0.0 or (
            faults is not None and faults.has_link_faults)
        if needs_rng and rng is None:
            rng = resolve_rng(rng)
        self._rng = rng
        self._tick = 0
        self._messages_lost = 0
        self._messages_duplicated = 0
        self._drops_by_reason: "dict[str, int]" = {}

    # ------------------------------------------------------------------

    @property
    def hierarchy(self) -> Hierarchy:
        """The topology being simulated."""
        return self._hierarchy

    @property
    def counter(self) -> MessageCounter:
        """Message accounting accumulated so far."""
        return self._counter

    @property
    def tick(self) -> int:
        """Number of completed ticks."""
        return self._tick

    @property
    def messages_lost(self) -> int:
        """Attempts dropped by the loss injector so far."""
        return self._messages_lost

    @property
    def messages_duplicated(self) -> int:
        """Deliveries duplicated by the fault injector so far."""
        return self._messages_duplicated

    @property
    def drops_by_reason(self) -> "dict[str, int]":
        """Dropped attempts by cause (``"loss"`` / ``"crash"``)."""
        return dict(self._drops_by_reason)

    @property
    def transport(self) -> "ReliableTransport | None":
        """The reliable-transport shim state (None when disabled)."""
        return self._transport

    @property
    def n_ticks_available(self) -> int:
        """Ticks the stream set can still feed."""
        return self._streams.length - self._tick

    # -- fault predicates ----------------------------------------------

    def _node_down(self, node: int, tick: int) -> bool:
        """Whether ``node`` cannot participate at ``tick``."""
        if self._faults is not None and self._faults.crashed(node, tick):
            return True
        return self._repair is not None \
            and self._repair.leader_is_down(node, tick)

    def _link_loss_rate(self, sender: int, dest: int) -> float:
        if self._faults is not None:
            return self._faults.loss_rate_for(sender, dest, self._loss_rate)
        return self._loss_rate

    def _begin_tick(self) -> None:
        """Per-tick fault bookkeeping: repair first, then parked flushes."""
        if self._repair is not None:
            self._repair.maintain(self._tick)

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one tick: every live leaf reads once; messages drain."""
        if self._tick >= self._streams.length:
            raise SimulationError("streams exhausted; cannot step further")
        if obs.ACTIVE:
            with obs.span("tick", tick=self._tick):
                self._step_body()
        else:
            self._step_body()
        self._tick += 1

    def _step_body(self) -> None:
        self._begin_tick()
        queue: "deque[_Envelope]" = deque()
        self._enqueue_due_retransmits(queue)

        for i, leaf in enumerate(self._hierarchy.leaf_ids):
            if self._node_down(leaf, self._tick):
                continue   # a crashed sensor takes no reading
            reading = self._streams.reading(i, self._tick)
            if obs.ACTIVE:
                obs.emit("lineage.ingest", node=leaf, tick=self._tick)
            for dest, message in self._nodes[leaf].on_reading(reading, self._tick):
                self._enqueue(queue, leaf, dest, message)

        self._drain(queue)

    # -- queue plumbing ------------------------------------------------

    def _enqueue(self, queue: "deque[_Envelope]", sender: int, dest: int,
                 message: Message) -> None:
        """Queue one outgoing message, registering it with the transport."""
        entry = None
        if self._transport is not None:
            entry = self._transport.submit(sender, dest, message, self._tick)
        queue.append(_Envelope(dest=dest, sender=sender, message=message,
                               entry=entry))

    def _enqueue_due_retransmits(self, queue: "deque[_Envelope]") -> None:
        """Queue this tick's retransmissions and recovered-park flushes."""
        if self._transport is None:
            return
        for entry in self._transport.collect_due(self._tick, self._node_down):
            queue.append(_Envelope(dest=entry.dest, sender=entry.sender,
                                   message=entry.message, entry=entry))

    # -- the drain loop ------------------------------------------------

    def _drain(self, queue: "deque[_Envelope]") -> None:
        """Route queued messages until the network is quiet this tick."""
        if obs.ACTIVE:
            # finally: a drain aborted by an exception still charges its
            # phase (the span itself already closes via its own finally).
            start = time.perf_counter()
            try:
                with obs.span("phase", phase="drain", tick=self._tick):
                    self._drain_queue(queue)
            finally:
                obs.profiler().record("simulator.drain",
                                      time.perf_counter() - start)
        else:
            self._drain_queue(queue)

    def _drain_queue(self, queue: "deque[_Envelope]") -> None:
        deliveries = 0
        while queue:
            envelope = queue.popleft()
            deliveries += 1
            if deliveries > self._max_deliveries:
                raise SimulationError(
                    "message storm: over "
                    f"{self._max_deliveries} deliveries in one tick")
            deliveries += self._transmit(envelope, queue)

    def _transmit(self, envelope: _Envelope, queue: "deque[_Envelope]") -> int:
        """One physical transmission attempt; returns extra deliveries
        performed inline (acks, duplicated copies)."""
        dest, sender = envelope.dest, envelope.sender
        message, entry = envelope.message, envelope.entry
        if dest not in self._nodes:
            raise SimulationError(f"message addressed to unknown node {dest}")
        dest_down = self._node_down(dest, self._tick)
        if dest_down and entry is not None \
                and self._transport.config.park_when_crashed:
            # The link layer knows the next hop is dead (no carrier):
            # buffer at the sender instead of burning radio and retries.
            evicted = self._transport.park(entry)
            if evicted is not None:
                # A full park buffer sheds its oldest occupant.  Parked
                # messages were never charged as sent (parking precedes
                # the send site below), so the eviction must record both
                # a send and a drop to keep sent == delivered + dropped.
                self._counter.record(evicted.message)
                self._counter.record_dropped(evicted.message)
                self._drops_by_reason["park-evict"] = \
                    self._drops_by_reason.get("park-evict", 0) + 1
                if obs.ACTIVE:
                    kind = type(evicted.message).__name__
                    context = _lineage_context(evicted.message, evicted)
                    obs.emit("message.send", kind=kind,
                             sender=evicted.sender, dest=evicted.dest,
                             words=evicted.message.size_words(),
                             tick=self._tick, **context)
                    obs.emit("message.drop", kind=kind,
                             reason="park-evict", dest=evicted.dest,
                             tick=self._tick, **context)
            return 0
        # Sending happens regardless of delivery: the message is counted
        # and the sender pays transmit energy even when the radio loses it.
        self._counter.record(message)
        if obs.ACTIVE:
            obs.emit("message.send", kind=type(message).__name__,
                     sender=sender, dest=dest,
                     words=message.size_words(), tick=self._tick,
                     **_lineage_context(message, entry))
        if entry is not None:
            self._transport.note_attempt(entry)
        rate = self._link_loss_rate(sender, dest)
        lost = rate > 0.0 and self._rng.random() < rate
        delivered = not lost and not dest_down
        if self._energy is not None:
            self._energy.record(sender, dest, message, delivered=delivered)
        if not delivered:
            self._counter.record_dropped(message)
            reason = "loss" if lost else "crash"
            if lost:
                self._messages_lost += 1
            self._drops_by_reason[reason] = \
                self._drops_by_reason.get(reason, 0) + 1
            if obs.ACTIVE:
                obs.emit("message.drop", kind=type(message).__name__,
                         reason=reason, dest=dest, tick=self._tick,
                         **_lineage_context(message, entry))
            if entry is not None:
                self._transport.schedule_or_expire(entry, self._tick)
            return 0
        self._counter.record_delivered(message)
        if obs.ACTIVE:
            obs.emit("message.deliver", kind=type(message).__name__,
                     dest=dest, tick=self._tick,
                     **_lineage_context(message, entry))
        extra = self._deliver(envelope, queue)
        dup_rate = self._faults.duplication_rate \
            if self._faults is not None else 0.0
        if dup_rate > 0.0 and self._rng.random() < dup_rate:
            # The radio hears the frame twice: a second full attempt.
            self._messages_duplicated += 1
            self._counter.record(message)
            self._counter.record_delivered(message)
            if obs.ACTIVE:
                obs.emit("message.send", kind=type(message).__name__,
                         sender=sender, dest=dest,
                         words=message.size_words(), tick=self._tick,
                         duplicate=True, **_lineage_context(message, entry))
                obs.emit("message.deliver", kind=type(message).__name__,
                         dest=dest, tick=self._tick, duplicate=True,
                         **_lineage_context(message, entry))
            if self._energy is not None:
                self._energy.record(sender, dest, message, delivered=True)
            extra += 1 + self._deliver(envelope, queue)
        return extra

    def _deliver(self, envelope: _Envelope, queue: "deque[_Envelope]") -> int:
        """Hand a received message to the transport shim / behaviour."""
        dest, sender = envelope.dest, envelope.sender
        entry = envelope.entry
        extra = 0
        first_copy = True
        if entry is not None:
            first_copy = not entry.delivered_to_app
            entry.delivered_to_app = True
            extra += self._send_ack(entry)
        if first_copy:
            if obs.ACTIVE:
                with obs.span("node", node=dest, tick=self._tick):
                    outgoing = list(self._nodes[dest].on_message(
                        envelope.message, sender, self._tick))
            else:
                outgoing = self._nodes[dest].on_message(
                    envelope.message, sender, self._tick)
            for nxt_dest, nxt_msg in outgoing:
                self._enqueue(queue, dest, nxt_dest, nxt_msg)
        return extra

    def _send_ack(self, entry: PendingMessage) -> int:
        """Transmit the per-hop ack back to the sender; returns 1."""
        ack = Ack(seq=entry.seq)
        self._counter.record(ack)
        if obs.ACTIVE:
            obs.emit("message.send", kind="Ack", sender=entry.dest,
                     dest=entry.sender, words=ack.size_words(),
                     tick=self._tick)
        rate = self._link_loss_rate(entry.dest, entry.sender)
        ack_lost = rate > 0.0 and self._rng.random() < rate
        sender_down = self._node_down(entry.sender, self._tick)
        ack_delivered = not ack_lost and not sender_down
        if self._energy is not None:
            self._energy.record(entry.dest, entry.sender, ack,
                                delivered=ack_delivered)
        if ack_delivered:
            self._counter.record_delivered(ack)
            if obs.ACTIVE:
                obs.emit("message.deliver", kind="Ack", dest=entry.sender,
                         tick=self._tick)
            self._transport.acknowledge(entry)
        else:
            self._counter.record_dropped(ack)
            reason = "loss" if ack_lost else "crash"
            if ack_lost:
                self._messages_lost += 1
            self._drops_by_reason[reason] = \
                self._drops_by_reason.get(reason, 0) + 1
            if obs.ACTIVE:
                obs.emit("message.drop", kind="Ack", reason=reason,
                         dest=entry.sender, tick=self._tick)
            self._transport.schedule_or_expire(entry, self._tick)
        return 1

    # ------------------------------------------------------------------

    def step_epoch(self, n_ticks: int) -> None:
        """Advance ``n_ticks`` ticks, feeding each leaf its block at once.

        Leaves that implement the batch protocol (``on_readings`` /
        ``on_tick_start``, see :class:`~repro.network.node.SimNode`)
        ingest their whole block through the vectorised fast path up
        front; their staged per-tick messages then drain tick by tick in
        the usual order.  Leaves without it fall back to per-tick
        ``on_reading``.  Either way the message sequence -- and hence
        every parent's state, the counters and the detection log --
        matches ``n_ticks`` calls to :meth:`step`.  A leaf with a crash
        window inside the epoch is routed through the per-tick fallback
        so its blackout matches the stepped path exactly.
        """
        if n_ticks < 1:
            raise SimulationError(f"n_ticks must be >= 1, got {n_ticks}")
        if self._tick + n_ticks > self._streams.length:
            raise SimulationError(
                f"cannot step {n_ticks} ticks; only "
                f"{self._streams.length - self._tick} readings left")
        start = self._tick
        leaf_ids = self._hierarchy.leaf_ids
        batched: "dict[int, list[list]]" = {}
        for i, leaf in enumerate(leaf_ids):
            node = self._nodes[leaf]
            if not (hasattr(node, "on_readings")
                    and hasattr(node, "on_tick_start")):
                continue
            if self._faults is not None and self._faults.crash_overlaps(
                    leaf, start, start + n_ticks):
                continue   # blackout inside the epoch: per-tick fallback
            if obs.ACTIVE:
                # finally: ingestion that raises still charges its phase.
                t0 = time.perf_counter()
                try:
                    batched[leaf] = node.on_readings(
                        self._streams.block(i, start, start + n_ticks), start)
                finally:
                    obs.profiler().record("simulator.batch_ingest",
                                          time.perf_counter() - t0)
            else:
                batched[leaf] = node.on_readings(
                    self._streams.block(i, start, start + n_ticks), start)

        for offset in range(n_ticks):
            if obs.ACTIVE:
                with obs.span("tick", tick=self._tick):
                    self._epoch_tick(batched, leaf_ids, offset)
            else:
                self._epoch_tick(batched, leaf_ids, offset)
            self._tick += 1

    def _epoch_tick(self, batched: "dict[int, list[list]]",
                    leaf_ids: "tuple[int, ...]", offset: int) -> None:
        """One tick of an epoch: staged/fallback leaf output, then drain."""
        self._begin_tick()
        queue: "deque[_Envelope]" = deque()
        self._enqueue_due_retransmits(queue)
        for i, leaf in enumerate(leaf_ids):
            if leaf in batched:
                # The reading was ingested up front by on_readings, but
                # its lineage anchor belongs to this tick -- same tick
                # granularity as the stepped path.
                if obs.ACTIVE:
                    obs.emit("lineage.ingest", node=leaf, tick=self._tick)
                outgoing = list(batched[leaf][offset])
                outgoing.extend(self._nodes[leaf].on_tick_start(self._tick))
            elif self._node_down(leaf, self._tick):
                continue
            else:
                reading = self._streams.reading(i, self._tick)
                if obs.ACTIVE:
                    obs.emit("lineage.ingest", node=leaf, tick=self._tick)
                outgoing = self._nodes[leaf].on_reading(reading, self._tick)
            for dest, message in outgoing:
                self._enqueue(queue, leaf, dest, message)
        self._drain(queue)

    def run(self, n_ticks: "int | None" = None,
            on_tick: "Callable[[int], None] | None" = None) -> None:
        """Run ``n_ticks`` steps (all remaining when omitted).

        ``on_tick(t)`` is invoked after each completed tick ``t`` --
        experiments hook ground-truth evaluation in here.
        """
        if n_ticks is None:
            n_ticks = self.n_ticks_available
        if n_ticks < 0 or n_ticks > self.n_ticks_available:
            raise SimulationError(
                f"cannot run {n_ticks} ticks; only {self.n_ticks_available} available")
        if obs.ACTIVE:
            with obs.span("run", mode="stepped", n_ticks=n_ticks):
                self._run_loop(n_ticks, on_tick)
        else:
            self._run_loop(n_ticks, on_tick)

    def _run_loop(self, n_ticks: int,
                  on_tick: "Callable[[int], None] | None") -> None:
        for _ in range(n_ticks):
            self.step()
            if on_tick is not None:
                on_tick(self._tick - 1)

    def run_batched(self, n_ticks: "int | None" = None, *,
                    epoch_size: int = 64,
                    on_tick: "Callable[[int], None] | None" = None) -> None:
        """Run in epochs of ``epoch_size`` ticks via :meth:`step_epoch`.

        Produces the same end state as :meth:`run` (see
        :meth:`step_epoch`), substantially faster for leaves that
        implement the batch protocol.  Note ``on_tick`` fires per tick
        but only after the tick's *epoch* has completed, so callbacks
        that inspect per-tick simulator state see end-of-epoch state.
        """
        if epoch_size < 1:
            raise SimulationError(f"epoch_size must be >= 1, got {epoch_size}")
        if n_ticks is None:
            n_ticks = self.n_ticks_available
        if n_ticks < 0 or n_ticks > self.n_ticks_available:
            raise SimulationError(
                f"cannot run {n_ticks} ticks; only {self.n_ticks_available} available")
        if obs.ACTIVE:
            with obs.span("run", mode="batched", n_ticks=n_ticks,
                          epoch_size=epoch_size):
                self._run_batched_loop(n_ticks, epoch_size, on_tick)
        else:
            self._run_batched_loop(n_ticks, epoch_size, on_tick)

    def _run_batched_loop(self, n_ticks: int, epoch_size: int,
                          on_tick: "Callable[[int], None] | None") -> None:
        done = 0
        while done < n_ticks:
            span = min(epoch_size, n_ticks - done)
            first = self._tick
            self.step_epoch(span)
            done += span
            if on_tick is not None:
                for t in range(first, first + span):
                    on_tick(t)
