"""A TAG-style tick-driven network simulator (paper Section 10,
"Implementation").

The paper's prototype runs on the TAG simulator: a static topology, a
continuous query installed on every node, and the hierarchy of Section 2
imposed on top.  We reproduce the relevant substrate: at every tick each
leaf consumes one reading from its stream; messages are routed along the
tree edges and processed within the tick (sensor radio latency is far
below the 1-second reading period the paper assumes); every transmitted
message is accounted in a :class:`~repro.network.messages.MessageCounter`.
Radio contention and energy draw are out of scope -- the paper uses TAG
for topology and message accounting only (see DESIGN.md section 4).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Mapping

import numpy as np

from repro._exceptions import SimulationError, TopologyError
from repro._rng import resolve_rng
from repro.data.streams import StreamSet
from repro.network.energy import EnergyAccountant
from repro.network.messages import MessageCounter
from repro.network.node import SimNode
from repro.network.topology import Hierarchy

__all__ = ["NetworkSimulator"]

#: Safety valve: more message deliveries than this within one tick means
#: a routing loop in a node implementation.
_MAX_DELIVERIES_PER_TICK = 1_000_000


class NetworkSimulator:
    """Drives a set of node behaviours over a hierarchy and stream set.

    Parameters
    ----------
    hierarchy:
        The tree topology of Section 2.
    nodes:
        One behaviour object per node id (see
        :class:`~repro.network.node.SimNode`).
    streams:
        Per-leaf reading sequences; stream ``i`` feeds leaf id ``i``.
    counter:
        Message accounting sink (a fresh one is created when omitted).
    energy:
        Optional :class:`~repro.network.energy.EnergyAccountant`; when
        given, every delivered message is charged to the sender and
        receiver under the radio model.
    loss_rate:
        Probability that any transmitted message is silently lost
        (failure injection; lost messages are still counted as sent and
        still cost transmit energy, but are never delivered).
    rng:
        Randomness source for loss injection.  When omitted (and
        ``loss_rate`` is positive) a deterministic fallback stream from
        :mod:`repro._rng` is used, so loss patterns replay bit for bit.
    """

    def __init__(self, hierarchy: Hierarchy, nodes: "Mapping[int, SimNode]",
                 streams: StreamSet,
                 counter: MessageCounter | None = None,
                 energy: "EnergyAccountant | None" = None,
                 loss_rate: float = 0.0,
                 rng: "np.random.Generator | None" = None) -> None:
        if streams.n_sensors != len(hierarchy.leaf_ids):
            raise TopologyError(
                f"{len(hierarchy.leaf_ids)} leaves but {streams.n_sensors} streams")
        missing = [nid for nid in hierarchy.parents if nid not in nodes]
        if missing:
            raise TopologyError(f"no behaviour registered for nodes {missing[:5]}")
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(
                f"loss_rate must lie in [0, 1), got {loss_rate!r}")
        self._hierarchy = hierarchy
        self._nodes = dict(nodes)
        self._streams = streams
        self._counter = counter if counter is not None else MessageCounter()
        self._energy = energy
        self._loss_rate = loss_rate
        if loss_rate > 0.0 and rng is None:
            rng = resolve_rng(rng)
        self._rng = rng
        self._tick = 0
        self._messages_lost = 0

    # ------------------------------------------------------------------

    @property
    def hierarchy(self) -> Hierarchy:
        """The topology being simulated."""
        return self._hierarchy

    @property
    def counter(self) -> MessageCounter:
        """Message accounting accumulated so far."""
        return self._counter

    @property
    def tick(self) -> int:
        """Number of completed ticks."""
        return self._tick

    @property
    def messages_lost(self) -> int:
        """Messages dropped by the loss injector so far."""
        return self._messages_lost

    @property
    def n_ticks_available(self) -> int:
        """Ticks the stream set can still feed."""
        return self._streams.length - self._tick

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one tick: every leaf reads once; messages drain fully."""
        if self._tick >= self._streams.length:
            raise SimulationError("streams exhausted; cannot step further")
        queue: "deque[tuple[int, int, object]]" = deque()   # (dest, sender, msg)

        for i, leaf in enumerate(self._hierarchy.leaf_ids):
            reading = self._streams.reading(i, self._tick)
            for dest, message in self._nodes[leaf].on_reading(reading, self._tick):
                queue.append((dest, leaf, message))

        self._drain(queue)
        self._tick += 1

    def _drain(self, queue: "deque[tuple[int, int, object]]") -> None:
        """Route queued messages until the network is quiet this tick."""
        deliveries = 0
        while queue:
            dest, sender, message = queue.popleft()
            deliveries += 1
            if deliveries > _MAX_DELIVERIES_PER_TICK:
                raise SimulationError(
                    "message storm: over "
                    f"{_MAX_DELIVERIES_PER_TICK} deliveries in one tick")
            if dest not in self._nodes:
                raise SimulationError(f"message addressed to unknown node {dest}")
            # Sending happens regardless of delivery: the message is
            # counted and the sender pays transmit energy even when the
            # radio loses it.
            self._counter.record(message)
            lost = (self._loss_rate > 0.0
                    and self._rng.random() < self._loss_rate)
            if self._energy is not None:
                self._energy.record(sender, dest, message,
                                    delivered=not lost)
            if lost:
                self._messages_lost += 1
                continue
            for nxt_dest, nxt_msg in self._nodes[dest].on_message(
                    message, sender, self._tick):
                queue.append((nxt_dest, dest, nxt_msg))

    def step_epoch(self, n_ticks: int) -> None:
        """Advance ``n_ticks`` ticks, feeding each leaf its block at once.

        Leaves that implement the batch protocol (``on_readings`` /
        ``on_tick_start``, see :class:`~repro.network.node.SimNode`)
        ingest their whole block through the vectorised fast path up
        front; their staged per-tick messages then drain tick by tick in
        the usual order.  Leaves without it fall back to per-tick
        ``on_reading``.  Either way the message sequence -- and hence
        every parent's state, the counters and the detection log --
        matches ``n_ticks`` calls to :meth:`step`.
        """
        if n_ticks < 1:
            raise SimulationError(f"n_ticks must be >= 1, got {n_ticks}")
        if self._tick + n_ticks > self._streams.length:
            raise SimulationError(
                f"cannot step {n_ticks} ticks; only "
                f"{self._streams.length - self._tick} readings left")
        start = self._tick
        leaf_ids = self._hierarchy.leaf_ids
        batched: "dict[int, list[list]]" = {}
        for i, leaf in enumerate(leaf_ids):
            node = self._nodes[leaf]
            if hasattr(node, "on_readings") and hasattr(node, "on_tick_start"):
                batched[leaf] = node.on_readings(
                    self._streams.block(i, start, start + n_ticks), start)

        for offset in range(n_ticks):
            queue: "deque[tuple[int, int, object]]" = deque()
            for i, leaf in enumerate(leaf_ids):
                if leaf in batched:
                    outgoing = list(batched[leaf][offset])
                    outgoing.extend(self._nodes[leaf].on_tick_start(self._tick))
                else:
                    reading = self._streams.reading(i, self._tick)
                    outgoing = self._nodes[leaf].on_reading(reading, self._tick)
                for dest, message in outgoing:
                    queue.append((dest, leaf, message))
            self._drain(queue)
            self._tick += 1

    def run(self, n_ticks: int | None = None,
            on_tick: "Callable[[int], None] | None" = None) -> None:
        """Run ``n_ticks`` steps (all remaining when omitted).

        ``on_tick(t)`` is invoked after each completed tick ``t`` --
        experiments hook ground-truth evaluation in here.
        """
        if n_ticks is None:
            n_ticks = self.n_ticks_available
        if n_ticks < 0 or n_ticks > self.n_ticks_available:
            raise SimulationError(
                f"cannot run {n_ticks} ticks; only {self.n_ticks_available} available")
        for _ in range(n_ticks):
            self.step()
            if on_tick is not None:
                on_tick(self._tick - 1)

    def run_batched(self, n_ticks: int | None = None, *,
                    epoch_size: int = 64,
                    on_tick: "Callable[[int], None] | None" = None) -> None:
        """Run in epochs of ``epoch_size`` ticks via :meth:`step_epoch`.

        Produces the same end state as :meth:`run` (see
        :meth:`step_epoch`), substantially faster for leaves that
        implement the batch protocol.  Note ``on_tick`` fires per tick
        but only after the tick's *epoch* has completed, so callbacks
        that inspect per-tick simulator state see end-of-epoch state.
        """
        if epoch_size < 1:
            raise SimulationError(f"epoch_size must be >= 1, got {epoch_size}")
        if n_ticks is None:
            n_ticks = self.n_ticks_available
        if n_ticks < 0 or n_ticks > self.n_ticks_available:
            raise SimulationError(
                f"cannot run {n_ticks} ticks; only {self.n_ticks_available} available")
        done = 0
        while done < n_ticks:
            span = min(epoch_size, n_ticks - done)
            first = self._tick
            self.step_epoch(span)
            done += span
            if on_tick is not None:
                for t in range(first, first + span):
                    on_tick(t)
