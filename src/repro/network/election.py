"""Leader election / rotation for the virtual-grid hierarchy (Section 2).

The paper delegates leader selection to existing protocols ([17, 33,
47]) whose job is to "ensure the leadership role is rotated among the
nodes of the network ... in an energy efficient manner".  This module
provides that pluggable component for simulated deployments: each cell
of the hierarchy elects which of its member sensors *plays* the leader
role for the next epoch, either round-robin or by remaining energy.

The leader role is logical -- the hierarchy's leader node ids stay
stable (and so does all detector state, which in a real deployment
travels with a model-transfer message; see :func:`handoff_cost_words`).
What rotates is the *physical* sensor bearing the role, which is what
spreads the relay/aggregation energy burden.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro._exceptions import ParameterError, TopologyError
from repro._validation import require_positive_int
from repro.network.energy import EnergyAccountant
from repro.network.faults import FaultPlan
from repro.network.messages import MessageCounter, ModelHandoff
from repro.network.topology import Hierarchy

__all__ = ["LeaderAssignment", "RoundRobinElection", "EnergyAwareElection",
           "handoff_cost_words", "BearerChange", "BearerRepair"]


@dataclass(frozen=True)
class LeaderAssignment:
    """Which physical sensor bears each logical leader role this epoch."""

    epoch: int
    #: logical leader node id -> physical leaf sensor id.
    bearer: "dict[int, int]"

    def bearer_of(self, leader: int) -> int:
        """The physical sensor currently playing ``leader``."""
        try:
            return self.bearer[leader]
        except KeyError:
            raise TopologyError(f"{leader} is not a leader node") from None


class _ElectionBase:
    def __init__(self, hierarchy: Hierarchy, epoch_length: int) -> None:
        require_positive_int("epoch_length", epoch_length)
        self._hierarchy = hierarchy
        self._epoch_length = epoch_length
        self._leaders = [node for tier in hierarchy.levels[1:]
                         for node in tier]
        if not self._leaders:
            raise TopologyError("hierarchy has no leader tiers to elect for")
        #: Candidate bearers per leader: the leaf sensors of its subtree.
        self._candidates = {leader: hierarchy.leaves_under(leader)
                            for leader in self._leaders}

    @property
    def epoch_length(self) -> int:
        """Ticks per election epoch."""
        return self._epoch_length

    @property
    def leaders(self) -> "tuple[int, ...]":
        """The logical leader node ids the election covers."""
        return tuple(self._leaders)

    def candidates_for(self, leader: int) -> "tuple[int, ...]":
        """The physical sensors eligible to bear ``leader``'s role."""
        try:
            return tuple(self._candidates[leader])
        except KeyError:
            raise TopologyError(f"{leader} is not a leader node") from None

    def epoch_of(self, tick: int) -> int:
        """The election epoch a tick belongs to."""
        if tick < 0:
            raise ParameterError(f"tick must be >= 0, got {tick}")
        return tick // self._epoch_length


class RoundRobinElection(_ElectionBase):
    """Rotate each cell's leadership among its members, one per epoch.

    Deterministic and state-free: epoch ``e`` assigns member
    ``e mod len(cell)`` -- every sensor bears the role equally often.
    """

    def assignment(self, tick: int) -> LeaderAssignment:
        """The assignment in force at ``tick``."""
        epoch = self.epoch_of(tick)
        bearer = {leader: candidates[epoch % len(candidates)]
                  for leader, candidates in self._candidates.items()}
        return LeaderAssignment(epoch=epoch, bearer=bearer)


class EnergyAwareElection(_ElectionBase):
    """Elect the member with the most remaining energy each epoch.

    Ties break toward the lowest sensor id, making the election
    deterministic given the energy map (as the cited protocols are,
    given their local state).
    """

    def assignment(self, tick: int,
                   spent_joules: "dict[int, float]") -> LeaderAssignment:
        """The assignment at ``tick`` given per-sensor energy spent."""
        epoch = self.epoch_of(tick)
        bearer = {}
        for leader, candidates in self._candidates.items():
            bearer[leader] = min(
                candidates,
                key=lambda s: (spent_joules.get(s, 0.0), s))
        return LeaderAssignment(epoch=epoch, bearer=bearer)


def handoff_cost_words(sample_size: int, n_dims: int,
                       sketch_words: int) -> int:
    """Words transferred when a leader role moves between sensors.

    The incoming bearer needs the role's detector state: the kernel
    sample (``d |R|`` values plus timestamps) and the variance sketches.
    This is the per-rotation communication price an election protocol
    pays for balancing energy.
    """
    require_positive_int("sample_size", sample_size)
    require_positive_int("n_dims", n_dims)
    if sketch_words < 0:
        raise ParameterError(f"sketch_words must be >= 0, got {sketch_words}")
    return sample_size * (n_dims + 1) + sketch_words


@dataclass(frozen=True)
class BearerChange:
    """One leader-role migration between physical sensors.

    ``reason`` is ``"rotation"`` (scheduled epoch turnover), ``"crash"``
    (the scheduled bearer is down and a survivor took over), or
    ``"recovery"`` (a previously bearer-less leader regained one).
    """

    tick: int
    leader: int
    old_bearer: "int | None"
    new_bearer: int
    reason: str


class BearerRepair:
    """Keeps every leader role on a *living* physical bearer under faults.

    Wraps an election policy: each tick it takes the policy's scheduled
    assignment, and for any leader whose scheduled bearer is crashed
    (per the :class:`~repro.network.faults.FaultPlan`) it re-elects the
    next surviving candidate in rotation order.  Every bearer change --
    scheduled rotation or crash repair alike -- is charged as a
    :class:`~repro.network.messages.ModelHandoff` of ``handoff_words``
    (see :func:`handoff_cost_words`): the incoming bearer must receive
    the role's detector state.  When *every* candidate of a leader is
    down, the leader itself is down (:meth:`leader_is_down`); the
    simulator's reliable transport then parks messages addressed to it
    until a bearer recovers.

    State recovery is assumed durable at the role level: the logical
    leader's detector state survives bearer crashes (in a real
    deployment via the handoff replica this class charges for); see
    docs/FAULT_MODEL.md for the abstraction boundary.
    """

    def __init__(self, election: "RoundRobinElection | EnergyAwareElection",
                 faults: FaultPlan, *,
                 handoff_words: int,
                 counter: "MessageCounter | None" = None,
                 energy: "EnergyAccountant | None" = None) -> None:
        require_positive_int("handoff_words", handoff_words)
        self._election = election
        self._faults = faults
        self._handoff_words = handoff_words
        self._counter = counter
        self._energy = energy
        self._bearers: "dict[int, int | None]" = {}
        self._last_tick = -1
        self._initialised = False
        #: Every bearer migration performed, in tick order.
        self.handoffs: "list[BearerChange]" = []

    # ------------------------------------------------------------------

    def _scheduled(self, tick: int) -> LeaderAssignment:
        if isinstance(self._election, EnergyAwareElection):
            spent = self._energy.per_node() if self._energy is not None else {}
            return self._election.assignment(tick, spent)
        return self._election.assignment(tick)

    def _repair_bearer(self, leader: int, scheduled: int,
                       tick: int) -> "int | None":
        """The next surviving candidate after ``scheduled``, if any."""
        candidates = self._election.candidates_for(leader)
        start = candidates.index(scheduled) if scheduled in candidates else 0
        for offset in range(len(candidates)):
            candidate = candidates[(start + offset) % len(candidates)]
            if not self._faults.crashed(candidate, tick):
                return candidate
        return None

    def maintain(self, tick: int) -> "dict[int, int | None]":
        """Bring the bearer map up to date for ``tick``; charge handoffs.

        Idempotent per tick; returns the current leader -> bearer map
        (``None`` marks a leader with no surviving bearer).
        """
        if tick == self._last_tick:
            return dict(self._bearers)
        self._last_tick = tick
        scheduled = self._scheduled(tick)
        for leader in self._election.leaders:
            want = scheduled.bearer[leader]
            repaired = False
            if self._faults.crashed(want, tick):
                want = self._repair_bearer(leader, want, tick)
                repaired = True
            have = self._bearers.get(leader)
            if want == have and leader in self._bearers:
                continue
            self._bearers[leader] = want
            if want is None or not self._initialised:
                continue   # nothing to hand over (or initial deployment)
            reason = "crash" if repaired else (
                "recovery" if have is None else "rotation")
            self.handoffs.append(BearerChange(
                tick=tick, leader=leader, old_bearer=have,
                new_bearer=want, reason=reason))
            if obs.ACTIVE:
                obs.emit("election.handoff", leader=leader,
                         new_bearer=want, old_bearer=have,
                         reason=reason, tick=tick)
            self._charge(leader, have, want, tick)
        self._initialised = True
        return dict(self._bearers)

    def _charge(self, leader: int, old_bearer: "int | None",
                new_bearer: int, tick: int) -> None:
        """Charge one state transfer to the counters.

        The transfer originates at the outgoing bearer when it is still
        alive, else at the leader's logical position (the durable role
        replica); handoffs are assumed reliably delivered.
        """
        message = ModelHandoff(leader=leader, words=self._handoff_words)
        if self._counter is not None:
            self._counter.record(message)
            self._counter.record_delivered(message)
            if obs.ACTIVE:
                source = old_bearer if old_bearer is not None else leader
                obs.emit("message.send", kind="ModelHandoff", sender=source,
                         dest=new_bearer, words=message.size_words(),
                         tick=tick)
                obs.emit("message.deliver", kind="ModelHandoff",
                         dest=new_bearer, tick=tick)
        if self._energy is not None:
            source = old_bearer if (
                old_bearer is not None
                and not self._faults.crashed(old_bearer, tick)) else leader
            self._energy.record(source, new_bearer, message, delivered=True)

    # ------------------------------------------------------------------

    def bearer_of(self, leader: int) -> "int | None":
        """The current physical bearer of ``leader`` (None = down)."""
        try:
            return self._bearers[leader]
        except KeyError:
            raise TopologyError(
                f"{leader} is not a maintained leader (call maintain "
                f"first)") from None

    def leader_is_down(self, node: int, tick: int) -> bool:
        """Whether ``node`` is a leader with no surviving bearer at ``tick``.

        Non-leader nodes are never "down" by this criterion (their own
        crash windows are the :class:`~repro.network.faults.FaultPlan`'s
        business).  The map is maintained for ``tick`` on demand.
        """
        if node not in self._election.leaders:
            return False
        self.maintain(tick)
        return self._bearers.get(node) is None
