"""Leader election / rotation for the virtual-grid hierarchy (Section 2).

The paper delegates leader selection to existing protocols ([17, 33,
47]) whose job is to "ensure the leadership role is rotated among the
nodes of the network ... in an energy efficient manner".  This module
provides that pluggable component for simulated deployments: each cell
of the hierarchy elects which of its member sensors *plays* the leader
role for the next epoch, either round-robin or by remaining energy.

The leader role is logical -- the hierarchy's leader node ids stay
stable (and so does all detector state, which in a real deployment
travels with a model-transfer message; see :func:`handoff_cost_words`).
What rotates is the *physical* sensor bearing the role, which is what
spreads the relay/aggregation energy burden.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._exceptions import ParameterError, TopologyError
from repro._validation import require_positive_int
from repro.network.topology import Hierarchy

__all__ = ["LeaderAssignment", "RoundRobinElection", "EnergyAwareElection",
           "handoff_cost_words"]


@dataclass(frozen=True)
class LeaderAssignment:
    """Which physical sensor bears each logical leader role this epoch."""

    epoch: int
    #: logical leader node id -> physical leaf sensor id.
    bearer: "dict[int, int]"

    def bearer_of(self, leader: int) -> int:
        """The physical sensor currently playing ``leader``."""
        try:
            return self.bearer[leader]
        except KeyError:
            raise TopologyError(f"{leader} is not a leader node") from None


class _ElectionBase:
    def __init__(self, hierarchy: Hierarchy, epoch_length: int) -> None:
        require_positive_int("epoch_length", epoch_length)
        self._hierarchy = hierarchy
        self._epoch_length = epoch_length
        self._leaders = [node for tier in hierarchy.levels[1:]
                         for node in tier]
        if not self._leaders:
            raise TopologyError("hierarchy has no leader tiers to elect for")
        #: Candidate bearers per leader: the leaf sensors of its subtree.
        self._candidates = {leader: hierarchy.leaves_under(leader)
                            for leader in self._leaders}

    @property
    def epoch_length(self) -> int:
        """Ticks per election epoch."""
        return self._epoch_length

    def epoch_of(self, tick: int) -> int:
        """The election epoch a tick belongs to."""
        if tick < 0:
            raise ParameterError(f"tick must be >= 0, got {tick}")
        return tick // self._epoch_length


class RoundRobinElection(_ElectionBase):
    """Rotate each cell's leadership among its members, one per epoch.

    Deterministic and state-free: epoch ``e`` assigns member
    ``e mod len(cell)`` -- every sensor bears the role equally often.
    """

    def assignment(self, tick: int) -> LeaderAssignment:
        """The assignment in force at ``tick``."""
        epoch = self.epoch_of(tick)
        bearer = {leader: candidates[epoch % len(candidates)]
                  for leader, candidates in self._candidates.items()}
        return LeaderAssignment(epoch=epoch, bearer=bearer)


class EnergyAwareElection(_ElectionBase):
    """Elect the member with the most remaining energy each epoch.

    Ties break toward the lowest sensor id, making the election
    deterministic given the energy map (as the cited protocols are,
    given their local state).
    """

    def assignment(self, tick: int,
                   spent_joules: "dict[int, float]") -> LeaderAssignment:
        """The assignment at ``tick`` given per-sensor energy spent."""
        epoch = self.epoch_of(tick)
        bearer = {}
        for leader, candidates in self._candidates.items():
            bearer[leader] = min(
                candidates,
                key=lambda s: (spent_joules.get(s, 0.0), s))
        return LeaderAssignment(epoch=epoch, bearer=bearer)


def handoff_cost_words(sample_size: int, n_dims: int,
                       sketch_words: int) -> int:
    """Words transferred when a leader role moves between sensors.

    The incoming bearer needs the role's detector state: the kernel
    sample (``d |R|`` values plus timestamps) and the variance sketches.
    This is the per-rotation communication price an election protocol
    pays for balancing energy.
    """
    require_positive_int("sample_size", sample_size)
    require_positive_int("n_dims", n_dims)
    if sketch_words < 0:
        raise ParameterError(f"sketch_words must be >= 0, got {sketch_words}")
    return sample_size * (n_dims + 1) + sketch_words
