"""Resource metrics for simulated networks (paper Section 10.3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.messages import MessageCounter

__all__ = ["MemoryReport", "CommunicationReport"]

#: The paper accounts memory in 16-bit words ("assuming a 16-bit
#: architecture, i.e., 2 bytes per number").
BYTES_PER_WORD = 2


@dataclass(frozen=True)
class MemoryReport:
    """Per-node memory accounting, in machine words.

    ``sample_words`` covers the chain sample (Theorem 1's ``O(d|R|)``
    term); ``variance_words`` the EH sketches (the ``(d/eps^2) log|W|``
    term); ``model_words`` any cached global model copy (MGDD leaves).
    """

    sample_words: int
    variance_words: int
    model_words: int = 0

    @property
    def total_words(self) -> int:
        """Total logical words."""
        return self.sample_words + self.variance_words + self.model_words

    @property
    def total_bytes(self) -> int:
        """Total bytes at the paper's 16-bit word size."""
        return self.total_words * BYTES_PER_WORD


@dataclass(frozen=True)
class CommunicationReport:
    """Network-wide message statistics over a simulated run."""

    n_ticks: int
    n_nodes: int
    counter: MessageCounter

    @property
    def messages_per_second(self) -> float:
        """Messages per tick; ticks are 1 second in the paper's setup."""
        return self.counter.messages_per_tick(self.n_ticks)

    @property
    def messages_per_node_per_second(self) -> float:
        """Average per-node message rate."""
        if self.n_nodes == 0:
            return 0.0
        return self.messages_per_second / self.n_nodes
