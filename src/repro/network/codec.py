"""Wire encoding of model state at the paper's 16-bit word size.

Section 10.3 accounts memory and messages in 16-bit words ("2 bytes per
number").  This module makes that accounting concrete: kernel samples,
standard deviations and model updates are quantised to 16-bit
fixed-point words over the ``[0, 1]`` domain and packed to bytes --
the payload a real mote radio would carry.  Quantisation at ``2^-16``
is far below sensor noise and three orders of magnitude below the
kernel bandwidths, so a decoded model is operationally identical
(tested).
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro import _sanitize
from repro._exceptions import ParameterError

__all__ = [
    "encode_values",
    "decode_values",
    "encode_model_state",
    "decode_model_state",
    "quantization_step",
]

#: Largest representable word.
_MAX_WORD = 2**16 - 1

_HEADER = struct.Struct("<HHH")   # n_rows, n_dims, window_size_exponent...


def quantization_step() -> float:
    """The value resolution of the 16-bit fixed-point encoding."""
    return 1.0 / _MAX_WORD


def encode_values(values: np.ndarray) -> bytes:
    """Quantise ``[0, 1]`` values to 16-bit words, little-endian packed."""
    arr = np.asarray(values, dtype=float)
    if not np.isfinite(arr).all():
        raise ParameterError("values must be finite")
    if (arr < 0).any() or (arr > 1).any():
        raise ParameterError("values must lie in [0, 1] "
                             "(normalise readings first)")
    words = np.round(arr * _MAX_WORD).astype("<u2")
    return words.tobytes()


def decode_values(payload: bytes, shape: "Sequence[int]") -> np.ndarray:
    """Inverse of :func:`encode_values`."""
    expected = int(np.prod(shape)) * 2
    if len(payload) != expected:
        raise ParameterError(
            f"payload holds {len(payload)} bytes; shape {tuple(shape)} "
            f"needs {expected}")
    words = np.frombuffer(payload, dtype="<u2")
    return (words.astype(float) / _MAX_WORD).reshape(shape)


def encode_model_state(sample: np.ndarray, stddev: np.ndarray,
                       window_size: int) -> bytes:
    """Pack a kernel model's state (sample, sigma, |W|) for the radio.

    Layout: a 6-byte header (rows, dims, and |W| split into two words),
    then the stddev words, then the sample words, all 16-bit
    little-endian.
    """
    sample_arr = np.asarray(sample, dtype=float)
    if sample_arr.ndim != 2:
        raise ParameterError("sample must have shape (n, d)")
    n, d = sample_arr.shape
    stddev_arr = np.asarray(stddev, dtype=float).reshape(-1)
    if stddev_arr.shape != (d,):
        raise ParameterError(
            f"stddev must have {d} entries, got {stddev_arr.shape}")
    if not 1 <= window_size <= 2**32 - 1:
        raise ParameterError("window_size must fit in 32 bits and be >= 1")
    if n > _MAX_WORD or d > _MAX_WORD:
        raise ParameterError("sample dimensions must fit in 16 bits")
    header = _HEADER.pack(n, d, window_size >> 16) \
        + struct.pack("<H", window_size & 0xFFFF)
    payload = (header
               + encode_values(np.clip(stddev_arr, 0.0, 1.0))
               + encode_values(sample_arr))
    if _sanitize.ACTIVE:
        _sanitize.check_codec_roundtrip(
            payload, sample_arr, np.clip(stddev_arr, 0.0, 1.0),
            window_size, decode_model_state, step=quantization_step())
    return payload


def decode_model_state(payload: bytes) -> "tuple[np.ndarray, np.ndarray, int]":
    """Inverse of :func:`encode_model_state`.

    Returns ``(sample, stddev, window_size)``.
    """
    header_size = _HEADER.size + 2
    if len(payload) < header_size:
        raise ParameterError("payload too short for a model header")
    n, d, window_high = _HEADER.unpack(payload[:_HEADER.size])
    (window_low,) = struct.unpack(
        "<H", payload[_HEADER.size:header_size])
    window_size = (window_high << 16) | window_low
    body = payload[header_size:]
    expected = (d + n * d) * 2
    if len(body) != expected:
        raise ParameterError(
            f"payload body holds {len(body)} bytes, expected {expected}")
    stddev = decode_values(body[:d * 2], (d,))
    sample = decode_values(body[d * 2:], (n, d))
    return sample, stddev, window_size
