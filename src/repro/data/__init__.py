"""Dataset generators: the paper's synthetic workloads plus synthetic
stand-ins for its two real datasets (see DESIGN.md section 4 for the
substitution rationale).
"""

from repro.data.engine import (
    ENGINE_FIGURE5_ROW,
    FAILURE_FRACTION,
    make_engine_stream,
    make_engine_streams,
)
from repro.data.environment import (
    DEWPOINT_FIGURE5_ROW,
    PRESSURE_FIGURE5_ROW,
    make_environment_stream,
    make_environment_streams,
)
from repro.data.streams import StreamSet
from repro.data.synthetic import (
    DEFAULT_MEANS,
    DriftingGaussianStream,
    DriftSpec,
    MixtureSpec,
    PlateauSpec,
    make_drift_stream,
    make_drift_streams,
    make_mixture_stream,
    make_mixture_streams,
    make_plateau_stream,
    make_plateau_streams,
)

__all__ = [
    "MixtureSpec",
    "DEFAULT_MEANS",
    "make_mixture_stream",
    "make_mixture_streams",
    "PlateauSpec",
    "make_plateau_stream",
    "make_plateau_streams",
    "DriftSpec",
    "make_drift_stream",
    "make_drift_streams",
    "DriftingGaussianStream",
    "make_engine_stream",
    "make_engine_streams",
    "ENGINE_FIGURE5_ROW",
    "FAILURE_FRACTION",
    "make_environment_stream",
    "make_environment_streams",
    "PRESSURE_FIGURE5_ROW",
    "DEWPOINT_FIGURE5_ROW",
    "StreamSet",
]
