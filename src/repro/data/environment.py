"""Synthetic stand-in for the Pacific-Northwest environmental dataset
(Figure 5, Figure 10).

The paper's second real dataset contains "measurements of various
natural phenomena, reported by a number of sensors in the Pacific
Northwest region" over two years (35,000 values), and the experiments
stream pairs of (atmospheric pressure, dew-point).  The original feed
(a University of Washington K-12 outreach archive) is no longer
retrievable, so this module synthesises correlated two-dimensional
streams matching the published Figure 5 marginals:

    pressure:  min 0.422, max 0.848, mean 0.677, median 0.681,
               std 0.063, skew -0.399
    dew-point: min 0.113, max 0.282, mean 0.213, median 0.212,
               std 0.027, skew -0.182

Construction: each marginal is a seasonal sinusoid (two annual cycles
across the record) plus an AR(1) weather component plus measurement
noise; mild negative skew comes from occasional low-pressure (storm)
excursions, which also depress the dew-point, inducing the physically
sensible positive correlation between the two attributes.

Why the substitution preserves behaviour: as with the engine data, the
detectors consume windowed value distributions; matching the published
moments (smooth seasonal drift, mild skew, bounded support) exercises the
same regime the paper measured.
"""

from __future__ import annotations

import numpy as np

from repro._rng import resolve_rng
from repro._validation import require_positive_int

__all__ = ["make_environment_stream", "make_environment_streams",
           "PRESSURE_FIGURE5_ROW", "DEWPOINT_FIGURE5_ROW"]

#: Figure 5 rows: (min, max, mean, median, stddev, skew).
PRESSURE_FIGURE5_ROW = (0.422, 0.848, 0.677, 0.681, 0.063, -0.399)
DEWPOINT_FIGURE5_ROW = (0.113, 0.282, 0.213, 0.212, 0.027, -0.182)

_PRESSURE_MEAN = 0.684
_PRESSURE_SEASONAL_AMP = 0.068
_PRESSURE_AR_STD = 0.038
_PRESSURE_NOISE_STD = 0.014
_PRESSURE_RANGE = (0.422, 0.848)

_DEWPOINT_MEAN = 0.216
_DEWPOINT_SEASONAL_AMP = 0.029
_DEWPOINT_AR_STD = 0.014
_DEWPOINT_NOISE_STD = 0.006
_DEWPOINT_RANGE = (0.113, 0.282)

#: AR(1) persistence of the weather component.
_AR_COEFF = 0.995

#: Storm model: per-step probability of entering a storm, its mean
#: length in steps, and the pressure/dew-point depressions it causes.
_STORM_PROB = 0.002
_STORM_LENGTH = 110
_STORM_PRESSURE_DROP = 0.11
_STORM_DEWPOINT_DROP = 0.035


def _ar1(n: int, std: float, rng: np.random.Generator) -> np.ndarray:
    innovations = rng.normal(0.0, std * np.sqrt(1.0 - _AR_COEFF**2), size=n)
    out = np.empty(n)
    state = rng.normal(0.0, std)
    for i in range(n):
        state = _AR_COEFF * state + innovations[i]
        out[i] = state
    return out


def _storm_profile(n: int, rng: np.random.Generator) -> np.ndarray:
    """A 0..1 intensity profile of randomly arriving storms."""
    profile = np.zeros(n)
    starts = np.flatnonzero(rng.random(n) < _STORM_PROB)
    for start in starts:
        length = max(10, int(rng.exponential(_STORM_LENGTH)))
        end = min(n, start + length)
        span = end - start
        # Triangular build-up and decay.
        shape = 1.0 - np.abs(np.linspace(-1.0, 1.0, span))
        profile[start:end] = np.maximum(profile[start:end], shape)
    return profile


def make_environment_stream(n: int = 35_000, *,
                            rng: np.random.Generator | None = None) -> np.ndarray:
    """One sensor's (pressure, dew-point) stream, shape ``(n, 2)``."""
    require_positive_int("n", n)
    rng = resolve_rng(rng)

    t = np.arange(n)
    # Two annual cycles over the record, as in the two-year original.
    season = np.sin(2.0 * np.pi * 2.0 * t / n + rng.uniform(0, 2 * np.pi))
    storms = _storm_profile(n, rng)

    pressure = (_PRESSURE_MEAN
                + _PRESSURE_SEASONAL_AMP * season
                + _ar1(n, _PRESSURE_AR_STD, rng)
                - _STORM_PRESSURE_DROP * storms
                + rng.normal(0.0, _PRESSURE_NOISE_STD, size=n))
    dewpoint = (_DEWPOINT_MEAN
                + _DEWPOINT_SEASONAL_AMP * season
                + _ar1(n, _DEWPOINT_AR_STD, rng)
                - _STORM_DEWPOINT_DROP * storms
                + rng.normal(0.0, _DEWPOINT_NOISE_STD, size=n))

    pressure = np.clip(pressure, *_PRESSURE_RANGE)
    dewpoint = np.clip(dewpoint, *_DEWPOINT_RANGE)
    return np.stack([pressure, dewpoint], axis=1)


def make_environment_streams(n_sensors: int, n: int = 35_000, *,
                             seed: int | None = None) -> "list[np.ndarray]":
    """Independent per-sensor (pressure, dew-point) streams.

    Sensors share the regional season phase loosely (independent random
    phases stay within the same two-cycle pattern) but observe their own
    weather; this matches the paper's note that "each sensor sees a
    different set of data".
    """
    require_positive_int("n_sensors", n_sensors)
    root = np.random.default_rng(seed)
    return [make_environment_stream(n, rng=np.random.default_rng(root.integers(2**63)))
            for _ in range(n_sensors)]
