"""Synthetic workloads from the paper's experimental section (Section 10).

Two generators:

* :func:`make_mixture_stream` -- the accuracy-experiment workload: "Each
  dataset is a mixture of three Gaussian distributions with uniform
  noise; the mean is selected at random from (0.3, 0.35, 0.45), and the
  standard deviation is selected as 0.03 ... we add 0.5% (of the dataset
  size) noise values, uniformly at random in the interval [0.5, 1]."
  For d-dimensional data each reading's component mean applies to every
  coordinate (three diagonal clusters), and the noise box is
  ``[0.5, 1]^d``.

* :class:`DriftingGaussianStream` -- the Figure 6 workload: Gaussian
  readings whose mean flips between two values every ``shift_every``
  measurements (0.3 -> 0.5 with sigma 0.05 every 4096 in the paper), used
  to measure how quickly the window estimate tracks a changed
  distribution.

Every generator takes an explicit ``numpy.random.Generator`` so that
experiments are reproducible; per-sensor streams derive child seeds from
one root seed ("each sensor sees a different set of data").  When the
generator is omitted, the deterministic fallback streams of
:mod:`repro._rng` are used, so even default-configured runs replay bit
for bit (lint rule RL001).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._exceptions import ParameterError
from repro._rng import resolve_rng
from repro._validation import require_fraction, require_positive_int

__all__ = [
    "MixtureSpec",
    "make_mixture_stream",
    "make_mixture_streams",
    "PlateauSpec",
    "make_plateau_stream",
    "make_plateau_streams",
    "DriftSpec",
    "make_drift_stream",
    "make_drift_streams",
    "DriftingGaussianStream",
]

#: The paper's default component means.
DEFAULT_MEANS = (0.3, 0.35, 0.45)


@dataclass(frozen=True)
class MixtureSpec:
    """Parameters of the Section 10 synthetic mixture workload."""

    means: "tuple[float, ...]" = DEFAULT_MEANS
    cluster_std: float = 0.03
    noise_fraction: float = 0.005
    noise_low: float = 0.5
    noise_high: float = 1.0

    def __post_init__(self) -> None:
        if not self.means:
            raise ParameterError("means must contain at least one entry")
        if not np.isfinite(self.cluster_std) or self.cluster_std <= 0:
            raise ParameterError(
                f"cluster_std must be positive, got {self.cluster_std!r}")
        require_fraction("noise_fraction", self.noise_fraction, inclusive_low=True)
        if not self.noise_high > self.noise_low:
            raise ParameterError("noise_high must exceed noise_low")


def make_mixture_stream(n: int, n_dims: int = 1, *,
                        spec: MixtureSpec | None = None,
                        rng: np.random.Generator | None = None) -> np.ndarray:
    """One sensor's stream of ``n`` mixture readings, shape ``(n, d)``.

    Gaussian bulk values are clipped into ``[0, 1]`` (the estimator's
    domain); noise values are interleaved uniformly at random positions,
    as arriving spurious readings would be.
    """
    require_positive_int("n", n)
    require_positive_int("n_dims", n_dims)
    spec = spec if spec is not None else MixtureSpec()
    rng = resolve_rng(rng)

    means = np.asarray(spec.means, dtype=float)
    # One component per reading ("a mixture of three Gaussian
    # distributions"); in d dimensions the component mean applies to
    # every coordinate, giving three diagonal clusters.
    component = rng.integers(0, means.shape[0], size=n)
    centers = np.repeat(means[component][:, None], n_dims, axis=1)
    values = rng.normal(centers, spec.cluster_std)
    values = np.clip(values, 0.0, 1.0)

    n_noise = int(round(spec.noise_fraction * n))
    if n_noise:
        positions = rng.choice(n, size=n_noise, replace=False)
        values[positions] = rng.uniform(spec.noise_low, spec.noise_high,
                                        size=(n_noise, n_dims))
    return values


def make_mixture_streams(n_sensors: int, n: int, n_dims: int = 1, *,
                         spec: MixtureSpec | None = None,
                         seed: int | None = None) -> "list[np.ndarray]":
    """Independent per-sensor streams ("each sensor sees a different set
    of data"), derived from one root seed."""
    require_positive_int("n_sensors", n_sensors)
    root = np.random.default_rng(seed)
    return [make_mixture_stream(n, n_dims, spec=spec,
                                rng=np.random.default_rng(root.integers(2**63)))
            for _ in range(n_sensors)]


@dataclass(frozen=True)
class PlateauSpec:
    """Parameters of the local-density (MDEF) workload.

    Two uniform-density plateaus separated by a sparsely populated gap.
    Values landing in the gap are genuine *local* outliers: their
    counting neighbourhoods are orders of magnitude emptier than those
    of the objects in their sampling neighbourhoods, while both plateaus
    are locally homogeneous -- exactly the structure the MDEF metric
    (Section 3) is designed to isolate and distance thresholds struggle
    with when the two plateaus have different densities.

    This replaces the Gaussian mixture for the MGDD accuracy
    experiments: under an exact aLOCI ground truth the paper's mixture
    yields an (almost) empty MDEF outlier set, because steep Gaussian
    tails keep ``sigma_MDEF`` above ``MDEF/k_sigma`` everywhere (see
    EXPERIMENTS.md for the full analysis).
    """

    plateau_a: "tuple[float, float]" = (0.30, 0.42)
    plateau_b: "tuple[float, float]" = (0.50, 0.58)
    gap: "tuple[float, float]" = (0.43, 0.49)
    #: Probability mass of plateau A.  None (the default) equalises the
    #: *density* of the two plateaus for the target dimensionality,
    #: which keeps sigma_MDEF low throughout both blocks.
    weight_a: "float | None" = None
    noise_fraction: float = 0.005

    def __post_init__(self) -> None:
        for name, (low, high) in (("plateau_a", self.plateau_a),
                                  ("plateau_b", self.plateau_b),
                                  ("gap", self.gap)):
            if not high > low:
                raise ParameterError(f"{name} must satisfy low < high")
        if self.weight_a is not None:
            require_fraction("weight_a", self.weight_a, inclusive_high=False)
        require_fraction("noise_fraction", self.noise_fraction,
                         inclusive_low=True, inclusive_high=False)

    def effective_weight_a(self, n_dims: int) -> float:
        """Plateau-A mass; defaults to density-equalising for ``n_dims``."""
        if self.weight_a is not None:
            return self.weight_a
        volume_a = (self.plateau_a[1] - self.plateau_a[0]) ** n_dims
        volume_b = (self.plateau_b[1] - self.plateau_b[0]) ** n_dims
        return volume_a / (volume_a + volume_b)


def make_plateau_stream(n: int, n_dims: int = 1, *,
                        spec: PlateauSpec | None = None,
                        rng: np.random.Generator | None = None) -> np.ndarray:
    """One sensor's stream of the local-density workload, shape ``(n, d)``.

    For ``d > 1`` the plateaus and the gap become axis-aligned boxes
    (each coordinate drawn from the same interval), preserving the
    dense-block / sparse-gap structure under the Chebyshev geometry.
    """
    require_positive_int("n", n)
    require_positive_int("n_dims", n_dims)
    spec = spec if spec is not None else PlateauSpec()
    rng = resolve_rng(rng)

    choice = rng.random(n)
    values = np.empty((n, n_dims))
    in_a = choice < spec.effective_weight_a(n_dims)
    values[in_a] = rng.uniform(*spec.plateau_a, size=(int(in_a.sum()), n_dims))
    values[~in_a] = rng.uniform(*spec.plateau_b, size=(int((~in_a).sum()), n_dims))
    n_noise = int(round(spec.noise_fraction * n))
    if n_noise:
        positions = rng.choice(n, size=n_noise, replace=False)
        values[positions] = rng.uniform(*spec.gap, size=(n_noise, n_dims))
    return values


def make_plateau_streams(n_sensors: int, n: int, n_dims: int = 1, *,
                         spec: PlateauSpec | None = None,
                         seed: int | None = None) -> "list[np.ndarray]":
    """Independent per-sensor plateau streams from one root seed."""
    require_positive_int("n_sensors", n_sensors)
    root = np.random.default_rng(seed)
    return [make_plateau_stream(n, n_dims, spec=spec,
                                rng=np.random.default_rng(root.integers(2**63)))
            for _ in range(n_sensors)]


@dataclass(frozen=True)
class DriftSpec:
    """Parameters of the one-shot distribution-shift workload.

    A tight Gaussian whose mean jumps from ``mean_before`` to
    ``mean_after`` once, at ``shift_fraction`` of the stream.  Unlike
    :class:`DriftingGaussianStream` (the Figure 6 tracking workload,
    which cycles means indefinitely) this is the injection workload for
    the model-health monitors: the probe-mass vectors of models built
    before and after the shift differ by a large, deterministic margin,
    so a seeded run provably raises the drift score.
    """

    mean_before: float = 0.35
    mean_after: float = 0.65
    std: float = 0.04
    shift_fraction: float = 0.5

    def __post_init__(self) -> None:
        for name, mean in (("mean_before", self.mean_before),
                           ("mean_after", self.mean_after)):
            if not 0.0 <= mean <= 1.0:
                raise ParameterError(
                    f"{name} must lie in [0, 1], got {mean!r}")
        if not np.isfinite(self.std) or self.std <= 0:
            raise ParameterError(f"std must be positive, got {self.std!r}")
        require_fraction("shift_fraction", self.shift_fraction)

    def shift_index(self, n: int) -> int:
        """First measurement index drawn from the post-shift mean."""
        return int(round(self.shift_fraction * n))


def make_drift_stream(n: int, n_dims: int = 1, *,
                      spec: DriftSpec | None = None,
                      rng: np.random.Generator | None = None) -> np.ndarray:
    """One sensor's drift-injection stream, shape ``(n, d)``.

    Readings before :meth:`DriftSpec.shift_index` are Gaussian around
    ``mean_before``, the rest around ``mean_after``; everything is
    clipped into the estimator's ``[0, 1]`` domain.
    """
    require_positive_int("n", n)
    require_positive_int("n_dims", n_dims)
    spec = spec if spec is not None else DriftSpec()
    rng = resolve_rng(rng)

    shift = spec.shift_index(n)
    centers = np.full((n, n_dims), spec.mean_after)
    centers[:shift] = spec.mean_before
    return np.clip(rng.normal(centers, spec.std), 0.0, 1.0)


def make_drift_streams(n_sensors: int, n: int, n_dims: int = 1, *,
                       spec: DriftSpec | None = None,
                       seed: int | None = None) -> "list[np.ndarray]":
    """Independent per-sensor drift streams from one root seed.

    Every sensor shifts at the same index (a network-wide regime
    change), but draws its own readings.
    """
    require_positive_int("n_sensors", n_sensors)
    root = np.random.default_rng(seed)
    return [make_drift_stream(n, n_dims, spec=spec,
                              rng=np.random.default_rng(root.integers(2**63)))
            for _ in range(n_sensors)]


class DriftingGaussianStream:
    """The Figure 6 workload: Gaussian readings with periodic mean shifts.

    Parameters
    ----------
    means:
        The sequence of means to cycle through (``(0.3, 0.5)`` in the
        paper's experiment).
    std:
        Standard deviation of the readings (0.05 in the paper).
    shift_every:
        Number of measurements between mean changes (4096 in the paper).
    rng:
        Source of randomness (a deterministic fallback stream from
        :mod:`repro._rng` when omitted).
    """

    def __init__(self, means: "tuple[float, ...]" = (0.3, 0.5),
                 std: float = 0.05, shift_every: int = 4096,
                 rng: np.random.Generator | None = None) -> None:
        if len(means) < 1:
            raise ParameterError("means must contain at least one entry")
        if not np.isfinite(std) or std <= 0:
            raise ParameterError(f"std must be positive, got {std!r}")
        require_positive_int("shift_every", shift_every)
        self._means = tuple(float(m) for m in means)
        self._std = float(std)
        self._shift_every = shift_every
        self._rng = resolve_rng(rng)

    def mean_at(self, t: int) -> float:
        """The true mean in effect at measurement index ``t``."""
        return self._means[(t // self._shift_every) % len(self._means)]

    def true_pdf(self, t: int, xs: np.ndarray) -> np.ndarray:
        """The true density in effect at index ``t``, evaluated at ``xs``."""
        mu = self.mean_at(t)
        coeff = 1.0 / (self._std * np.sqrt(2.0 * np.pi))
        return coeff * np.exp(-0.5 * ((np.asarray(xs) - mu) / self._std) ** 2)

    def true_interval_probabilities(self, t: int, edges: np.ndarray) -> np.ndarray:
        """True probability mass of each interval between ``edges`` at ``t``."""
        from scipy.special import ndtr
        mu = self.mean_at(t)
        z = (np.asarray(edges, dtype=float) - mu) / self._std
        return np.diff(ndtr(z))

    def generate(self, n: int, start: int = 0) -> np.ndarray:
        """Generate measurements for indices ``start .. start + n - 1``."""
        require_positive_int("n", n)
        idx = np.arange(start, start + n)
        mus = np.array([self.mean_at(int(t)) for t in idx])
        return np.clip(self._rng.normal(mus, self._std), 0.0, 1.0).reshape(-1, 1)
