"""Stream plumbing shared by the simulator and the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro._exceptions import ParameterError
from repro._validation import as_points

__all__ = ["StreamSet"]


@dataclass(frozen=True)
class StreamSet:
    """A bundle of per-sensor streams of equal length and dimensionality.

    ``streams[i]`` has shape ``(length, n_dims)`` and is the reading
    sequence of leaf sensor ``i``.
    """

    streams: "tuple[np.ndarray, ...]"

    @classmethod
    def from_arrays(cls, arrays: "Iterable[np.ndarray | Sequence[Sequence[float]] | Sequence[float]]") -> "StreamSet":
        """Validate and normalise a list of per-sensor arrays."""
        normalised = tuple(as_points(f"streams[{i}]", a)
                           for i, a in enumerate(arrays))
        if not normalised:
            raise ParameterError("a StreamSet needs at least one stream")
        lengths = {a.shape[0] for a in normalised}
        dims = {a.shape[1] for a in normalised}
        if len(lengths) != 1:
            raise ParameterError(f"streams disagree on length: {sorted(lengths)}")
        if len(dims) != 1:
            raise ParameterError(f"streams disagree on dimensionality: {sorted(dims)}")
        return cls(normalised)

    @property
    def n_sensors(self) -> int:
        """Number of per-sensor streams."""
        return len(self.streams)

    @property
    def length(self) -> int:
        """Readings per sensor."""
        return self.streams[0].shape[0]

    @property
    def n_dims(self) -> int:
        """Dimensionality of each reading."""
        return self.streams[0].shape[1]

    def reading(self, sensor: int, t: int) -> np.ndarray:
        """The reading of ``sensor`` at tick ``t``."""
        return self.streams[sensor][t]

    def block(self, sensor: int, start: int, stop: int) -> np.ndarray:
        """The readings of ``sensor`` over ticks ``[start, stop)``."""
        return self.streams[sensor][start:stop]
