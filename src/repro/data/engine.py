"""Synthetic stand-in for the paper's engine dataset (Figure 5, Figure 10).

The paper's first real dataset "records the operation of an engine
reported every 5 minutes by 15 sensors" from June to December 2002
(50,000 values per sensor), including "a major failure ... from October
28th to November 1st" during which the sensors "reported deviating
values".  That dataset is proprietary, so this module synthesises
streams that match the published Figure 5 statistics:

    min 0.020, max 0.427, mean 0.410, median 0.419, std 0.053, skew -6.844

The published moments are themselves strongly two-regime: solving the
two-component mixture that reproduces (mean, std, skew) around a healthy
median of 0.419 yields a failure regime at level ~0.056 occupying ~2.1%
of the stream -- strikingly consistent with a four-day outage in a
six-month record (4/183 = 2.2%).  We therefore generate:

* a *healthy* regime: a tight Gaussian band around 0.419 (the median),
  clipped at the published maximum 0.427;
* a *failure* window: one contiguous block of ~2.1% of the samples at
  level ~0.056, clipped at the published minimum 0.020.

Why the substitution preserves behaviour: the detection algorithms only
observe the windowed value distribution.  Matching the published moments
reproduces the same smooth-band / abrupt-excursion regime that gave the
paper its ~99% precision / ~93% recall on this dataset.
"""

from __future__ import annotations

import numpy as np

from repro._exceptions import ParameterError
from repro._rng import resolve_rng
from repro._validation import require_fraction, require_positive_int

__all__ = ["make_engine_stream", "make_engine_streams",
           "ENGINE_FIGURE5_ROW", "FAILURE_FRACTION"]

#: The Figure 5 row for the engine dataset:
#: (min, max, mean, median, stddev, skew).
ENGINE_FIGURE5_ROW = (0.020, 0.427, 0.410, 0.419, 0.053, -6.844)

#: Fraction of the stream inside the failure window (solved from the
#: published moments; see the module docstring).
FAILURE_FRACTION = 0.021

_HEALTHY_LEVEL = 0.419
_HEALTHY_STD = 0.0042
_FAILURE_LEVEL = 0.056
_FAILURE_STD = 0.022
_MIN_VALUE = 0.020
_MAX_VALUE = 0.427


def make_engine_stream(n: int = 50_000, *,
                       failure_fraction: float = FAILURE_FRACTION,
                       failure_start_fraction: float = 0.81,
                       rng: np.random.Generator | None = None) -> np.ndarray:
    """One engine sensor's stream, shape ``(n, 1)``.

    ``failure_start_fraction`` places the failure window within the
    stream; the default 0.81 corresponds to late October within a
    June-December record.
    """
    require_positive_int("n", n)
    require_fraction("failure_fraction", failure_fraction,
                     inclusive_low=True, inclusive_high=False)
    if not 0.0 <= failure_start_fraction < 1.0:
        raise ParameterError(
            f"failure_start_fraction must be in [0, 1), got {failure_start_fraction!r}")
    rng = resolve_rng(rng)

    values = rng.normal(_HEALTHY_LEVEL, _HEALTHY_STD, size=n)
    n_fail = int(round(failure_fraction * n))
    if n_fail:
        start = int(failure_start_fraction * n)
        start = min(start, n - n_fail)
        # The excursion ramps down, dwells, and recovers, like a real
        # outage trace rather than an i.i.d. block.
        ramp = max(1, n_fail // 10)
        dwell = n_fail - 2 * ramp
        profile = np.concatenate([
            np.linspace(_HEALTHY_LEVEL, _FAILURE_LEVEL, ramp),
            np.full(max(dwell, 0), _FAILURE_LEVEL),
            np.linspace(_FAILURE_LEVEL, _HEALTHY_LEVEL, ramp),
        ])[:n_fail]
        values[start:start + n_fail] = profile + rng.normal(
            0.0, _FAILURE_STD, size=n_fail)
    return np.clip(values, _MIN_VALUE, _MAX_VALUE).reshape(-1, 1)


def make_engine_streams(n_sensors: int = 15, n: int = 50_000, *,
                        seed: int | None = None) -> "list[np.ndarray]":
    """Streams for the paper's 15 engine sensors.

    All sensors witness the same systemic failure window (it was a
    machine-level event) but otherwise observe independent measurement
    noise and slightly different operating levels.
    """
    require_positive_int("n_sensors", n_sensors)
    root = np.random.default_rng(seed)
    streams = []
    for _ in range(n_sensors):
        child = np.random.default_rng(root.integers(2**63))
        stream = make_engine_stream(n, rng=child)
        # Small per-sensor calibration offset, clipped back to the domain.
        offset = child.normal(0.0, 0.0015)
        streams.append(np.clip(stream + offset, _MIN_VALUE, _MAX_VALUE))
    return streams
