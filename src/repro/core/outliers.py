"""Distance-based outlier tests (paper Sections 3 and 7).

Following Knorr & Ng (VLDB'98), a point ``p`` in a window ``W`` is a
``(D, r)``-outlier if at most ``D`` of the window's points lie within
distance ``r`` of ``p``.  The paper phrases the test through the density
model: estimate ``N(p, r)`` with Equation 4 and flag ``p`` when the
estimate falls below the application threshold ``t`` (procedure
``IsOutlier`` of Figure 4).

Distances are per-dimension intervals ``[p - r, p + r]``, i.e. the L-inf
(Chebyshev) geometry, matching the paper's range queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._exceptions import ParameterError
from repro.core.model import DensityModel

__all__ = [
    "DistanceOutlierSpec",
    "DistanceOutlierDecision",
    "is_distance_outlier",
    "DistanceOutlierDetector",
]


@dataclass(frozen=True)
class DistanceOutlierSpec:
    """Parameters of a ``(D, r)``-outlier query.

    Attributes
    ----------
    radius:
        The neighbourhood radius ``r`` (per-dimension half-width).
    count_threshold:
        The neighbour-count threshold ``t``: a value is an outlier when
        fewer than ``t`` window values fall within ``radius`` of it.  The
        paper's synthetic experiments look for ``(45, 0.01)``-outliers.
    """

    radius: float
    count_threshold: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.radius) or self.radius <= 0:
            raise ParameterError(f"radius must be positive, got {self.radius!r}")
        if not np.isfinite(self.count_threshold) or self.count_threshold <= 0:
            raise ParameterError(
                f"count_threshold must be positive, got {self.count_threshold!r}")


@dataclass(frozen=True)
class DistanceOutlierDecision:
    """Outcome of a single distance-based outlier check."""

    is_outlier: bool
    #: The (estimated) number of window values within ``radius`` of the point.
    neighbor_count: float


def is_distance_outlier(model: DensityModel, p: "np.ndarray | Sequence[float] | float",
                        spec: DistanceOutlierSpec) -> DistanceOutlierDecision:
    """Run the ``IsOutlier`` test of Figure 4 against a density model."""
    count = model.neighborhood_count(p, spec.radius)
    count_value = float(np.asarray(count).reshape(()))
    return DistanceOutlierDecision(count_value < spec.count_threshold, count_value)


class DistanceOutlierDetector:
    """A density model bound to a ``(D, r)``-outlier specification.

    This is the per-node detector object the D3 algorithm instantiates:
    leaves bind it to their local model, parents to the model built from
    their children's forwarded samples.
    """

    def __init__(self, model: DensityModel, spec: DistanceOutlierSpec) -> None:
        self._model = model
        self._spec = spec

    @property
    def model(self) -> DensityModel:
        """The bound density model."""
        return self._model

    @property
    def spec(self) -> DistanceOutlierSpec:
        """The bound outlier specification."""
        return self._spec

    def check(self, p: "np.ndarray | Sequence[float] | float") -> DistanceOutlierDecision:
        """Check one point."""
        return is_distance_outlier(self._model, p, self._spec)

    def check_batch(self, points: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Check a batch of points at once.

        Returns ``(is_outlier_mask, estimated_counts)``, both of shape
        ``(m,)``.  Batching amortises the vectorised range query across
        all points that arrive in one simulator tick.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(-1, 1)
        counts = np.asarray(self._model.neighborhood_count(pts, self._spec.radius))
        return counts < self._spec.count_threshold, counts
