"""Offline ground-truth outlier algorithms (paper Section 10, "Comparisons").

The paper evaluates precision and recall against exact offline detectors:

* **BruteForce-D** -- for every point in the window, count all other window
  points within range ``r`` and flag it when the count falls below ``t``.
  The naive implementation is ``O(d |W|^2)``; we additionally provide an
  exact accelerated path (a KD-tree under the Chebyshev metric, matching
  the paper's per-dimension interval geometry) so paper-scale windows stay
  tractable.  Both paths return identical answers (tested).

* **BruteForce-M** -- the aLOCI algorithm computed from the *actual*
  window contents: exact counting-neighbourhood populations and exact
  grid-cell populations, pushed through the same
  :func:`~repro.core.mdef.mdef_statistic` rule that the model-based
  detector uses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro._exceptions import ParameterError
from repro._validation import as_points
from repro.core.mdef import MDEFDecision, MDEFSpec, cell_grid_centers, mdef_statistic
from repro.core.outliers import DistanceOutlierSpec

__all__ = [
    "chebyshev_neighbor_counts",
    "brute_force_distance_outliers",
    "brute_force_distance_outliers_naive",
    "brute_force_mdef_outliers",
]


def chebyshev_neighbor_counts(values: np.ndarray, queries: np.ndarray,
                              radius: float) -> np.ndarray:
    """Exact count of ``values`` within L-inf distance ``radius`` of each query.

    Uses a KD-tree with the Chebyshev metric; the count is inclusive of
    boundary points and of a query point itself when it is present in
    ``values``.
    """
    vals = as_points("values", values)
    qs = as_points("queries", queries, n_dims=vals.shape[1])
    if not np.isfinite(radius) or radius <= 0:
        raise ParameterError(f"radius must be positive, got {radius!r}")
    tree = cKDTree(vals)
    return np.asarray(
        tree.query_ball_point(qs, r=radius, p=np.inf, return_length=True),
        dtype=np.int64)


def brute_force_distance_outliers(
        values: "np.ndarray | Sequence[Sequence[float]] | Sequence[float]",
        spec: DistanceOutlierSpec) -> np.ndarray:
    """Exact BruteForce-D: boolean outlier mask over the window ``values``.

    A window value is flagged when fewer than ``spec.count_threshold``
    window values (itself included) lie within ``spec.radius`` of it.
    """
    vals = as_points("values", values)
    counts = chebyshev_neighbor_counts(vals, vals, spec.radius)
    return counts < spec.count_threshold


def brute_force_distance_outliers_naive(
        values: "np.ndarray | Sequence[Sequence[float]] | Sequence[float]",
        spec: DistanceOutlierSpec, *,
        chunk_size: int = 512) -> np.ndarray:
    """The paper's naive ``O(d |W|^2)`` BruteForce-D, for cross-checking.

    Processes query points in chunks to bound the ``(chunk, n, d)``
    broadcast memory.
    """
    vals = as_points("values", values)
    n = vals.shape[0]
    counts = np.empty(n, dtype=np.int64)
    for start in range(0, n, chunk_size):
        block = vals[start:start + chunk_size]
        dists = np.abs(block[:, None, :] - vals[None, :, :]).max(axis=2)
        counts[start:start + chunk_size] = (dists <= spec.radius).sum(axis=1)
    return counts < spec.count_threshold


def _cell_indices(values: np.ndarray, spec: MDEFSpec, n_cells: int) -> np.ndarray:
    idx = np.floor(values / spec.cell_width).astype(np.int64)
    return np.clip(idx, 0, n_cells - 1)


def brute_force_mdef_outliers(
        values: "np.ndarray | Sequence[Sequence[float]] | Sequence[float]",
        spec: MDEFSpec, *,
        return_decisions: bool = False,
) -> "np.ndarray | tuple[np.ndarray, list[MDEFDecision]]":
    """Exact BruteForce-M: aLOCI over the actual window contents.

    For every window value: its exact counting-neighbourhood population
    (KD-tree, Chebyshev), the exact populations of the grid cells whose
    centres fall within the sampling radius, and the Equation 9 test via
    :func:`~repro.core.mdef.mdef_statistic`.

    Returns a boolean mask, or ``(mask, decisions)`` when
    ``return_decisions`` is set.
    """
    vals = as_points("values", values)
    n, d = vals.shape
    neighbor_counts = chebyshev_neighbor_counts(vals, vals, spec.counting_radius)

    centers_1d = cell_grid_centers(spec)
    n_cells = centers_1d.shape[0]
    grid = np.zeros((n_cells,) * d, dtype=np.int64)
    idx = _cell_indices(vals, spec, n_cells)
    np.add.at(grid, tuple(idx[:, j] for j in range(d)), 1)

    mask = np.empty(n, dtype=bool)
    decisions: "list[MDEFDecision]" = []
    for i in range(n):
        slices = []
        for j in range(d):
            in_range = np.abs(centers_1d - vals[i, j]) <= spec.sampling_radius
            nz = np.flatnonzero(in_range)
            if nz.size == 0:
                nearest = int(np.argmin(np.abs(centers_1d - vals[i, j])))
                slices.append(slice(nearest, nearest + 1))
            else:
                slices.append(slice(int(nz[0]), int(nz[-1]) + 1))
        cell_counts = grid[tuple(slices)].reshape(-1)
        decision = mdef_statistic(neighbor_counts[i], cell_counts,
                                  spec.k_sigma, min_mdef=spec.min_mdef)
        mask[i] = decision.is_outlier
        if return_decisions:
            decisions.append(decision)
    if return_decisions:
        return mask, decisions
    return mask
