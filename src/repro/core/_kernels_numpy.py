"""Fused, cache-blocked numpy kernels for the Eq. 4-6 hot paths.

This module is the portable compute backend behind
:mod:`repro.core.backend`.  Each function evaluates the exact expression
the estimator historically inlined, but blocked over the *query* axis so
a block's scratch arrays (sized by ``REPRO_KERNEL_BLOCK``) stay resident
in cache, and with every elementwise step running in place instead of
allocating a fresh temporary.

Bit-identity contract
---------------------
Every function here reproduces the historical estimator expressions bit
for bit.  That holds because the rewrites only use transformations that
are exact under IEEE-754 round-to-nearest:

* blocking over the query axis (rows are reduced independently, so the
  per-row pairwise summation of ``mean``/``sum`` is unchanged -- blocking
  over the *centres* axis would change it and is never done);
* in-place ``out=`` variants of the same ufunc calls;
* commuting the operands of a single multiplication or addition
  (``z * 3.0`` for ``3.0 * z``);
* ``np.maximum(t, 0.0)`` for the Epanechnikov profile's ``np.where``
  mask (values outside the support are negative, and the boundary value
  is ``+0.0`` either way);
* sweeping the dimensions of a multi-dimensional query as 2-d slabs
  with a running product (numpy's multiply reduction over a short last
  axis is sequential left to right, so the accumulator reproduces
  ``prod(axis=2)`` exactly).

Divisions are preserved as divisions and reciprocal-multiplications as
reciprocal-multiplications, per call site: the two differ in the last
ulp.  The equivalence suite in ``tests/core/test_backend_equivalence.py``
asserts ``np.array_equal`` against frozen copies of the pre-backend
implementations.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtr

from repro.core.kernels import Kernel

__all__ = ["range_batch", "pdf_batch", "cdf_diff_rows"]

_SQRT_TWO_PI = math.sqrt(2.0 * math.pi)


def _cdf_inplace(kernel: Kernel, name: str, z: np.ndarray,
                 scratch: np.ndarray) -> None:
    """``z <- kernel.cdf(z)`` without allocating (named kernels)."""
    if name == "epanechnikov":
        # 0.25 * (2 + 3c - c^3) with c = clip(z, -1, 1), as in
        # EpanechnikovKernel.cdf.
        np.clip(z, -1.0, 1.0, out=z)
        np.multiply(z, z, out=scratch)
        np.multiply(scratch, z, out=scratch)
        np.multiply(z, 3.0, out=z)
        np.add(z, 2.0, out=z)
        np.subtract(z, scratch, out=z)
        np.multiply(z, 0.25, out=z)
    elif name == "gaussian":
        ndtr(z, out=z)
    else:
        z[...] = kernel.cdf(z)


def _profile_inplace(kernel: Kernel, name: str, u: np.ndarray,
                     scratch: np.ndarray) -> np.ndarray:
    """``kernel.profile(u)`` evaluated into ``scratch``."""
    if name == "epanechnikov":
        # max(0.75 * (1 - u^2), 0): outside the support the parabola is
        # negative, so the clamp equals the where() mask bit for bit.
        np.multiply(u, u, out=scratch)
        np.subtract(1.0, scratch, out=scratch)
        np.multiply(scratch, 0.75, out=scratch)
        np.maximum(scratch, 0.0, out=scratch)
    elif name == "gaussian":
        np.multiply(u, -0.5, out=scratch)
        np.multiply(scratch, u, out=scratch)
        np.exp(scratch, out=scratch)
        np.divide(scratch, _SQRT_TWO_PI, out=scratch)
    else:
        scratch[...] = kernel.profile(u)
    return scratch


def range_batch(kernel: Kernel, lows: np.ndarray, highs: np.ndarray,
                centers: np.ndarray, inv_bw: np.ndarray,
                out: np.ndarray, block_cells: int) -> None:
    """Eq. 5 range probabilities for ``m`` query boxes into ``out``.

    ``out[i] = mean_j prod_k (cdf(z_hi[i,j,k]) - cdf(z_lo[i,j,k]))`` with
    ``z = (bound - centre) * inv_bw``.  Unclipped and unsanitised -- the
    estimator applies both.
    """
    m = lows.shape[0]
    if m == 0:
        return
    n, d = centers.shape
    name = getattr(kernel, "name", "")
    if d == 1:
        lo, hi, c = lows[:, 0], highs[:, 0], centers[:, 0]
        scale = inv_bw[0]
        qb = max(1, min(m, block_cells // max(1, n)))
        z_hi = np.empty((qb, n))
        z_lo = np.empty((qb, n))
        buf = np.empty((qb, n))
        for s in range(0, m, qb):
            e = min(s + qb, m)
            k = e - s
            zh, zl, t = z_hi[:k], z_lo[:k], buf[:k]
            np.subtract(hi[s:e, None], c[None, :], out=zh)
            np.multiply(zh, scale, out=zh)
            np.subtract(lo[s:e, None], c[None, :], out=zl)
            np.multiply(zl, scale, out=zl)
            _cdf_inplace(kernel, name, zh, t)
            _cdf_inplace(kernel, name, zl, t)
            np.subtract(zh, zl, out=zh)
            np.mean(zh, axis=1, out=out[s:e])
        return
    # d > 1: sweep the dimensions one (qb, n) slab at a time instead of
    # materialising (qb, n, d) cubes -- every op stays contiguous, and
    # the running product accumulates dimensions left to right exactly
    # like ``prod(axis=2)`` over the historical 3-d array.
    qb = max(1, min(m, block_cells // max(1, n)))
    z_hi = np.empty((qb, n))
    z_lo = np.empty((qb, n))
    buf = np.empty((qb, n))
    acc = np.empty((qb, n))
    for s in range(0, m, qb):
        e = min(s + qb, m)
        k = e - s
        zh, zl, t, p = z_hi[:k], z_lo[:k], buf[:k], acc[:k]
        for j in range(d):
            c = centers[:, j]
            np.subtract(highs[s:e, j, None], c[None, :], out=zh)
            np.multiply(zh, inv_bw[j], out=zh)
            np.subtract(lows[s:e, j, None], c[None, :], out=zl)
            np.multiply(zl, inv_bw[j], out=zl)
            _cdf_inplace(kernel, name, zh, t)
            _cdf_inplace(kernel, name, zl, t)
            np.subtract(zh, zl, out=zh)
            if j == 0:
                p[...] = zh
            else:
                np.multiply(p, zh, out=p)
        np.mean(p, axis=1, out=out[s:e])


def pdf_batch(kernel: Kernel, queries: np.ndarray, centers: np.ndarray,
              inv_bw: np.ndarray, norm: float, out: np.ndarray,
              block_cells: int) -> None:
    """Eq. 1 density at ``m`` query points into ``out``.

    ``out[i] = norm * sum_j prod_k profile((q[i,k] - c[j,k]) * inv_bw[k])``.
    """
    m = queries.shape[0]
    if m == 0:
        return
    n, d = centers.shape
    name = getattr(kernel, "name", "")
    if d == 1:
        q, c = queries[:, 0], centers[:, 0]
        scale = inv_bw[0]
        qb = max(1, min(m, block_cells // max(1, n)))
        u2 = np.empty((qb, n))
        buf = np.empty((qb, n))
        for s in range(0, m, qb):
            e = min(s + qb, m)
            k = e - s
            u, t = u2[:k], buf[:k]
            np.subtract(q[s:e, None], c[None, :], out=u)
            np.multiply(u, scale, out=u)
            t = _profile_inplace(kernel, name, u, t)
            np.sum(t, axis=1, out=out[s:e])
    else:
        # Same per-dimension slab sweep as range_batch: left-to-right
        # accumulation matches ``prod(axis=2)`` bit for bit.
        qb = max(1, min(m, block_cells // max(1, n)))
        u2 = np.empty((qb, n))
        buf = np.empty((qb, n))
        acc = np.empty((qb, n))
        for s in range(0, m, qb):
            e = min(s + qb, m)
            k = e - s
            u, t, p = u2[:k], buf[:k], acc[:k]
            for j in range(d):
                c = centers[:, j]
                np.subtract(queries[s:e, j, None], c[None, :], out=u)
                np.multiply(u, inv_bw[j], out=u)
                t = _profile_inplace(kernel, name, u, buf[:k])
                if j == 0:
                    p[...] = t
                else:
                    np.multiply(p, t, out=p)
            np.sum(p, axis=1, out=out[s:e])
    np.multiply(out, norm, out=out)


def cdf_diff_rows(kernel: Kernel, edges: np.ndarray, centers: np.ndarray,
                  bandwidth: float) -> np.ndarray:
    """Per-centre CDF mass between consecutive edges, shape ``(n, k)``.

    Matches ``np.diff(kernel.cdf((edges[None, :] - centers[:, None])
    / bandwidth), axis=1)`` -- note the division by the bandwidth, which
    this call site has always used (it is not a reciprocal multiply).
    """
    z = np.subtract(edges[None, :], centers[:, None])
    np.divide(z, bandwidth, out=z)
    _cdf_inplace(kernel, getattr(kernel, "name", ""), z, np.empty_like(z))
    return np.diff(z, axis=1)
