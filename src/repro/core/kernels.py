"""Kernel functions for kernel density estimation (paper Section 4).

The paper uses the Epanechnikov kernel because it "is easy to integrate":
range queries over the density estimate reduce to evaluating the kernel's
CDF at the two interval endpoints (Equations 5 and 6).  The choice of
kernel function is not significant for the quality of the approximation
(Scott, 1992), so a Gaussian kernel is provided as well and exercised in
the ablation benchmarks.

Each kernel is expressed in *standardised* form: :meth:`Kernel.profile`
is a univariate density with unit scale, and the d-dimensional product
kernel of Equation 2 is assembled by the estimator from per-dimension
bandwidths.
"""

from __future__ import annotations

import abc
import math
from types import MappingProxyType

import numpy as np
from scipy.special import ndtr

__all__ = [
    "Kernel",
    "EpanechnikovKernel",
    "GaussianKernel",
    "EPANECHNIKOV",
    "GAUSSIAN",
    "kernel_by_name",
]


class Kernel(abc.ABC):
    """A standardised univariate smoothing kernel.

    Sub-classes implement the density (:meth:`profile`) and its
    antiderivative (:meth:`cdf`); both are vectorised over numpy arrays.
    """

    #: Short identifier used in configuration and reporting.
    name: str = "kernel"

    @abc.abstractmethod
    def profile(self, u: np.ndarray) -> np.ndarray:
        """Density of the standardised kernel at ``u``."""

    @abc.abstractmethod
    def cdf(self, u: np.ndarray) -> np.ndarray:
        """Cumulative distribution of the standardised kernel at ``u``."""

    @property
    @abc.abstractmethod
    def support_radius(self) -> float:
        """Radius ``s`` such that :meth:`profile` vanishes outside ``[-s, s]``.

        ``math.inf`` for kernels with unbounded support.  The estimator's
        sorted 1-d fast path relies on a finite value to prune kernels that
        cannot intersect a query interval.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class EpanechnikovKernel(Kernel):
    """The Epanechnikov kernel ``k(u) = 3/4 (1 - u^2)`` on ``[-1, 1]``.

    This is the kernel of Equation 2 in the paper (with the product over
    dimensions and per-dimension bandwidths applied by the estimator).
    It is the unique mean-squared-error-optimal kernel and, crucially for
    sensors, its CDF is a cubic polynomial, so range queries need no
    numeric integration.
    """

    name = "epanechnikov"

    def profile(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        inside = np.abs(u) <= 1.0
        return np.where(inside, 0.75 * (1.0 - u * u), 0.0)

    def cdf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        clipped = np.clip(u, -1.0, 1.0)
        return 0.25 * (2.0 + 3.0 * clipped - clipped * clipped * clipped)

    @property
    def support_radius(self) -> float:
        return 1.0


class GaussianKernel(Kernel):
    """The standard normal kernel.

    Included to demonstrate the paper's claim (after Scott, 1992) that the
    kernel choice does not materially affect the results.  The support is
    unbounded, but for pruning purposes it is treated as ``8`` standard
    deviations, beyond which the mass is below 1e-15.
    """

    name = "gaussian"

    _PRACTICAL_SUPPORT = 8.0

    def profile(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        return np.exp(-0.5 * u * u) / math.sqrt(2.0 * math.pi)

    def cdf(self, u: np.ndarray) -> np.ndarray:
        return ndtr(np.asarray(u, dtype=float))

    @property
    def support_radius(self) -> float:
        return self._PRACTICAL_SUPPORT


#: Shared immutable kernel instances (kernels are stateless).
EPANECHNIKOV = EpanechnikovKernel()
GAUSSIAN = GaussianKernel()

#: Read-only name -> shared instance view; immutable so shard workers
#: can never diverge through it (RL009).
_KERNELS = MappingProxyType({k.name: k for k in (EPANECHNIKOV, GAUSSIAN)})


def kernel_by_name(name: str) -> Kernel:
    """Look up a shared kernel instance by its :attr:`Kernel.name`."""
    try:
        return _KERNELS[name]
    except KeyError:
        known = ", ".join(sorted(_KERNELS))
        raise KeyError(f"unknown kernel {name!r}; known kernels: {known}") from None
