"""Pluggable compute backends for the Eq. 4-6 hot-path kernels.

The detection loop spends most of its time evaluating kernel CDF
differences over many (query, kernel-centre) pairs.  That arithmetic is
isolated behind a small :class:`Backend` record so it can be served
either by the fused, cache-blocked numpy implementation
(:mod:`repro.core._kernels_numpy`) or by the optional numba-compiled one
(:mod:`repro.core._kernels_numba`, installed via the ``repro[fast]``
extra).

Selection is driven by the ``REPRO_BACKEND`` environment variable:

``numpy``
    the portable baseline; bit-identical to the historical estimator
    expressions.
``numba``
    the compiled backend; falls back to numpy *silently* when numba is
    not importable (the extra is strictly optional).
``auto`` (default)
    numba when importable, numpy otherwise.

Programmatic selection via :func:`set_backend` is strict by default so
tests know which backend they exercised; :func:`use_backend` scopes a
selection to a ``with`` block.  ``REPRO_KERNEL_BLOCK`` tunes the number
of (query, centre, dimension) cells each fused block materialises
(default 262 144 cells = 2 MB of float64 scratch, sized so a block's
working set streams through L2).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from repro._exceptions import ParameterError

__all__ = [
    "Backend",
    "available_backends",
    "backend_name",
    "block_cells",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

_ENV_BACKEND = "REPRO_BACKEND"
_ENV_BLOCK = "REPRO_KERNEL_BLOCK"
_DEFAULT_BLOCK_CELLS = 262_144
_CHOICES = ("auto", "numpy", "numba")


@dataclass(frozen=True)
class Backend:
    """A set of compiled/vectorised kernels the estimator dispatches to.

    ``range_batch``/``pdf_batch``/``cdf_diff_rows`` cover the Eq. 4-6
    evaluation paths; ``eh_compress`` optionally compiles the EH sketch
    bucket merge (``None`` means the pure-Python merge stays in charge).
    """

    name: str
    range_batch: Callable[..., None]
    pdf_batch: Callable[..., None]
    cdf_diff_rows: Callable[..., np.ndarray]
    eh_compress: "Callable[..., Any] | None" = None


_ACTIVE: "Backend | None" = None
_CACHE: "dict[str, Backend]" = {}


def _numpy_backend() -> Backend:
    if "numpy" not in _CACHE:
        from repro.core import _kernels_numpy as mod
        _CACHE["numpy"] = Backend(
            name="numpy",
            range_batch=mod.range_batch,
            pdf_batch=mod.pdf_batch,
            cdf_diff_rows=mod.cdf_diff_rows,
            eh_compress=None)
    return _CACHE["numpy"]


def _numba_backend() -> "Backend | None":
    if "numba" not in _CACHE:
        try:
            from repro.core import _kernels_numba as mod
        except ImportError:
            return None
        _CACHE["numba"] = Backend(
            name="numba",
            range_batch=mod.range_batch,
            pdf_batch=mod.pdf_batch,
            cdf_diff_rows=mod.cdf_diff_rows,
            eh_compress=mod.eh_compress)
    return _CACHE["numba"]


def available_backends() -> "tuple[str, ...]":
    """Names of the backends that can actually be loaded, numpy first."""
    names = ["numpy"]
    if _numba_backend() is not None:
        names.append("numba")
    return tuple(names)


def resolve_backend(name: "str | None" = None, *, strict: bool = False) -> Backend:
    """Resolve a backend name (or ``REPRO_BACKEND``) to a loaded backend.

    ``auto`` and -- unless ``strict`` -- ``numba`` fall back to numpy when
    numba cannot be imported; ``strict`` raises instead so callers that
    explicitly requested the compiled backend learn it is unavailable.
    """
    requested = name if name is not None else os.environ.get(_ENV_BACKEND, "auto")
    requested = requested.strip().lower() or "auto"
    if requested not in _CHOICES:
        source = f"{_ENV_BACKEND}=" if name is None else ""
        raise ParameterError(
            f"unknown backend {source}{requested!r}; "
            f"expected one of {', '.join(_CHOICES)}")
    if requested in ("auto", "numba"):
        numba = _numba_backend()
        if numba is not None:
            return numba
        if requested == "numba" and strict:
            raise ParameterError(
                "the numba backend is unavailable (install the "
                "'repro[fast]' extra); set REPRO_BACKEND=auto or numpy "
                "to fall back")
    return _numpy_backend()


def get_backend() -> Backend:
    """The active backend (resolving ``REPRO_BACKEND`` on first use)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = resolve_backend()
    return _ACTIVE


def set_backend(name: "str | None", *, strict: bool = True) -> Backend:
    """Select the active backend programmatically.

    ``None`` re-resolves from the environment (the start-up default).
    Unlike environment resolution, an explicit unavailable ``numba``
    raises unless ``strict=False``.
    """
    global _ACTIVE
    _ACTIVE = resolve_backend(name, strict=strict) if name is not None else None
    return get_backend()


@contextmanager
def use_backend(name: str, *, strict: bool = True) -> Iterator[Backend]:
    """Scope a backend selection to a ``with`` block (restores on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    try:
        yield set_backend(name, strict=strict)
    finally:
        _ACTIVE = previous


def backend_name() -> str:
    """Name of the active backend (``"numpy"`` or ``"numba"``)."""
    return get_backend().name


def block_cells() -> int:
    """Cells per fused evaluation block (``REPRO_KERNEL_BLOCK``)."""
    raw = os.environ.get(_ENV_BLOCK)
    if not raw:
        return _DEFAULT_BLOCK_CELLS
    try:
        value = int(raw)
    except ValueError:
        raise ParameterError(
            f"REPRO_KERNEL_BLOCK must be an integer, got {raw!r}") from None
    if value < 1:
        raise ParameterError(
            f"REPRO_KERNEL_BLOCK must be >= 1, got {value}")
    return value
