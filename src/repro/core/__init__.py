"""The paper's primary contribution: non-parametric sliding-window density
models and the outlier tests built on them (Sections 3-8).
"""

from repro.core.bandwidth import scott_bandwidths, silverman_bandwidths
from repro.core.baselines import (
    brute_force_distance_outliers,
    brute_force_distance_outliers_naive,
    brute_force_mdef_outliers,
    chebyshev_neighbor_counts,
)
from repro.core.divergence import (
    jensen_shannon_divergence,
    kl_divergence,
    model_js_divergence,
)
from repro.core.estimator import KernelDensityEstimator, merge_estimators
from repro.core.histogram import EquiDepthHistogram
from repro.core.indexes import (
    GridCountIndex,
    SortedWindowIndex1D,
    WindowedNeighborIndex,
)
from repro.core.kernels import (
    EPANECHNIKOV,
    GAUSSIAN,
    EpanechnikovKernel,
    GaussianKernel,
    Kernel,
    kernel_by_name,
)
from repro.core.mdef import (
    MDEFDecision,
    MDEFOutlierDetector,
    MDEFSpec,
    mdef_statistic,
)
from repro.core.model import DensityModel
from repro.core.outliers import (
    DistanceOutlierDecision,
    DistanceOutlierDetector,
    DistanceOutlierSpec,
    is_distance_outlier,
)

__all__ = [
    "DensityModel",
    "Kernel",
    "EpanechnikovKernel",
    "GaussianKernel",
    "EPANECHNIKOV",
    "GAUSSIAN",
    "kernel_by_name",
    "scott_bandwidths",
    "silverman_bandwidths",
    "KernelDensityEstimator",
    "merge_estimators",
    "EquiDepthHistogram",
    "SortedWindowIndex1D",
    "GridCountIndex",
    "WindowedNeighborIndex",
    "kl_divergence",
    "jensen_shannon_divergence",
    "model_js_divergence",
    "DistanceOutlierSpec",
    "DistanceOutlierDecision",
    "DistanceOutlierDetector",
    "is_distance_outlier",
    "MDEFSpec",
    "MDEFDecision",
    "MDEFOutlierDetector",
    "mdef_statistic",
    "brute_force_distance_outliers",
    "brute_force_distance_outliers_naive",
    "brute_force_mdef_outliers",
    "chebyshev_neighbor_counts",
]
