"""The density-model interface shared by kernels and histograms.

The outlier tests (Sections 7 and 8) are written against this protocol so
that the kernel estimator and the equi-depth histogram baseline from the
paper's experimental comparison are interchangeable.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = ["DensityModel"]


@runtime_checkable
class DensityModel(Protocol):
    """Anything that can answer box-probability and count queries."""

    @property
    def n_dims(self) -> int:
        """Data dimensionality ``d``."""
        ...

    @property
    def window_size(self) -> int:
        """The window size ``|W|`` scaling neighbourhood counts."""
        ...

    def range_probability(self, low: "np.ndarray | Sequence[float] | float",
                          high: "np.ndarray | Sequence[float] | float") -> "float | np.ndarray":
        """Probability mass of the axis-aligned box ``[low, high]``."""
        ...

    def neighborhood_count(self, p: "np.ndarray | Sequence[float] | float",
                           r: float) -> "float | np.ndarray":
        """Estimated count of window values within ``r`` of ``p`` (Eq. 4)."""
        ...

    def grid_probabilities(self, cells_per_dim: int,
                           low: float = 0.0, high: float = 1.0) -> np.ndarray:
        """Cell masses of a uniform grid over ``[low, high]^d``."""
        ...
