"""Bandwidth selection for kernel density estimators (paper Section 4).

The paper adopts Scott's rule with per-dimension bandwidths

    B_i = sqrt(5) * sigma_i * |R| ** (-1 / (d + 4))

where ``sigma_i`` is the (approximate, sliding-window) standard deviation
of dimension ``i`` and ``|R|`` the kernel sample size.  This is the single
parameter the method has to estimate online, which the paper highlights as
an advantage over parametric model-fitting approaches.
"""

from __future__ import annotations

import numpy as np

from repro._exceptions import ParameterError
from repro._validation import require_positive_int

__all__ = ["scott_bandwidths", "silverman_bandwidths", "MIN_BANDWIDTH"]

#: Lower bound applied to every bandwidth.  A window of identical readings
#: has zero standard deviation; a degenerate zero-width kernel would make
#: every other value an "outlier" with infinite confidence, so we keep a
#: floor comparable to sensor quantisation noise on the [0, 1] domain.
MIN_BANDWIDTH = 1e-4


def _as_stddev_vector(stddev: "float | np.ndarray", n_dims: int | None) -> np.ndarray:
    sigma = np.atleast_1d(np.asarray(stddev, dtype=float))
    if sigma.ndim != 1:
        raise ParameterError(f"stddev must be scalar or 1-d, got shape {sigma.shape}")
    if n_dims is not None and sigma.shape[0] != n_dims:
        raise ParameterError(
            f"stddev has {sigma.shape[0]} entries but data has {n_dims} dimension(s)")
    if not np.isfinite(sigma).all() or (sigma < 0).any():
        raise ParameterError("stddev entries must be finite and non-negative")
    return sigma


def scott_bandwidths(stddev: "float | np.ndarray", sample_size: int,
                     n_dims: int | None = None) -> np.ndarray:
    """Per-dimension bandwidths ``sqrt(5) * sigma_i * |R|^(-1/(d+4))``.

    Parameters
    ----------
    stddev:
        Standard deviation per dimension (scalar accepted for 1-d data).
    sample_size:
        Number of kernel centres ``|R|``.
    n_dims:
        Dimensionality ``d``; inferred from ``stddev`` when omitted.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(d,)`` of strictly positive bandwidths.
    """
    require_positive_int("sample_size", sample_size)
    sigma = _as_stddev_vector(stddev, n_dims)
    d = sigma.shape[0]
    factor = np.sqrt(5.0) * sample_size ** (-1.0 / (d + 4))
    return np.maximum(sigma * factor, MIN_BANDWIDTH)


def silverman_bandwidths(stddev: "float | np.ndarray", sample_size: int,
                         n_dims: int | None = None) -> np.ndarray:
    """Silverman's rule-of-thumb bandwidths, for the ablation benchmarks.

    ``B_i = sigma_i * (4 / (d + 2)) ** (1/(d+4)) * |R| ** (-1/(d+4))``.
    """
    require_positive_int("sample_size", sample_size)
    sigma = _as_stddev_vector(stddev, n_dims)
    d = sigma.shape[0]
    factor = (4.0 / (d + 2.0)) ** (1.0 / (d + 4)) * sample_size ** (-1.0 / (d + 4))
    return np.maximum(sigma * factor, MIN_BANDWIDTH)
