"""Equi-depth histograms, the density-approximation baseline of Section 10.

The paper compares its kernel estimators against equi-depth histograms of
``|B|`` buckets computed *offline* over the entire sliding window -- an
upper bound for any online histogram variant ("this brute-force approach
... gives an upper-bound for any dynamic version").  We reproduce exactly
that: :meth:`EquiDepthHistogram.from_values` consumes all window values.

For multi-dimensional data the bucket budget is split evenly across
dimensions (``b = floor(|B| ** (1/d))`` slices per dimension at per-
dimension quantiles), with cell masses measured from the data, which keeps
the memory budget comparable to a ``|R| = |B|`` kernel sample as in the
paper's setup.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro import _sanitize
from repro._exceptions import EmptyModelError, ParameterError
from repro._validation import as_point, as_points

__all__ = ["EquiDepthHistogram", "QuantileSummaryLike"]


class QuantileSummaryLike(Protocol):
    """Anything answering quantile queries (e.g. a GK summary)."""

    def query(self, fraction: float) -> float:
        """The value at the given quantile ``fraction`` in ``[0, 1]``."""
        ...


def _quantile_edges(column: np.ndarray, n_slices: int) -> np.ndarray:
    """Strictly increasing bucket edges at equi-depth quantiles.

    Duplicate quantiles (heavy ties in the data) are collapsed, so the
    returned array may define fewer than ``n_slices`` buckets.  A fully
    degenerate column yields a single bucket of small non-zero width.
    """
    probs = np.linspace(0.0, 1.0, n_slices + 1)
    edges = np.quantile(column, probs)
    edges = np.unique(edges)
    if edges.shape[0] < 2:
        center = float(edges[0]) if edges.shape[0] else 0.0
        pad = max(abs(center) * 1e-9, 1e-9)
        edges = np.array([center - pad, center + pad])
    return edges


def _interval_overlaps(edges: np.ndarray, low: float, high: float) -> np.ndarray:
    """Fraction of each bucket ``[edges[i], edges[i+1])`` covered by ``[low, high]``."""
    lo = np.maximum(edges[:-1], low)
    hi = np.minimum(edges[1:], high)
    widths = np.diff(edges)
    overlap = np.clip(hi - lo, 0.0, None)
    return overlap / widths


class EquiDepthHistogram:
    """An equi-depth histogram density model over ``(n, d)`` window values."""

    def __init__(self, edges: "list[np.ndarray]", masses: np.ndarray,
                 window_size: int) -> None:
        if not edges:
            raise ParameterError("edges must contain at least one dimension")
        expected = tuple(e.shape[0] - 1 for e in edges)
        if masses.shape != expected:
            raise ParameterError(
                f"masses shape {masses.shape} does not match edges {expected}")
        if window_size < 1:
            raise ParameterError(f"window_size must be >= 1, got {window_size}")
        self._edges = [np.asarray(e, dtype=float) for e in edges]
        self._masses = np.asarray(masses, dtype=float)
        self._d = len(edges)
        self._window_size = int(window_size)

    # ------------------------------------------------------------------

    @classmethod
    def from_quantile_summary(cls, summary: "QuantileSummaryLike", n_buckets: int, *,
                              window_size: int) -> "EquiDepthHistogram":
        """The *online* 1-d equi-depth histogram the paper alludes to.

        Section 10 computes its comparison histograms offline over the
        full window, noting that this "gives an upper-bound for any
        dynamic version".  This constructor is such a dynamic version:
        bucket edges come from an online quantile summary (e.g.
        :class:`~repro.streams.quantiles.GKQuantileSummary`), so the
        histogram is maintainable in one pass with sublinear memory.
        The ablation benchmarks quantify how close it gets to the
        offline upper bound.
        """
        if n_buckets < 1:
            raise ParameterError(f"n_buckets must be >= 1, got {n_buckets}")
        probs = np.linspace(0.0, 1.0, n_buckets + 1)
        edges = np.unique(np.asarray(
            [summary.query(float(q)) for q in probs], dtype=float))
        if edges.shape[0] < 2:
            center = float(edges[0]) if edges.shape[0] else 0.0
            pad = max(abs(center) * 1e-9, 1e-9)
            edges = np.array([center - pad, center + pad])
        masses = np.full(edges.shape[0] - 1, 1.0 / (edges.shape[0] - 1))
        return cls([edges], masses, window_size)

    @classmethod
    def from_values(cls, values: "np.ndarray | Sequence[float]",
                    n_buckets: int, *,
                    window_size: int | None = None) -> "EquiDepthHistogram":
        """Build the offline equi-depth histogram the paper benchmarks against.

        Parameters
        ----------
        values:
            All values of the (union) sliding window, shape ``(n, d)``.
        n_buckets:
            Total bucket budget ``|B|`` (matched to ``|R|`` in the paper).
        window_size:
            ``|W|`` used to scale counts; defaults to ``len(values)``.
        """
        points = as_points("values", values)
        n, d = points.shape
        if n == 0:
            raise EmptyModelError("cannot build a histogram from an empty window")
        if n_buckets < 1:
            raise ParameterError(f"n_buckets must be >= 1, got {n_buckets}")
        slices_per_dim = max(1, int(round(n_buckets ** (1.0 / d))))
        edges = [_quantile_edges(points[:, j], slices_per_dim) for j in range(d)]
        counts, _ = np.histogramdd(points, bins=edges)
        masses = counts / n
        if window_size is None:
            window_size = n
        return cls(edges, masses, window_size)

    # ------------------------------------------------------------------

    @property
    def n_dims(self) -> int:
        """Data dimensionality ``d``."""
        return self._d

    @property
    def window_size(self) -> int:
        """The window size ``|W|`` scaling neighbourhood counts."""
        return self._window_size

    @property
    def n_buckets(self) -> int:
        """Total number of cells actually allocated."""
        return int(self._masses.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EquiDepthHistogram(d={self._d}, cells={self.n_buckets}, "
                f"|W|={self._window_size})")

    # ------------------------------------------------------------------

    def _box_probability(self, low: np.ndarray, high: np.ndarray) -> float:
        fractions = [_interval_overlaps(self._edges[j], low[j], high[j])
                     for j in range(self._d)]
        mass = self._masses
        # Contract one dimension at a time: sum_i fraction_i * mass[i, ...].
        for frac in fractions:
            mass = np.tensordot(frac, mass, axes=(0, 0))
        if _sanitize.ACTIVE:
            _sanitize.check_probabilities(mass, label="histogram_box")
        return float(np.clip(mass, 0.0, 1.0))

    def range_probability(self, low: "np.ndarray | Sequence[float] | float",
                          high: "np.ndarray | Sequence[float] | float") -> "float | np.ndarray":
        """Probability mass of the box ``[low, high]``; accepts batches ``(m, d)``."""
        low_arr = np.asarray(low, dtype=float)
        high_arr = np.asarray(high, dtype=float)
        if low_arr.ndim == 2 or high_arr.ndim == 2:
            lows = as_points("low", low_arr, n_dims=self._d)
            highs = as_points("high", high_arr, n_dims=self._d)
            if lows.shape != highs.shape:
                raise ParameterError("low and high batches must have equal shapes")
            if (highs < lows).any():
                raise ParameterError("each high must be >= the corresponding low")
            return np.array([self._box_probability(lo, hi)
                             for lo, hi in zip(lows, highs)])
        low_pt = as_point("low", low_arr, self._d)
        high_pt = as_point("high", high_arr, self._d)
        if (high_pt < low_pt).any():
            raise ParameterError("high must be >= low")
        return self._box_probability(low_pt, high_pt)

    def neighborhood_count(self, p: "np.ndarray | Sequence[float] | float",
                           r: float) -> "float | np.ndarray":
        """Estimated number of window values within ``r`` of ``p`` (Eq. 4)."""
        if not np.isfinite(r) or r <= 0:
            raise ParameterError(f"r must be a positive finite number, got {r!r}")
        p_arr = np.asarray(p, dtype=float)
        prob = self.range_probability(p_arr - r, p_arr + r)
        return prob * self._window_size

    def grid_probabilities(self, cells_per_dim: int,
                           low: float = 0.0, high: float = 1.0) -> np.ndarray:
        """Cell masses of a uniform grid over ``[low, high]^d``."""
        if cells_per_dim < 1:
            raise ParameterError(f"cells_per_dim must be >= 1, got {cells_per_dim}")
        if not high > low:
            raise ParameterError("high must exceed low")
        grid_edges = np.linspace(low, high, cells_per_dim + 1)
        shape = (cells_per_dim,) * self._d
        cells = np.empty(shape)
        for idx in np.ndindex(shape):
            lo = np.array([grid_edges[i] for i in idx])
            hi = np.array([grid_edges[i + 1] for i in idx])
            cells[idx] = self._box_probability(lo, hi)
        return cells
