"""Numba-compiled hot-path kernels (the optional ``repro[fast]`` extra).

Importing this module requires numba; :mod:`repro.core.backend` guards
the import and silently falls back to the numpy backend when it is
missing, so nothing else may import this module directly.

The compiled kernels parallelise over the *query* axis (each query's
reduction over the kernel centres is sequential), so results are
deterministic across thread counts.  They accumulate per query with a
plain left-to-right sum rather than numpy's pairwise summation, which is
why the backend contract only promises 1e-9 *relative* agreement with
the numpy backend -- except :func:`eh_compress`, which emits the exact
IEEE operation sequence of ``EHVarianceSketch._compress`` (numba does
not contract FMAs or reassociate without ``fastmath``) and is therefore
bit-identical.

Kernels without a compiled specialisation (anything other than the
Epanechnikov and Gaussian kernels) delegate to the numpy backend.
"""

from __future__ import annotations

import math

import numpy as np
from numba import njit, prange

from repro.core import _kernels_numpy as _np_impl
from repro.core.kernels import Kernel

__all__ = ["range_batch", "pdf_batch", "cdf_diff_rows", "eh_compress"]

_INV_SQRT2 = 1.0 / math.sqrt(2.0)
_INV_SQRT_TWO_PI = 1.0 / math.sqrt(2.0 * math.pi)


@njit(inline="always")
def _epan_cdf(z: float) -> float:
    if z < -1.0:
        z = -1.0
    elif z > 1.0:
        z = 1.0
    return 0.25 * (2.0 + 3.0 * z - z * z * z)


@njit(inline="always")
def _gauss_cdf(z: float) -> float:
    return 0.5 * math.erfc(-z * _INV_SQRT2)


@njit(cache=True, parallel=True)
def _range_epan(lows, highs, centers, inv_bw, out):  # pragma: no cover - compiled
    m = lows.shape[0]
    n, d = centers.shape
    for i in prange(m):
        acc = 0.0
        for j in range(n):
            p = 1.0
            for k in range(d):
                z_hi = (highs[i, k] - centers[j, k]) * inv_bw[k]
                z_lo = (lows[i, k] - centers[j, k]) * inv_bw[k]
                p *= _epan_cdf(z_hi) - _epan_cdf(z_lo)
            acc += p
        out[i] = acc / n


@njit(cache=True, parallel=True)
def _range_gauss(lows, highs, centers, inv_bw, out):  # pragma: no cover - compiled
    m = lows.shape[0]
    n, d = centers.shape
    for i in prange(m):
        acc = 0.0
        for j in range(n):
            p = 1.0
            for k in range(d):
                z_hi = (highs[i, k] - centers[j, k]) * inv_bw[k]
                z_lo = (lows[i, k] - centers[j, k]) * inv_bw[k]
                p *= _gauss_cdf(z_hi) - _gauss_cdf(z_lo)
            acc += p
        out[i] = acc / n


@njit(cache=True, parallel=True)
def _pdf_epan(queries, centers, inv_bw, norm, out):  # pragma: no cover - compiled
    m = queries.shape[0]
    n, d = centers.shape
    for i in prange(m):
        acc = 0.0
        for j in range(n):
            p = 1.0
            for k in range(d):
                u = (queries[i, k] - centers[j, k]) * inv_bw[k]
                if u < -1.0 or u > 1.0:
                    p = 0.0
                    break
                p *= 0.75 * (1.0 - u * u)
            acc += p
        out[i] = acc * norm


@njit(cache=True, parallel=True)
def _pdf_gauss(queries, centers, inv_bw, norm, out):  # pragma: no cover - compiled
    m = queries.shape[0]
    n, d = centers.shape
    for i in prange(m):
        acc = 0.0
        for j in range(n):
            s = 0.0
            for k in range(d):
                u = (queries[i, k] - centers[j, k]) * inv_bw[k]
                s += u * u
            acc += math.exp(-0.5 * s) * _INV_SQRT_TWO_PI ** d
        out[i] = acc * norm


def range_batch(kernel: Kernel, lows: np.ndarray, highs: np.ndarray,
                centers: np.ndarray, inv_bw: np.ndarray,
                out: np.ndarray, block_cells: int) -> None:
    """Compiled Eq. 5 range probabilities; see the numpy backend for the contract."""
    if lows.shape[0] == 0:
        return
    name = getattr(kernel, "name", "")
    if name == "epanechnikov":
        _range_epan(lows, highs, centers, inv_bw, out)
    elif name == "gaussian":
        _range_gauss(lows, highs, centers, inv_bw, out)
    else:
        _np_impl.range_batch(kernel, lows, highs, centers, inv_bw, out,
                             block_cells)


def pdf_batch(kernel: Kernel, queries: np.ndarray, centers: np.ndarray,
              inv_bw: np.ndarray, norm: float, out: np.ndarray,
              block_cells: int) -> None:
    """Compiled Eq. 1 density; see the numpy backend for the contract."""
    if queries.shape[0] == 0:
        return
    name = getattr(kernel, "name", "")
    if name == "epanechnikov":
        _pdf_epan(queries, centers, inv_bw, norm, out)
    elif name == "gaussian":
        _pdf_gauss(queries, centers, inv_bw, norm, out)
    else:
        _np_impl.pdf_batch(kernel, queries, centers, inv_bw, norm, out,
                           block_cells)


def cdf_diff_rows(kernel: Kernel, edges: np.ndarray, centers: np.ndarray,
                  bandwidth: float) -> np.ndarray:
    """Per-centre CDF mass between edges.

    The grid paths are O(n * cells) on small grids and never profile-hot,
    so this delegates to the fused numpy implementation (which is also
    what keeps the result bit-identical across backends).
    """
    return _np_impl.cdf_diff_rows(kernel, edges, centers, bandwidth)


@njit(cache=True)
def _eh_compress(newest_ts, counts, means, m2s,
                 max_count, budget,
                 out_ts, out_counts, out_means, out_m2s):  # pragma: no cover - compiled
    # Literal transcription of EHVarianceSketch._compress: same two
    # passes, same expression trees, operating on parallel arrays.
    n = counts.shape[0]
    suffix_m2 = np.empty(n)
    s_count = counts[n - 1]
    s_mean = means[n - 1]
    s_m2 = m2s[n - 1]
    suffix_m2[n - 1] = s_m2
    for i in range(n - 2, -1, -1):
        c = counts[i]
        total = c + s_count
        delta = s_mean - means[i]
        s_m2 = m2s[i] + s_m2 + delta * delta * (c * s_count / total)
        s_mean = means[i] + delta * (s_count / total)
        s_count = total
        suffix_m2[i] = s_m2
    w = 0
    c_ts = newest_ts[0]
    c_count = counts[0]
    c_mean = means[0]
    c_m2 = m2s[0]
    head = 0
    for i in range(1, n):
        b_count = counts[i]
        total = c_count + b_count
        delta = means[i] - c_mean
        cand_m2 = c_m2 + m2s[i] + delta * delta * (c_count * b_count / total)
        if total <= max_count and cand_m2 <= budget * suffix_m2[head]:
            c_mean += delta * (b_count / total)
            c_m2 = cand_m2
            c_count = total
            c_ts = newest_ts[i]
        else:
            out_ts[w] = c_ts
            out_counts[w] = c_count
            out_means[w] = c_mean
            out_m2s[w] = c_m2
            w += 1
            c_ts = newest_ts[i]
            c_count = b_count
            c_mean = means[i]
            c_m2 = m2s[i]
            head = i
    out_ts[w] = c_ts
    out_counts[w] = c_count
    out_means[w] = c_mean
    out_m2s[w] = c_m2
    return w + 1


def eh_compress(newest_ts: np.ndarray, counts: np.ndarray, means: np.ndarray,
                m2s: np.ndarray, max_count: float, budget: float,
                ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Compiled EH bucket merge pass; arrays in (oldest first), arrays out.

    Bucket counts arrive as float64 (exact for any realistic window
    population) so the merge arithmetic matches the Python ints-into-
    float division bit for bit.
    """
    n = counts.shape[0]
    out_ts = np.empty(n, dtype=np.int64)
    out_counts = np.empty(n)
    out_means = np.empty(n)
    out_m2s = np.empty(n)
    w = _eh_compress(newest_ts, counts, means, m2s, float(max_count),
                     float(budget), out_ts, out_counts, out_means, out_m2s)
    return out_ts[:w], out_counts[:w], out_means[:w], out_m2s[:w]
