"""Incremental exact neighbour-count indexes.

The ground-truth detectors (BruteForce-D / BruteForce-M) need exact
Chebyshev box counts against *sliding* windows.  Recomputing them from
scratch at every arrival is ``O(|W|)`` per query; these indexes maintain
the window incrementally:

* :class:`SortedWindowIndex1D` -- a sorted array over the live window;
  ``O(|W|)`` worst-case insert/expire (array shifts) but cache-friendly
  and exact, with ``O(log |W|)`` interval counts.  The online analogue
  of Theorem 2's sorted-sample bound, applied to raw data.
* :class:`GridCountIndex` -- a uniform-grid bucket index for any
  dimensionality; ``O(1)`` expected insert/remove and box counts that
  touch only the ``O((r / cell)^d)`` overlapping cells.
* :class:`WindowedNeighborIndex` -- a sliding-window wrapper around
  :class:`GridCountIndex` that expires the oldest value automatically.

All counts use the same inclusive Chebyshev geometry as the rest of the
package (`[low, high]` per dimension, boundaries included).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Any, Sequence

import numpy as np

from repro._exceptions import ParameterError
from repro._validation import require_positive, require_positive_int

__all__ = ["SortedSampleIndex", "SortedWindowIndex1D", "GridCountIndex",
           "WindowedNeighborIndex"]


# repro-lint: shard-state
class SortedSampleIndex:
    """Per-dimension sorted views of a fixed d-dimensional sample.

    The generalisation of Theorem 2's sorted-sample fast path beyond one
    dimension: one ``searchsorted`` per axis bounds the kernel centres
    whose support can reach a query box, the axis with the fewest
    in-reach candidates drives the scan, and its candidates are
    bound-checked against the remaining axes.  When even the best axis
    retains more than ``dense_fraction`` of the sample, pruning cannot
    beat the dense vectorised evaluation and :meth:`candidates` returns
    ``None`` so the caller falls back.

    The sample is immutable (estimators are rebuilt, not mutated), so the
    index is a one-shot ``O(d n log n)`` sort plus ``O(d log n)`` per
    query.
    """

    def __init__(self, points: np.ndarray, *,
                 dense_fraction: float = 0.5) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ParameterError(
                f"points must be a non-empty (n, d) array, got shape {pts.shape}")
        if not (0.0 < dense_fraction <= 1.0):
            raise ParameterError(
                f"dense_fraction must be in (0, 1], got {dense_fraction}")
        self._points = pts
        self._n, self._d = pts.shape
        self._order = np.argsort(pts, axis=0, kind="stable")
        self._sorted = np.take_along_axis(pts, self._order, axis=0)
        self._dense_limit = dense_fraction * self._n

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._n

    @property
    def n_dims(self) -> int:
        """Point dimensionality."""
        return self._d

    def candidates(self, low: np.ndarray, high: np.ndarray) -> "np.ndarray | None":
        """Row indices of points inside the inclusive box ``[low, high]``.

        Returns ``None`` when the most selective axis still retains more
        than the dense fraction of the sample -- the signal to use the
        dense path instead.  Indices come back ascending, so downstream
        reductions do not depend on which axis drove the scan.
        """
        lo = np.asarray(low, dtype=float).reshape(-1)
        hi = np.asarray(high, dtype=float).reshape(-1)
        if lo.shape != (self._d,) or hi.shape != (self._d,):
            raise ParameterError(
                f"low/high must have shape ({self._d},), "
                f"got {lo.shape} and {hi.shape}")
        firsts = np.empty(self._d, dtype=np.intp)
        lasts = np.empty(self._d, dtype=np.intp)
        for j in range(self._d):
            column = self._sorted[:, j]
            firsts[j] = np.searchsorted(column, lo[j], side="left")
            lasts[j] = np.searchsorted(column, hi[j], side="right")
        counts = lasts - firsts
        best = int(np.argmin(counts))
        if counts[best] > self._dense_limit:
            return None
        idx = self._order[firsts[best]:lasts[best], best]
        if idx.size == 0 or self._d == 1:
            return np.sort(idx)
        pts = self._points[idx]
        mask = np.ones(idx.size, dtype=bool)
        for j in range(self._d):
            if j == best:
                continue
            column = pts[:, j]
            mask &= (column >= lo[j]) & (column <= hi[j])
        return np.sort(idx[mask])

    def snapshot_state(self) -> "dict[str, Any]":
        """Plain-data snapshot for the :mod:`repro.engine.snapshot` codec.

        Only the points and the dense limit travel; the per-axis sorted
        views are a deterministic (stable-sort) function of the points
        and are rebuilt on restore.
        """
        return {
            "points": self._points.copy(),
            "dense_limit": self._dense_limit,
        }

    @classmethod
    def restore_state(cls, state: "dict[str, Any]") -> "SortedSampleIndex":
        """Rebuild an index from a :meth:`snapshot_state` dict."""
        index = cls.__new__(cls)
        pts = np.asarray(state["points"], dtype=float).copy()
        index._points = pts
        index._n, index._d = pts.shape
        index._order = np.argsort(pts, axis=0, kind="stable")
        index._sorted = np.take_along_axis(pts, index._order, axis=0)
        index._dense_limit = float(state["dense_limit"])
        return index


class SortedWindowIndex1D:
    """Exact interval counts over a sliding window of scalars."""

    def __init__(self, window_size: int) -> None:
        require_positive_int("window_size", window_size)
        self._window_size = window_size
        self._sorted: "list[float]" = []
        self._arrivals: "deque[float]" = deque()

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def window_size(self) -> int:
        """Maximum number of live values."""
        return self._window_size

    def insert(self, value: float) -> "float | None":
        """Add a value; return the expired one once the window is full."""
        if not np.isfinite(value):
            raise ParameterError(f"value must be finite, got {value!r}")
        value = float(value)
        expired = None
        if len(self._arrivals) == self._window_size:
            expired = self._arrivals.popleft()
            position = bisect.bisect_left(self._sorted, expired)
            del self._sorted[position]
        self._arrivals.append(value)
        bisect.insort(self._sorted, value)
        return expired

    def count_in(self, low: float, high: float) -> int:
        """Number of live values in the inclusive interval ``[low, high]``."""
        if high < low:
            raise ParameterError("high must be >= low")
        left = bisect.bisect_left(self._sorted, low)
        right = bisect.bisect_right(self._sorted, high)
        return right - left

    def neighbor_count(self, p: float, r: float) -> int:
        """Number of live values within ``r`` of ``p`` (inclusive)."""
        require_positive("r", r)
        return self.count_in(p - r, p + r)

    def values(self) -> np.ndarray:
        """The live values in sorted order."""
        return np.array(self._sorted)


class GridCountIndex:
    """Exact d-dimensional box counts via uniform-grid buckets.

    Points are bucketed by ``floor(x / cell_width)`` per dimension; a box
    count scans only the buckets the box overlaps and compares the
    candidate points exactly.  Removal uses a swap-with-last, so both
    updates are O(1) expected.
    """

    def __init__(self, cell_width: float, n_dims: int = 1) -> None:
        require_positive("cell_width", cell_width)
        require_positive_int("n_dims", n_dims)
        self._cell_width = cell_width
        self._n_dims = n_dims
        self._cells: "dict[tuple[int, ...], list[np.ndarray]]" = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def n_dims(self) -> int:
        """Point dimensionality."""
        return self._n_dims

    def _key(self, point: np.ndarray) -> "tuple[int, ...]":
        return tuple(int(np.floor(c / self._cell_width)) for c in point)

    def _as_point(self, value) -> np.ndarray:
        point = np.asarray(value, dtype=float).reshape(-1)
        if point.shape != (self._n_dims,):
            raise ParameterError(
                f"point must have {self._n_dims} coordinate(s), "
                f"got shape {point.shape}")
        if not np.isfinite(point).all():
            raise ParameterError("point must be finite")
        return point

    def insert(self, value: "np.ndarray | Sequence[float] | float") -> None:
        """Add one point."""
        point = self._as_point(value)
        self._cells.setdefault(self._key(point), []).append(point)
        self._count += 1

    def remove(self, value: "np.ndarray | Sequence[float] | float") -> None:
        """Remove one point equal to ``value`` (raises if absent)."""
        point = self._as_point(value)
        key = self._key(point)
        bucket = self._cells.get(key)
        if bucket:
            for i, candidate in enumerate(bucket):
                if np.array_equal(candidate, point):
                    bucket[i] = bucket[-1]
                    bucket.pop()
                    if not bucket:
                        del self._cells[key]
                    self._count -= 1
                    return
        raise ParameterError(f"point {point.tolist()} is not in the index")

    def count_box(self, low: "np.ndarray | Sequence[float] | float",
                  high: "np.ndarray | Sequence[float] | float") -> int:
        """Exact count of points in the inclusive box ``[low, high]``."""
        low_pt = self._as_point(low)
        high_pt = self._as_point(high)
        if (high_pt < low_pt).any():
            raise ParameterError("each high must be >= the corresponding low")
        lo_keys = np.floor(low_pt / self._cell_width).astype(int)
        hi_keys = np.floor(high_pt / self._cell_width).astype(int)
        total = 0
        # Iterate the overlapping cells; compare points exactly.
        ranges = [range(lo, hi + 1) for lo, hi in zip(lo_keys, hi_keys)]
        for key in _product(ranges):
            bucket = self._cells.get(key)
            if not bucket:
                continue
            candidates = np.stack(bucket)
            inside = ((candidates >= low_pt) & (candidates <= high_pt)).all(axis=1)
            total += int(inside.sum())
        return total

    def neighbor_count(self, p: "np.ndarray | Sequence[float] | float",
                       r: float) -> int:
        """Exact count of points within Chebyshev distance ``r`` of ``p``."""
        require_positive("r", r)
        point = self._as_point(p)
        return self.count_box(point - r, point + r)


def _product(ranges):
    """Cartesian product of integer ranges as tuples (tiny itertools clone
    kept local to avoid building intermediate lists for the common 1-d
    and 2-d cases)."""
    if len(ranges) == 1:
        for a in ranges[0]:
            yield (a,)
    elif len(ranges) == 2:
        for a in ranges[0]:
            for b in ranges[1]:
                yield (a, b)
    else:
        import itertools
        yield from itertools.product(*ranges)


class WindowedNeighborIndex:
    """A sliding-window neighbour-count index over d-dimensional points.

    Combines :class:`GridCountIndex` with automatic expiry of the oldest
    point once the window is full -- exactly what an online BruteForce-D
    needs.
    """

    def __init__(self, window_size: int, cell_width: float,
                 n_dims: int = 1) -> None:
        require_positive_int("window_size", window_size)
        self._window_size = window_size
        self._grid = GridCountIndex(cell_width, n_dims)
        self._arrivals: "deque[np.ndarray]" = deque()

    def __len__(self) -> int:
        return len(self._grid)

    @property
    def window_size(self) -> int:
        """Maximum number of live points."""
        return self._window_size

    def insert(self, value: "np.ndarray | Sequence[float] | float") -> "np.ndarray | None":
        """Add a point; return the expired one once the window is full."""
        expired = None
        if len(self._arrivals) == self._window_size:
            expired = self._arrivals.popleft()
            self._grid.remove(expired)
        point = np.asarray(value, dtype=float).reshape(-1)
        self._grid.insert(point)
        self._arrivals.append(point)
        return expired

    def neighbor_count(self, p: "np.ndarray | Sequence[float] | float",
                       r: float) -> int:
        """Exact count of live points within ``r`` of ``p``."""
        return self._grid.neighbor_count(p, r)

    def count_box(self, low: "np.ndarray | Sequence[float] | float",
                  high: "np.ndarray | Sequence[float] | float") -> int:
        """Exact count of live points in the inclusive box."""
        return self._grid.count_box(low, high)
