"""MDEF / local-metric outlier detection (paper Sections 3 and 8, Figure 3).

The Multi-Granularity Deviation Factor (Papadimitriou et al., LOCI)
compares a point's *counting neighbourhood* population against the
population that a typical *object* of its sampling neighbourhood sees:

    MDEF(p, r, alpha)       = 1 - n(p, alpha*r) / n_hat(p, r, alpha)
    sigma_MDEF(p, r, alpha) = sigma_hat / n_hat(p, r, alpha)

where ``n(p, alpha*r)`` is the number of values within ``alpha*r`` of
``p`` and ``n_hat`` is the average of ``n(q, alpha*r)`` over the objects
``q`` of the sampling neighbourhood.  Following aLOCI, both moments are
approximated from the populations ``c_i`` of the grid cells (side
``2*alpha*r``) whose centres fall within ``r`` of ``p``: every object in
cell ``i`` is charged the cell's own population, so

    n_hat      = sum_i c_i^2 / sum_i c_i
    sigma_hat2 = sum_i c_i (c_i - n_hat)^2 / sum_i c_i

(the count-weighted mean and variance -- empty cells contain no objects
and therefore contribute nothing).  A value is flagged when

    MDEF > k_sigma * sigma_MDEF            (Equation 9, k_sigma = 3).

The paper estimates all the counts from the kernel density model
(Figure 3): the counting neighbourhood via the range query
``N(p, alpha*r)`` and cell ``i`` via ``N(alpha*r*(2i - 1), alpha*r)``.
This module implements that estimation generically over any
:class:`~repro.core.model.DensityModel`, plus the shared statistic used by
the exact :mod:`~repro.core.baselines` path so model-based and
brute-force decisions apply the *same* rule to different count sources.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._exceptions import ParameterError
from repro._validation import as_point
from repro.core.model import DensityModel

__all__ = [
    "MDEFSpec",
    "MDEFDecision",
    "mdef_statistic",
    "cell_grid_centers",
    "sampling_cell_centers",
    "MDEFOutlierDetector",
]

#: Cell populations below this are treated as zero when judging whether a
#: sampling neighbourhood carries any evidence at all.
_EVIDENCE_FLOOR = 1e-9


@dataclass(frozen=True)
class MDEFSpec:
    """Parameters of the MDEF outlier test.

    Attributes
    ----------
    sampling_radius:
        ``r``, the radius over which typical cell populations are
        collected (0.08 in the paper's synthetic experiments).
    counting_radius:
        ``alpha * r``, the radius of the counting neighbourhood and the
        half-side of the grid cells (0.01 in the synthetic experiments,
        i.e. ``alpha = 1/8``).
    k_sigma:
        Significance factor of Equation 9; the paper uses 3.
    min_mdef:
        Optional absolute deviation floor: values are flagged only when
        their MDEF also exceeds this.  LOCI is known to assign
        moderately high MDEF (~0.5) to the *edges* of uniform-density
        regions; a floor of ~0.8 restricts flags to genuine local
        voids.  0 (the default) disables the guard.
    """

    sampling_radius: float
    counting_radius: float
    k_sigma: float = 3.0
    min_mdef: float = 0.0

    def __post_init__(self) -> None:
        if not np.isfinite(self.sampling_radius) or self.sampling_radius <= 0:
            raise ParameterError(
                f"sampling_radius must be positive, got {self.sampling_radius!r}")
        if not np.isfinite(self.counting_radius) or self.counting_radius <= 0:
            raise ParameterError(
                f"counting_radius must be positive, got {self.counting_radius!r}")
        if self.counting_radius >= self.sampling_radius:
            raise ParameterError(
                "counting_radius must be smaller than sampling_radius "
                f"(got {self.counting_radius} >= {self.sampling_radius})")
        if not np.isfinite(self.k_sigma) or self.k_sigma <= 0:
            raise ParameterError(f"k_sigma must be positive, got {self.k_sigma!r}")
        if not np.isfinite(self.min_mdef) or not 0.0 <= self.min_mdef < 1.0:
            raise ParameterError(
                f"min_mdef must lie in [0, 1), got {self.min_mdef!r}")

    @property
    def alpha(self) -> float:
        """The ratio ``alpha = counting_radius / sampling_radius``."""
        return self.counting_radius / self.sampling_radius

    @property
    def cell_width(self) -> float:
        """Grid cell side length, ``2 * alpha * r``."""
        return 2.0 * self.counting_radius


@dataclass(frozen=True)
class MDEFDecision:
    """Outcome of one MDEF outlier check."""

    is_outlier: bool
    mdef: float
    sigma_mdef: float
    #: (Estimated) population of the counting neighbourhood of the point.
    neighbor_count: float
    #: Count-weighted mean population of the sampling-neighbourhood cells
    #: (``n_hat``, aLOCI's estimate of the average per-object count).
    cell_mean: float
    #: Count-weighted standard deviation of those populations (``sigma_hat``).
    cell_std: float


#: Lower bound on the estimated sigma_MDEF when counts come from a
#: sampled model: at least a (two-sided) Poisson term.
_POISSON_FLOOR = 2.0


def mdef_statistic(neighbor_count: float, cell_counts: np.ndarray,
                   k_sigma: float, *, min_mdef: float = 0.0,
                   estimation_variance_per_unit: float = 0.0) -> MDEFDecision:
    """Apply Equation 9 to a neighbour count and its peer cell populations.

    ``n_hat`` and ``sigma_hat`` are the count-weighted moments of the
    cell populations (see the module docstring): every object in a cell
    is charged the cell's own population, which is aLOCI's approximation
    of the per-object neighbourhood counts.  Shared by the
    model-estimated path (Figure 3) and the exact brute-force path so
    both flag by the identical rule.  A sampling neighbourhood with
    (essentially) no population provides no evidence of deviation, so
    the value is not flagged.

    ``estimation_variance_per_unit`` corrects sigma_hat when the cell
    populations are *estimates* from a sampled density model rather than
    exact counts: a cell of estimated population ``c`` carries sampling
    variance of roughly ``(|W| / R_distinct) * c`` (binomial counts
    scaled to the window), which inflates the observed spread and would
    otherwise mask true deviations.  Passing ``|W| / R_distinct`` here
    subtracts that component and floors the result at a Poisson term.
    Exact paths pass 0 and are unaffected.
    """
    counts = np.asarray(cell_counts, dtype=float)
    if counts.size == 0:
        raise ParameterError("cell_counts must be non-empty")
    counts = np.clip(counts, 0.0, None)
    total = float(counts.sum())
    if total <= _EVIDENCE_FLOOR:
        return MDEFDecision(False, 0.0, 0.0, float(neighbor_count), 0.0, 0.0)
    cell_mean = float(np.sum(counts * counts) / total)
    cell_var = float(np.sum(counts * (counts - cell_mean) ** 2) / total)
    if estimation_variance_per_unit > 0.0:
        cell_var = max(0.0, cell_var - estimation_variance_per_unit * cell_mean)
        floor = _POISSON_FLOOR * np.sqrt(max(cell_mean, 1.0))
        cell_std = float(max(np.sqrt(cell_var), floor))
    else:
        cell_std = float(np.sqrt(max(cell_var, 0.0)))
    mdef = 1.0 - float(neighbor_count) / cell_mean
    sigma_mdef = cell_std / cell_mean
    is_outlier = mdef > k_sigma * sigma_mdef and mdef > min_mdef
    return MDEFDecision(is_outlier, mdef, sigma_mdef,
                        float(neighbor_count), cell_mean, cell_std)


def cell_grid_centers(spec: MDEFSpec) -> np.ndarray:
    """Centres of the 1-d grid cells covering ``[0, 1]``: ``alpha*r*(2i - 1)``.

    The d-dimensional grid is the Cartesian product of this array with
    itself; :func:`sampling_cell_centers` enumerates only the cells a
    given point needs.
    """
    width = spec.cell_width
    n_cells = int(np.ceil(1.0 / width))
    return (np.arange(n_cells) + 0.5) * width


def sampling_cell_centers(p: np.ndarray, spec: MDEFSpec) -> np.ndarray:
    """Centres of the grid cells inside the sampling neighbourhood of ``p``.

    A cell belongs to the sampling neighbourhood when its centre lies
    within ``r`` of ``p`` in every dimension (Chebyshev ball, matching
    the paper's interval geometry).  Returns shape ``(m, d)``.
    """
    centers_1d = cell_grid_centers(spec)
    per_dim = []
    for coord in p:
        mask = np.abs(centers_1d - coord) <= spec.sampling_radius
        selected = centers_1d[mask]
        if selected.size == 0:
            # Point beyond the grid edge: fall back to the nearest cell.
            selected = centers_1d[[int(np.argmin(np.abs(centers_1d - coord)))]]
        per_dim.append(selected)
    if len(per_dim) == 1:
        return per_dim[0].reshape(-1, 1)
    return np.array(list(itertools.product(*per_dim)), dtype=float)


class MDEFOutlierDetector:
    """A density model bound to an MDEF specification (the ``isMDEFOutlier``
    procedure of Figure 4, estimated as in Figure 3).

    In the MGDD algorithm every leaf binds this detector to its copy of
    the *global* estimator model, so deviations are judged against the
    distribution of the whole region rather than the local stream.

    ``variance_correction`` (default on) subtracts the density model's
    known estimation variance from sigma_hat (see
    :func:`mdef_statistic`); without it the sampling noise of small
    kernel samples systematically masks deviations.
    """

    def __init__(self, model: DensityModel, spec: MDEFSpec, *,
                 variance_correction: bool = True) -> None:
        self._model = model
        self._spec = spec
        self._evpu = 0.0
        if variance_correction:
            distinct = getattr(model, "distinct_sample_size", None)
            if distinct:
                self._evpu = model.window_size / max(1, int(distinct))

    @property
    def model(self) -> DensityModel:
        """The bound density model."""
        return self._model

    @property
    def spec(self) -> MDEFSpec:
        """The bound MDEF specification."""
        return self._spec

    def check(self, p: "np.ndarray | Sequence[float] | float") -> MDEFDecision:
        """Check one point against the model (Figure 3's estimation)."""
        point = as_point("p", p, self._model.n_dims)
        r_count = self._spec.counting_radius
        neighbor = float(np.asarray(
            self._model.neighborhood_count(point, r_count)).reshape(()))
        centers = sampling_cell_centers(point, self._spec)
        cell_counts = np.asarray(
            self._model.neighborhood_count(centers, r_count)).reshape(-1)
        return mdef_statistic(neighbor, cell_counts, self._spec.k_sigma,
                              min_mdef=self._spec.min_mdef,
                              estimation_variance_per_unit=self._evpu)

    def check_many(self, points: "np.ndarray | Sequence[Sequence[float]] | Sequence[float]") -> "list[MDEFDecision]":
        """Check a batch of points with one fused range-query batch.

        Concatenates every point's counting query and all its sampling
        cells into a single call to the model's vectorised range path,
        then applies Equation 9 per point.  Decisions match per-point
        :meth:`check` calls up to range-query round-off.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(-1, self._model.n_dims) if self._model.n_dims == 1 \
                else pts.reshape(1, -1)
        m = pts.shape[0]
        if m == 0:
            return []
        r_count = self._spec.counting_radius
        centers = [sampling_cell_centers(p, self._spec) for p in pts]
        queries = np.concatenate([pts] + centers, axis=0)
        counts = np.asarray(
            self._model.neighborhood_count(queries, r_count)).reshape(-1)
        decisions: "list[MDEFDecision]" = []
        offset = m
        for i in range(m):
            n_cells = centers[i].shape[0]
            decisions.append(mdef_statistic(
                float(counts[i]), counts[offset:offset + n_cells],
                self._spec.k_sigma, min_mdef=self._spec.min_mdef,
                estimation_variance_per_unit=self._evpu))
            offset += n_cells
        return decisions
