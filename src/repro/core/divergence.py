"""Distribution distances between estimator models (paper Section 6).

The paper compares density models -- e.g. a parent deciding whether its
estimator has drifted enough to warrant re-broadcasting it (Section 8.1),
or a parent looking for a faulty child (Section 9) -- with the
Jensen-Shannon divergence, a symmetrised, zero-tolerant variant of the
KL divergence (Equation 7).  Between two kernel models the divergence is
estimated on a finite grid of cells (Equation 8).

All divergences here use base-2 logarithms, so the JS divergence lies in
``[0, 1]`` -- matching the paper's statement that "the distance ranges
from 0 to 1" in the Figure 6 experiment.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._exceptions import ParameterError
from repro.core.model import DensityModel

__all__ = [
    "kl_divergence",
    "jensen_shannon_divergence",
    "model_js_divergence",
]


def _as_distribution(name: str, values: np.ndarray, *, normalize: bool) -> np.ndarray:
    arr = np.asarray(values, dtype=float).reshape(-1)
    if arr.size == 0:
        raise ParameterError(f"{name} must be non-empty")
    if (arr < 0).any() or not np.isfinite(arr).all():
        raise ParameterError(f"{name} must contain finite non-negative masses")
    total = arr.sum()
    if total <= 0:
        raise ParameterError(f"{name} must have positive total mass")
    if normalize:
        return arr / total
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ParameterError(
            f"{name} must sum to 1 (got {total:.6f}); pass normalize=True to rescale")
    return arr


def kl_divergence(p: "np.ndarray | Sequence[float]",
                  q: "np.ndarray | Sequence[float]", *,
                  normalize: bool = False) -> float:
    """Kullback-Leibler divergence ``D(p || q)`` in bits (Equation 6).

    Returns ``inf`` when ``q`` assigns zero mass somewhere ``p`` does not --
    the very failure mode (Section 6) that motivates the Jensen-Shannon
    variant for kernel models with bounded support.
    """
    p_arr = _as_distribution("p", p, normalize=normalize)
    q_arr = _as_distribution("q", q, normalize=normalize)
    if p_arr.shape != q_arr.shape:
        raise ParameterError("p and q must have the same number of cells")
    support = p_arr > 0
    if (q_arr[support] == 0).any():
        return float("inf")
    ratios = p_arr[support] / q_arr[support]
    return float(np.sum(p_arr[support] * np.log2(ratios)))


def jensen_shannon_divergence(p: "np.ndarray | Sequence[float]",
                              q: "np.ndarray | Sequence[float]", *,
                              normalize: bool = False) -> float:
    """Jensen-Shannon divergence (Equation 7), in ``[0, 1]`` with base-2 logs.

    ``JS(p, q) = (D(p || m) + D(q || m)) / 2`` with ``m = (p + q)/2``.
    Finite for any pair of distributions, symmetric, and zero iff equal.
    """
    p_arr = _as_distribution("p", p, normalize=normalize)
    q_arr = _as_distribution("q", q, normalize=normalize)
    if p_arr.shape != q_arr.shape:
        raise ParameterError("p and q must have the same number of cells")
    mid = 0.5 * (p_arr + q_arr)
    value = 0.5 * (kl_divergence(p_arr, mid) + kl_divergence(q_arr, mid))
    # Guard against tiny negative rounding artefacts.
    return float(min(max(value, 0.0), 1.0))


def model_js_divergence(model_p: DensityModel, model_q: DensityModel, *,
                        grid_size: int = 64, low: float = 0.0,
                        high: float = 1.0) -> float:
    """JS divergence between two density models on a uniform grid (Eq. 8).

    Both models are discretised into ``grid_size`` cells per dimension over
    ``[low, high]^d`` and the resulting cell-mass vectors are compared.
    Masses are renormalised because kernels near the domain boundary leak
    a little probability outside ``[0, 1]^d``.
    """
    if model_p.n_dims != model_q.n_dims:
        raise ParameterError(
            f"models disagree on dimensionality: {model_p.n_dims} vs {model_q.n_dims}")
    cells_p = model_p.grid_probabilities(grid_size, low=low, high=high)
    cells_q = model_q.grid_probabilities(grid_size, low=low, high=high)
    return jensen_shannon_divergence(cells_p, cells_q, normalize=True)
