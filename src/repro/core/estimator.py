"""Kernel density estimation over sliding-window samples (paper Sections 4-5).

The estimator approximates the unknown distribution ``f(x)`` of the values
in a sliding window from (i) a uniform random sample ``R`` of the window
(maintained online by :class:`repro.streams.sampling.ChainSample`) and
(ii) the per-dimension standard deviation (maintained online by
:class:`repro.streams.variance.WindowedVarianceSketch`), which drives
Scott's bandwidth rule.

The central query is the *range probability* of Equation 5,

    P(low, high) = 1/|R| * sum_{t in R} Integral_{[low, high]} k(x - t) dx,

from which the paper derives the windowed neighbourhood count of
Equation 4, ``N(p, r) = P[p - r, p + r] * |W|``, used by both the
distance-based (Section 7) and the MDEF-based (Section 8) outlier tests.

Three evaluation strategies are implemented:

* a dense vectorised path, ``O(d |R|)`` per query (Theorem 2), that also
  accepts *batches* of query boxes (the MDEF test issues ``1/(2 alpha r)``
  of them at once) -- served by the pluggable compute backend
  (:mod:`repro.core.backend`: fused cache-blocked numpy, or compiled
  numba when the ``repro[fast]`` extra is installed);
* a sorted 1-d fast path that prunes kernels whose support cannot
  intersect the query interval, achieving the ``O(log|R| + |R'|)`` bound
  the paper quotes for one-dimensional data;
* a sorted n-d fast path (:class:`repro.core.indexes.SortedSampleIndex`)
  that generalises the same pruning to ``d > 1`` single-box queries via
  per-dimension sorted indexes, falling back to the dense path when the
  query's reach covers too much of the sample.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Sequence

import numpy as np

from repro._exceptions import EmptyModelError, ParameterError
from repro._rng import resolve_rng
from repro._validation import as_point, as_points
from repro import _sanitize, obs
from repro.core import backend as _backend
from repro.core.bandwidth import scott_bandwidths
from repro.core.indexes import SortedSampleIndex
from repro.core.kernels import EPANECHNIKOV, Kernel, kernel_by_name

__all__ = ["KernelDensityEstimator", "merge_estimators"]


# repro-lint: shard-state
class KernelDensityEstimator:
    """Non-parametric density model of a sliding window of sensor readings.

    Parameters
    ----------
    sample:
        Array of shape ``(n, d)`` (or ``(n,)`` for 1-d data) with the
        kernel centres -- a uniform random sample of the window.
    stddev:
        Per-dimension standard deviation of the *window* (not just the
        sample).  Used by the bandwidth rule.  Defaults to the sample's
        own standard deviation when omitted.
    bandwidths:
        Explicit per-dimension bandwidths; overrides ``stddev``.
    kernel:
        Smoothing kernel; defaults to the paper's Epanechnikov kernel.
    window_size:
        ``|W|``, the number of values the window holds.  Neighbourhood
        counts are scaled by this.  Defaults to the sample size.
    bandwidth_n:
        The observation count fed to Scott's rule.  Defaults to the
        sample size ``|R|`` -- the paper's formula as printed
        (Section 4).  The online detectors pass the *window* size
        instead: the estimate represents ``|W|`` observations, the
        narrower bandwidth resolves outlier-scale structure, and it is
        what reproduces the paper's reported accuracy (see
        EXPERIMENTS.md).  Ignored when ``bandwidths`` is explicit.
    """

    def __init__(self, sample: "np.ndarray | Sequence[float]", *,
                 stddev: "float | np.ndarray | None" = None,
                 bandwidths: "float | np.ndarray | None" = None,
                 kernel: Kernel = EPANECHNIKOV,
                 window_size: int | None = None,
                 bandwidth_n: int | None = None) -> None:
        points = as_points("sample", sample)
        if points.shape[0] == 0:
            raise EmptyModelError("cannot build a density model from an empty sample")
        self._sample = points
        self._n, self._d = points.shape
        self._kernel = kernel
        if window_size is None:
            window_size = self._n
        if window_size < 1:
            raise ParameterError(f"window_size must be >= 1, got {window_size}")
        self._window_size = int(window_size)

        if bandwidths is not None:
            bw = np.atleast_1d(np.asarray(bandwidths, dtype=float))
            if bw.shape != (self._d,):
                raise ParameterError(
                    f"bandwidths must have shape ({self._d},), got {bw.shape}")
            if not (np.isfinite(bw).all() and (bw > 0).all()):
                raise ParameterError("bandwidths must be positive and finite")
            self._bandwidths = bw
        else:
            if stddev is None:
                stddev = points.std(axis=0)
            if bandwidth_n is None:
                bandwidth_n = self._n
            elif bandwidth_n < 1:
                raise ParameterError(
                    f"bandwidth_n must be >= 1, got {bandwidth_n}")
            self._bandwidths = scott_bandwidths(stddev, bandwidth_n, self._d)
        if _sanitize.ACTIVE:
            _sanitize.check_bandwidths(self._bandwidths,
                                       label="KernelDensityEstimator")
        # Window deviation as supplied (None when only bandwidths were
        # given); retained for pooled-variance merging (Section 5.1).
        self._stddev = None if stddev is None \
            else np.broadcast_to(np.atleast_1d(
                np.asarray(stddev, dtype=float)), (self._d,)).copy()

        # Sorted view for the 1-d fast path (Theorem 2's O(log|R| + |R'|)).
        self._sorted_1d = np.sort(points[:, 0]) if self._d == 1 else None
        # Per-dimension sorted index generalising the same pruning to
        # d > 1 single-box queries; built lazily on first such query so
        # models that only serve batch queries never pay the sort.
        self._sorted_nd: "SortedSampleIndex | None" = None
        # Chain samples hold duplicates (with-replacement semantics); the
        # distinct count is what estimation-variance corrections need.
        # np.unique(axis=0) sorts the sample, so it is computed lazily:
        # online rebuilds that only serve distance queries never pay it.
        self._distinct: "int | None" = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def sample(self) -> np.ndarray:
        """The kernel centres, shape ``(n, d)`` (read-only view)."""
        view = self._sample.view()
        view.flags.writeable = False
        return view

    @property
    def sample_size(self) -> int:
        """Number of kernel centres ``|R|``."""
        return self._n

    @property
    def distinct_sample_size(self) -> int:
        """Number of *distinct* kernel centres (chain samples duplicate).

        Computed lazily on first access and cached: only the MDEF
        variance correction needs it, and the ``np.unique(axis=0)`` it
        requires is the most expensive step of constructing a model.
        """
        if self._distinct is None:
            self._distinct = int(np.unique(self._sample, axis=0).shape[0])
        return self._distinct

    @property
    def stddev(self) -> "np.ndarray | None":
        """The per-dimension window deviation this model was built with.

        ``None`` when the model was constructed from explicit bandwidths
        without a deviation estimate; :func:`merge_estimators` then falls
        back to the sample's own deviation for that member.
        """
        return None if self._stddev is None else self._stddev.copy()

    @property
    def n_dims(self) -> int:
        """Data dimensionality ``d``."""
        return self._d

    @property
    def bandwidths(self) -> np.ndarray:
        """Per-dimension kernel bandwidths ``B_i``."""
        return self._bandwidths.copy()

    @property
    def kernel(self) -> Kernel:
        """The smoothing kernel in use."""
        return self._kernel

    @property
    def window_size(self) -> int:
        """The window size ``|W|`` that scales neighbourhood counts."""
        return self._window_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"KernelDensityEstimator(n={self._n}, d={self._d}, "
                f"kernel={self._kernel.name!r}, |W|={self._window_size})")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_window(cls, values: "np.ndarray | Sequence[float]",
                    sample_size: int | None = None, *,
                    rng: np.random.Generator | None = None,
                    kernel: Kernel = EPANECHNIKOV) -> "KernelDensityEstimator":
        """Build an estimator offline from the full window contents.

        Draws a uniform sample of ``sample_size`` values without
        replacement (all values when ``sample_size`` is omitted or not
        smaller than the window) and uses the window's exact standard
        deviation.  This mirrors what the streaming components converge
        to and is convenient for tests and examples.
        """
        points = as_points("values", values)
        if points.shape[0] == 0:
            raise EmptyModelError("cannot build a density model from an empty window")
        window_size = points.shape[0]
        if sample_size is None or sample_size >= window_size:
            sample = points
        else:
            if sample_size < 1:
                raise ParameterError(f"sample_size must be >= 1, got {sample_size}")
            rng = resolve_rng(rng)
            idx = rng.choice(window_size, size=sample_size, replace=False)
            sample = points[idx]
        return cls(sample, stddev=points.std(axis=0), kernel=kernel,
                   window_size=window_size)

    # ------------------------------------------------------------------
    # Density / probability queries
    # ------------------------------------------------------------------

    def pdf(self, points: "np.ndarray | Sequence[float]") -> np.ndarray:
        """Estimated density ``f(x)`` (Equation 1) at each query point.

        Accepts shape ``(m, d)`` or ``(m,)`` for 1-d data; returns ``(m,)``.
        """
        queries = as_points("points", points, n_dims=self._d)
        out = np.empty(queries.shape[0], dtype=float)
        inv_bw = 1.0 / self._bandwidths
        norm = inv_bw.prod() / self._n
        _backend.get_backend().pdf_batch(
            self._kernel, queries, self._sample, inv_bw, norm, out,
            _backend.block_cells())
        return out

    def range_probability(self, low: "np.ndarray | Sequence[float] | float",
                          high: "np.ndarray | Sequence[float] | float") -> "float | np.ndarray":
        """Probability mass of the axis-aligned box ``[low, high]`` (Eq. 5).

        ``low``/``high`` may be single points (``(d,)`` or scalars for 1-d
        data), returning a float, or batches ``(m, d)``, returning ``(m,)``.
        """
        low_arr = np.asarray(low, dtype=float)
        high_arr = np.asarray(high, dtype=float)
        batched = low_arr.ndim == 2 or high_arr.ndim == 2
        if batched:
            lows = as_points("low", low_arr, n_dims=self._d)
            highs = as_points("high", high_arr, n_dims=self._d)
            if lows.shape != highs.shape:
                raise ParameterError("low and high batches must have equal shapes")
            return self._range_probability_batch(lows, highs)
        low_pt = as_point("low", low_arr, self._d)
        high_pt = as_point("high", high_arr, self._d)
        if self._sorted_1d is not None:
            if obs.ACTIVE:
                # finally: a query that raises must still be charged to
                # its phase, or profiles under-report failing paths.
                t0 = time.perf_counter()
                try:
                    return self._range_probability_sorted_1d(
                        low_pt[0], high_pt[0])
                finally:
                    elapsed = time.perf_counter() - t0
                    obs.profiler().record("estimator.query_sorted", elapsed)
                    obs.metrics().histogram(
                        "estimator.range_query.latency").observe(elapsed)
            return self._range_probability_sorted_1d(low_pt[0], high_pt[0])
        return self._range_probability_single_nd(low_pt, high_pt)

    def _range_probability_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        if (highs < lows).any():
            raise ParameterError("each high must be >= the corresponding low")
        t0 = time.perf_counter() if obs.ACTIVE else 0.0
        try:
            out = np.empty(lows.shape[0], dtype=float)
            inv_bw = 1.0 / self._bandwidths
            _backend.get_backend().range_batch(
                self._kernel, lows, highs, self._sample, inv_bw, out,
                _backend.block_cells())
            if _sanitize.ACTIVE:
                _sanitize.check_probabilities(out, label="range_probability")
            # Clamp tiny negative values from floating point cancellation.
            return np.clip(out, 0.0, 1.0)
        finally:
            # A failing query (e.g. a sanitizer trip) still charges its
            # phase; without this the profile reports 0 ns for it.
            if obs.ACTIVE:
                elapsed = time.perf_counter() - t0
                obs.profiler().record("kernels.range_batch", elapsed)
                obs.metrics().histogram(
                    "estimator.range_query.latency").observe(elapsed)

    def _range_probability_sorted_1d(self, low: float, high: float) -> float:
        """Theorem 2 fast path: prune kernels outside the query's reach."""
        if high < low:
            raise ParameterError("high must be >= low")
        ts = self._sorted_1d
        bw = self._bandwidths[0]
        reach = bw * self._kernel.support_radius
        first = int(np.searchsorted(ts, low - reach, side="left"))
        last = int(np.searchsorted(ts, high + reach, side="right"))
        if first >= last:
            return 0.0
        # Kernels whose entire support lies inside [low, high] contribute 1.
        full_first = int(np.searchsorted(ts, low + reach, side="left"))
        full_last = int(np.searchsorted(ts, high - reach, side="right"))
        total = 0.0
        if full_last > full_first:
            total += full_last - full_first
            partial_idx = np.r_[first:full_first, full_last:last]
        else:
            partial_idx = np.arange(first, last)
        if partial_idx.size:
            t = ts[partial_idx]
            total += float(np.sum(self._kernel.cdf((high - t) / bw)
                                  - self._kernel.cdf((low - t) / bw)))
        if _sanitize.ACTIVE:
            _sanitize.check_probabilities(total / self._n,
                                          label="range_probability_1d")
        return float(np.clip(total / self._n, 0.0, 1.0))

    def _range_probability_single_nd(self, low_pt: np.ndarray,
                                     high_pt: np.ndarray) -> float:
        """Theorem 2 pruning generalised to d > 1 single-box queries.

        Kernel centres whose support cannot reach the box are pruned via
        the per-dimension sorted index; when pruning retains too much of
        the sample (or the kernel's support is unbounded), the dense
        vectorised path is faster and is used instead.
        """
        if (high_pt < low_pt).any():
            raise ParameterError("each high must be >= the corresponding low")
        if self._sorted_nd is None:
            self._sorted_nd = SortedSampleIndex(self._sample)
        reach = self._bandwidths * self._kernel.support_radius
        idx = self._sorted_nd.candidates(low_pt - reach, high_pt + reach)
        if idx is None:
            return float(self._range_probability_batch(
                low_pt[None, :], high_pt[None, :])[0])
        t0 = time.perf_counter() if obs.ACTIVE else 0.0
        try:
            total = 0.0
            if idx.size:
                centers = self._sample[idx]
                inv_bw = 1.0 / self._bandwidths
                z_hi = (high_pt[None, :] - centers) * inv_bw
                z_lo = (low_pt[None, :] - centers) * inv_bw
                per_dim = self._kernel.cdf(z_hi) - self._kernel.cdf(z_lo)
                total = float(per_dim.prod(axis=1).sum())
            if _sanitize.ACTIVE:
                _sanitize.check_probabilities(total / self._n,
                                              label="range_probability_nd")
            return float(np.clip(total / self._n, 0.0, 1.0))
        finally:
            if obs.ACTIVE:
                elapsed = time.perf_counter() - t0
                obs.profiler().record("kernels.sorted_nd", elapsed)
                obs.metrics().histogram(
                    "estimator.range_query.latency").observe(elapsed)

    def neighborhood_count(self, p: "np.ndarray | Sequence[float] | float",
                           r: float) -> "float | np.ndarray":
        """Estimated number of window values within ``r`` of ``p`` (Eq. 4).

        ``N(p, r) = P[p - r, p + r] * |W|`` with the box interpreted per
        dimension.  ``p`` may be a single point or a batch ``(m, d)``.
        """
        if not np.isfinite(r) or r <= 0:
            raise ParameterError(f"r must be a positive finite number, got {r!r}")
        p_arr = np.asarray(p, dtype=float)
        prob = self.range_probability(p_arr - r, p_arr + r)
        return prob * self._window_size

    # ------------------------------------------------------------------
    # Grid summaries (for divergence computations, Section 6)
    # ------------------------------------------------------------------

    def interval_probabilities(self, edges: "np.ndarray | Sequence[float]") -> np.ndarray:
        """Probability mass of each 1-d interval between consecutive edges.

        Only valid for 1-d models; returns ``len(edges) - 1`` masses.
        """
        if self._d != 1:
            raise ParameterError("interval_probabilities requires a 1-d model")
        edge_arr = np.asarray(edges, dtype=float)
        if edge_arr.ndim != 1 or edge_arr.shape[0] < 2:
            raise ParameterError("edges must be a 1-d array with at least two entries")
        if (np.diff(edge_arr) <= 0).any():
            raise ParameterError("edges must be strictly increasing")
        diffs = _backend.get_backend().cdf_diff_rows(
            self._kernel, edge_arr, self._sample[:, 0],
            self._bandwidths[0])                # (n, k)
        masses = diffs.mean(axis=0)
        if _sanitize.ACTIVE:
            _sanitize.check_mass(masses, label="interval_probabilities")
        return np.clip(masses, 0.0, 1.0)

    def grid_probabilities(self, cells_per_dim: int,
                           low: float = 0.0, high: float = 1.0) -> np.ndarray:
        """Probability mass of each cell of a uniform grid over ``[low, high]^d``.

        Returns an array of shape ``(cells_per_dim,) * d``.  Used by the
        Jensen-Shannon divergence estimate of Equation 8.
        """
        if cells_per_dim < 1:
            raise ParameterError(f"cells_per_dim must be >= 1, got {cells_per_dim}")
        if not high > low:
            raise ParameterError("high must exceed low")
        edges = np.linspace(low, high, cells_per_dim + 1)
        ops = _backend.get_backend()
        # Per-dimension CDF difference matrices, each (n, k).
        per_dim = [ops.cdf_diff_rows(self._kernel, edges, self._sample[:, j],
                                     self._bandwidths[j])
                   for j in range(self._d)]
        if self._d == 1:
            cells = per_dim[0].mean(axis=0)
        elif self._d == 2:
            cells = np.einsum("nk,nl->kl", per_dim[0], per_dim[1]) / self._n
        elif self._d == 3:
            cells = np.einsum("nk,nl,nm->klm", per_dim[0], per_dim[1],
                              per_dim[2]) / self._n
        else:
            # General (rare) case: accumulate outer products sample by sample.
            shape = (cells_per_dim,) * self._d
            cells = np.zeros(shape)
            for i in range(self._n):
                outer = per_dim[0][i]
                for j in range(1, self._d):
                    outer = np.multiply.outer(outer, per_dim[j][i])
                cells += outer
            cells /= self._n
        if _sanitize.ACTIVE:
            _sanitize.check_mass(cells, label="grid_probabilities")
        return np.clip(cells, 0.0, 1.0)

    def mean(self) -> np.ndarray:
        """Mean of the estimated distribution (= sample mean for symmetric kernels)."""
        return self._sample.mean(axis=0)

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.engine.snapshot)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> "dict[str, Any]":
        """Plain-data snapshot for the :mod:`repro.engine.snapshot` codec.

        Only the model inputs travel: kernel centres, bandwidths, window
        deviation and the kernel's registry name.  The lazy query caches
        (``_sorted_nd``, ``_distinct``) are rebuilt deterministically
        from the sample on demand, so dropping them cannot change any
        restored query result.
        """
        return {
            "sample": self._sample.copy(),
            "bandwidths": self._bandwidths.copy(),
            "stddev": None if self._stddev is None else self._stddev.copy(),
            "kernel": self._kernel.name,
            "window_size": self._window_size,
        }

    @classmethod
    def restore_state(cls, state: "dict[str, Any]") -> "KernelDensityEstimator":
        """Rebuild an estimator from a :meth:`snapshot_state` dict.

        Reconstructs through ``__init__`` with explicit bandwidths (so no
        bandwidth rule is re-run), then reinstates the recorded window
        deviation, which explicit-bandwidth construction does not thread.
        """
        stddev = state["stddev"]
        model = cls(np.asarray(state["sample"], dtype=float),
                    bandwidths=np.asarray(state["bandwidths"], dtype=float),
                    kernel=kernel_by_name(str(state["kernel"])),
                    window_size=int(state["window_size"]))
        model._stddev = None if stddev is None \
            else np.asarray(stddev, dtype=float).copy()
        return model


def merge_estimators(estimators: Iterable[KernelDensityEstimator], *,
                     window_size: int | None = None) -> KernelDensityEstimator:
    """Combine several kernel models into one (paper Section 5.1).

    Kernel estimators "can easily be combined": the union of the samples,
    weighted implicitly by sample size, is itself a sample of the union of
    the windows.  The merged deviation pools the members' window
    deviations by the law of total variance over the member windows,

        var = sum_i w_i (sigma_i^2 + (mu_i - mu)^2) / sum_i w_i,

    with ``w_i`` the member window sizes, ``sigma_i`` the deviation each
    member was built with (its sample deviation when unavailable) and
    ``mu_i`` its mean -- so merging models of disjoint windows recovers
    the exact union-window deviation, which re-deriving the deviation
    from the concatenated (size-biased) sample does not.  ``window_size``
    defaults to the sum of the members' window sizes (the union-window
    semantics of Theorem 3).
    """
    models = list(estimators)
    if not models:
        raise EmptyModelError("cannot merge zero estimators")
    dims = {m.n_dims for m in models}
    if len(dims) != 1:
        raise ParameterError(f"estimators disagree on dimensionality: {sorted(dims)}")
    kernels = {m.kernel.name for m in models}
    if len(kernels) != 1:
        raise ParameterError(f"estimators disagree on kernel: {sorted(kernels)}")
    sample = np.concatenate([m.sample for m in models], axis=0)
    weights = np.array([m.window_size for m in models], dtype=float)
    means = np.stack([m.mean() for m in models], axis=0)
    sigmas = np.stack(
        [m.stddev if m.stddev is not None else m.sample.std(axis=0)
         for m in models], axis=0)
    total = weights.sum()
    pooled_mean = (weights[:, None] * means).sum(axis=0) / total
    pooled_var = (weights[:, None]
                  * (sigmas**2 + (means - pooled_mean)**2)).sum(axis=0) / total
    if window_size is None:
        window_size = int(total)
    return KernelDensityEstimator(
        sample, stddev=np.sqrt(pooled_var), kernel=models[0].kernel,
        window_size=window_size)
