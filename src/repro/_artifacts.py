"""Crash-safe artifact writes: tmp file + ``os.replace``.

Benchmark JSON documents, ``benchmarks/history/*.jsonl`` ledgers, the
obs metric exporters and the engine checkpoint store all persist state
a later process depends on.  A plain ``write_text`` interrupted by a
crash (exactly the failure mode :mod:`repro.engine` injects on purpose)
leaves a truncated artifact that poisons every later read; these
helpers write the full payload to a temporary file in the *target
directory* (same filesystem, so the final rename is atomic), flush and
fsync it, and only then ``os.replace`` it over the destination.  A kill
at any instant leaves either the old artifact or the new one -- never a
mix, never a torn tail.

Appends (the history ledgers) are implemented as read-modify-replace of
the whole file, which keeps the same all-or-nothing guarantee; the
ledgers are a few KiB, so rewriting them is noise next to the benchmark
run that precedes it.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_append_text"]


def atomic_write_bytes(path: "str | Path", data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; return the target path.

    The payload lands in a uniquely named sibling temp file first and is
    renamed over the target only after a successful flush + fsync, so a
    crash mid-write cannot corrupt an existing artifact.  The temp file
    is removed on failure.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as sink:
            sink.write(data)
            sink.flush()
            os.fsync(sink.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def atomic_write_text(path: "str | Path", text: str, *,
                      encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically; return the target path."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_append_text(path: "str | Path", text: str, *,
                       encoding: str = "utf-8") -> Path:
    """Append ``text`` to ``path`` with all-or-nothing semantics.

    Reads the current contents (empty when the file does not exist),
    concatenates ``text`` and atomically replaces the file, so a crash
    mid-append can never leave a half-written record at the tail.
    """
    target = Path(path)
    existing = target.read_bytes() if target.exists() else b""
    return atomic_write_bytes(target, existing + text.encode(encoding))
