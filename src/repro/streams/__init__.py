"""Streaming substrates: sliding windows, window sampling, windowed
variance sketches and stream statistics (paper Section 5).
"""

from repro.streams.moments import EHMomentsSketch
from repro.streams.quantiles import GKQuantileSummary
from repro.streams.sampling import ChainSample, ReservoirSample
from repro.streams.stats import StreamSummary, summarize, summarize_columns
from repro.streams.variance import (
    EHVarianceSketch,
    ExactWindowedVariance,
    MultiDimVarianceSketch,
    theoretical_bound_words,
)
from repro.streams.window import SlidingWindow

__all__ = [
    "SlidingWindow",
    "ChainSample",
    "ReservoirSample",
    "EHVarianceSketch",
    "EHMomentsSketch",
    "GKQuantileSummary",
    "MultiDimVarianceSketch",
    "ExactWindowedVariance",
    "theoretical_bound_words",
    "StreamSummary",
    "summarize",
    "summarize_columns",
]
